"""Property-based round-trip tests for the parallel sample sort and the
particle redistribution paths (paper 3.2.1 / 3.3).

Seeded-random particle sets across P in {1, 2, 4, 8}:

* :func:`repro.enzo.sort.parallel_sort_by_id` must produce a permutation of
  the input whose concatenation in rank order is globally ID-sorted, with
  offsets equal to the exclusive scan of the counts -- and the *global*
  result must not depend on how the particles were initially placed on
  ranks;
* the MPI-IO read path's position-based redistribution
  (``MPIIOStrategy._redistribute_particles``) must deliver every particle
  to exactly the rank whose sub-domain contains it, losing and duplicating
  nothing, with payload arrays still attached to the right IDs.
"""

import numpy as np
import pytest

from repro.amr.particles import ParticleSet
from repro.amr.partition import BlockPartition
from repro.bench import build_workload
from repro.enzo import MPIIOStrategy
from repro.enzo.meta import HierarchyMeta
from repro.enzo.sort import parallel_sort_by_id
from repro.mpi import run_spmd

from .conftest import make_machine

PROC_COUNTS = [1, 2, 4, 8]


def random_particles(rng, n):
    """A ParticleSet whose payload is a function of the ID, so any
    ID/payload decoupling in transit is detectable."""
    ids = rng.permutation(n).astype(np.int64) * 3 + 1  # unique, non-contiguous
    positions = rng.random((n, 3))
    velocities = np.column_stack([ids * 0.5, ids * -1.0, ids * 2.0]).astype(
        np.float64
    )
    mass = ids.astype(np.float64) * 0.25
    attributes = np.column_stack([ids * 1.5, ids * -0.5]).astype(np.float64)
    return ParticleSet(ids, positions, velocities, mass, attributes)


def payload_consistent(ps):
    """The ID-derived payload relations of :func:`random_particles`."""
    f = ps.ids.astype(np.float64)
    return (
        np.array_equal(ps.velocities[:, 0], f * 0.5)
        and np.array_equal(ps.velocities[:, 1], f * -1.0)
        and np.array_equal(ps.mass, f * 0.25)
        and np.array_equal(ps.attributes[:, 1], f * -0.5)
    )


def scatter(rng, particles, nprocs):
    """A random placement: each particle to a uniformly random rank."""
    owner = rng.integers(0, nprocs, size=len(particles))
    return [particles.select(owner == r) for r in range(nprocs)]


def run_sample_sort(placement, nprocs):
    def program(comm):
        mine, offset, counts = parallel_sort_by_id(comm, placement[comm.rank])
        return mine, offset, counts

    res = run_spmd(make_machine(nprocs), program, nprocs=nprocs)
    return res.results


@pytest.mark.parametrize("nprocs", PROC_COUNTS)
@pytest.mark.parametrize("seed", [0, 1, 2])
def test_sample_sort_is_a_sorted_permutation(nprocs, seed):
    rng = np.random.default_rng(seed)
    n = int(rng.integers(50, 300))
    particles = random_particles(rng, n)
    results = run_sample_sort(scatter(rng, particles, nprocs), nprocs)

    merged = ParticleSet.concat([mine for mine, _, _ in results])
    # Permutation equivalence: nothing lost, nothing duplicated.
    assert len(merged) == n
    assert merged.equal_as_sets(particles)
    # Globally ID-sorted across the rank concatenation.
    assert np.array_equal(merged.ids, np.sort(particles.ids))
    # Payload rows travelled with their IDs.
    assert payload_consistent(merged)
    # Offsets are the exclusive scan of the counts, identical on all ranks.
    counts0 = results[0][2]
    assert sum(counts0) == n
    for rank, (mine, offset, counts) in enumerate(results):
        assert counts == counts0
        assert len(mine) == counts0[rank]
        assert offset == sum(counts0[:rank])


@pytest.mark.parametrize("nprocs", [2, 4, 8])
def test_sample_sort_result_is_placement_invariant(nprocs):
    rng = np.random.default_rng(7)
    particles = random_particles(rng, 181)
    runs = []
    for placement_seed in (10, 11):
        placement = scatter(
            np.random.default_rng(placement_seed), particles, nprocs
        )
        results = run_sample_sort(placement, nprocs)
        runs.append(ParticleSet.concat([mine for mine, _, _ in results]))
    # The *global* sorted sequence (IDs and payloads) is placement-stable.
    assert runs[0].equal(runs[1])


@pytest.mark.parametrize("nprocs", PROC_COUNTS)
@pytest.mark.parametrize("seed", [3, 4])
def test_redistribution_routes_every_particle_home(nprocs, seed):
    meta = HierarchyMeta.from_hierarchy(build_workload("AMR16"))
    root_dims = meta.root.dims
    rng = np.random.default_rng(seed)
    particles = random_particles(rng, 240)
    strategy = MPIIOStrategy()
    partition = BlockPartition.for_grid(root_dims, nprocs)
    placement = scatter(rng, particles, nprocs)

    def program(comm):
        return strategy._redistribute_particles(
            comm, placement[comm.rank], meta, partition
        )

    results = run_spmd(make_machine(nprocs), program, nprocs=nprocs).results

    merged = ParticleSet.concat(results)
    assert merged.equal_as_sets(particles)  # permutation equivalence
    assert payload_consistent(merged)
    root = strategy.make_root_shell(meta)
    for rank, mine in enumerate(results):
        # Stable ID ordering within each rank's chunk.
        assert np.array_equal(mine.ids, np.sort(mine.ids))
        if len(mine) and rank < partition.nprocs:
            cells = root.cell_of(mine.positions)
            assert np.all(partition.owner_of_cells(cells) == rank)
        else:
            assert len(mine) == 0 or rank < partition.nprocs


@pytest.mark.parametrize("nprocs", [2, 4])
def test_redistribution_then_sort_round_trip(nprocs):
    """Composing redistribution with the sample sort preserves the set:
    the write path (sort by ID) and read path (route by position) are
    inverse permutations of the same particles."""
    meta = HierarchyMeta.from_hierarchy(build_workload("AMR16"))
    rng = np.random.default_rng(9)
    particles = random_particles(rng, 160)
    strategy = MPIIOStrategy()
    partition = BlockPartition.for_grid(meta.root.dims, nprocs)
    placement = scatter(rng, particles, nprocs)

    def program(comm):
        routed = strategy._redistribute_particles(
            comm, placement[comm.rank], meta, partition
        )
        mine, offset, counts = parallel_sort_by_id(comm, routed)
        return mine

    results = run_spmd(make_machine(nprocs), program, nprocs=nprocs).results
    merged = ParticleSet.concat(results)
    assert np.array_equal(merged.ids, np.sort(particles.ids))
    assert merged.equal_as_sets(particles)
    assert payload_consistent(merged)
