"""Targeted tests for remaining thin spots across the stack."""

import numpy as np
import pytest

from repro.mpi import collectives as coll
from repro.mpi import run_spmd

from .conftest import make_machine


class TestCollectiveRoots:
    @pytest.mark.parametrize("root", [1, 3])
    def test_reduce_nonzero_root(self, root):
        m = make_machine(5)

        def program(comm):
            return coll.reduce(comm, comm.rank, op=coll.SUM, root=root)

        res = run_spmd(m, program)
        assert res.results[root] == 10
        assert all(r is None for i, r in enumerate(res.results) if i != root)

    def test_gatherv_scatterv_aliases(self):
        m = make_machine(3)

        def program(comm):
            objs = None
            if comm.rank == 1:
                objs = [f"p{r}" * (r + 1) for r in range(comm.size)]
            mine = coll.scatterv(comm, objs, root=1)
            back = coll.gatherv(comm, mine, root=1)
            return back

        res = run_spmd(m, program)
        assert res.results[1] == ["p0", "p1p1", "p2p2p2"]

    def test_allreduce_min_on_arrays(self):
        m = make_machine(4)

        def program(comm):
            arr = np.array([comm.rank, -comm.rank], dtype=np.float64)
            return coll.allreduce(comm, arr, op=coll.MIN)

        res = run_spmd(m, program)
        for out in res.results:
            np.testing.assert_array_equal(out, [0.0, -3.0])


class TestCliFigures:
    @pytest.mark.parametrize("fig,procs", [("fig6", 4), ("fig7", 8),
                                           ("fig8", 8), ("fig9", 4)])
    def test_every_figure_command_runs(self, fig, procs, capsys):
        from repro.cli import main

        assert main(["figure", fig, "--problem", "AMR16",
                     "--procs", str(procs)]) == 0
        out = capsys.readouterr().out
        assert "WRITE" in out and "READ" in out


class TestHdf4FormatEdges:
    def test_zero_dim_dataset(self):
        from repro.hdf4 import SDFile

        def program(comm):
            sd = SDFile.start(comm, "f", "w")
            sd.create("empty", np.float64, (0,)).write(
                np.empty(0, dtype=np.float64)
            )
            sd.end()
            sd = SDFile.start(comm, "f", "r")
            got = sd.select("empty").read()
            return got.shape

        res = run_spmd(make_machine(1), program)
        assert res.results[0] == (0,)

    def test_long_dataset_names(self):
        from repro.hdf4 import SDFile

        def program(comm):
            sd = SDFile.start(comm, "f", "w")
            name = "x" * 200
            sd.create(name, np.int32, (3,)).write(np.arange(3, dtype=np.int32))
            sd.end()
            sd = SDFile.start(comm, "f", "r")
            return sd.select(name).read().tolist()

        assert run_spmd(make_machine(1), program).results[0] == [0, 1, 2]


class TestHyperslabStrideBlock:
    def test_strided_block_write_read(self):
        """Full stride/block hyperslab semantics through the data path."""
        from repro.hdf5 import H5File, Hyperslab

        def program(comm):
            f = H5File.create(comm, "f", driver="sec2")
            d = f.create_dataset("x", (20,), np.float64)
            d.write(np.zeros(20), collective=False)
            sel = Hyperslab(start=(1,), count=(3,), stride=(6,), block=(2,))
            d.write(np.arange(6, dtype=np.float64), sel, collective=False)
            full = d.read(collective=False)
            f.close()
            return full

        full = run_spmd(make_machine(1), program).results[0]
        expect = np.zeros(20)
        expect[1:3] = [0, 1]
        expect[7:9] = [2, 3]
        expect[13:15] = [4, 5]
        np.testing.assert_array_equal(full, expect)


class TestViewNonContiguousPointerIO:
    def test_pointer_io_through_strided_view(self):
        from repro.mpi.datatypes import FLOAT64, Vector
        from repro.mpiio import File

        def program(comm):
            # View selects every other double.
            ft = Vector(2, 1, 2, FLOAT64)
            fh = File.open(comm, "f", "w")
            fh.set_view(0, FLOAT64, ft)
            fh.write(np.arange(4.0))  # stream elements 0..3
            fh.close()
            raw = comm.machine.fs.store.open("f")
            return np.frombuffer(raw.read(0, raw.size), dtype=np.float64)

        got = run_spmd(make_machine(1), program).results[0]
        # File layout: elements at positions 0, 2, 3, 5 (tile extent = 3).
        assert got[0] == 0.0
        assert got[2] == 1.0
        assert got[3] == 2.0
        assert got[5] == 3.0


class TestMachineEdges:
    def test_single_proc_machine_runs_everything(self):
        from repro.bench import build_workload, run_checkpoint_experiment
        from repro.enzo import HDF4Strategy
        from repro.topology import origin2000

        r = run_checkpoint_experiment(
            origin2000(nprocs=1), HDF4Strategy(), build_workload("AMR16"),
            nprocs=1,
        )
        assert r.write_time > 0 and r.read_time > 0
