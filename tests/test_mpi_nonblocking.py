"""Tests for nonblocking point-to-point operations."""

import numpy as np
import pytest

from repro.mpi import ANY_SOURCE, irecv, isend, run_spmd, waitall

from .conftest import make_machine


def test_isend_completes_immediately(machine4):
    def program(comm):
        if comm.rank == 0:
            req = isend(comm, "hello", 1)
            assert req.completed
            done, value = req.test()
            assert done and value is None
            assert req.wait() is None
        elif comm.rank == 1:
            return comm.recv(0)
        return None

    res = run_spmd(machine4, program)
    assert res.results[1] == "hello"


def test_irecv_wait(machine4):
    def program(comm):
        if comm.rank == 0:
            isend(comm, np.arange(5), 1, tag=3)
            return None
        if comm.rank == 1:
            req = irecv(comm, 0, tag=3)
            return req.wait().tolist()
        return None

    res = run_spmd(machine4, program)
    assert res.results[1] == [0, 1, 2, 3, 4]


def test_irecv_test_polls_without_blocking():
    m = make_machine(2, latency=0.01)

    def program(comm):
        if comm.rank == 1:
            req = irecv(comm, 0)
            polled = 0
            done, _ = req.test()
            while not done:
                polled += 1
                comm.compute(0.005)  # do useful work while waiting
                done, _ = req.test()
            _, value = req.test()
            return value, polled
        comm.compute(0.05)  # send late
        comm.send("late", 1)
        return None

    res = run_spmd(m, program)
    value, polled = res.results[1]
    assert value == "late"
    assert polled >= 1  # overlap actually happened


def test_irecv_completes_if_message_already_queued(machine4):
    def program(comm):
        if comm.rank == 0:
            comm.send("early", 1)
        from repro.mpi import collectives as coll

        coll.barrier(comm)
        if comm.rank == 1:
            req = irecv(comm, 0)
            # The message arrived before the irecv was posted.
            done, value = req.test()
            return done, value
        return None

    res = run_spmd(machine4, program)
    assert res.results[1] == (True, "early")


def test_waitall_gathers_in_order(machine4):
    def program(comm):
        if comm.rank == 0:
            reqs = [irecv(comm, src, tag=src) for src in (1, 2, 3)]
            return waitall(reqs)
        comm.send(comm.rank * 11, 0, tag=comm.rank)
        return None

    res = run_spmd(machine4, program)
    assert res.results[0] == [11, 22, 33]


def test_overlap_pattern_post_work_wait():
    """The classic ROMIO overlap: post receives, compute, then wait."""
    m = make_machine(3, latency=1e-3, bandwidth=1e6)

    def program(comm):
        if comm.rank == 0:
            reqs = [irecv(comm, ANY_SOURCE) for _ in range(2)]
            comm.compute(0.5)
            values = sorted(waitall(reqs))
            return values, comm.clock
        comm.send(comm.rank, 0)
        return None

    res = run_spmd(m, program)
    values, clock = res.results[0]
    assert values == [1, 2]
    # The compute time dominated; messages overlapped with it.
    assert clock == pytest.approx(0.5, abs=0.05)
