"""Executor telemetry: the Telemetry payload, artifact merge, CLI table."""

import json

import pytest

from repro.bench.timings import (
    TIMINGS_SCHEMA,
    Telemetry,
    format_timings,
    load_timings,
    save_timings,
)
from repro.cli import main


def _telemetry(family="regress", jobs=2, cells=3):
    t = Telemetry(family, jobs=jobs)
    for i in range(cells):
        t.add(f"{family}:cell:{i}", wall_us=(i + 1) * 100,
              cache="hit" if i == 0 else "miss",
              worker=i % jobs, queue_wait_us=i * 7)
    return t


def test_payload_counts():
    payload = _telemetry().to_payload()
    assert payload["jobs"] == 2
    assert payload["cells"] == 3
    assert payload["cache_hits"] == 1
    assert payload["cache_misses"] == 2
    assert payload["total_wall_us"] == 100 + 200 + 300
    assert [e["cell"] for e in payload["entries"]] == [
        "regress:cell:0", "regress:cell:1", "regress:cell:2",
    ]


def test_save_merges_families(tmp_path):
    path = tmp_path / "BENCH_timings.json"
    save_timings(_telemetry("regress"), str(path))
    save_timings(_telemetry("scale", cells=2), str(path))
    payload = load_timings(str(path))
    assert payload["schema"] == TIMINGS_SCHEMA
    assert set(payload["families"]) == {"regress", "scale"}
    # re-saving a family replaces its section, not appends
    save_timings(_telemetry("regress", cells=1), str(path))
    payload = load_timings(str(path))
    assert payload["families"]["regress"]["cells"] == 1
    assert payload["families"]["scale"]["cells"] == 2


def test_save_replaces_unreadable_artifact(tmp_path):
    path = tmp_path / "BENCH_timings.json"
    path.write_text("not json")
    save_timings(_telemetry(), str(path))
    assert load_timings(str(path))["families"]["regress"]["cells"] == 3


def test_load_rejects_foreign_json(tmp_path):
    path = tmp_path / "other.json"
    path.write_text(json.dumps({"schema": 1, "runs": []}))
    with pytest.raises(ValueError):
        load_timings(str(path))


def test_format_lists_all_cells():
    payload = {"schema": TIMINGS_SCHEMA,
               "families": {"regress": _telemetry().to_payload()}}
    text = format_timings(payload)
    assert "3 cell(s)" in text
    assert "regress:cell:2" in text
    assert "jobs=2" in text


def test_format_top_selects_slowest():
    t_fast = _telemetry("scale", cells=2)          # 100, 200 us
    t_slow = Telemetry("regress", jobs=1)
    t_slow.add("regress:big", wall_us=9999, cache="miss", worker=0,
               queue_wait_us=0)
    payload = {"schema": TIMINGS_SCHEMA,
               "families": {"scale": t_fast.to_payload(),
                            "regress": t_slow.to_payload()}}
    text = format_timings(payload, top=1)
    assert "1 slowest cell(s)" in text
    assert "regress:big" in text
    assert "scale:cell:0" not in text


def test_format_renders_cache_hit_worker_as_dash():
    t = Telemetry("regress", jobs=4)
    t.add("regress:c", wall_us=5, cache="hit", worker=-1, queue_wait_us=0)
    payload = {"schema": TIMINGS_SCHEMA, "families": {"regress": t.to_payload()}}
    lines = format_timings(payload).splitlines()
    row = next(line for line in lines if "regress:c" in line)
    assert " - " in f" {row.split()[-2]} "  # worker column renders "-"


# -- CLI ----------------------------------------------------------------------


def test_cli_timings_table(tmp_path, capsys):
    path = tmp_path / "BENCH_timings.json"
    save_timings(_telemetry(), str(path))
    assert main(["bench", "timings", "--timings", str(path)]) == 0
    out = capsys.readouterr().out
    assert "regress:cell:0" in out
    assert "wall [us]" in out


def test_cli_timings_top(tmp_path, capsys):
    path = tmp_path / "BENCH_timings.json"
    save_timings(_telemetry(), str(path))
    assert main(["bench", "timings", "--timings", str(path), "--top", "1"]) == 0
    out = capsys.readouterr().out
    assert "regress:cell:2" in out      # slowest (300 us)
    assert "regress:cell:0" not in out


def test_cli_timings_missing_artifact_is_usage_error(tmp_path, capsys):
    assert main(["bench", "timings", "--timings",
                 str(tmp_path / "nope.json")]) == 2
    assert "no timings artifact" in capsys.readouterr().err


def test_cli_timings_corrupt_artifact_is_usage_error(tmp_path, capsys):
    path = tmp_path / "bad.json"
    path.write_text("{]")
    assert main(["bench", "timings", "--timings", str(path)]) == 2
    assert "cannot load" in capsys.readouterr().err


def test_cli_timings_rejects_nonpositive_top(tmp_path, capsys):
    path = tmp_path / "BENCH_timings.json"
    save_timings(_telemetry(), str(path))
    assert main(["bench", "timings", "--timings", str(path), "--top", "0"]) == 2
    assert "--top" in capsys.readouterr().err
