"""CLI error paths: exit codes for bad input, broken pipes, and faults.

Conventions under test: 0 success, 1 failed run/check, 2 usage error
(missing or unparsable input), 141 (= 128 + SIGPIPE) when the output
consumer hangs up.
"""

import json
import os
import sys

import pytest

from repro.cli import main


class TestAnalyzeTraceErrors:
    def test_missing_trace_exits_2(self, tmp_path, capsys):
        rc = main(["analyze", "--trace", str(tmp_path / "nope.json")])
        assert rc == 2
        assert "not found" in capsys.readouterr().err

    def test_directory_exits_2(self, tmp_path, capsys):
        rc = main(["analyze", "--trace", str(tmp_path)])
        assert rc == 2
        assert "directory" in capsys.readouterr().err

    def test_corrupt_json_exits_2(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        rc = main(["analyze", "--trace", str(bad)])
        assert rc == 2
        assert "cannot parse" in capsys.readouterr().err

    def test_wrong_schema_exits_2(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps([{"surprise": 1}]))
        rc = main(["analyze", "--trace", str(bad)])
        assert rc == 2
        assert "cannot parse" in capsys.readouterr().err


class TestInsightsErrors:
    def test_missing_trace_exits_2(self, tmp_path, capsys):
        rc = main(["insights", str(tmp_path / "nope.json")])
        assert rc == 2
        assert "not found" in capsys.readouterr().err

    def test_check_gates_on_high_findings(self, tmp_path):
        trace = tmp_path / "t.json"
        # An hdf4 dump funnels everything through P0 -- reliably HIGH.
        assert main(["analyze", "--problem", "AMR16", "--procs", "4",
                     "--strategy", "hdf4",
                     "--save-trace", str(trace)]) == 0
        assert main(["insights", str(trace), "--procs", "4"]) == 0
        assert main(["insights", str(trace), "--procs", "4", "--check"]) == 1


class TestSigpipe:
    def test_broken_pipe_exits_141(self, monkeypatch):
        class BrokenStdout:
            """A consumer that hung up: every write raises EPIPE."""

            def __init__(self):
                self._fd = os.open(os.devnull, os.O_WRONLY)

            def write(self, s):
                raise BrokenPipeError

            def flush(self):
                pass

            def fileno(self):
                return self._fd

        monkeypatch.setattr(sys, "stdout", BrokenStdout())
        assert main(["table1"]) == 141


class TestSimulateFaultPaths:
    def test_bad_inject_spec_exits_2(self, capsys):
        rc = main(["simulate", "--problem", "AMR16", "--procs", "2",
                   "--cycles", "1", "--inject", "write:bogus"])
        assert rc == 2
        assert "bad --inject spec" in capsys.readouterr().err

    def test_unknown_inject_op_exits_2(self, capsys):
        rc = main(["simulate", "--problem", "AMR16", "--procs", "2",
                   "--cycles", "1", "--inject", "sync"])
        assert rc == 2
        assert "unknown op" in capsys.readouterr().err

    def test_fault_without_retries_exits_1(self, capsys):
        rc = main(["simulate", "--problem", "AMR16", "--procs", "2",
                   "--cycles", "1", "--inject", "write:torn:run"])
        assert rc == 1
        err = capsys.readouterr().err
        assert "simulation failed" in err and "--retries" in err

    def test_fault_with_retries_exits_0(self, capsys):
        rc = main(["simulate", "--problem", "AMR16", "--procs", "2",
                   "--cycles", "1", "--inject", "write:torn:run",
                   "--retries", "2"])
        assert rc == 0
        assert "verified bit-exact" in capsys.readouterr().out


class TestTableCommand:
    def test_table_shows_recoveries_column(self, capsys):
        rc = main(["table", "--problem", "AMR16", "--procs", "2"])
        assert rc == 0
        out = capsys.readouterr().out
        header = out.splitlines()[1]
        assert header.split() == ["machine", "strategy", "P", "write", "[s]",
                                  "read", "[s]", "recov"]
        for strategy in ("hdf4", "mpi-io", "hdf5"):
            assert strategy in out

    def test_table_counts_recoveries_under_injection(self, capsys):
        rc = main(["table", "--problem", "AMR16", "--procs", "2",
                   "--inject", "write:torn", "--retries", "2"])
        assert rc == 0
        out = capsys.readouterr().out
        rows = [l for l in out.splitlines()
                if l.split() and l.split()[1:2] != ["strategy"]
                and any(s in l.split() for s in ("hdf4", "mpi-io", "hdf5"))]
        assert len(rows) == 3
        assert any(int(l.split()[-1]) > 0 for l in rows)


class TestFilesystemConstraintErrors:
    """scda requires one coherent shared file; a scatter-mode node-local
    volume can never satisfy that, and the CLI must say so up front."""

    def test_tune_scda_on_scatter_fs_exits_2(self, capsys):
        rc = main(["tune", "--machine", "chiba_city_local",
                   "--strategy", "mpi-io-scda", "--procs", "4"])
        assert rc == 2
        err = capsys.readouterr().err
        assert "coherent-shared-file" in err
        assert "mpi-io-scda" in err

    def test_tune_scda_on_coherent_fs_is_accepted(self, capsys):
        # Same strategy, shared-volume machine: past the gate (exit 0/1
        # both mean "the tuner actually ran").
        rc = main(["tune", "--machine", "lustre", "--problem", "AMR16",
                   "--strategy", "mpi-io-scda", "--procs", "2",
                   "--rounds", "1"])
        assert rc in (0, 1)
        assert "coherent-shared-file" not in capsys.readouterr().err

    def test_strategies_table_surfaces_constraints(self, capsys):
        rc = main(["strategies"])
        assert rc == 0
        out = capsys.readouterr().out
        header = out.splitlines()[1]
        assert "requires" in header.split()
        scda_rows = [l for l in out.splitlines() if l.split()
                     and l.split()[0] in ("mpi-io-scda", "mpi-io-scda-async")]
        assert len(scda_rows) == 2
        assert all("coherent-shared-file" in l for l in scda_rows)

    def test_table_skips_incompatible_strategies(self, capsys):
        rc = main(["table", "--machine", "chiba_city_local",
                   "--problem", "AMR16", "--procs", "2"])
        assert rc == 0
        captured = capsys.readouterr()
        assert "skipping mpi-io-scda" in captured.err
        assert "coherent-shared-file" in captured.err
        assert "mpi-io" in captured.out  # compatible strategies still ran


@pytest.mark.parametrize("argv", [["--retries", "2"], []])
def test_analyze_accepts_retries_flag(argv, capsys):
    rc = main(["analyze", "--problem", "AMR16", "--procs", "2",
               "--strategy", "mpi-io", *argv])
    assert rc == 0
    assert "dump of AMR16" in capsys.readouterr().out
