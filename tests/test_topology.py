"""Unit tests for interconnect and machine models."""

import pytest

from repro.topology import CCNumaNetwork, Machine, Network, SwitchedNetwork


class TestNetwork:
    def test_uncontended_transfer_time(self):
        net = Network(4, latency=0.001, bandwidth=1000.0)
        # 500 bytes: egress 0.5s, cut-through, ingress drains 0.5s after
        # the first byte arrives at t=0.001.
        t = net.transfer(0.0, 0, 1, 500)
        assert t == pytest.approx(0.501)

    def test_local_transfer_uses_memory_copy(self):
        net = Network(2, latency=0.5, bandwidth=100.0, local_bandwidth=1000.0)
        assert net.transfer(0.0, 1, 1, 500) == pytest.approx(0.5)
        # No latency charged for an intra-node copy.

    def test_many_to_one_serialises_on_ingress(self):
        net = Network(4, latency=0.0, bandwidth=100.0)
        arrivals = [net.transfer(0.0, src, 0, 100) for src in (1, 2, 3)]
        # Each message takes 1s of ingress occupancy at node 0.
        assert sorted(arrivals) == [pytest.approx(i) for i in (1.0, 2.0, 3.0)]

    def test_disjoint_pairs_do_not_contend(self):
        net = Network(4, latency=0.0, bandwidth=100.0)
        a = net.transfer(0.0, 0, 1, 100)
        b = net.transfer(0.0, 2, 3, 100)
        assert a == pytest.approx(1.0)
        assert b == pytest.approx(1.0)

    def test_repeat_sender_serialises_on_egress(self):
        net = Network(4, latency=0.0, bandwidth=100.0)
        a = net.transfer(0.0, 0, 1, 100)
        b = net.transfer(0.0, 0, 2, 100)
        assert a == pytest.approx(1.0)
        assert b == pytest.approx(2.0)

    def test_byte_and_message_accounting(self):
        net = Network(2, latency=0.0, bandwidth=100.0)
        net.transfer(0.0, 0, 1, 30)
        net.transfer(0.0, 1, 0, 70)
        assert net.bytes_moved == 100
        assert net.messages == 2

    def test_node_range_validation(self):
        net = Network(2, latency=0.0, bandwidth=1.0)
        with pytest.raises(ValueError):
            net.transfer(0.0, 0, 5, 1)
        with pytest.raises(ValueError):
            net.transfer(0.0, -1, 0, 1)

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            Network(0, latency=0.0, bandwidth=1.0)
        with pytest.raises(ValueError):
            Network(1, latency=0.0, bandwidth=0.0)

    def test_presets_construct(self):
        assert SwitchedNetwork(8, latency=20e-6, bandwidth=115e6).nnodes == 8
        assert CCNumaNetwork(48).latency == pytest.approx(1e-6)


class TestMachine:
    def _machine(self, nprocs=8, ppn=2):
        nodes = (nprocs + ppn - 1) // ppn
        return Machine(
            name="test",
            nprocs=nprocs,
            procs_per_node=ppn,
            network=Network(nodes, latency=1e-5, bandwidth=1e8),
        )

    def test_node_placement(self):
        m = self._machine(nprocs=8, ppn=2)
        assert [m.node_of(r) for r in range(8)] == [0, 0, 1, 1, 2, 2, 3, 3]
        assert m.nnodes == 4

    def test_ranks_on_node(self):
        m = self._machine(nprocs=7, ppn=2)
        assert list(m.ranks_on_node(0)) == [0, 1]
        assert list(m.ranks_on_node(3)) == [6]

    def test_rank_range_validation(self):
        m = self._machine()
        with pytest.raises(ValueError):
            m.node_of(100)

    def test_compute_and_memcpy_time(self):
        m = self._machine()
        m.cpu_flops = 1e9
        m.memcpy_bandwidth = 1e8
        assert m.compute_time(2e9) == pytest.approx(2.0)
        assert m.memcpy_time(5e7) == pytest.approx(0.5)

    def test_network_too_small_rejected(self):
        with pytest.raises(ValueError):
            Machine(
                name="bad",
                nprocs=16,
                procs_per_node=1,
                network=Network(2, latency=0.0, bandwidth=1.0),
            )

    def test_attach_fs_chains(self):
        from repro.pfs import FileSystem

        m = self._machine()
        fs = FileSystem()
        assert m.attach_fs(fs) is m
        assert m.fs is fs
