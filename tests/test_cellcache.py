"""The content-addressed cell cache: keys, replay, invalidation, corruption.

The honesty contract: a cache hit replays the *identical* record (so the
gate's comparison still runs against real data), a source-tree change
invalidates every key, and a corrupt entry is a counted miss that falls
back to a live run -- never a silent green.
"""

import json

import pytest

from repro.bench.cellcache import (
    CellCache,
    cache_enabled,
    environment_fingerprint,
    source_tree_digest,
)
from repro.bench.executor import run_cells
from repro.bench.regression import run_cell
from repro.bench.baselines import select_cells

CELL_ID = "fig6:hdf4:2"


def _cache(tmp_path, tree="sha256:feed", env="python=3;numpy=2"):
    return CellCache(root=tmp_path / "cache", tree_digest=tree,
                     env_fingerprint=env)


def _one_cell():
    (cell,) = select_cells([CELL_ID])
    return cell


# -- keys ---------------------------------------------------------------------


def test_key_is_stable_and_spec_sensitive(tmp_path):
    cache = _cache(tmp_path)
    spec = {"figure": "fig6", "strategy": "hdf4", "nprocs": 2}
    assert cache.key("regress", spec) == cache.key("regress", dict(spec))
    assert cache.key("regress", spec) != cache.key("scale", spec)
    assert cache.key("regress", spec) != cache.key(
        "regress", dict(spec, nprocs=4)
    )


def test_key_changes_with_tree_digest(tmp_path):
    spec = {"figure": "fig6"}
    a = _cache(tmp_path, tree="sha256:aaaa").key("regress", spec)
    b = _cache(tmp_path, tree="sha256:bbbb").key("regress", spec)
    assert a != b


def test_key_changes_with_environment(tmp_path):
    spec = {"figure": "fig6"}
    a = _cache(tmp_path, env="python=3.11.0;numpy=1.26").key("regress", spec)
    b = _cache(tmp_path, env="python=3.12.0;numpy=1.26").key("regress", spec)
    assert a != b


def test_source_tree_digest_covers_repro_sources():
    digest = source_tree_digest()
    assert digest.startswith("sha256:")
    # stable across calls (lru-cached and content-addressed)
    assert digest == source_tree_digest()


def test_source_tree_perturbation_invalidates(tmp_path):
    # the digest is content-addressed: two copies of the tree hash alike
    # wherever they live, and a single appended comment line in one file
    # changes the whole digest (digests are lru-cached per path, so each
    # copy gets its own root)
    import pathlib
    import shutil

    import repro

    src = pathlib.Path(repro.__file__).parent
    pristine = tmp_path / "pristine" / "repro"
    perturbed = tmp_path / "perturbed" / "repro"
    for copy in (pristine, perturbed):
        shutil.copytree(src, copy,
                        ignore=shutil.ignore_patterns("__pycache__"))
    victim = perturbed / "bench" / "regression.py"
    victim.write_text(victim.read_text() + "\n# perturbed\n")
    assert source_tree_digest(str(pristine)) != source_tree_digest(
        str(perturbed)
    )


def test_environment_fingerprint_names_python_and_numpy():
    fp = environment_fingerprint()
    assert fp.startswith("python=")
    assert "numpy=" in fp


# -- get/put round trip -------------------------------------------------------


def test_put_get_roundtrip(tmp_path):
    cache = _cache(tmp_path)
    key = cache.key("regress", {"x": 1})
    record = {"write_bw": 1.5, "trace_digest": "sha256:abc"}
    cache.put(key, CELL_ID, record)
    assert cache.get(key) == record


def test_get_missing_is_none(tmp_path):
    cache = _cache(tmp_path)
    assert cache.get(cache.key("regress", {"x": 1})) is None


@pytest.mark.parametrize("garbage", [
    "not json at all",
    "[]",
    json.dumps({"schema": 999, "key": "k", "record": {}}),
    json.dumps({"schema": 1, "key": "WRONG", "record": {}}),
    json.dumps({"schema": 1, "key": "k", "record": "not-a-dict"}),
])
def test_corrupt_entry_is_dropped(tmp_path, garbage):
    cache = _cache(tmp_path)
    key = cache.key("regress", {"x": 1})
    cache.put(key, CELL_ID, {"ok": True})
    path = cache.root / f"{key}.json"
    path.write_text(garbage)
    assert cache.get(key) is None
    assert cache.corrupt == 1
    assert not path.exists(), "corrupt entry must be unlinked"


# -- executor integration -----------------------------------------------------


@pytest.mark.slow
def test_hit_replays_identical_record(tmp_path):
    cell = _one_cell()
    cache = CellCache(root=tmp_path / "cache",
                      tree_digest=source_tree_digest(),
                      env_fingerprint=environment_fingerprint())
    extras = {cell.id: {"hints": None}}
    cold = run_cells("regress", [cell], extras=extras, cache=cache)
    assert (cache.hits, cache.misses) == (0, 1)
    warm = run_cells("regress", [cell], extras=extras, cache=cache)
    assert cache.hits == 1
    assert json.dumps(cold, sort_keys=True) == json.dumps(warm, sort_keys=True)
    assert cold[cell.id] == run_cell(cell)


@pytest.mark.slow
def test_corrupt_entry_falls_back_to_live_run(tmp_path):
    cell = _one_cell()
    cache = CellCache(root=tmp_path / "cache",
                      tree_digest=source_tree_digest(),
                      env_fingerprint=environment_fingerprint())
    extras = {cell.id: {"hints": None}}
    cold = run_cells("regress", [cell], extras=extras, cache=cache)
    key = cache.key("regress",
                    cache_spec := _regress_spec(cell))
    entry = cache.root / f"{key}.json"
    assert entry.exists(), f"expected cache entry for spec {cache_spec}"
    entry.write_text("{torn write}")
    live = run_cells("regress", [cell], extras=extras, cache=cache)
    assert cache.corrupt == 1
    assert json.dumps(live, sort_keys=True) == json.dumps(cold, sort_keys=True)


@pytest.mark.slow
def test_tree_digest_change_invalidates_executor_cache(tmp_path):
    cell = _one_cell()
    extras = {cell.id: {"hints": None}}
    a = CellCache(root=tmp_path / "cache", tree_digest="sha256:aaaa",
                  env_fingerprint="e")
    run_cells("regress", [cell], extras=extras, cache=a)
    b = CellCache(root=tmp_path / "cache", tree_digest="sha256:bbbb",
                  env_fingerprint="e")
    run_cells("regress", [cell], extras=extras, cache=b)
    assert (b.hits, b.misses) == (0, 1), "new tree digest must miss"


def _regress_spec(cell) -> dict:
    from dataclasses import asdict

    return dict(asdict(cell), hints=None)


# -- environment switches -----------------------------------------------------


def test_cache_enabled_env_values():
    assert cache_enabled({})
    for off in ("0", "no", "off", "false", "NO", "Off", "FALSE"):
        assert not cache_enabled({"REPRO_CACHE": off})
    assert cache_enabled({"REPRO_CACHE": "1"})


def test_from_env_disabled_returns_none(monkeypatch):
    monkeypatch.setenv("REPRO_CACHE", "0")
    assert CellCache.from_env() is None
    monkeypatch.delenv("REPRO_CACHE")
    assert CellCache.from_env(disabled=True) is None


def test_from_env_honors_cache_dir(monkeypatch, tmp_path):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "elsewhere"))
    cache = CellCache.from_env()
    assert cache is not None
    assert str(cache.root) == str(tmp_path / "elsewhere")
