"""Unit tests for FCFS timelines, links and parallel servers."""

import pytest

from repro.sim import BandwidthLink, ParallelServer, Timeline


class TestTimeline:
    def test_idle_device_starts_immediately(self):
        t = Timeline()
        start, end = t.serve(ready_time=1.0, duration=2.0)
        assert (start, end) == (1.0, 3.0)

    def test_busy_device_queues(self):
        t = Timeline()
        t.serve(0.0, 5.0)
        start, end = t.serve(1.0, 2.0)
        assert (start, end) == (5.0, 7.0)

    def test_gap_leaves_device_idle(self):
        t = Timeline()
        t.serve(0.0, 1.0)
        start, end = t.serve(10.0, 1.0)
        assert (start, end) == (10.0, 11.0)

    def test_utilisation_accounting(self):
        t = Timeline()
        t.serve(0.0, 1.0)
        t.serve(0.0, 2.5)
        assert t.busy_time == pytest.approx(3.5)
        assert t.requests == 2

    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError):
            Timeline().serve(0.0, -1.0)

    def test_peek_does_not_mutate(self):
        t = Timeline()
        t.serve(0.0, 4.0)
        assert t.peek(1.0) == 4.0
        assert t.peek(9.0) == 9.0
        assert t.busy_until == 4.0


class TestBandwidthLink:
    def test_latency_only(self):
        link = BandwidthLink(latency=0.001)
        assert link.transfer(0.0, 10**9) == pytest.approx(0.001)

    def test_bandwidth_occupancy(self):
        link = BandwidthLink(latency=0.0, bandwidth=100.0)
        assert link.transfer(0.0, 200) == pytest.approx(2.0)

    def test_messages_queue_on_bandwidth(self):
        link = BandwidthLink(latency=0.5, bandwidth=100.0)
        a1 = link.transfer(0.0, 100)  # occupies [0, 1), arrives 1.5
        a2 = link.transfer(0.0, 100)  # occupies [1, 2), arrives 2.5
        assert a1 == pytest.approx(1.5)
        assert a2 == pytest.approx(2.5)

    def test_transfer_time_formula(self):
        link = BandwidthLink(latency=0.25, bandwidth=8.0)
        assert link.transfer_time(16) == pytest.approx(0.25 + 2.0)

    def test_infinite_bandwidth(self):
        link = BandwidthLink(latency=0.1)
        assert link.transfer_time(10**12) == pytest.approx(0.1)

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            BandwidthLink().transfer(0.0, -1)

    def test_bytes_accounting(self):
        link = BandwidthLink(latency=0.0, bandwidth=10.0)
        link.transfer(0.0, 30)
        link.transfer(0.0, 70)
        assert link.bytes_moved == 100


class TestParallelServer:
    def test_requests_spread_across_servers(self):
        ps = ParallelServer(k=2)
        s1 = ps.serve(0.0, 10.0)
        s2 = ps.serve(0.0, 10.0)
        s3 = ps.serve(0.0, 10.0)
        assert s1 == (0.0, 10.0)
        assert s2 == (0.0, 10.0)  # second server
        assert s3 == (10.0, 20.0)  # queues behind one of them

    def test_single_server_degenerates_to_timeline(self):
        ps = ParallelServer(k=1)
        ps.serve(0.0, 5.0)
        assert ps.serve(0.0, 5.0) == (5.0, 10.0)

    def test_aggregate_accounting(self):
        ps = ParallelServer(k=3)
        for _ in range(6):
            ps.serve(0.0, 1.0)
        assert ps.busy_time == pytest.approx(6.0)
        assert ps.requests == 6

    def test_k_validation(self):
        with pytest.raises(ValueError):
            ParallelServer(k=0)
