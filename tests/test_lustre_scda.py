"""Lustre model + scda serial-equivalent format: partition-invariance suite.

Three pillars gate the new subsystem:

* ``LustreStripeLayout`` must agree with an explicit per-byte reference
  model under fuzzed stripe geometry (mirrors ``test_pfs_striping.py``
  for the per-file OST layouts, including non-zero starting OSTs).
* ``scda`` is *serial equivalent*: the committed checkpoint file and its
  manifest are byte-identical for every process count, for both the sync
  and the async composition -- the property the format exists to provide.
* Torn scda headers or padding are detected at restart -- never silently
  parsed -- and the recover-or-raise fault matrix holds on Lustre too.
"""

import zlib

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.amr import make_initial_conditions
from repro.core import trace_filesystem
from repro.enzo import RankState, hierarchies_equivalent
from repro.enzo.layout import CheckpointLayout
from repro.enzo.meta import HierarchyMeta
from repro.insights import AutoTuner
from repro.insights.autotune import stripe_headroom_of
from repro.iostack import registry
from repro.iostack.scda import (
    FILE_HEADER_NBYTES,
    SECTION_HEADER_NBYTES,
    ScdaHeaderError,
    ScdaLayout,
    crc32_combine,
)
from repro.mpi import run_spmd
from repro.pfs.lustre import LustreFS, LustreStripeLayout
from repro.resilience import ManifestVerificationError
from repro.sim import RankFailedError
from repro.topology import origin2000
from repro.topology.presets import lustre as lustre_preset

from .conftest import make_machine

SCDA_STRATEGIES = ("mpi-io-scda", "mpi-io-scda-async")


@pytest.fixture(scope="module")
def hierarchy():
    return make_initial_conditions(
        (16, 16, 16), seed=3, pre_refine=0, particles_per_cell=0.25
    )


def write_program(hierarchy, strategy, base="ckpt"):
    def program(comm):
        state = RankState.from_hierarchy(hierarchy, comm.rank, comm.size)
        return strategy.write_checkpoint(comm, state, base)

    return program


def read_program(strategy, base="ckpt"):
    def program(comm):
        state, _stats = strategy.read_checkpoint(comm, base)
        return state

    return program


def dump(strategy_name, nprocs, hierarchy, machine=None):
    m = machine if machine is not None else make_machine(nprocs)
    run_spmd(m, write_program(hierarchy, registry.create(strategy_name)))
    return m


def file_bytes(m, path):
    f = m.fs.store.open(path)
    return f.read(0, f.size)


# -- the tentpole property: committed bytes do not depend on P ---------------


class TestScdaPartitionInvariance:
    @pytest.mark.parametrize("strategy", SCDA_STRATEGIES)
    def test_bytes_identical_for_every_nprocs(self, strategy, hierarchy):
        """For P in {1,2,4,8,16} the committed file *and* its manifest are
        byte-identical to the serial run -- the scda contract."""
        ref = dump(strategy, 1, hierarchy)
        ref_data = file_bytes(ref, "ckpt")
        ref_manifest = file_bytes(ref, "ckpt.manifest")
        assert len(ref_data) > FILE_HEADER_NBYTES
        for nprocs in (2, 4, 8, 16):
            m = dump(strategy, nprocs, hierarchy)
            assert file_bytes(m, "ckpt") == ref_data, f"P={nprocs}"
            assert (
                file_bytes(m, "ckpt.manifest") == ref_manifest
            ), f"P={nprocs}"

    @settings(max_examples=4, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_fuzzed_hierarchies_stay_invariant(self, seed):
        """Invariance is structural, not an artifact of one hierarchy:
        fuzz the initial conditions, include a non-dividing P=3."""
        h = make_initial_conditions(
            (8, 8, 8), seed=seed, pre_refine=0, particles_per_cell=0.25
        )
        ref = dump("mpi-io-scda", 1, h)
        ref_bytes = (file_bytes(ref, "ckpt"), file_bytes(ref, "ckpt.manifest"))
        for nprocs in (3, 4):
            m = dump("mpi-io-scda", nprocs, h)
            got = (file_bytes(m, "ckpt"), file_bytes(m, "ckpt.manifest"))
            assert got == ref_bytes, f"P={nprocs}"

    @pytest.mark.parametrize("strategy", SCDA_STRATEGIES)
    def test_restores_bit_identical_arrays(self, strategy, hierarchy):
        m = dump(strategy, 4, hierarchy)
        res = run_spmd(m, read_program(registry.create(strategy)))
        rebuilt = RankState.collect(res.results)
        assert hierarchies_equivalent(rebuilt, hierarchy)


# -- satellite: sync-vs-async differential -----------------------------------


class TestScdaSyncAsyncDifferential:
    def test_same_data_file_and_restored_state(self, hierarchy):
        """The async composition commits the *same* bytes the sync one
        does, and both restore bit-identical arrays."""
        sync = dump("mpi-io-scda", 4, hierarchy)
        asyn = dump("mpi-io-scda-async", 4, hierarchy)
        assert file_bytes(sync, "ckpt") == file_bytes(asyn, "ckpt")

        for m in (sync, asyn):
            res = run_spmd(m, read_program(registry.create("mpi-io-scda")))
            rebuilt = RankState.collect(res.results)
            assert hierarchies_equivalent(rebuilt, hierarchy)

    def test_async_drains_before_manifest_commit(self, hierarchy):
        """The write-behind queue is empty before the commit record: the
        manifest write is the last write the file system sees, and every
        data write has retired before it starts."""
        m = make_machine(4)
        trace = trace_filesystem(m.fs)
        run_spmd(
            m, write_program(hierarchy, registry.create("mpi-io-scda-async"))
        )
        trace.detach()
        writes = trace.ops("write")
        assert writes and writes[-1].path == "ckpt.manifest"
        manifest_start = min(
            e.start for e in writes if e.path == "ckpt.manifest"
        )
        data_end = max(e.end for e in writes if e.path == "ckpt")
        assert manifest_start >= data_end - 1e-12


# -- scda on-disk structure ---------------------------------------------------


class TestScdaLayoutFormat:
    BLOCK = 4096

    @pytest.fixture(scope="class")
    def layout(self, hierarchy):
        inner = CheckpointLayout(HierarchyMeta.from_hierarchy(hierarchy))
        return ScdaLayout(inner, block_size=self.BLOCK)

    def test_headers_padding_sections_tile_the_file(self, layout):
        """File header + padding gaps + section (header, data) pairs cover
        [0, last section end) exactly once -- no overlap, no hole."""
        spans = list(layout.header_segments())
        spans.extend(layout.padding_segments())
        spans.extend((ext.offset, ext.nbytes) for _, _, ext in layout.sections)
        spans.sort()
        pos = 0
        for off, nbytes in spans:
            assert off == pos, f"gap or overlap at byte {pos}"
            pos += nbytes
        last_end = max(ext.end for _, _, ext in layout.sections)
        assert pos == last_end
        # the file rounds up to a whole block
        assert layout.total_nbytes == -(-last_end // self.BLOCK) * self.BLOCK

    def test_sections_are_block_aligned(self, layout):
        for name, header_offset, ext in layout.sections:
            assert header_offset % self.BLOCK == 0, name
            assert ext.offset == header_offset + SECTION_HEADER_NBYTES, name

    def test_headers_are_fixed_width_ascii(self, layout):
        blob = layout.header_blob()
        assert len(blob) == FILE_HEADER_NBYTES + SECTION_HEADER_NBYTES * len(
            layout.sections
        )
        fh = layout.file_header()
        assert len(fh) == FILE_HEADER_NBYTES
        assert fh.decode("ascii").startswith("scda-file version=1")
        assert fh.rstrip(b" \n").endswith(str(layout.total_nbytes).encode())
        for name, _, ext in layout.sections:
            sh = layout.section_header(name, ext)
            assert len(sh) == SECTION_HEADER_NBYTES
            assert name in sh.decode("ascii")

    def test_validate_headers_names_the_torn_header(self, layout):
        layout.validate_headers(layout.header_blob())  # clean blob passes
        blob = bytearray(layout.header_blob())
        blob[FILE_HEADER_NBYTES + 4] ^= 0xFF  # first section header
        with pytest.raises(ScdaHeaderError, match="section"):
            layout.validate_headers(bytes(blob))
        blob = bytearray(layout.header_blob())
        blob[3] ^= 0xFF
        with pytest.raises(ScdaHeaderError, match="file header"):
            layout.validate_headers(bytes(blob))

    def test_oversized_header_line_is_rejected(self, layout):
        with pytest.raises(ScdaHeaderError, match="overflow"):
            ScdaLayout._pad("x" * SECTION_HEADER_NBYTES, SECTION_HEADER_NBYTES)

    def test_block_size_must_hold_the_file_header(self, hierarchy):
        inner = CheckpointLayout(HierarchyMeta.from_hierarchy(hierarchy))
        with pytest.raises(ValueError):
            ScdaLayout(inner, block_size=64)


class TestCrc32Combine:
    @settings(max_examples=80, deadline=None)
    @given(a=st.binary(max_size=512), b=st.binary(max_size=512))
    def test_matches_zlib_on_concatenation(self, a, b):
        assert crc32_combine(
            zlib.crc32(a), zlib.crc32(b), len(b)
        ) == zlib.crc32(a + b)

    @settings(max_examples=40, deadline=None)
    @given(parts=st.lists(st.binary(max_size=128), max_size=8))
    def test_chains_over_many_pieces(self, parts):
        crc, whole = 0, b""
        for p in parts:
            crc = crc32_combine(crc, zlib.crc32(p), len(p))
            whole += p
        assert crc == zlib.crc32(whole)


# -- torn scda headers / padding are detected, never silently parsed ---------


class TestScdaTornHeaderDetection:
    def corrupt_and_restart(self, hierarchy, offset, data):
        m = dump("mpi-io-scda", 2, hierarchy)
        m.fs.store.open("ckpt").write(offset, data)
        with pytest.raises(RankFailedError) as ei:
            run_spmd(m, read_program(registry.create("mpi-io-scda")))
        assert isinstance(
            ei.value.__cause__, (ScdaHeaderError, ManifestVerificationError)
        ), ei.value.__cause__
        return ei.value.__cause__

    def test_torn_file_header(self, hierarchy):
        self.corrupt_and_restart(hierarchy, 0, b"scdb")

    def test_torn_section_header(self, hierarchy):
        self.corrupt_and_restart(hierarchy, 4096, b"XXXX")

    def test_scribbled_padding(self, hierarchy):
        # bytes inside the [128, 4096) alignment gap must stay zero; the
        # manifest's padding entry catches anything else
        self.corrupt_and_restart(hierarchy, FILE_HEADER_NBYTES + 8, b"\x01")

    def test_clean_file_still_restores(self, hierarchy):
        """The detection tests above are not vacuous: the same pipeline
        with no corruption restores bit-identical state."""
        m = dump("mpi-io-scda", 2, hierarchy)
        res = run_spmd(m, read_program(registry.create("mpi-io-scda")))
        assert hierarchies_equivalent(
            RankState.collect(res.results), hierarchy
        )


# -- Lustre stripe math vs a per-byte reference model ------------------------


class TestLustreStripeLayoutProperties:
    @settings(max_examples=100, deadline=None)
    @given(
        stripe=st.integers(1, 64),
        count=st.integers(1, 8),
        nosts=st.integers(1, 8),
        start=st.integers(0, 7),
        offset=st.integers(0, 2048),
        nbytes=st.integers(0, 768),
    )
    def test_matches_per_byte_reference(
        self, stripe, count, nosts, start, offset, nbytes
    ):
        count = min(count, nosts)
        start = start % nosts
        lay = LustreStripeLayout(
            stripe_size=stripe, stripe_count=count,
            ost_count=nosts, start_ost=start,
        )

        def ref(b):
            """Byte b -> (ost, local offset): round-robin over the file's
            stripe_count virtual slots, remapped onto real OSTs from
            start_ost, packed densely in each OST's local store."""
            virtual = (b // stripe) % count
            ost = (start + virtual) % nosts
            local = (b // (stripe * count)) * stripe + b % stripe
            return ost, local

        for b in range(offset, offset + nbytes):
            assert lay.server_of(b) == ref(b)[0]
            assert lay.local_offset(b) == ref(b)[1]

        expected = sorted(ref(b) for b in range(offset, offset + nbytes))
        got = sorted(
            (ost, local + i)
            for ost, local, size in lay.server_runs(offset, nbytes)
            for i in range(size)
        )
        assert got == expected

        chunks = lay.decompose(offset, nbytes)
        covered = []
        for c in chunks:
            assert c.server == lay.server_of(c.file_offset)
            assert c.local_offset == lay.local_offset(c.file_offset)
            covered.extend(range(c.file_offset, c.file_offset + c.size))
        assert covered == list(range(offset, offset + nbytes))

    def test_geometry_is_validated(self):
        with pytest.raises(ValueError):
            LustreStripeLayout(stripe_size=64, stripe_count=0, ost_count=4)
        with pytest.raises(ValueError):
            LustreStripeLayout(stripe_size=64, stripe_count=5, ost_count=4)
        with pytest.raises(ValueError):
            LustreStripeLayout(
                stripe_size=64, stripe_count=2, ost_count=4, start_ost=4
            )


# -- LustreFS: lfs setstripe, MDS scaling, hint plumbing ---------------------


def make_lustre_fs(**kw):
    defaults = dict(
        nosts=4,
        stripe_size=4096,
        stripe_count=2,
        disk_bandwidth=1e9,
        seek_time=0.0,
        mds_open_time=1e-3,
        mds_per_file_time=1e-4,
    )
    defaults.update(kw)
    return LustreFS("lfs-test", **defaults)


class TestLustreFS:
    def test_setstripe_clamps_to_ost_count(self):
        fs = make_lustre_fs()
        fs.set_file_striping("ckpt", stripe_count=64)
        lay = fs.layout_for("ckpt")
        assert lay.stripe_count == 4
        assert lay.start_ost == 0  # explicit layouts pin OST 0

    def test_setstripe_without_knobs_keeps_volume_default(self):
        fs = make_lustre_fs()
        fs.set_file_striping("ckpt")
        assert fs.layout_for("ckpt") is fs.layout

    def test_setstripe_partial_knobs_inherit_the_rest(self):
        fs = make_lustre_fs()
        fs.set_file_striping("a", stripe_size=8192)
        lay = fs.layout_for("a")
        assert lay.stripe_size == 8192
        assert lay.stripe_count == fs.default_stripe_count

    def test_default_layouts_rotate_over_osts(self):
        fs = make_lustre_fs()  # 4 OSTs, default 2-wide
        fs._service_meta("create", "f0", 0, 0.0)
        fs._service_meta("create", "f1", 0, 0.0)
        assert fs.layout_for("f0").start_ost == 0
        assert fs.layout_for("f1").start_ost == 2

    def test_mds_cost_grows_with_tracked_files(self):
        """The single-MDS explosion: each namespace op pays for every file
        the MDS already tracks, so per-op latency rises monotonically."""
        fs = make_lustre_fs(mds_per_file_time=1e-3)
        ts = [fs._service_meta("create", f"f{i}", 0, 0.0) for i in range(20)]
        deltas = [b - a for a, b in zip(ts, ts[1:])]
        assert deltas == sorted(deltas)
        assert deltas[-1] > deltas[0]

    def test_delete_forgets_the_file(self):
        fs = make_lustre_fs()
        fs._service_meta("create", "f0", 0, 0.0)
        assert fs.layout_for("f0") is not fs.layout
        fs._service_meta("delete", "f0", 0, 0.0)
        assert fs.layout_for("f0") is fs.layout

    def test_describe_names_the_geometry(self):
        d = make_lustre_fs().describe()
        assert "4 OSTs" in d and "single MDS" in d


def test_striping_hints_reach_the_filesystem(hierarchy):
    """mpi-io-lustre's striping_factor/striping_unit hints land as an
    lfs-setstripe on the checkpoint file at open."""
    m = lustre_preset(nprocs=2)
    run_spmd(m, write_program(hierarchy, registry.create("mpi-io-lustre")))
    lay = m.fs.layout_for("ckpt")
    assert lay.stripe_count == 16  # widened from the volume default of 4
    assert lay.stripe_size == 1 << 20


def test_stripe_headroom_is_lustre_specific():
    assert stripe_headroom_of(lustre_preset(nprocs=2)) == 16
    assert stripe_headroom_of(origin2000(nprocs=2)) == 0


@pytest.mark.regression
def test_autotuner_retunes_stripes_on_lustre():
    """On a misaligned Lustre workload the tuner proposes widening the
    file's stripe count to all OSTs and bandwidth strictly improves."""
    tuner = AutoTuner(
        lambda n: lustre_preset(nprocs=n),
        problem="AMR16",
        nprocs=4,
        strategy="mpi-io",
        max_rounds=2,
    )
    report = tuner.tune()
    applied = [a for s in report.steps for a in s.applied]
    assert "striping_factor=16" in applied
    assert report.bandwidth_delta > 0
