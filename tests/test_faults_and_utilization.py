"""Fault injection through the full I/O stack + utilisation reporting."""

import pytest

from repro.bench import (
    build_workload,
    device_utilization,
    format_utilization_report,
    run_checkpoint_experiment,
)
from repro.enzo import HDF4Strategy, MPIIOStrategy, RankState
from repro.mpi import run_spmd
from repro.pfs import FileSystem, InjectedIOError
from repro.sim import RankFailedError
from repro.topology import origin2000

from .conftest import make_machine


class TestFaultInjection:
    def test_fault_fires_once(self):
        fs = FileSystem()
        fs.create("f")
        fs.inject_fault("write", "f")
        with pytest.raises(InjectedIOError):
            fs.write("f", 0, b"x")
        fs.write("f", 0, b"x")  # subsequent ops succeed

    def test_fault_after_n(self):
        fs = FileSystem()
        fs.create("f")
        fs.inject_fault("read", after=2)
        fs.write("f", 0, b"abcd")
        fs.read("f", 0, 1)
        fs.read("f", 0, 1)
        with pytest.raises(InjectedIOError):
            fs.read("f", 0, 1)

    def test_path_filter(self):
        fs = FileSystem()
        fs.create("a")
        fs.create("b")
        fs.inject_fault("write", "a")
        fs.write("b", 0, b"x")  # unaffected
        with pytest.raises(InjectedIOError):
            fs.write("a", 0, b"x")

    def test_meta_fault_on_create(self):
        fs = FileSystem()
        fs.inject_fault("meta", "f")
        with pytest.raises(InjectedIOError):
            fs.create("f")

    def test_bad_op_rejected(self):
        with pytest.raises(ValueError):
            FileSystem().inject_fault("sync")

    @pytest.mark.parametrize("cls", [MPIIOStrategy, HDF4Strategy])
    def test_fault_surfaces_through_checkpoint_write(self, cls):
        """A disk error mid-dump aborts the SPMD job with the real cause."""
        h = build_workload("AMR16")
        m = make_machine(4)
        m.fs.inject_fault("write", "ckpt", after=5)

        def program(comm):
            state = RankState.from_hierarchy(h, comm.rank, comm.size)
            cls().write_checkpoint(comm, state, "ckpt")

        with pytest.raises(RankFailedError) as ei:
            run_spmd(m, program)
        assert isinstance(ei.value.__cause__, InjectedIOError)

    def test_fault_surfaces_through_read(self):
        h = build_workload("AMR16")
        m = make_machine(2)

        def wp(comm):
            state = RankState.from_hierarchy(h, comm.rank, comm.size)
            MPIIOStrategy().write_checkpoint(comm, state, "ckpt")

        run_spmd(m, wp)
        m.fs.inject_fault("read", "ckpt", after=3)

        def rp(comm):
            MPIIOStrategy().read_initial(comm, "ckpt")

        with pytest.raises(RankFailedError) as ei:
            run_spmd(m, rp)
        assert isinstance(ei.value.__cause__, InjectedIOError)


class TestUtilizationReport:
    def test_rows_for_striped_machine(self):
        m = origin2000(nprocs=4)
        r = run_checkpoint_experiment(
            m, MPIIOStrategy(), build_workload("AMR16"), nprocs=4,
            do_read=False,
        )
        # Note: runner resets timelines before each phase; after the write
        # (no read) the devices carry the write phase's accounting.
        rows = device_utilization(m, r.write_time)
        names = [row[0] for row in rows]
        assert any(n.startswith("xfs.disk") for n in names)
        assert any(n.startswith("xfs.chan") for n in names)
        # Every utilisation is a sane percentage string.
        report = format_utilization_report(m, r.write_time, top=5)
        assert "device utilisation" in report
        assert len(report.splitlines()) <= 2 + 5 + 1

    def test_hdf4_funnel_shows_up_as_hot_channel(self):
        """The P0 I/O channel is the busiest device under HDF4."""
        m = origin2000(nprocs=8)
        r = run_checkpoint_experiment(
            m, HDF4Strategy(), build_workload("AMR16"), nprocs=8,
            do_read=False,
        )
        chan0 = m.fs._client_channels.get(0)
        assert chan0 is not None
        others = [
            ch.busy_time for node, ch in m.fs._client_channels.items()
            if node != 0
        ]
        assert chan0.busy_time >= max(others, default=0.0)

    def test_localdisk_rows(self):
        from repro.topology import chiba_city_local

        m = chiba_city_local(4)
        r = run_checkpoint_experiment(
            m, MPIIOStrategy(), build_workload("AMR16"), nprocs=4,
            do_read=False,
        )
        rows = device_utilization(m, r.write_time)
        assert sum(1 for row in rows if "disk[" in row[0]) == 4
