"""Shared fixtures: small machines for SPMD tests."""

import pytest

from repro.pfs import FileSystem
from repro.topology import Machine, Network


def make_machine(nprocs=4, ppn=1, latency=1e-6, bandwidth=1e9, fs=None):
    """A fast, almost-free machine for functional (non-timing) tests."""
    nodes = (nprocs + ppn - 1) // ppn
    m = Machine(
        name=f"test-{nprocs}x",
        nprocs=nprocs,
        procs_per_node=ppn,
        network=Network(nodes, latency=latency, bandwidth=bandwidth),
    )
    m.attach_fs(fs if fs is not None else FileSystem())
    return m


@pytest.fixture
def machine4():
    return make_machine(4)


@pytest.fixture
def machine8():
    return make_machine(8)
