"""Tests for ICs, refinement, partitioning, load balancing and the solver."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.amr import (
    BlockPartition,
    Grid,
    GridHierarchy,
    ParticleSet,
    assign_grids_lpt,
    assign_grids_round_robin,
    block_bounds,
    cluster_flags,
    evolve_hierarchy,
    gaussian_random_field,
    load_imbalance,
    make_initial_conditions,
    processor_grid,
    refine_hierarchy,
)


class TestInitialConditions:
    def test_grf_statistics(self):
        f = gaussian_random_field((16, 16, 16), sigma=0.5, seed=3)
        assert f.shape == (16, 16, 16)
        assert abs(f.mean()) < 0.05
        assert f.std() == pytest.approx(0.5, rel=1e-6)

    def test_grf_deterministic(self):
        a = gaussian_random_field((8, 8, 8), seed=7)
        b = gaussian_random_field((8, 8, 8), seed=7)
        np.testing.assert_array_equal(a, b)
        c = gaussian_random_field((8, 8, 8), seed=8)
        assert not np.array_equal(a, c)

    def test_make_initial_conditions(self):
        h = make_initial_conditions((16, 16, 16), seed=1, pre_refine=1)
        assert h.root.dims == (16, 16, 16)
        assert h.total_particles() > 0
        assert (h.root.fields["density"] > 0).all()
        # Pre-refinement produced at least one subgrid for a clustered field.
        assert len(h) > 1
        # Particle ids are unique across the hierarchy.
        ids = np.concatenate([g.particles.ids for g in h.grids()])
        assert len(np.unique(ids)) == len(ids)

    def test_particles_live_in_their_grids(self):
        h = make_initial_conditions((16, 16, 16), seed=2, pre_refine=1)
        for g in h.grids():
            if len(g.particles):
                assert g.contains_points(g.particles.positions).all()


class TestRefinement:
    def test_cluster_flags_empty(self):
        assert cluster_flags(np.zeros((4, 4, 4), dtype=bool)) == []

    def test_cluster_flags_single_blob(self):
        flags = np.zeros((8, 8, 8), dtype=bool)
        flags[2:4, 2:4, 2:4] = True
        boxes = cluster_flags(flags)
        assert boxes == [((2, 2, 2), (4, 4, 4))]

    def test_cluster_flags_two_blobs_split(self):
        flags = np.zeros((16, 8, 8), dtype=bool)
        flags[0:2, 0:2, 0:2] = True
        flags[14:16, 6:8, 6:8] = True
        boxes = cluster_flags(flags, min_efficiency=0.7)
        assert len(boxes) == 2
        covered = np.zeros_like(flags)
        for lo, hi in boxes:
            covered[tuple(slice(a, b) for a, b in zip(lo, hi))] = True
        assert covered[flags].all()  # all flagged cells covered

    def test_boxes_cover_all_flags_random(self):
        rng = np.random.default_rng(0)
        flags = rng.random((12, 12, 12)) > 0.9
        boxes = cluster_flags(flags)
        covered = np.zeros_like(flags)
        for lo, hi in boxes:
            covered[tuple(slice(a, b) for a, b in zip(lo, hi))] = True
        assert covered[flags].all()

    def test_refine_hierarchy_creates_children(self):
        h = make_initial_conditions((16, 16, 16), seed=4, pre_refine=0)
        new = refine_hierarchy(h, overdensity_threshold=1.5)
        assert len(new) >= 1
        for child in new:
            assert child.level == 1
            assert child.parent_id == h.root_id
            # Refined dims are double the covered coarse region.
            assert all(d % 2 == 0 for d in child.dims)
            # Fields were prolonged: child density within parent's range.
            assert child.fields["density"].max() <= h.root.fields["density"].max() + 1e-9

    def test_refinement_moves_particles_down(self):
        h = make_initial_conditions((16, 16, 16), seed=5, pre_refine=0)
        before = h.total_particles()
        refine_hierarchy(h, overdensity_threshold=1.5)
        assert h.total_particles() == before  # conserved
        for g in h.subgrids():
            if len(g.particles):
                assert g.contains_points(g.particles.positions).all()

    def test_max_level_respected(self):
        h = make_initial_conditions((16, 16, 16), seed=6, pre_refine=0)
        for _ in range(4):
            refine_hierarchy(h, overdensity_threshold=1.2, max_level=2)
        assert h.max_level <= 2


class TestProcessorGrid:
    @pytest.mark.parametrize(
        "n,expected",
        [(1, (1, 1, 1)), (2, (2, 1, 1)), (4, (2, 2, 1)), (8, (2, 2, 2)),
         (16, (4, 2, 2)), (64, (4, 4, 4)), (6, (3, 2, 1)), (12, (3, 2, 2))],
    )
    def test_near_cubic_factorisation(self, n, expected):
        assert processor_grid(n) == expected

    def test_product_is_nprocs(self):
        for n in range(1, 65):
            assert int(np.prod(processor_grid(n))) == n

    def test_validation(self):
        with pytest.raises(ValueError):
            processor_grid(0)


class TestBlockBounds:
    def test_even_split(self):
        assert [block_bounds(8, 4, i) for i in range(4)] == [
            (0, 2), (2, 4), (4, 6), (6, 8)
        ]

    def test_remainder_goes_to_first(self):
        bounds = [block_bounds(10, 4, i) for i in range(4)]
        assert bounds == [(0, 3), (3, 6), (6, 8), (8, 10)]

    @settings(max_examples=60, deadline=None)
    @given(n=st.integers(1, 200), parts=st.integers(1, 16))
    def test_property_blocks_tile_exactly(self, n, parts):
        prev = 0
        for i in range(parts):
            lo, hi = block_bounds(n, parts, i)
            assert lo == prev
            assert hi >= lo
            prev = hi
        assert prev == n


class TestBlockPartition:
    def make_grid(self, dims=(8, 8, 8), nparticles=200, seed=0):
        g = Grid.make_root(dims)
        rng = np.random.default_rng(seed)
        g.fields["density"] = rng.random(dims)
        g.particles = ParticleSet(
            ids=np.arange(nparticles),
            positions=rng.random((nparticles, 3)),
            velocities=rng.standard_normal((nparticles, 3)),
            mass=rng.random(nparticles),
            attributes=rng.random((nparticles, 2)),
        )
        return g

    @pytest.mark.parametrize("nprocs", [1, 2, 4, 6, 8])
    def test_extract_reassemble_roundtrip(self, nprocs):
        g = self.make_grid()
        part = BlockPartition(g.dims, nprocs)
        pieces = [part.extract(g, r) for r in range(nprocs)]
        # Pieces tile the domain: cells and particles conserved.
        assert sum(p.ncells for p in pieces) == g.ncells
        assert sum(len(p.particles) for p in pieces) == len(g.particles)
        combined = part.reassemble(g, pieces)
        assert combined.fields.equal(g.fields)
        # Reassembly sorts particles by id = original order here.
        assert combined.particles.equal(g.particles.sort_by_id())

    def test_piece_particles_match_piece_domain(self):
        g = self.make_grid()
        part = BlockPartition(g.dims, 8)
        for r in range(8):
            piece = part.extract(g, r)
            if len(piece.particles):
                assert piece.contains_points(piece.particles.positions).all()

    def test_block_of_covers_grid(self):
        part = BlockPartition((8, 10, 12), 6)
        seen = np.zeros((8, 10, 12), dtype=int)
        for r in range(6):
            starts, sizes = part.block_of(r)
            sel = tuple(slice(s, s + n) for s, n in zip(starts, sizes))
            seen[sel] += 1
        assert (seen == 1).all()

    def test_owner_of_cells_matches_blocks(self):
        part = BlockPartition((8, 8, 8), 4)
        for r in range(4):
            starts, sizes = part.block_of(r)
            corner = np.array([starts])
            assert part.owner_of_cells(corner)[0] == r

    def test_reassemble_wrong_count(self):
        g = self.make_grid()
        part = BlockPartition(g.dims, 4)
        with pytest.raises(ValueError):
            part.reassemble(g, [])


class TestLoadBalance:
    def make_grids(self, sizes):
        out = []
        for i, s in enumerate(sizes):
            g = Grid.make_root((s, 2, 2), grid_id=i)
            if i > 0:
                g.parent_id = 0
                g.level = 1
            out.append(g)
        return out

    def test_lpt_balances_better_than_round_robin(self):
        rng = np.random.default_rng(0)
        sizes = rng.integers(2, 40, size=30).tolist()
        grids = self.make_grids(sizes)
        lpt = assign_grids_lpt(grids, 4)
        rr = assign_grids_round_robin(grids, 4)
        assert load_imbalance(grids, lpt, 4) <= load_imbalance(grids, rr, 4)

    def test_round_robin_cycle(self):
        grids = self.make_grids([4, 4, 4, 4, 4])
        rr = assign_grids_round_robin(grids, 2)
        assert [rr[g.id] for g in grids] == [0, 1, 0, 1, 0]

    def test_all_assigned(self):
        grids = self.make_grids([3, 5, 7])
        for fn in (assign_grids_lpt, assign_grids_round_robin):
            a = fn(grids, 8)
            assert set(a) == {g.id for g in grids}
            assert all(0 <= r < 8 for r in a.values())

    def test_validation(self):
        with pytest.raises(ValueError):
            assign_grids_lpt([], 0)
        with pytest.raises(ValueError):
            assign_grids_round_robin([], 0)

    def test_imbalance_of_empty(self):
        assert load_imbalance([], {}, 4) == 1.0


class TestSolver:
    def test_evolution_changes_data_and_conserves_particles(self):
        h = make_initial_conditions((16, 16, 16), seed=9, pre_refine=1)
        before_density = h.root.fields["density"].copy()
        nparticles = h.total_particles()
        evolve_hierarchy(h, dt=0.1)
        assert not np.array_equal(before_density, h.root.fields["density"])
        assert h.total_particles() == nparticles
        assert (h.root.fields["density"] > 0).all()

    def test_particles_stay_in_domain(self):
        h = make_initial_conditions((16, 16, 16), seed=10, pre_refine=0)
        for _ in range(5):
            evolve_hierarchy(h, dt=0.2)
        pos = h.root.particles.positions
        assert (pos >= 0).all() and (pos < 1).all()

    def test_particles_rehomed_to_finest_grid(self):
        h = make_initial_conditions((16, 16, 16), seed=11, pre_refine=1)
        evolve_hierarchy(h, dt=0.1)
        for g in h.grids():
            if len(g.particles) == 0:
                continue
            assert g.contains_points(g.particles.positions).all()
            # No particle sits in a descendant of its grid.
            for child in h.children(g.id):
                assert not child.contains_points(g.particles.positions).any()

    def test_evolution_deterministic(self):
        h1 = make_initial_conditions((16, 16, 16), seed=12, pre_refine=1)
        h2 = make_initial_conditions((16, 16, 16), seed=12, pre_refine=1)
        for _ in range(3):
            evolve_hierarchy(h1, dt=0.1)
            evolve_hierarchy(h2, dt=0.1)
        assert h1.equal(h2)

    def test_compute_time_charged(self):
        from repro.mpi import run_spmd

        from .conftest import make_machine

        h = make_initial_conditions((8, 8, 8), seed=13, pre_refine=0)

        def program(comm):
            t0 = comm.clock
            evolve_hierarchy(h, dt=0.1, comm=comm, my_cells=512)
            return comm.clock - t0

        res = run_spmd(make_machine(1), program)
        assert res.results[0] > 0
