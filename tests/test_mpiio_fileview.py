"""File-view mapping tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mpi.datatypes import BYTE, FLOAT64, INT32, Contiguous, Subarray, Vector
from repro.mpiio import FileView


class TestFileViewBasics:
    def test_default_view_is_identity(self):
        v = FileView()
        assert v.is_contiguous
        assert v.map_stream(0, 10) == [(0, 10)]
        assert v.map_stream(5, 3) == [(5, 3)]

    def test_displacement_shifts_everything(self):
        v = FileView(disp=100)
        assert v.map_stream(0, 10) == [(100, 10)]

    def test_etype_units(self):
        v = FileView(etype=FLOAT64)
        assert v.byte_offset(3) == 24

    def test_filetype_must_be_multiple_of_etype(self):
        with pytest.raises(ValueError):
            FileView(etype=FLOAT64, filetype=Contiguous(3, BYTE))

    def test_negative_disp_rejected(self):
        with pytest.raises(ValueError):
            FileView(disp=-1)

    def test_zero_length_maps_to_nothing(self):
        v = FileView(filetype=Vector(2, 1, 2, FLOAT64), etype=FLOAT64)
        assert v.map_stream(0, 0) == []


class TestStridedViews:
    def test_vector_view_tiles(self):
        # Filetype: 2 blocks of 1 double, stride 2 doubles -> selects every
        # other double; extent = 3 doubles (24 bytes), size = 16 bytes.
        ft = Vector(2, 1, 2, FLOAT64)
        v = FileView(etype=FLOAT64, filetype=ft)
        assert v.map_stream(0, 8) == [(0, 8)]
        assert v.map_stream(8, 8) == [(16, 8)]
        # Crossing into the second tile: tile 1 starts at file byte 24.
        assert v.map_stream(16, 8) == [(24, 8)]
        # Tile 0's trailing segment [16, 24) abuts tile 1's leading segment
        # [24, 32): they merge.
        assert v.map_stream(0, 32) == [(0, 8), (16, 16), (40, 8)]

    def test_subarray_view(self):
        # 4x4 global ints, my column block is columns 2..4.
        ft = Subarray((4, 4), (4, 2), (0, 2), INT32)
        v = FileView(etype=INT32, filetype=ft)
        segs = v.map_stream(0, ft.size)
        assert segs == [(8, 8), (24, 8), (40, 8), (56, 8)]

    def test_subarray_view_with_disp(self):
        ft = Subarray((4, 4), (2, 4), (2, 0), INT32)  # last two rows
        v = FileView(disp=1000, etype=INT32, filetype=ft)
        assert v.map_stream(0, 32) == [(1032, 32)]

    def test_partial_request_inside_tile(self):
        ft = Vector(2, 2, 4, FLOAT64)  # [0,16) and [32,48) per 48-byte tile
        v = FileView(etype=FLOAT64, filetype=ft)
        # Ask for stream bytes [8, 24): second half of block 0 + first half
        # of block 1.
        assert v.map_stream(8, 16) == [(8, 8), (32, 8)]


@st.composite
def view_cases(draw):
    count = draw(st.integers(1, 4))
    blocklength = draw(st.integers(1, 3))
    extra = draw(st.integers(0, 3))
    ft = Vector(count, blocklength, blocklength + extra, INT32)
    disp = draw(st.integers(0, 64))
    offset = draw(st.integers(0, 40))
    nbytes = draw(st.integers(0, 200)) * 4
    return ft, disp, offset, nbytes


@settings(max_examples=120, deadline=None)
@given(case=view_cases())
def test_property_view_mapping_matches_reference(case):
    """map_stream agrees with a brute-force byte-by-byte reference."""
    ft, disp, offset_elems, nbytes = case
    v = FileView(disp=disp, etype=INT32, filetype=ft)
    stream_off = offset_elems * 4
    got = v.map_stream(stream_off, nbytes)
    # Reference: enumerate stream byte -> file byte via one-tile segments.
    segs = ft.segments()
    expect_bytes = []
    for sb in range(stream_off, stream_off + nbytes):
        tile, within = divmod(sb, ft.size)
        pos = 0
        for d, n in segs:
            if within < pos + n:
                expect_bytes.append(disp + tile * ft.extent + d + (within - pos))
                break
            pos += n
    flat = [b for off, n in got for b in range(off, off + n)]
    assert flat == expect_bytes
    # Segments are merged: no two adjacent.
    for (o1, n1), (o2, _) in zip(got, got[1:]):
        assert o1 + n1 < o2


@settings(max_examples=60, deadline=None)
@given(
    nbytes=st.integers(0, 64),
    offset=st.integers(0, 64),
    disp=st.integers(0, 16),
)
def test_property_contiguous_view_is_identity_plus_disp(nbytes, offset, disp):
    v = FileView(disp=disp)
    got = v.map_stream(offset, nbytes)
    if nbytes == 0:
        assert got == []
    else:
        assert got == [(disp + offset, nbytes)]
