"""Tests for PVFS-style list I/O (batched non-contiguous access)."""

import numpy as np
import pytest

from repro.mpi import run_spmd
from repro.mpi.datatypes import FLOAT64, Subarray
from repro.mpiio import File, Hints
from repro.pfs import FileSystem, StripedServerFS

from .conftest import make_machine


def make_striped(**kw):
    defaults = dict(
        nservers=4,
        stripe_size=100,
        disk_bandwidth=1000.0,
        seek_time=0.0,
        request_cpu_time=0.0,
    )
    defaults.update(kw)
    return StripedServerFS("lfs", **defaults)


class TestFileSystemListIO:
    def test_write_read_roundtrip(self):
        fs = make_striped()
        fs.create("f")
        segs = [(10, 5), (200, 7), (512, 3)]
        payload = bytes(range(15))
        fs.write_list("f", segs, payload)
        data, _ = fs.read_list("f", segs)
        assert data == payload
        # And the pieces landed at the right offsets.
        assert fs.read("f", 200, 7)[0] == payload[5:12]

    def test_base_filesystem_list_io(self):
        fs = FileSystem()
        fs.create("f")
        fs.write_list("f", [(0, 3), (10, 3)], b"abcdef")
        data, _ = fs.read_list("f", [(0, 3), (10, 3)])
        assert data == b"abcdef"

    def test_length_validation(self):
        fs = make_striped()
        fs.create("f")
        with pytest.raises(ValueError):
            fs.write_list("f", [(0, 10)], b"short")

    def test_one_request_counted(self):
        fs = make_striped()
        fs.create("f")
        fs.write_list("f", [(0, 5), (300, 5), (600, 5)], b"x" * 15)
        assert fs.counters.writes == 1
        fs.read_list("f", [(0, 5), (300, 5)])
        assert fs.counters.reads == 1

    def test_listio_cheaper_than_per_segment(self):
        """Per-request CPU is paid once per server, not once per segment."""
        segs = [(i * 1000, 8) for i in range(32)]
        payload = b"z" * (8 * 32)

        # Fast disks so the per-request CPU cost dominates both variants.
        fast = dict(request_cpu_time=0.01, nservers=2, disk_bandwidth=1e9)
        fs1 = make_striped(**fast)
        fs1.create("f")
        t_list = fs1.write_list("f", segs, payload)

        fs2 = make_striped(**fast)
        fs2.create("f")
        t = 0.0
        pos = 0
        for off, n in segs:
            t = fs2.write("f", off, payload[pos:pos + n], ready_time=t)
            pos += n
        assert t_list < t / 3

    def test_empty_list(self):
        fs = make_striped()
        fs.create("f")
        assert fs.write_list("f", [], b"", ready_time=2.0) == 2.0
        data, done = fs.read_list("f", [], ready_time=3.0)
        assert data == b""

    def test_fault_injection_applies(self):
        from repro.pfs import InjectedIOError

        fs = make_striped()
        fs.create("f")
        fs.inject_fault("write", "f")
        with pytest.raises(InjectedIOError):
            fs.write_list("f", [(0, 1)], b"x")


class TestListIOHint:
    def strided_program(self, comm, hints):
        shape = (16, 16)
        lo = comm.rank * (shape[1] // comm.size)
        n = shape[1] // comm.size
        ftype = Subarray(shape, (shape[0], n), (0, lo), FLOAT64)
        fh = File.open(comm, "g", "w", hints=hints)
        fh.set_view(0, FLOAT64, ftype)
        data = np.full((shape[0], n), float(comm.rank))
        fh.write(data)
        fh.close()
        fh = File.open(comm, "g", "r", hints=hints)
        fh.set_view(0, FLOAT64, ftype)
        got = fh.read(np.empty((shape[0], n)))
        fh.close()
        np.testing.assert_array_equal(got, data)
        return True

    def test_hint_roundtrip_correctness(self):
        m = make_machine(4, fs=make_striped())
        res = run_spmd(m, self.strided_program,
                       args=(Hints(use_listio=True),))
        assert all(res.results)

    def test_hint_reduces_request_count(self):
        m1 = make_machine(4, fs=make_striped())
        run_spmd(m1, self.strided_program,
                 args=(Hints(use_listio=True),))
        listio_writes = m1.fs.counters.writes

        m2 = make_machine(4, fs=make_striped())
        run_spmd(m2, self.strided_program,
                 args=(Hints(use_listio=False, ds_write=False),))
        naive_writes = m2.fs.counters.writes
        assert listio_writes < naive_writes / 4
