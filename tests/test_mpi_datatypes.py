"""Unit and property tests for MPI derived datatypes."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mpi.datatypes import (
    BYTE,
    FLOAT64,
    INT32,
    Contiguous,
    Indexed,
    Subarray,
    Vector,
    from_numpy,
    merge_segments,
)


class TestNamed:
    def test_sizes(self):
        assert BYTE.size == 1
        assert INT32.size == 4
        assert FLOAT64.size == 8
        assert FLOAT64.extent == 8

    def test_segments(self):
        assert FLOAT64.segments() == [(0, 8)]
        assert FLOAT64.segments(base=16) == [(16, 8)]

    def test_from_numpy(self):
        assert from_numpy(np.float64) is FLOAT64
        assert from_numpy("int32") is INT32
        with pytest.raises(TypeError):
            from_numpy(np.complex128)

    def test_is_contiguous(self):
        assert FLOAT64.is_contiguous


class TestMergeSegments:
    def test_adjacent_merge(self):
        assert merge_segments([(0, 4), (4, 4)]) == [(0, 8)]

    def test_gap_preserved(self):
        assert merge_segments([(0, 4), (8, 4)]) == [(0, 4), (8, 4)]

    def test_overlap_merges(self):
        assert merge_segments([(0, 6), (4, 4)]) == [(0, 8)]

    def test_zero_length_dropped(self):
        assert merge_segments([(0, 0), (5, 3)]) == [(5, 3)]


class TestContiguous:
    def test_packs_elements(self):
        t = Contiguous(5, FLOAT64)
        assert t.size == 40
        assert t.extent == 40
        assert t.segments() == [(0, 40)]
        assert t.is_contiguous

    def test_nested(self):
        t = Contiguous(3, Contiguous(2, INT32))
        assert t.size == 24
        assert t.segments() == [(0, 24)]

    def test_zero_count(self):
        t = Contiguous(0, FLOAT64)
        assert t.size == 0
        assert t.segments() == []

    def test_validation(self):
        with pytest.raises(ValueError):
            Contiguous(-1, BYTE)


class TestVector:
    def test_strided_blocks(self):
        # 3 blocks of 2 doubles, stride 4 doubles.
        t = Vector(3, 2, 4, FLOAT64)
        assert t.size == 48
        assert t.extent == (2 * 4 + 2) * 8
        assert t.segments() == [(0, 16), (32, 16), (64, 16)]
        assert not t.is_contiguous

    def test_stride_equals_blocklength_is_contiguous(self):
        t = Vector(4, 3, 3, INT32)
        assert t.segments() == [(0, 48)]
        assert t.is_contiguous

    def test_zero_count(self):
        assert Vector(0, 2, 4, BYTE).segments() == []


class TestIndexed:
    def test_blocks_at_displacements(self):
        t = Indexed([2, 1], [0, 4], FLOAT64)
        assert t.size == 24
        assert t.extent == 40
        assert t.segments() == [(0, 16), (32, 8)]

    def test_unsorted_displacements_sorted_in_segments(self):
        t = Indexed([1, 1], [5, 0], INT32)
        assert t.segments() == [(0, 4), (20, 4)]

    def test_adjacent_blocks_merge(self):
        t = Indexed([2, 2], [0, 2], INT32)
        assert t.segments() == [(0, 16)]

    def test_validation(self):
        with pytest.raises(ValueError):
            Indexed([1, 2], [0], BYTE)
        with pytest.raises(ValueError):
            Indexed([-1], [0], BYTE)


class TestSubarray:
    def test_2d_interior_block(self):
        # 4x6 global, 2x3 sub at (1, 2); rows are 3 contiguous doubles.
        t = Subarray((4, 6), (2, 3), (1, 2), FLOAT64)
        assert t.size == 48
        assert t.extent == 4 * 6 * 8
        row0 = (1 * 6 + 2) * 8
        row1 = (2 * 6 + 2) * 8
        assert t.segments() == [(row0, 24), (row1, 24)]

    def test_full_array_is_one_segment(self):
        t = Subarray((4, 6), (4, 6), (0, 0), FLOAT64)
        assert t.segments() == [(0, 4 * 6 * 8)]
        assert t.is_contiguous

    def test_full_rows_merge(self):
        # Selecting complete rows 1..3 is one contiguous run.
        t = Subarray((5, 4), (2, 4), (1, 0), INT32)
        assert t.segments() == [(16, 32)]

    def test_3d_block(self):
        t = Subarray((4, 4, 4), (2, 2, 2), (1, 1, 1), BYTE)
        segs = t.segments()
        assert sum(n for _, n in segs) == 8
        assert len(segs) == 4  # 2x2 rows of 2 bytes

    def test_1d(self):
        t = Subarray((100,), (10,), (90,), FLOAT64)
        assert t.segments() == [(720, 80)]

    def test_numpy_index(self):
        t = Subarray((4, 6), (2, 3), (1, 2), FLOAT64)
        assert t.numpy_index() == (slice(1, 3), slice(2, 5))

    def test_empty_subarray(self):
        t = Subarray((4, 4), (0, 4), (0, 0), BYTE)
        assert t.size == 0
        assert t.segments() == []

    def test_validation(self):
        with pytest.raises(ValueError):
            Subarray((4,), (5,), (0,), BYTE)  # too big
        with pytest.raises(ValueError):
            Subarray((4,), (2,), (3,), BYTE)  # overhangs
        with pytest.raises(ValueError):
            Subarray((4, 4), (2,), (0, 0), BYTE)  # rank mismatch
        with pytest.raises(ValueError):
            Subarray((), (), (), BYTE)  # zero rank


@st.composite
def subarray_specs(draw):
    rank = draw(st.integers(1, 3))
    shape = tuple(draw(st.integers(1, 8)) for _ in range(rank))
    subsizes, starts = [], []
    for n in shape:
        sub = draw(st.integers(0, n))
        start = draw(st.integers(0, n - sub))
        subsizes.append(sub)
        starts.append(start)
    return shape, tuple(subsizes), tuple(starts)


@settings(max_examples=100, deadline=None)
@given(spec=subarray_specs())
def test_property_subarray_segments_match_numpy_mask(spec):
    """Flattened segments select exactly the bytes numpy slicing selects."""
    shape, subsizes, starts = spec
    t = Subarray(shape, subsizes, starts, FLOAT64)
    mask = np.zeros(shape, dtype=bool)
    mask[t.numpy_index()] = True
    flat = np.repeat(mask.ravel(), FLOAT64.size)  # per-byte mask
    expect = np.flatnonzero(flat)
    got = np.concatenate(
        [np.arange(d, d + n) for d, n in t.segments()]
        or [np.array([], dtype=np.int64)]
    )
    np.testing.assert_array_equal(got, expect)
    assert t.size == int(mask.sum()) * 8


@settings(max_examples=100, deadline=None)
@given(
    count=st.integers(0, 10),
    blocklength=st.integers(0, 5),
    extra_stride=st.integers(0, 5),
)
def test_property_vector_size_and_coverage(count, blocklength, extra_stride):
    stride = blocklength + extra_stride
    t = Vector(count, blocklength, stride, INT32)
    segs = t.segments()
    assert sum(n for _, n in segs) == t.size == count * blocklength * 4
    # Segments are sorted and non-overlapping.
    for (d1, n1), (d2, _) in zip(segs, segs[1:]):
        assert d1 + n1 < d2 or d1 + n1 == d2  # merged if adjacent
        assert d1 + n1 <= d2


@settings(max_examples=100, deadline=None)
@given(
    blocks=st.lists(
        st.tuples(st.integers(0, 4), st.integers(0, 30)), min_size=0, max_size=6
    )
)
def test_property_indexed_covers_exact_bytes(blocks):
    """Indexed segments cover exactly the union of requested element runs."""
    lens = [b for b, _ in blocks]
    disps = [d for _, d in blocks]
    t = Indexed(lens, disps, INT32)
    want = set()
    for blen, disp in zip(lens, disps):
        for e in range(disp, disp + blen):
            want.update(range(e * 4, e * 4 + 4))
    got = set()
    for d, n in t.segments():
        got.update(range(d, d + n))
    assert got == want
