"""Tests for write-behind buffering and HDF5 data alignment."""

import numpy as np
import pytest

from repro.hdf5 import H5Costs, H5File
from repro.mpi import run_spmd
from repro.mpiio import File, Hints
from repro.pfs import StripedServerFS

from .conftest import make_machine


def seeky_fs():
    return StripedServerFS(
        "wb", nservers=1, stripe_size=1 << 20, disk_bandwidth=50e6,
        seek_time=0.005, request_cpu_time=0.001,
    )


class TestWriteBehind:
    def test_consecutive_writes_coalesce(self):
        m = make_machine(1)

        def program(comm):
            fh = File.open(comm, "f", "w", hints=Hints(wb_buffer_size=1 << 20))
            for i in range(10):
                fh.write(bytes([i]) * 100)
            fh.close()
            return None

        run_spmd(m, program)
        assert m.fs.counters.writes == 1  # one flush for ten writes
        expect = b"".join(bytes([i]) * 100 for i in range(10))
        assert m.fs.store.open("f").read(0, 1000) == expect

    def test_seek_forces_flush(self):
        m = make_machine(1)

        def program(comm):
            fh = File.open(comm, "f", "w", hints=Hints(wb_buffer_size=1 << 20))
            fh.write_at(0, b"aaaa")
            fh.write_at(100, b"bbbb")  # non-contiguous: flush + restage
            fh.close()
            return None

        run_spmd(m, program)
        assert m.fs.counters.writes == 2
        assert m.fs.store.open("f").read(100, 4) == b"bbbb"

    def test_overflow_flushes(self):
        m = make_machine(1)

        def program(comm):
            fh = File.open(comm, "f", "w", hints=Hints(wb_buffer_size=256))
            for _ in range(4):
                fh.write(b"x" * 100)
            fh.close()
            return None

        run_spmd(m, program)
        # 100,200,300>=256 -> flush; 100 -> flush at close: 2 writes.
        assert m.fs.counters.writes == 2

    def test_read_sees_buffered_data(self):
        m = make_machine(1)

        def program(comm):
            fh = File.open(comm, "f", "w", hints=Hints(wb_buffer_size=1 << 20))
            fh.write_at(0, b"hello")
            got = fh.read_at(0, 5)  # implicit flush for consistency
            fh.close()
            return got

        res = run_spmd(m, program)
        assert res.results[0] == b"hello"

    def test_sync_flushes(self):
        m = make_machine(1)

        def program(comm):
            fh = File.open(comm, "f", "w", hints=Hints(wb_buffer_size=1 << 20))
            fh.write_at(0, b"data")
            fh.sync()
            visible = comm.machine.fs.store.open("f").size
            fh.close()
            return visible

        assert run_spmd(m, program).results[0] == 4

    def test_write_behind_reduces_time_on_seeky_disk(self):
        def run(wb):
            m = make_machine(1, fs=seeky_fs())

            def program(comm):
                fh = File.open(comm, "f", "w",
                               hints=Hints(wb_buffer_size=wb))
                t0 = comm.clock
                for i in range(64):
                    fh.write(b"p" * 512)
                fh.close()
                return comm.clock - t0

            return run_spmd(m, program).results[0]

        buffered = run(1 << 20)
        unbuffered = run(0)
        assert buffered < unbuffered / 2

    def test_checkpoint_with_write_behind_round_trips(self):
        from repro.amr import make_initial_conditions
        from repro.enzo import (
            MPIIOStrategy,
            RankState,
            hierarchies_equivalent,
        )

        h = make_initial_conditions((8, 8, 8), seed=1, pre_refine=1)
        m = make_machine(2)
        hints = Hints(wb_buffer_size=1 << 20)

        def wp(comm):
            st = RankState.from_hierarchy(h, comm.rank, comm.size)
            MPIIOStrategy(hints=hints).write_checkpoint(comm, st, "ckpt")

        run_spmd(m, wp)

        def rp(comm):
            state, _ = MPIIOStrategy().read_checkpoint(comm, "ckpt")
            return state

        res = run_spmd(make_machine(2, fs=m.fs), rp)
        assert hierarchies_equivalent(RankState.collect(res.results), h)


class TestHdf5Alignment:
    def test_alignment_rounds_data_offsets(self):
        def program(comm):
            f = H5File.create(comm, "f", driver="sec2",
                              costs=H5Costs(alignment=4096))
            offsets = []
            for name in ("a", "b", "c"):
                d = f.create_dataset(name, (100,), np.float64)
                offsets.append(d.header.data_offset)
                d.write(np.zeros(100), collective=False)
                d.close()
            f.close()
            return offsets

        res = run_spmd(make_machine(1), program)
        assert all(off % 4096 == 0 for off in res.results[0])

    def test_aligned_file_round_trips(self):
        def program(comm):
            costs = H5Costs(alignment=4096)
            f = H5File.create(comm, "f", driver="sec2", costs=costs)
            d = f.create_dataset("x", (50,), np.float64)
            d.write(np.arange(50.0), collective=False)
            d.close()
            f.close()
            f = H5File.open(comm, "f", driver="sec2")
            got = f.open_dataset("x").read(collective=False)
            f.close()
            np.testing.assert_array_equal(got, np.arange(50.0))
            return True

        assert run_spmd(make_machine(1), program).results[0]

    def test_alignment_reduces_stripe_crossings(self):
        """Aligned data regions touch fewer stripes on a striped volume."""

        def servers_touched(alignment):
            fs = StripedServerFS(
                "s", nservers=8, stripe_size=4096, disk_bandwidth=1e9,
                seek_time=0.0,
            )
            m = make_machine(1, fs=fs)

            def program(comm):
                f = H5File.create(comm, "f", driver="sec2",
                                  costs=H5Costs(alignment=alignment))
                out = []
                for name in ("a", "b"):
                    d = f.create_dataset(name, (512,), np.float64)  # 4096 B
                    out.append(
                        len(fs.layout.servers_touched(
                            d.header.data_offset, 4096
                        ))
                    )
                    d.write(np.zeros(512), collective=False)
                    d.close()
                f.close()
                return out

            return run_spmd(m, program).results[0]

        assert all(n == 1 for n in servers_touched(4096))
        assert any(n == 2 for n in servers_touched(0))
