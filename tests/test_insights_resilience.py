"""Resilience detector rules: retry-storm and degraded-collective."""

import pytest

from repro.core import IOTrace
from repro.insights import Severity, diagnose
from repro.insights.rules import Thresholds


def make_trace(*, writes=0, retries=0, recovered=0, giveups=0, degraded=0):
    """A synthetic trace with the given event mix."""
    trace = IOTrace()
    for i in range(writes):
        trace.record(op="write", path="ckpt", offset=i * 1024, nbytes=1024,
                     start=float(i), end=float(i) + 0.5, node=i % 4)
    kinds = (
        [("retry", i + 1) for i in range(retries)]
        + [("recovered", 1)] * recovered
        + [("giveup", 0)] * giveups
        + [("degraded", 0)] * degraded
    )
    for i, (kind, attempt) in enumerate(kinds):
        trace.record(op="recovery", path="ckpt", offset=0, nbytes=2048,
                     start=float(i), end=float(i), node=0, kind=kind,
                     attempt=attempt)
    return trace


def findings(diagnosis, rule):
    return [i for i in diagnosis.insights if i.rule == rule]


class TestRetryStorm:
    def test_silent_without_recovery_events(self):
        d = diagnose(make_trace(writes=20))
        assert findings(d, "retry-storm") == []
        assert findings(d, "degraded-collective") == []

    def test_few_retries_are_info(self):
        d = diagnose(make_trace(writes=100, retries=2, recovered=2))
        (i,) = findings(d, "retry-storm")
        assert i.severity == Severity.INFO
        assert "recovered" in i.title
        assert i.evidence["retries"] == 2
        assert i.evidence["max_attempt"] == 2

    def test_sustained_retries_warn(self):
        d = diagnose(make_trace(writes=100, retries=10, recovered=10))
        (i,) = findings(d, "retry-storm")
        assert i.severity == Severity.WARN
        assert "retry storm" in i.title
        assert i.recommendations

    def test_heavy_retries_are_high(self):
        d = diagnose(make_trace(writes=100, retries=30, recovered=30))
        (i,) = findings(d, "retry-storm")
        assert i.severity == Severity.HIGH

    def test_any_giveup_is_high(self):
        d = diagnose(make_trace(writes=100, retries=1, giveups=1))
        (i,) = findings(d, "retry-storm")
        assert i.severity == Severity.HIGH
        assert "gave up" in i.title
        assert i.evidence["giveups"] == 1

    def test_thresholds_are_tunable(self):
        th = Thresholds(retry_ratio_warn=0.5)
        d = diagnose(make_trace(writes=100, retries=10, recovered=10),
                     thresholds=th)
        (i,) = findings(d, "retry-storm")
        assert i.severity == Severity.INFO


class TestDegradedCollective:
    def test_degradations_warn(self):
        d = diagnose(make_trace(writes=50, degraded=1))
        (i,) = findings(d, "degraded-collective")
        assert i.severity == Severity.WARN
        assert i.evidence["degraded"] == 1
        assert i.evidence["degraded_bytes"] == 2048

    def test_many_degradations_are_high(self):
        d = diagnose(make_trace(writes=50, degraded=4))
        (i,) = findings(d, "degraded-collective")
        assert i.severity == Severity.HIGH

    def test_recoveries_without_degradations_read_ok(self):
        d = diagnose(make_trace(writes=50, retries=1, recovered=1))
        (i,) = findings(d, "degraded-collective")
        assert i.severity == Severity.OK


class TestEndToEnd:
    @pytest.fixture()
    def faulted_trace(self):
        from repro.bench import build_workload
        from repro.core import trace_filesystem
        from repro.enzo import MPIIOStrategy, RankState
        from repro.mpi import run_spmd
        from repro.resilience import RetryPolicy

        from .conftest import make_machine

        h = build_workload("AMR16")
        m = make_machine(4)
        trace = trace_filesystem(m.fs)
        m.fs.inject_fault("write", "ckpt", after=3)
        strategy = MPIIOStrategy(retry=RetryPolicy(max_retries=2))

        def program(comm):
            state = RankState.from_hierarchy(h, comm.rank, comm.size)
            strategy.write_checkpoint(comm, state, "ckpt")

        run_spmd(m, program)
        trace.detach()
        return trace

    def test_real_recovered_dump_is_diagnosed(self, faulted_trace):
        d = diagnose(faulted_trace, nprocs=4, strategy="mpi-io")
        (i,) = findings(d, "retry-storm")
        assert i.severity in (Severity.INFO, Severity.WARN)
        assert i.evidence["retries"] >= 1
        assert i.evidence["giveups"] == 0

    def test_round_trips_through_json(self, faulted_trace, tmp_path):
        path = tmp_path / "trace.json"
        faulted_trace.save(path)
        back = IOTrace.load(path)
        assert back.recovery_summary() == faulted_trace.recovery_summary()
        d = diagnose(back)
        assert findings(d, "retry-storm")
