"""Tests for the scenario ingestion layer (repro.scenarios).

Covers the two parameter-file dialects (parsing quirks, normalization
rules, malformed-input rejection), the hypothesis round-trip property
(emit -> parse -> normalize is a fixed point on normalized scenarios),
the registry, the workload builders' defensive-copy contract, the CLI
error paths, and partition invariance of the gated scenarios.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench import build_initial_workload, build_workload
from repro.core import trace_filesystem
from repro.enzo import MPIIOStrategy, RankState, hierarchies_equivalent
from repro.mpi import run_spmd
from repro.scenarios import (
    Scenario,
    ScenarioError,
    build_hierarchy,
    emit_enzo,
    emit_nyx,
    load_param_file,
    normalize_enzo,
    normalize_nyx,
    parse_enzo,
    parse_nyx,
    sniff_dialect,
)
from repro.scenarios import registry as scenario_registry

from .conftest import make_machine

FOGGIE_EXAMPLE = "examples/scenarios/foggie_25Mpc_DM_256-L2.enzo"
NYX_EXAMPLE = "examples/scenarios/nyx_lya_low_mem_long_time.inputs"


class TestEnzoParser:
    def test_comments_tabs_and_trailing_slashes(self):
        raw = parse_enzo(
            "# full-line comment\n"
            "ProblemType = 30 // trailing comment\n"
            "dtDataDump \t = 10\n"
            "StopCycle=100000\n"
        )
        assert raw["ProblemType"] == "30"
        assert raw["dtDataDump"] == "10"
        assert raw["StopCycle"] == "100000"

    def test_later_assignment_wins(self):
        raw = parse_enzo("StopCycle = 1\nStopCycle = 7\n")
        assert raw["StopCycle"] == "7"

    def test_indexed_keys(self):
        raw = parse_enzo("CosmologyOutputRedshift[0] = 99.0\n")
        assert raw["CosmologyOutputRedshift[0]"] == "99.0"

    def test_bare_token_is_empty_value(self):
        assert parse_enzo("NumberOfOutputsBeforeExit\n") == {
            "NumberOfOutputsBeforeExit": ""
        }

    def test_multi_token_without_equals_rejected(self):
        with pytest.raises(ScenarioError, match="no '='"):
            parse_enzo("this is not an assignment\n")

    def test_bad_key_rejected(self):
        with pytest.raises(ScenarioError, match="bad parameter key"):
            parse_enzo("3bad = 1\n")


class TestNyxParser:
    def test_dotted_keys_and_quoted_values(self):
        raw = parse_nyx(
            'amr.probin_file = ""\n'
            "amr.plot_file = 1/plt\n"
            "geometry.is_periodic = 1 1 1\n"
        )
        assert raw["amr.probin_file"] == '""'
        assert raw["amr.plot_file"] == "1/plt"

    def test_truncated_final_bare_key(self):
        raw = parse_nyx("nyx.h_species = .76\nnyx.he_species\n")
        assert raw["nyx.he_species"] == ""

    def test_multi_token_without_equals_rejected(self):
        with pytest.raises(ScenarioError, match="no '='"):
            parse_nyx("stray tokens here\n")


class TestNormalization:
    def test_foggie_example_file(self):
        s = load_param_file(FOGGIE_EXAMPLE)
        assert s.source_dialect == "enzo"
        assert s.root_dims == (256, 256, 256)
        # The example's nested-grid quadruples are commented out.
        assert s.nested_grids == ()
        assert len(s.must_refine) == 1
        assert s.must_refine[0].level == 2
        assert s.checkpoint_every == 1  # dtDataDump = 10
        assert s.ncycles == 4  # StopCycle = 100000, clamped
        assert s.output_redshifts == (99.0,)
        assert s.initial_redshift == 99.0 and s.final_redshift == 0.0

    def test_nyx_example_file(self):
        s = load_param_file(NYX_EXAMPLE)
        assert s.source_dialect == "nyx"
        assert s.root_dims == (256, 256, 256)
        assert s.max_level == 0
        assert s.max_grid_size == 128
        assert s.ncycles == 4  # max_step = 600, clamped
        # checkpoint_files_output = 0: the checkpoint stream is off.
        assert s.checkpoint_every == 0
        assert s.plot_every == 1
        assert s.plot_fields == ("density",)
        # analysis_z_values filtered to [final_z, initial_z], descending.
        assert s.output_redshifts == (7.0, 6.0, 5.0, 4.0, 3.0, 2.0)

    def test_nyx_cadence_ratio_preserved(self):
        s = normalize_nyx(
            parse_nyx("amr.n_cell = 16 16 16\n"
                      "amr.plot_int = 10\namr.check_int = 100\n"),
            name="t",
        )
        assert s.plot_every == 1
        assert s.checkpoint_every == 10

    def test_sniff_dialect(self):
        assert sniff_dialect("amr.n_cell = 8 8 8\n") == "nyx"
        assert sniff_dialect("TopGridDimensions = 8 8 8\n") == "enzo"

    def test_downscaled_keeps_geometry(self):
        s = load_param_file(FOGGIE_EXAMPLE).downscaled(8)
        assert s.root_dims == (32, 32, 32)
        assert s.name.endswith("/8")
        assert s.must_refine == load_param_file(FOGGIE_EXAMPLE).must_refine


class TestMalformedInputs:
    def test_missing_root_dims(self):
        with pytest.raises(ScenarioError, match="TopGridDimensions"):
            normalize_enzo({}, name="t")
        with pytest.raises(ScenarioError, match="amr.n_cell"):
            normalize_nyx({}, name="t")

    def test_non_numeric_dims(self):
        with pytest.raises(ScenarioError, match="expected integers"):
            normalize_enzo(
                parse_enzo("TopGridDimensions = a b c\n"), name="t"
            )
        with pytest.raises(ScenarioError, match="expected integers"):
            normalize_nyx(parse_nyx("amr.n_cell = 16 sixteen 16\n"), name="t")

    def test_wrong_rank_rejected(self):
        with pytest.raises(ScenarioError, match="TopGridRank"):
            normalize_enzo(
                parse_enzo("TopGridRank = 2\nTopGridDimensions = 8 8\n"),
                name="t",
            )

    def test_tiny_max_grid_size_rejected(self):
        with pytest.raises(ScenarioError, match="max_grid_size"):
            normalize_nyx(
                parse_nyx("amr.n_cell = 16 16 16\namr.max_grid_size = 4\n"),
                name="t",
            )

    def test_tiny_root_dims_rejected(self):
        with pytest.raises(ScenarioError):
            normalize_enzo(
                parse_enzo("TopGridDimensions = 4 4 4\n"), name="t"
            )

    def test_incomplete_nested_grid_rejected(self):
        text = (
            "TopGridDimensions = 16 16 16\n"
            "CosmologySimulationGridDimension[1] = 8 8 8\n"
            "CosmologySimulationGridLevel[1] = 1\n"
        )
        with pytest.raises(ScenarioError, match="nested grid 1"):
            normalize_enzo(parse_enzo(text), name="t")

    def test_param_file_not_found_and_directory(self, tmp_path):
        with pytest.raises(ScenarioError, match="not found"):
            load_param_file(str(tmp_path / "nope.enzo"))
        with pytest.raises(ScenarioError, match="directory"):
            load_param_file(str(tmp_path))


@st.composite
def enzo_texts(draw):
    """Random Enzo-dialect files whose normalization is well-defined."""
    dim = draw(st.sampled_from([8, 16, 32]))
    lines = [
        "TopGridRank                = 3",
        f"TopGridDimensions          = {dim} {dim} {dim}",
        f"MaximumRefinementLevel     = {draw(st.integers(0, 6))}",
    ]
    for i in range(1, draw(st.integers(0, 2)) + 1):
        # Cell-aligned level-1 boxes on a power-of-two root: the edge
        # fractions are binary-exact, so emit/parse cannot drift.
        a = draw(st.integers(0, dim - 4))
        w = draw(st.integers(2, dim - a))
        lines += [
            f"CosmologySimulationGridDimension[{i}] = {2*w} {2*w} {2*w}",
            f"CosmologySimulationGridLeftEdge[{i}] = "
            f"{a/dim} {a/dim} {a/dim}",
            f"CosmologySimulationGridRightEdge[{i}] = "
            f"{(a+w)/dim} {(a+w)/dim} {(a+w)/dim}",
            f"CosmologySimulationGridLevel[{i}] = 1",
        ]
    if draw(st.booleans()):
        lines += [
            "MustRefineParticlesCreateParticles = 3",
            f"MustRefineParticlesRefineToLevel = {draw(st.integers(1, 3))}",
        ]
    lines.append(f"dtDataDump = {draw(st.sampled_from([0, 10]))}")
    lines.append(f"StopCycle = {draw(st.integers(1, 9))}")
    if draw(st.booleans()):
        lines += [
            "CosmologyInitialRedshift = 99",
            "CosmologyFinalRedshift = 0",
        ]
        zs = draw(st.lists(st.integers(1, 98), max_size=3, unique=True))
        for j, z in enumerate(sorted(zs, reverse=True)):
            lines.append(f"CosmologyOutputRedshift[{j}] = {z}.0")
    return "\n".join(lines) + "\n"


@st.composite
def nyx_texts(draw):
    """Random Nyx-dialect files whose normalization is well-defined."""
    dim = draw(st.sampled_from([8, 16, 32]))
    lines = [
        f"amr.n_cell = {dim} {dim} {dim}",
        f"amr.max_level = {draw(st.integers(0, 4))}",
        f"max_step = {draw(st.integers(1, 9))}",
    ]
    mgs = draw(st.sampled_from([0, 8, 16, 64]))
    if mgs:
        lines.append(f"amr.max_grid_size = {mgs}")
    lines += [
        f"amr.plot_files_output = {int(draw(st.booleans()))}",
        f"amr.plot_int = {draw(st.integers(1, 5))}",
        f"amr.checkpoint_files_output = {int(draw(st.booleans()))}",
        f"amr.check_int = {draw(st.integers(1, 5))}",
    ]
    vars_spec = draw(st.sampled_from(
        ["", "density", "density temperature", "ALL", "NONE"]
    ))
    if vars_spec:
        lines.append(f"amr.plot_vars = {vars_spec}")
    if draw(st.booleans()):
        lines += [
            "nyx.initial_z = 200.0",
            "nyx.final_z = 1.0",
            "nyx.analysis_z_values = 7.0 5.0 2.0",
        ]
    return "\n".join(lines) + "\n"


class TestRoundTrip:
    """emit -> parse -> normalize is a fixed point on normalized scenarios."""

    @settings(max_examples=50, deadline=None)
    @given(text=enzo_texts())
    def test_enzo_round_trip(self, text):
        s0 = normalize_enzo(parse_enzo(text), name="rt")
        s1 = normalize_enzo(parse_enzo(emit_enzo(s0)), name="rt")
        assert s1 == s0

    @settings(max_examples=50, deadline=None)
    @given(text=nyx_texts())
    def test_nyx_round_trip(self, text):
        s0 = normalize_nyx(parse_nyx(text), name="rt")
        s1 = normalize_nyx(parse_nyx(emit_nyx(s0)), name="rt")
        assert s1 == s0

    def test_builtin_gated_scenarios_round_trip(self):
        foggie = scenario_registry.get("foggie-nested")
        rt = normalize_enzo(
            parse_enzo(emit_enzo(foggie)), name=foggie.name
        )
        # deep_levels/description are registry annotations, not part of
        # the dialect; everything the dialect expresses must survive.
        assert rt.root_dims == foggie.root_dims
        assert rt.nested_grids == foggie.nested_grids
        assert rt.must_refine == foggie.must_refine
        assert rt.max_level == foggie.max_level
        nyx = scenario_registry.get("nyx-plotfile")
        rt = normalize_nyx(parse_nyx(emit_nyx(nyx)), name=nyx.name)
        assert rt.root_dims == nyx.root_dims
        assert rt.plot_every == nyx.plot_every
        assert rt.checkpoint_every == nyx.checkpoint_every
        assert rt.output_redshifts == nyx.output_redshifts


class TestRegistry:
    def test_names_and_get(self):
        names = scenario_registry.names()
        for expected in ("AMR64", "foggie-nested", "nyx-plotfile",
                         "flashx-particles"):
            assert expected in names

    def test_unknown_name_message_shape(self):
        with pytest.raises(ScenarioError, match="choose from"):
            scenario_registry.get("AMR1024")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            scenario_registry.register(scenario_registry.get("AMR16"))

    def test_gated_scenarios_build(self):
        foggie = build_workload("foggie-nested")
        assert foggie.max_level == 5  # deep zoom reaches the cap
        nyx = build_workload("nyx-plotfile")
        assert nyx.max_level == 1  # amr.max_level = 1
        flash = build_workload("flashx-particles")
        amr32 = build_workload("AMR32")
        assert flash.total_particles() > 4 * amr32.total_particles()


class TestDefensiveCopies:
    def test_mutating_a_workload_cannot_poison_the_cache(self):
        pristine = build_workload("AMR16")
        victim = build_workload("AMR16")
        victim.root.fields["density"][:] = -1.0
        again = build_workload("AMR16")
        assert again.equal(pristine)
        assert not again.equal(victim)

    def test_initial_workload_also_copies(self):
        a = build_initial_workload("AMR16")
        b = build_initial_workload("AMR16")
        assert a is not b and a.equal(b)

    def test_two_cached_runs_produce_identical_digests(self):
        """Two consecutive runs of the same cached workload are bit-equal
        even when the first run's caller mutates its hierarchy."""
        digests = []
        for _ in range(2):
            machine = make_machine(2)
            hierarchy = build_workload("AMR16")
            trace = trace_filesystem(machine.fs, include_meta=True)

            def program(comm, h=hierarchy):
                state = RankState.from_hierarchy(h, comm.rank, comm.size)
                MPIIOStrategy().write_checkpoint(comm, state, "ckpt")

            run_spmd(machine, program)
            trace.detach()
            digests.append(trace.digest())
            # Poison this run's copy; an aliased cache would leak it into
            # the next build_workload call.
            hierarchy.root.fields["density"][:] = 1e9
        assert digests[0] == digests[1]


class TestCLIErrors:
    def test_unknown_scenario_exits_2(self, capsys):
        from repro.cli import main

        rc = main(["simulate", "--scenario", "no-such-scenario"])
        assert rc == 2
        err = capsys.readouterr().err
        assert "unknown scenario" in err and "choose from" in err

    def test_unknown_problem_exits_2_same_shape(self, capsys):
        from repro.cli import main

        rc = main(["analyze", "--problem", "AMRBOGUS"])
        assert rc == 2
        err = capsys.readouterr().err
        assert "unknown scenario" in err and "choose from" in err

    def test_config_root_dims_raises_choose_from(self):
        from repro.enzo import EnzoConfig

        with pytest.raises(ValueError, match="choose from"):
            EnzoConfig(problem="AMRBOGUS").root_dims

    def test_missing_param_file_exits_2(self, tmp_path, capsys):
        from repro.cli import main

        rc = main(["analyze", "--param-file", str(tmp_path / "nope.enzo")])
        assert rc == 2
        assert "not found" in capsys.readouterr().err

    def test_scenarios_listing(self, capsys):
        from repro.cli import main

        assert main(["scenarios"]) == 0
        out = capsys.readouterr().out
        for name in ("AMR64", "foggie-nested", "nyx-plotfile",
                     "flashx-particles"):
            assert name in out


@pytest.mark.parametrize(
    "name", ["foggie-nested", "nyx-plotfile", "flashx-particles"]
)
def test_partition_invariant_restart(name):
    """Each gated scenario's checkpoint restarts bit-identically at P and
    2P (the restart read redistributes whole subgrids, so the rebuilt
    hierarchy must not depend on the reader's processor count)."""
    hierarchy = build_workload(name)
    machine = make_machine(2)

    def write_program(comm):
        state = RankState.from_hierarchy(hierarchy, comm.rank, comm.size)
        MPIIOStrategy().write_checkpoint(comm, state, "ckpt")

    run_spmd(machine, write_program)
    for nprocs in (2, 4):
        reader = make_machine(nprocs, fs=machine.fs)

        def read_program(comm):
            state, _stats = MPIIOStrategy().read_checkpoint(comm, "ckpt")
            return state

        res = run_spmd(reader, read_program)
        rebuilt = RankState.collect(res.results)
        assert hierarchies_equivalent(rebuilt, hierarchy), f"P={nprocs}"
