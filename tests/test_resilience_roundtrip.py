"""Differential round-trip harness: faulted-but-retried dumps must be
bit-identical to fault-free dumps, across strategies, restart widths and
machine presets.

The harness always compares two complete runs (a differential test, not a
self-check): the same seeded hierarchy dumped fault-free on one file system
and dumped under injected faults + RetryPolicy on another.  Any divergence
-- a torn prefix the retry failed to overwrite, a manifest recording the
wrong checksum, a degraded collective landing bytes at the wrong offset --
shows up as an array mismatch or a corrupt report.
"""

import pytest

from repro.amr import make_initial_conditions
from repro.enzo import (
    HDF4Strategy,
    HDF5Strategy,
    MPIIOStrategy,
    RankState,
    compare_checkpoints,
    hierarchies_equivalent,
)
from repro.mpi import run_spmd
from repro.resilience import RetryPolicy
from repro.topology import chiba_city_local, origin2000

from .conftest import make_machine

STRATEGIES = {
    "hdf4": HDF4Strategy,
    "mpi-io": MPIIOStrategy,
    "hdf5": HDF5Strategy,
}


@pytest.fixture(scope="module")
def hierarchy():
    return make_initial_conditions(
        (16, 16, 16), seed=11, pre_refine=1, particles_per_cell=0.5
    )


def dump(machine, hierarchy, strategy, base="ckpt", nprocs=None):
    def program(comm):
        state = RankState.from_hierarchy(hierarchy, comm.rank, comm.size)
        return strategy.write_checkpoint(comm, state, base)

    return run_spmd(machine, program, nprocs=nprocs or machine.nprocs)


def restart(machine, strategy, base="ckpt", nprocs=None):
    def program(comm):
        state, _stats = strategy.read_checkpoint(comm, base)
        return state

    res = run_spmd(machine, program, nprocs=nprocs or machine.nprocs)
    return RankState.collect(res.results)


@pytest.mark.parametrize("name", list(STRATEGIES))
def test_faulted_dump_differentially_equal_to_clean_dump(hierarchy, name):
    """One injected write fault + retry: byte-for-byte the same checkpoint."""
    cls = STRATEGIES[name]
    clean = make_machine(4)
    dump(clean, hierarchy, cls(), base="clean")

    faulted = make_machine(4)
    faulted.fs.inject_fault("write", "ckpt", after=3)
    dump(faulted, hierarchy, cls(retry=RetryPolicy(max_retries=2)),
         base="ckpt")
    assert faulted.fs.counters.recoveries > 0  # the fault really fired

    report = compare_checkpoints(
        clean.fs, cls(), "clean", faulted.fs, cls(), "ckpt"
    )
    assert report.ok, report.summary()
    assert report.compared > 0


@pytest.mark.parametrize("name", list(STRATEGIES))
@pytest.mark.parametrize("restart_procs", [2, 6])
def test_faulted_dump_restarts_at_any_width(hierarchy, name, restart_procs):
    """P=4 dump under a torn-write fault, restart at P'=2 and P'=6."""
    cls = STRATEGIES[name]
    m = make_machine(4)
    m.fs.inject_fault("write", "ckpt", mode="torn", after=2,
                      torn_fraction=0.5)
    dump(m, hierarchy, cls(retry=RetryPolicy(max_retries=2)))
    rm = make_machine(restart_procs, fs=m.fs)
    rebuilt = restart(rm, cls())
    assert hierarchies_equivalent(rebuilt, hierarchy)


def test_cross_strategy_checkpoints_stay_identical_under_faults(hierarchy):
    """mpi-io written with retries vs hdf5 written clean: same arrays."""
    a = make_machine(4)
    a.fs.inject_fault("write", "ckpt", after=5)
    dump(a, hierarchy, MPIIOStrategy(retry=RetryPolicy(max_retries=2)))
    b = make_machine(3)
    dump(b, hierarchy, HDF5Strategy())
    report = compare_checkpoints(
        a.fs, MPIIOStrategy(), "ckpt", b.fs, HDF5Strategy(), "ckpt"
    )
    assert report.ok, report.summary()


def test_different_seeds_are_distinguishable():
    """The differential harness has teeth: different data does mismatch."""
    h1 = make_initial_conditions((16, 16, 16), seed=1, pre_refine=0,
                                 particles_per_cell=0.25)
    h2 = make_initial_conditions((16, 16, 16), seed=2, pre_refine=0,
                                 particles_per_cell=0.25)
    a, b = make_machine(2), make_machine(2)
    dump(a, h1, MPIIOStrategy())
    dump(b, h2, MPIIOStrategy())
    report = compare_checkpoints(
        a.fs, MPIIOStrategy(), "ckpt", b.fs, MPIIOStrategy(), "ckpt"
    )
    assert not report.ok
    assert report.mismatched


@pytest.mark.parametrize("preset", [origin2000, chiba_city_local],
                         ids=["origin2000", "chiba-local"])
def test_roundtrip_with_retries_on_machine_presets(hierarchy, preset):
    """The resilience layer composes with the timed platform models."""
    m = preset(4)
    m.fs.inject_fault("write", "ckpt", after=4)
    strategy = MPIIOStrategy(retry=RetryPolicy(max_retries=3))
    dump(m, hierarchy, strategy)
    rebuilt = restart(m, strategy)
    assert hierarchies_equivalent(rebuilt, hierarchy)


def test_retry_backoff_costs_simulated_time(hierarchy):
    """A retried dump finishes later than a clean one (backoff is charged)."""
    def timed_dump(arm_fault):
        m = make_machine(2)
        if arm_fault:
            m.fs.inject_fault("write", "ckpt", after=2)
        res = dump(m, hierarchy,
                   MPIIOStrategy(retry=RetryPolicy(max_retries=2,
                                                   backoff_base=0.5)))
        return max(s.elapsed for s in res.results)

    assert timed_dump(True) >= timed_dump(False) + 0.49
