"""Two-phase collective I/O tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mpi import run_spmd
from repro.mpi.datatypes import FLOAT64, Subarray
from repro.mpiio import File, Hints
from repro.mpiio.two_phase import file_domains
from repro.pfs import FileSystem

from .conftest import make_machine


class TestFileDomains:
    def test_even_partition(self):
        d = file_domains(0, 100, [0, 1, 2, 3], align=0)
        assert d == {0: (0, 25), 1: (25, 50), 2: (50, 75), 3: (75, 100)}

    def test_alignment_rounds_up(self):
        d = file_domains(0, 100, [0, 1], align=64)
        assert d == {0: (0, 64), 1: (64, 100)}

    def test_small_range_leaves_trailing_empty(self):
        d = file_domains(0, 10, [0, 1, 2, 3], align=0)
        assert d[0] == (0, 3)
        assert d[3][0] == d[3][1] or d[3][1] <= 10

    def test_empty_range(self):
        d = file_domains(5, 5, [0, 1], align=0)
        assert all(s == e for s, e in d.values())


def block_partition_1d(total, size, rank):
    """Contiguous 1-D block decomposition."""
    base, rem = divmod(total, size)
    lo = rank * base + min(rank, rem)
    n = base + (1 if rank < rem else 0)
    return lo, n


@pytest.mark.parametrize("nprocs", [1, 2, 4, 5])
def test_collective_write_then_independent_read(nprocs):
    total = 1000

    def program(comm):
        fh = File.open(comm, "data", "w")
        lo, n = block_partition_1d(total, comm.size, comm.rank)
        part = np.arange(lo, lo + n, dtype=np.float64)
        fh.write_at_all(lo * 8, part)
        fh.close()
        if comm.rank == 0:
            fh = File.open(comm.split(0 if comm.rank == 0 else None), "data", "r")
            out = fh.read_at(0, np.empty(total, dtype=np.float64))
            return out
        else:
            comm.split(None)
        return None

    res = run_spmd(make_machine(nprocs), program)
    np.testing.assert_array_equal(res.results[0], np.arange(total, dtype=np.float64))


@pytest.mark.parametrize("nprocs", [2, 4])
def test_collective_read_matches_written_data(nprocs):
    total = 64 * 9

    def program(comm):
        fs = comm.machine.fs
        if comm.rank == 0:
            fs.create("data")
            fs.write("data", 0, np.arange(total, dtype=np.float64).tobytes())
        fh = File.open(comm, "data", "r")
        lo, n = block_partition_1d(total, comm.size, comm.rank)
        out = fh.read_at_all(lo * 8, np.empty(n, dtype=np.float64))
        fh.close()
        return out

    res = run_spmd(make_machine(nprocs), program)
    got = np.concatenate(res.results)
    np.testing.assert_array_equal(got, np.arange(total, dtype=np.float64))


@pytest.mark.parametrize("nprocs", [1, 2, 4])
def test_subarray_collective_write_3d(nprocs):
    """(Block, 1, 1) decomposition of a 3-D array through subarray views."""
    shape = (8, 6, 5)

    def program(comm):
        full = np.arange(np.prod(shape), dtype=np.float64).reshape(shape)
        lo, n = block_partition_1d(shape[0], comm.size, comm.rank)
        ftype = Subarray(shape, (n,) + shape[1:], (lo, 0, 0), FLOAT64)
        fh = File.open(comm, "grid", "w")
        fh.set_view(0, FLOAT64, ftype)
        fh.write_all(np.ascontiguousarray(full[lo : lo + n]))
        fh.close()
        return None

    m = make_machine(nprocs)
    run_spmd(m, program)
    raw = m.fs.store.open("grid").read(0, int(np.prod(shape)) * 8)
    got = np.frombuffer(raw, dtype=np.float64).reshape(shape)
    np.testing.assert_array_equal(
        got, np.arange(np.prod(shape), dtype=np.float64).reshape(shape)
    )


@pytest.mark.parametrize("nprocs", [2, 4, 8])
def test_block_block_block_roundtrip(nprocs):
    """The paper's (Block, Block, Block) baryon-field pattern, write + read."""
    shape = (8, 8, 8)
    # Factor nprocs into a 3-D processor grid.
    grids = {1: (1, 1, 1), 2: (2, 1, 1), 4: (2, 2, 1), 8: (2, 2, 2)}
    pgrid = grids[nprocs]

    def my_block(rank):
        coords = np.unravel_index(rank, pgrid)
        starts, sizes = [], []
        for d in range(3):
            lo, n = block_partition_1d(shape[d], pgrid[d], coords[d])
            starts.append(lo)
            sizes.append(n)
        return tuple(starts), tuple(sizes)

    def program(comm):
        full = np.arange(np.prod(shape), dtype=np.float64).reshape(shape)
        starts, sizes = my_block(comm.rank)
        sel = tuple(slice(s, s + n) for s, n in zip(starts, sizes))
        ftype = Subarray(shape, sizes, starts, FLOAT64)
        fh = File.open(comm, "bbb", "w")
        fh.set_view(0, FLOAT64, ftype)
        fh.write_all(np.ascontiguousarray(full[sel]))
        fh.close()
        # Read it back collectively through the same views.
        fh = File.open(comm, "bbb", "r")
        fh.set_view(0, FLOAT64, ftype)
        got = fh.read_all(np.empty(sizes, dtype=np.float64))
        fh.close()
        np.testing.assert_array_equal(got, full[sel])
        return True

    assert all(run_spmd(make_machine(nprocs), program).results)


def test_collective_write_fewer_fs_requests_than_independent():
    """Two-phase turns strided per-rank access into few large requests."""
    nprocs = 4
    shape = (8, 8, 8)

    def program(comm, collective):
        full = np.arange(np.prod(shape), dtype=np.float64).reshape(shape)
        # (1, Block, 1): each rank owns a y-slab -> highly strided in file.
        lo, n = block_partition_1d(shape[1], comm.size, comm.rank)
        ftype = Subarray(shape, (shape[0], n, shape[2]), (0, lo, 0), FLOAT64)
        fh = File.open(comm, "f", "w", hints=Hints(ds_write=False))
        fh.set_view(0, FLOAT64, ftype)
        data = np.ascontiguousarray(full[:, lo : lo + n, :])
        if collective:
            fh.write_all(data)
        else:
            fh.write(data)
        fh.close()
        return None

    m1 = make_machine(nprocs)
    run_spmd(m1, program, args=(True,))
    collective_writes = m1.fs.counters.writes
    m2 = make_machine(nprocs)
    run_spmd(m2, program, args=(False,))
    independent_writes = m2.fs.counters.writes
    assert collective_writes < independent_writes / 4
    # Both produced identical files.
    total = int(np.prod(shape)) * 8
    assert m1.fs.store.open("f").read(0, total) == m2.fs.store.open("f").read(0, total)


def test_multiple_rounds_small_cb_buffer():
    nprocs = 3
    total = 4096

    def program(comm):
        hints = Hints(cb_buffer_size=256)  # force many rounds
        fh = File.open(comm, "f", "w", hints=hints)
        lo, n = block_partition_1d(total, comm.size, comm.rank)
        fh.write_at_all(lo, np.full(n, comm.rank + 1, dtype=np.uint8))
        fh.close()
        return (lo, n)

    m = make_machine(nprocs)
    res = run_spmd(m, program)
    raw = np.frombuffer(m.fs.store.open("f").read(0, total), dtype=np.uint8)
    for rank, (lo, n) in enumerate(res.results):
        assert (raw[lo : lo + n] == rank + 1).all()


def test_ranks_with_no_data_participate():
    def program(comm):
        fh = File.open(comm, "f", "w")
        if comm.rank == 0:
            fh.write_at_all(0, np.arange(10, dtype=np.float64))
        else:
            fh.write_at_all(0, np.empty(0, dtype=np.float64))
        out = fh.read_at_all(0, 80 if comm.rank == 0 else 0)
        fh.close()
        return out

    res = run_spmd(make_machine(4), program)
    np.testing.assert_array_equal(
        np.frombuffer(res.results[0], dtype=np.float64), np.arange(10)
    )


def test_all_ranks_empty_write_is_noop():
    def program(comm):
        fh = File.open(comm, "f", "w")
        fh.write_at_all(0, b"")
        out = fh.read_at_all(0, 0)
        fh.close()
        return out

    res = run_spmd(make_machine(3), program)
    assert res.results == [b""] * 3


def test_cb_nodes_aggregator_selection():
    from repro.mpi.comm import Comm  # noqa: F401 - used implicitly
    from repro.mpiio.two_phase import aggregator_ranks

    m = make_machine(8, ppn=2)

    def program(comm):
        return (
            aggregator_ranks(comm, Hints(cb_nodes=None)),
            aggregator_ranks(comm, Hints(cb_nodes=0)),
            aggregator_ranks(comm, Hints(cb_nodes=2)),
        )

    res = run_spmd(m, program)
    one_per_node, every_rank, two_per_node = res.results[0]
    assert one_per_node == [0, 2, 4, 6]
    assert every_rank == list(range(8))
    assert two_per_node == list(range(8))


@settings(max_examples=25, deadline=None)
@given(
    sizes=st.lists(st.integers(0, 200), min_size=2, max_size=4),
    cb=st.sampled_from([64, 256, 4096]),
)
def test_property_collective_write_equals_concatenation(sizes, cb):
    """Arbitrary per-rank block sizes: file equals concatenated blocks."""
    nprocs = len(sizes)
    offsets = np.concatenate([[0], np.cumsum(sizes)]).astype(int)

    def program(comm):
        rng = np.random.default_rng(comm.rank)
        mine = rng.integers(0, 256, size=sizes[comm.rank], dtype=np.uint8)
        fh = File.open(comm, "f", "w", hints=Hints(cb_buffer_size=cb))
        fh.write_at_all(int(offsets[comm.rank]), mine)
        fh.close()
        return mine

    m = make_machine(nprocs)
    res = run_spmd(m, program)
    expect = np.concatenate([r for r in res.results]) if sum(sizes) else b""
    got = m.fs.store.open("f").read(0, int(offsets[-1]))
    assert got == (expect.tobytes() if sum(sizes) else b"")


@settings(max_examples=150, deadline=None)
@given(
    naggs=st.integers(1, 9),
    cb=st.integers(1, 64),
    align=st.sampled_from([0, 1, 8, 64]),
    glo=st.integers(0, 100),
    gaps=st.lists(
        st.tuples(st.integers(0, 30), st.integers(1, 40)),
        min_size=1,
        max_size=8,
    ),
)
def test_property_piece_plan_matches_window_probing(naggs, cb, align, glo, gaps):
    """The O(segments) piece plan equals probing every (agg, round) window.

    The plan replaced the per-window ``_SegmentIndex.window`` probes on the
    collective read/write hot path; this pins their equivalence over random
    segment lists, domain counts, alignments, and buffer sizes -- including
    a global extent wider than this rank's own segments.
    """
    from repro.mpiio.two_phase import _piece_plan, _SegmentIndex, file_domains

    # Random sorted disjoint segments for "my rank", starting at or after
    # the global lower bound (some other rank may own [glo, first)).
    segments = []
    pos = glo + gaps[0][0]
    for gap, length in gaps:
        pos += gap
        segments.append((pos, length))
        pos += length
    ghi = pos + 17  # another rank extends the global extent past mine
    idx = _SegmentIndex(segments)
    aggs = list(range(naggs))
    domains = file_domains(glo, ghi, aggs, align)
    stride = -(-(ghi - glo) // naggs)
    if align > 1:
        stride = -(-stride // align) * align
    max_domain = max(e - s for s, e in domains.values())
    rounds = max(1, -(-max_domain // cb))
    plan = _piece_plan(idx, glo, stride, aggs, cb)

    reference: dict[int, list[tuple[int, list]]] = {}
    for r in range(rounds):
        for a in aggs:
            dlo, dhi = domains[a]
            wlo, whi = dlo + r * cb, min(dhi, dlo + (r + 1) * cb)
            if wlo >= whi:
                continue
            pieces = idx.window(wlo, whi)
            if pieces:
                reference.setdefault(r, []).append((a, pieces))
    assert plan == reference
    total = sum(
        size for per_round in plan.values()
        for _, pieces in per_round
        for _, size, _ in pieces
    )
    assert total == sum(length for _, length in segments)
