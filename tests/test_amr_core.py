"""Tests for AMR fields, particles, grids and the hierarchy."""

import numpy as np
import pytest

from repro.amr import (
    BARYON_FIELDS,
    FieldSet,
    Grid,
    GridHierarchy,
    ParticleSet,
)


class TestFieldSet:
    def test_canonical_fields_and_order(self):
        fs = FieldSet((4, 4, 4))
        assert tuple(fs) == BARYON_FIELDS
        assert fs["density"].shape == (4, 4, 4)
        assert fs.nbytes == len(BARYON_FIELDS) * 64 * 8

    def test_set_and_get(self):
        fs = FieldSet((2, 2, 2))
        fs["density"] = np.ones((2, 2, 2))
        assert fs["density"].sum() == 8

    def test_shape_and_name_validation(self):
        fs = FieldSet((2, 2, 2))
        with pytest.raises(ValueError):
            fs["density"] = np.ones((3, 3, 3))
        with pytest.raises(KeyError):
            fs["nope"] = np.ones((2, 2, 2))
        with pytest.raises(ValueError):
            FieldSet((0, 2, 2))

    def test_copy_is_deep(self):
        fs = FieldSet((2, 2, 2))
        fs["density"] = np.ones((2, 2, 2))
        cp = fs.copy()
        cp["density"][0, 0, 0] = 99
        assert fs["density"][0, 0, 0] == 1.0

    def test_equal(self):
        a, b = FieldSet((2, 2, 2)), FieldSet((2, 2, 2))
        assert a.equal(b)
        b["density"] = np.ones((2, 2, 2))
        assert not a.equal(b)


class TestParticleSet:
    def make(self, n=10, seed=0):
        rng = np.random.default_rng(seed)
        return ParticleSet(
            ids=np.arange(n),
            positions=rng.random((n, 3)),
            velocities=rng.standard_normal((n, 3)),
            mass=rng.random(n),
            attributes=rng.random((n, 2)),
        )

    def test_empty(self):
        p = ParticleSet()
        assert len(p) == 0
        assert p.nbytes == 0

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            ParticleSet(ids=np.arange(3), positions=np.zeros((2, 3)))

    def test_named_array_access(self):
        p = self.make(5)
        np.testing.assert_array_equal(p.array("particle_id"), p.ids)
        np.testing.assert_array_equal(p.array("position_y"), p.positions[:, 1])
        np.testing.assert_array_equal(p.array("velocity_z"), p.velocities[:, 2])
        np.testing.assert_array_equal(p.array("mass"), p.mass)
        np.testing.assert_array_equal(p.array("attribute_1"), p.attributes[:, 1])
        with pytest.raises(KeyError):
            p.array("nope")

    def test_from_arrays_roundtrip(self):
        from repro.amr import PARTICLE_ARRAYS

        p = self.make(7)
        arrays = {name: p.array(name).copy() for name in PARTICLE_ARRAYS}
        p2 = ParticleSet.from_arrays(arrays)
        assert p.equal(p2)

    def test_from_arrays_empty(self):
        from repro.amr import PARTICLE_ARRAYS

        p = ParticleSet()
        arrays = {name: p.array(name).copy() for name in PARTICLE_ARRAYS}
        assert len(ParticleSet.from_arrays(arrays)) == 0

    def test_select_and_concat(self):
        p = self.make(10)
        a = p.select(p.ids < 5)
        b = p.select(p.ids >= 5)
        merged = ParticleSet.concat([a, b])
        assert merged.equal(p)

    def test_sort_by_id(self):
        p = self.make(10)
        shuffled = p.select(np.random.default_rng(1).permutation(10))
        assert shuffled.sort_by_id().equal(p)
        assert shuffled.equal_as_sets(p)
        assert not shuffled.equal(p) or (shuffled.ids == p.ids).all()

    def test_concat_empty_list(self):
        assert len(ParticleSet.concat([])) == 0
        assert len(ParticleSet.concat([ParticleSet(), ParticleSet()])) == 0


class TestGrid:
    def test_make_root(self):
        g = Grid.make_root((8, 8, 8))
        assert g.level == 0
        assert g.ncells == 512
        np.testing.assert_allclose(g.cell_width, 1 / 8)

    def test_contains_points(self):
        g = Grid(0, 1, (4, 4, 4), np.array([0.25] * 3), np.array([0.5] * 3))
        pts = np.array([[0.3, 0.3, 0.3], [0.6, 0.3, 0.3], [0.25, 0.25, 0.25]])
        np.testing.assert_array_equal(g.contains_points(pts), [True, False, True])

    def test_cell_of_clips(self):
        g = Grid.make_root((4, 4, 4))
        pts = np.array([[0.0, 0.5, 0.999], [1.0, 1.0, 1.0]])
        cells = g.cell_of(pts)
        np.testing.assert_array_equal(cells[0], [0, 2, 3])
        np.testing.assert_array_equal(cells[1], [3, 3, 3])

    def test_geometry_validation(self):
        with pytest.raises(ValueError):
            Grid(0, 0, (4, 4, 4), np.ones(3), np.zeros(3))
        with pytest.raises(ValueError):
            Grid(0, 0, (4, 4, 4), np.zeros(2), np.ones(2))

    def test_metadata(self):
        g = Grid.make_root((4, 4, 4))
        md = g.metadata()
        assert md["dims"] == (4, 4, 4)
        assert md["level"] == 0
        assert md["nparticles"] == 0

    def test_equal(self):
        a = Grid.make_root((4, 4, 4))
        b = Grid.make_root((4, 4, 4))
        assert a.equal(b)
        b.fields["density"] = np.ones((4, 4, 4))
        assert not a.equal(b)


class TestGridHierarchy:
    def make_child(self, h, parent, lo=0.0, hi=0.5, dims=(4, 4, 4)):
        return Grid(
            id=h.new_grid_id(),
            level=parent.level + 1,
            dims=dims,
            left_edge=np.full(3, lo),
            right_edge=np.full(3, hi),
            parent_id=parent.id,
        )

    def test_add_and_traverse(self):
        h = GridHierarchy(Grid.make_root((8, 8, 8)))
        c1 = h.add_grid(self.make_child(h, h.root))
        c2 = h.add_grid(self.make_child(h, h.root, 0.5, 1.0))
        gc = h.add_grid(self.make_child(h, c1, 0.0, 0.25))
        assert len(h) == 4
        assert h.max_level == 2
        assert [g.id for g in h.subgrids()] == [c1.id, c2.id, gc.id]
        assert h.children(h.root_id) == [c1, c2]
        assert len(h.level_grids(1)) == 2

    def test_validation(self):
        h = GridHierarchy(Grid.make_root((8, 8, 8)))
        bad_level = Grid(
            99, 2, (4, 4, 4), np.zeros(3), np.full(3, 0.5), parent_id=h.root_id
        )
        with pytest.raises(ValueError):
            h.add_grid(bad_level)
        outside = Grid(
            98, 1, (4, 4, 4), np.full(3, 0.5), np.full(3, 1.5), parent_id=h.root_id
        )
        with pytest.raises(ValueError):
            h.add_grid(outside)
        orphan = Grid(97, 1, (4, 4, 4), np.zeros(3), np.ones(3), parent_id=1234)
        with pytest.raises(ValueError):
            h.add_grid(orphan)
        with pytest.raises(ValueError):
            GridHierarchy(
                Grid(0, 1, (2, 2, 2), np.zeros(3), np.ones(3), parent_id=5)
            )

    def test_remove_subtree(self):
        h = GridHierarchy(Grid.make_root((8, 8, 8)))
        c1 = h.add_grid(self.make_child(h, h.root))
        gc = h.add_grid(self.make_child(h, c1, 0.0, 0.25))
        removed = h.remove_subtree(c1.id)
        assert sorted(removed) == sorted([c1.id, gc.id])
        assert len(h) == 1
        assert h.root.child_ids == []
        with pytest.raises(ValueError):
            h.remove_subtree(h.root_id)

    def test_totals_and_describe(self):
        h = GridHierarchy(Grid.make_root((4, 4, 4)))
        assert h.total_cells() == 64
        assert "level 0" in h.describe()

    def test_equal(self):
        h1 = GridHierarchy(Grid.make_root((4, 4, 4)))
        h2 = GridHierarchy(Grid.make_root((4, 4, 4)))
        assert h1.equal(h2)
        h2.root.fields["density"] = np.ones((4, 4, 4))
        assert not h1.equal(h2)
