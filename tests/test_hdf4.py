"""HDF4 SD library tests."""

import numpy as np
import pytest

from repro.hdf4 import SDFile
from repro.hdf4.format import DDEntry, pack_dd, pack_header, unpack_dds, unpack_header
from repro.mpi import run_spmd

from .conftest import make_machine


class TestFormat:
    def test_header_roundtrip(self):
        raw = pack_header(12345, 7)
        version, dd_offset, ndd = unpack_header(raw)
        assert (version, dd_offset, ndd) == (1, 12345, 7)

    def test_bad_magic_rejected(self):
        with pytest.raises(ValueError):
            unpack_header(b"XXXX" + b"\0" * 16)

    def test_dd_roundtrip(self):
        entries = [
            DDEntry("density", np.float64, (4, 5, 6), 100, 960),
            DDEntry("particle_id", np.int64, (1000,), 1060, 8000),
            DDEntry("flags", np.uint8, (), 9060, 1),
        ]
        blob = b"".join(pack_dd(e) for e in entries)
        got = unpack_dds(blob, len(entries))
        assert got == entries

    def test_unsupported_dtype(self):
        with pytest.raises(TypeError):
            DDEntry("x", np.complex128, (2,), 0, 32)


def single_rank(fn):
    return run_spmd(make_machine(1), fn).results[0]


class TestSDFile:
    def test_create_write_read_roundtrip(self):
        def program(comm):
            sd = SDFile.start(comm, "dump", "w")
            a = np.arange(24, dtype=np.float64).reshape(2, 3, 4)
            b = np.arange(10, dtype=np.int64)
            sd.create("density", np.float64, a.shape).write(a)
            sd.create("particle_id", np.int64, b.shape).write(b)
            sd.end()
            sd = SDFile.start(comm, "dump", "r")
            assert sd.datasets() == ["density", "particle_id"]
            a2 = sd.select("density").read()
            b2 = sd.select("particle_id").read()
            sd.end()
            np.testing.assert_array_equal(a, a2)
            np.testing.assert_array_equal(b, b2)
            return True

        assert single_rank(program)

    def test_write_before_read_same_handle(self):
        def program(comm):
            sd = SDFile.start(comm, "f", "w")
            sds = sd.create("x", np.float32, (5,))
            sds.write(np.ones(5, dtype=np.float32))
            got = sds.read()
            sd.end()
            return got

        np.testing.assert_array_equal(single_rank(program), np.ones(5, np.float32))

    def test_shape_mismatch_rejected(self):
        def program(comm):
            sd = SDFile.start(comm, "f", "w")
            sds = sd.create("x", np.float64, (4,))
            with pytest.raises(ValueError):
                sds.write(np.zeros(5))
            sd.end()
            return True

        assert single_rank(program)

    def test_duplicate_name_rejected(self):
        def program(comm):
            sd = SDFile.start(comm, "f", "w")
            sd.create("x", np.float64, (1,))
            with pytest.raises(ValueError):
                sd.create("x", np.float64, (1,))
            sd.end()
            return True

        assert single_rank(program)

    def test_select_missing_raises(self):
        def program(comm):
            sd = SDFile.start(comm, "f", "w")
            sd.end()
            sd = SDFile.start(comm, "f", "r")
            with pytest.raises(KeyError):
                sd.select("nope")
            return True

        assert single_rank(program)

    def test_read_mode_rejects_writes(self):
        def program(comm):
            sd = SDFile.start(comm, "f", "w")
            sd.create("x", np.float64, (2,)).write(np.zeros(2))
            sd.end()
            sd = SDFile.start(comm, "f", "r")
            with pytest.raises(ValueError):
                sd.create("y", np.float64, (2,))
            sds = sd.select("x")
            with pytest.raises(ValueError):
                sds.write(np.zeros(2))
            return True

        assert single_rank(program)

    def test_contains_and_datasets_order(self):
        def program(comm):
            sd = SDFile.start(comm, "f", "w")
            for name in ("b", "a", "c"):
                sd.create(name, np.uint8, (1,)).write(np.zeros(1, np.uint8))
            sd.end()
            sd = SDFile.start(comm, "f", "r")
            assert "a" in sd and "zz" not in sd
            return sd.datasets()

        assert single_rank(program) == ["b", "a", "c"]

    def test_calls_cost_time(self):
        def program(comm):
            t0 = comm.clock
            sd = SDFile.start(comm, "f", "w")
            sd.create("x", np.float64, (100,)).write(np.zeros(100))
            sd.end()
            return comm.clock - t0

        assert single_rank(program) > 0.0

    def test_only_calling_rank_does_io(self):
        m = make_machine(4)

        def program(comm):
            if comm.rank == 0:
                sd = SDFile.start(comm, "f", "w")
                sd.create("x", np.float64, (8,)).write(np.arange(8.0))
                sd.end()
            return comm.clock

        res = run_spmd(m, program)
        # Ranks 1..3 did nothing and spent no time.
        assert res.results[1] == 0.0
        assert m.fs.exists("f")

    def test_mode_validation(self):
        def program(comm):
            with pytest.raises(ValueError):
                SDFile.start(comm, "f", "a")
            return True

        assert single_rank(program)
