"""Layered I/O stack: registry contract and composed-strategy equivalence.

Three properties pin the refactor down:

* the registry rejects bad registrations (duplicate names, incompatible
  layer combinations) and resolves good ones everywhere strategies are
  named (CLI included);
* a registered composition is a complete strategy -- ``hdf5-aligned``
  checkpoints written at one width restart at another;
* composing the built-in strategies through :func:`repro.iostack.registry.create`
  is *indistinguishable* from the legacy strategy classes: byte-identical
  checkpoint files and identical golden-trace digests.
"""

import pytest

from repro.amr import make_initial_conditions
from repro.core import trace_filesystem
from repro.enzo import (
    HDF4Strategy,
    HDF5Strategy,
    MPIIOStrategy,
    RankState,
    hierarchies_equivalent,
)
from repro.iostack import registry
from repro.mpi import run_spmd

from .conftest import make_machine

LEGACY = {
    "hdf4": HDF4Strategy,
    "mpi-io": MPIIOStrategy,
    "hdf5": HDF5Strategy,
}


@pytest.fixture(scope="module")
def hierarchy():
    return make_initial_conditions(
        (16, 16, 16), seed=11, pre_refine=1, particles_per_cell=0.5
    )


def dump(machine, hierarchy, strategy, base="ckpt"):
    def program(comm):
        state = RankState.from_hierarchy(hierarchy, comm.rank, comm.size)
        return strategy.write_checkpoint(comm, state, base)

    return run_spmd(machine, program, nprocs=machine.nprocs)


def restart(machine, strategy, base="ckpt"):
    def program(comm):
        state, _stats = strategy.read_checkpoint(comm, base)
        return state

    res = run_spmd(machine, program, nprocs=machine.nprocs)
    return RankState.collect(res.results)


def stored_bytes(fs):
    """Every stored file's full contents, keyed by path."""
    return {
        path: fs.store.open(path).read(0, fs.store.open(path).size)
        for path in fs.store.listdir()
    }


# -- registry contract -------------------------------------------------------


class TestRegistry:
    def test_builtins_registered(self):
        assert set(registry.names()) >= {"hdf4", "mpi-io", "hdf5", "hdf5-aligned"}

    def test_duplicate_name_raises(self):
        with pytest.raises(ValueError, match="already registered"):
            registry.register(
                registry.StrategyComposition(
                    name="hdf4",
                    layout="file-per-grid",
                    transport="funnel",
                    format="hdf4-sd",
                )
            )

    def test_incompatible_layers_raise(self):
        with pytest.raises(ValueError, match="requires"):
            registry.register(
                registry.StrategyComposition(
                    name="bogus-funnel",
                    layout="shared-file",
                    transport="funnel",
                    format="raw",
                )
            )
        with pytest.raises(ValueError, match="unknown layer"):
            registry.register(
                registry.StrategyComposition(
                    name="bogus-layer",
                    layout="shared-file",
                    transport="collective",
                    format="netcdf",
                )
            )
        assert "bogus-funnel" not in registry.names()
        assert "bogus-layer" not in registry.names()

    def test_register_then_unregister(self):
        comp = registry.StrategyComposition(
            name="hdf5-test-variant",
            layout="shared-file",
            transport="collective",
            format="hdf5",
            options={"meta_aggregation": True},
            variant_of="hdf5",
        )
        registry.register(comp)
        try:
            assert "hdf5-test-variant" in registry.names()
            strategy = registry.create("hdf5-test-variant")
            assert strategy.name == "hdf5-test-variant"
            assert strategy.format.meta_aggregation
        finally:
            registry.unregister("hdf5-test-variant")
        assert "hdf5-test-variant" not in registry.names()

    def test_unknown_strategy_raises_with_available(self):
        with pytest.raises(ValueError, match="unknown strategy"):
            registry.get("netcdf")
        with pytest.raises(ValueError, match="available"):
            registry.create("netcdf")

    def test_upgrades_derived_from_registrations(self):
        ups = registry.upgrades()
        assert ups["hdf4"] == "mpi-io"
        assert ups["hdf5"] == "mpi-io"
        assert ups["mpi-io"] == "mpi-io-async"
        assert "mpi-io-async" not in ups  # the chain terminates

    def test_upgrade_chain_is_transitive(self):
        assert registry.upgrade_chain("hdf4") == ("mpi-io", "mpi-io-async")
        assert registry.upgrade_chain("mpi-io") == ("mpi-io-async",)
        assert registry.upgrade_chain("mpi-io-async") == ()
        assert registry.upgrade_chain("nosuch") == ()

    def test_cli_rejects_unknown_strategy(self):
        from repro.cli import main

        with pytest.raises(SystemExit) as exc:
            main(["simulate", "--strategy", "netcdf"])
        assert exc.value.code == 2


# -- composed strategies are complete strategies -----------------------------


class TestComposedRoundTrip:
    def test_hdf5_aligned_restarts_at_different_width(self, hierarchy):
        """hdf5-aligned dump at P=4 restarts bit-equivalent at P'=2."""
        m = make_machine(4)
        dump(m, hierarchy, registry.create("hdf5-aligned"))
        rm = make_machine(2, fs=m.fs)
        rebuilt = restart(rm, registry.create("hdf5-aligned"))
        assert hierarchies_equivalent(rebuilt, hierarchy)

    def test_hdf5_aligned_aggregates_metadata(self, hierarchy):
        """The aggregated dump issues strictly fewer fs write requests."""
        plain, aligned = make_machine(4), make_machine(4)
        dump(plain, hierarchy, registry.create("hdf5"))
        dump(aligned, hierarchy, registry.create("hdf5-aligned"))
        assert (
            aligned.fs.counters.writes < plain.fs.counters.writes
        )


# -- legacy classes vs registry compositions ---------------------------------


class TestLegacyComposedEquivalence:
    @pytest.mark.parametrize("name", sorted(LEGACY))
    def test_checkpoints_byte_and_digest_identical(self, hierarchy, name):
        legacy_machine = make_machine(4)
        legacy_trace = trace_filesystem(legacy_machine.fs, include_meta=True)
        dump(legacy_machine, hierarchy, LEGACY[name]())

        composed_machine = make_machine(4)
        composed_trace = trace_filesystem(
            composed_machine.fs, include_meta=True
        )
        dump(composed_machine, hierarchy, registry.create(name))

        assert stored_bytes(legacy_machine.fs) == stored_bytes(
            composed_machine.fs
        )
        assert legacy_trace.digest() == composed_trace.digest()

    @pytest.mark.parametrize("name", sorted(LEGACY))
    def test_legacy_read_of_composed_dump(self, hierarchy, name):
        """Cross-compatibility: composed write, legacy class restart."""
        m = make_machine(4)
        dump(m, hierarchy, registry.create(name))
        rebuilt = restart(m, LEGACY[name]())
        assert hierarchies_equivalent(rebuilt, hierarchy)
