"""Crash-consistency matrix: a fault at *every* write index of a dump must
either be absorbed (retry -> bit-identical restart) or fail loudly (no
retry -> the dump aborts and the restart refuses the torn checkpoint).

"Silently restarts from corrupt data" is the one outcome the manifest
layer exists to make impossible, so the matrix asserts recover-or-raise at
each index rather than sampling a few.
"""

import pytest

from repro.amr import make_initial_conditions
from repro.core import trace_filesystem
from repro.enzo import MPIIOStrategy, RankState, hierarchies_equivalent
from repro.mpi import run_spmd
from repro.pfs import InjectedIOError
from repro.resilience import ManifestVerificationError, RetryPolicy
from repro.sim import RankFailedError

from .conftest import make_machine

NPROCS = 2


@pytest.fixture(scope="module")
def hierarchy():
    return make_initial_conditions(
        (16, 16, 16), seed=3, pre_refine=0, particles_per_cell=0.25
    )


def write_program(hierarchy, strategy, base="ckpt"):
    def program(comm):
        state = RankState.from_hierarchy(hierarchy, comm.rank, comm.size)
        return strategy.write_checkpoint(comm, state, base)

    return program


def read_program(strategy, base="ckpt"):
    def program(comm):
        state, _stats = strategy.read_checkpoint(comm, base)
        return state

    return program


@pytest.fixture(scope="module")
def write_count(hierarchy):
    """Data-write count of a clean dump (sidecar + data + manifest)."""
    m = make_machine(NPROCS)
    run_spmd(m, write_program(hierarchy, MPIIOStrategy()))
    return m.fs.counters.writes


def test_the_matrix_is_not_trivial(write_count):
    assert write_count >= 10


@pytest.mark.slow
@pytest.mark.regression
def test_fault_at_every_write_index_with_retry_recovers(
    hierarchy, write_count
):
    """Retry absorbs a one-shot fault no matter which write it hits."""
    for index in range(write_count):
        m = make_machine(NPROCS)
        m.fs.inject_fault("write", "ckpt", after=index)
        strategy = MPIIOStrategy(retry=RetryPolicy(max_retries=2))
        run_spmd(m, write_program(hierarchy, strategy))
        assert m.fs.counters.recoveries > 0, f"index {index}: never fired"
        res = run_spmd(m, read_program(MPIIOStrategy()))
        rebuilt = RankState.collect(res.results)
        assert hierarchies_equivalent(rebuilt, hierarchy), f"index {index}"


@pytest.mark.slow
@pytest.mark.regression
def test_fault_at_every_write_index_without_retry_fails_loudly(
    hierarchy, write_count
):
    """No retry: the dump aborts, and the restart never returns data."""
    for index in range(write_count):
        m = make_machine(NPROCS)
        m.fs.inject_fault("write", "ckpt", after=index)
        with pytest.raises(RankFailedError) as ei:
            run_spmd(m, write_program(hierarchy, MPIIOStrategy()))
        assert isinstance(ei.value.__cause__, InjectedIOError), f"index {index}"
        # The interrupted dump must not be restartable: whatever is on
        # disk (missing sidecar, torn data, absent manifest) raises.
        with pytest.raises(RankFailedError):
            run_spmd(m, read_program(MPIIOStrategy()))


def test_torn_write_acceptance_scenario(hierarchy):
    """The issue's headline scenario, end to end:

    a torn write mid-dump is retried (same bytes, same offsets, healing
    the torn prefix), the trace records the recovery, and the restart is
    bit-identical to the original state.
    """
    m = make_machine(NPROCS)
    trace = trace_filesystem(m.fs)
    m.fs.inject_fault("write", "ckpt", mode="torn", after=4,
                      torn_fraction=0.5)
    strategy = MPIIOStrategy(retry=RetryPolicy(max_retries=2))
    run_spmd(m, write_program(hierarchy, strategy))

    summary = trace.recovery_summary()
    assert summary.get("retry", 0) >= 1
    assert summary.get("recovered", 0) >= 1
    assert summary.get("giveup", 0) == 0
    assert all(e.attempt >= 1 for e in trace.recoveries("retry"))

    res = run_spmd(m, read_program(MPIIOStrategy()))
    trace.detach()
    rebuilt = RankState.collect(res.results)
    assert hierarchies_equivalent(rebuilt, hierarchy)


def test_exhausted_retries_leave_a_rejected_checkpoint(hierarchy):
    """A persistent fault outlives the budget: giveup in the trace, and
    the restart raises with ManifestVerificationError as the cause --
    never a silently reconstructed hierarchy."""
    m = make_machine(NPROCS)
    trace = trace_filesystem(m.fs)
    # min_nbytes spares the small hierarchy sidecar so the restart gets
    # far enough to reach the manifest gate, which is the layer under test.
    m.fs.inject_fault("write", "ckpt", mode="persistent", min_nbytes=4096)
    strategy = MPIIOStrategy(retry=RetryPolicy(max_retries=2))
    with pytest.raises(RankFailedError) as ei:
        run_spmd(m, write_program(hierarchy, strategy))
    assert isinstance(ei.value.__cause__, InjectedIOError)
    assert trace.recovery_summary().get("giveup", 0) >= 1
    trace.detach()

    m.fs.clear_faults()
    with pytest.raises(RankFailedError) as ei:
        run_spmd(m, read_program(MPIIOStrategy()))
    assert isinstance(ei.value.__cause__, ManifestVerificationError)
    assert "no manifest" in str(ei.value.__cause__)


def test_torn_manifest_itself_is_rejected(hierarchy):
    """Tearing the commit record must read as 'dump never committed'."""
    m = make_machine(NPROCS)
    run_spmd(m, write_program(hierarchy, MPIIOStrategy()))
    # Corrupt the manifest in place: truncate it to half its bytes.
    f = m.fs.store.open("ckpt.manifest")
    f.truncate(f.size // 2)
    with pytest.raises(RankFailedError) as ei:
        run_spmd(m, read_program(MPIIOStrategy()))
    assert isinstance(ei.value.__cause__, ManifestVerificationError)


# -- the async composition: faults injected mid-drain -----------------------
#
# With the background flush service, a write's failure is detected by the
# progress engine and deferred to retirement -- which happens at the flush
# barrier *before* the manifest commit.  The matrix below proves the same
# recover-or-fail-loudly contract holds when every data write is posted
# asynchronously.


@pytest.fixture(scope="module")
def async_write_count(hierarchy):
    from repro.iostack import registry

    m = make_machine(NPROCS)
    run_spmd(m, write_program(hierarchy, registry.create("mpi-io-async")))
    return m.fs.counters.writes


@pytest.mark.slow
@pytest.mark.regression
def test_async_fault_at_every_write_index_with_retry_recovers(
    hierarchy, async_write_count
):
    """Background retries absorb a one-shot fault at any posted write."""
    from repro.iostack import registry

    for index in range(async_write_count):
        m = make_machine(NPROCS)
        m.fs.inject_fault("write", "ckpt", after=index)
        strategy = registry.create(
            "mpi-io-async", retry=RetryPolicy(max_retries=2)
        )
        run_spmd(m, write_program(hierarchy, strategy))
        assert m.fs.counters.recoveries > 0, f"index {index}: never fired"
        res = run_spmd(m, read_program(MPIIOStrategy()))
        rebuilt = RankState.collect(res.results)
        assert hierarchies_equivalent(rebuilt, hierarchy), f"index {index}"


@pytest.mark.slow
@pytest.mark.regression
def test_async_fault_at_every_write_index_without_retry_fails_loudly(
    hierarchy, async_write_count
):
    """No retry: the deferred error aborts at (or before) the flush
    barrier, the manifest is never committed, and the restart refuses."""
    from repro.iostack import registry

    for index in range(async_write_count):
        m = make_machine(NPROCS)
        m.fs.inject_fault("write", "ckpt", after=index)
        with pytest.raises(RankFailedError) as ei:
            run_spmd(m, write_program(hierarchy, registry.create("mpi-io-async")))
        assert isinstance(ei.value.__cause__, InjectedIOError), f"index {index}"
        with pytest.raises(RankFailedError):
            run_spmd(m, read_program(MPIIOStrategy()))


# -- the Lustre cell: same contract on per-file stripe layouts ---------------


def make_lustre_machine():
    from repro.pfs.lustre import LustreFS

    fs = LustreFS(
        "lfs-crash",
        nosts=4,
        stripe_size=4096,
        stripe_count=2,
        disk_bandwidth=1e9,
        seek_time=0.0,
    )
    return make_machine(NPROCS, fs=fs)


@pytest.fixture(scope="module")
def lustre_write_count(hierarchy):
    m = make_lustre_machine()
    run_spmd(m, write_program(hierarchy, MPIIOStrategy()))
    return m.fs.counters.writes


@pytest.mark.slow
@pytest.mark.regression
def test_lustre_fault_at_every_write_index(hierarchy, lustre_write_count):
    """Recover-or-raise holds when stripes land on per-file OST layouts:
    with retry the restart is bit-identical, without it both the dump and
    the restart fail loudly."""
    for index in range(lustre_write_count):
        m = make_lustre_machine()
        m.fs.inject_fault("write", "ckpt", after=index)
        strategy = MPIIOStrategy(retry=RetryPolicy(max_retries=2))
        run_spmd(m, write_program(hierarchy, strategy))
        assert m.fs.counters.recoveries > 0, f"index {index}: never fired"
        res = run_spmd(m, read_program(MPIIOStrategy()))
        rebuilt = RankState.collect(res.results)
        assert hierarchies_equivalent(rebuilt, hierarchy), f"index {index}"

        m = make_lustre_machine()
        m.fs.inject_fault("write", "ckpt", after=index)
        with pytest.raises(RankFailedError) as ei:
            run_spmd(m, write_program(hierarchy, MPIIOStrategy()))
        assert isinstance(ei.value.__cause__, InjectedIOError), f"index {index}"
        with pytest.raises(RankFailedError):
            run_spmd(m, read_program(MPIIOStrategy()))


# -- the scda composition: faults under the serial-equivalent format ---------
#
# scda adds header/padding writes and a CRC-carrying manifest on top of the
# raw shared-file session; the matrix proves a fault at *any* write index
# still ends in recover-or-refuse -- a torn header is detected at restart
# (ScdaHeaderError or the manifest gate), never silently parsed.


@pytest.fixture(scope="module")
def scda_write_count(hierarchy):
    from repro.iostack import registry

    m = make_machine(NPROCS)
    run_spmd(m, write_program(hierarchy, registry.create("mpi-io-scda")))
    return m.fs.counters.writes


@pytest.mark.slow
@pytest.mark.regression
def test_scda_fault_at_every_write_index_with_retry_recovers(
    hierarchy, scda_write_count
):
    from repro.iostack import registry

    for index in range(scda_write_count):
        m = make_machine(NPROCS)
        m.fs.inject_fault("write", "ckpt", after=index)
        strategy = registry.create(
            "mpi-io-scda", retry=RetryPolicy(max_retries=2)
        )
        run_spmd(m, write_program(hierarchy, strategy))
        assert m.fs.counters.recoveries > 0, f"index {index}: never fired"
        res = run_spmd(m, read_program(registry.create("mpi-io-scda")))
        rebuilt = RankState.collect(res.results)
        assert hierarchies_equivalent(rebuilt, hierarchy), f"index {index}"


@pytest.mark.slow
@pytest.mark.regression
def test_scda_fault_at_every_write_index_without_retry_fails_loudly(
    hierarchy, scda_write_count
):
    from repro.iostack import registry

    for index in range(scda_write_count):
        m = make_machine(NPROCS)
        m.fs.inject_fault("write", "ckpt", after=index)
        with pytest.raises(RankFailedError) as ei:
            run_spmd(
                m, write_program(hierarchy, registry.create("mpi-io-scda"))
            )
        assert isinstance(ei.value.__cause__, InjectedIOError), f"index {index}"
        with pytest.raises(RankFailedError):
            run_spmd(m, read_program(registry.create("mpi-io-scda")))
