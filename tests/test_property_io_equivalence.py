"""Property-based cross-path equivalence tests.

The strongest invariant in the stack: *every I/O path writes/reads the same
bytes*.  Collective two-phase I/O, independent sieved I/O and naive
per-segment I/O are different performance strategies over identical data
semantics, so for random decompositions they must produce identical files
and identical read results.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mpi import run_spmd
from repro.mpi.datatypes import FLOAT64, Subarray
from repro.mpiio import File, Hints

from .conftest import make_machine


@st.composite
def decompositions(draw):
    """A random 3-D shape plus a random axis-aligned block decomposition."""
    shape = tuple(draw(st.integers(2, 8)) for _ in range(3))
    # Split each axis into 1..2 pieces at random cut points.
    cuts = []
    for n in shape:
        if draw(st.booleans()) and n >= 2:
            c = draw(st.integers(1, n - 1))
            cuts.append([(0, c), (c, n)])
        else:
            cuts.append([(0, n)])
    blocks = [
        ((x0, y0, z0), (x1 - x0, y1 - y0, z1 - z0))
        for (x0, x1) in cuts[0]
        for (y0, y1) in cuts[1]
        for (z0, z1) in cuts[2]
    ]
    return shape, blocks


@settings(max_examples=30, deadline=None)
@given(spec=decompositions(), cb=st.sampled_from([128, 4096, 1 << 20]))
def test_property_collective_equals_independent_writes(spec, cb):
    """Collective and independent writes of the same decomposition produce
    byte-identical files."""
    shape, blocks = spec
    nprocs = len(blocks)
    full = np.arange(np.prod(shape), dtype=np.float64).reshape(shape)

    def program(comm, collective):
        starts, sizes = blocks[comm.rank]
        sel = tuple(slice(s, s + n) for s, n in zip(starts, sizes))
        ftype = Subarray(shape, sizes, starts, FLOAT64)
        fh = File.open(comm, "f", "w",
                       hints=Hints(cb_buffer_size=cb, ds_write=False))
        fh.set_view(0, FLOAT64, ftype)
        data = np.ascontiguousarray(full[sel])
        if collective:
            fh.write_all(data)
        else:
            fh.write(data)
        fh.close()
        return None

    m1 = make_machine(nprocs)
    run_spmd(m1, program, args=(True,))
    m2 = make_machine(nprocs)
    run_spmd(m2, program, args=(False,))
    total = int(np.prod(shape)) * 8
    b1 = m1.fs.store.open("f").read(0, total)
    b2 = m2.fs.store.open("f").read(0, total)
    assert b1 == b2
    np.testing.assert_array_equal(
        np.frombuffer(b1, dtype=np.float64).reshape(shape), full
    )


@settings(max_examples=30, deadline=None)
@given(spec=decompositions(), sieve=st.booleans())
def test_property_collective_read_equals_independent_read(spec, sieve):
    shape, blocks = spec
    nprocs = len(blocks)
    full = np.arange(np.prod(shape), dtype=np.float64).reshape(shape)

    def program(comm):
        if comm.rank == 0:
            comm.machine.fs.create("f")
            comm.machine.fs.write("f", 0, full.tobytes())
        from repro.mpi import collectives as coll

        coll.barrier(comm)
        starts, sizes = blocks[comm.rank]
        ftype = Subarray(shape, sizes, starts, FLOAT64)
        fh = File.open(comm, "f", "r", hints=Hints(ds_read=sieve))
        fh.set_view(0, FLOAT64, ftype)
        a = fh.read_at_all(0, np.empty(sizes, dtype=np.float64))
        b = fh.read_at(0, np.empty(sizes, dtype=np.float64))
        fh.close()
        np.testing.assert_array_equal(a, b)
        sel = tuple(slice(s, s + n) for s, n in zip(starts, sizes))
        np.testing.assert_array_equal(a, full[sel])
        return True

    assert all(run_spmd(make_machine(nprocs), program).results)


@settings(max_examples=25, deadline=None)
@given(
    nprocs=st.integers(1, 5),
    n_per_rank=st.integers(0, 30),
    seed=st.integers(0, 10_000),
)
def test_property_sorted_blockwise_particle_write(nprocs, n_per_rank, seed):
    """The paper's particle path: sort by ID + block-wise writes produce a
    globally ID-sorted file regardless of the initial distribution."""
    from repro.enzo import parallel_sort_by_id

    rng = np.random.default_rng(seed)
    ids_all = rng.permutation(nprocs * n_per_rank).astype(np.int64)

    def program(comm):
        from repro.amr import ParticleSet

        mine_ids = ids_all[comm.rank::comm.size]
        mine = ParticleSet(
            ids=mine_ids,
            positions=rng.random((len(mine_ids), 3)),
            velocities=np.zeros((len(mine_ids), 3)),
            mass=np.asarray(mine_ids, dtype=np.float64),
            attributes=np.zeros((len(mine_ids), 2)),
        )
        out, offset, counts = parallel_sort_by_id(comm, mine)
        fh = File.open(comm, "ids", "w")
        fh.write_at(offset * 8, np.ascontiguousarray(out.ids))
        fh.close()
        return sum(counts)

    m = make_machine(nprocs)
    res = run_spmd(m, program)
    total = res.results[0]
    assert total == nprocs * n_per_rank
    raw = m.fs.store.open("ids").read(0, total * 8)
    got = np.frombuffer(raw, dtype=np.int64)
    np.testing.assert_array_equal(got, np.sort(ids_all))


@settings(max_examples=25, deadline=None)
@given(
    ops=st.lists(
        st.tuples(
            st.sampled_from(["read", "write"]),
            st.integers(0, 2000),
            st.integers(1, 500),
        ),
        min_size=1,
        max_size=15,
    )
)
def test_property_fs_timing_monotone_and_conserving(ops):
    """Any op sequence: completions never precede issue; utilisation adds up."""
    from repro.pfs import StripedServerFS

    fs = StripedServerFS(
        "p", nservers=3, stripe_size=64, disk_bandwidth=1000.0,
        seek_time=0.001, request_cpu_time=0.0005,
    )
    fs.create("f")
    t = 0.0
    for op, offset, nbytes in ops:
        if op == "write":
            done = fs.write("f", offset, b"x" * nbytes, ready_time=t)
        else:
            _, done = fs.read("f", offset, nbytes, ready_time=t)
        assert done >= t
        t = done
    # Total device busy time is bounded by the elapsed span times servers.
    busy = sum(s.disk.busy_time for s in fs.servers)
    assert busy <= t * len(fs.servers) + 1e-9


@settings(max_examples=30, deadline=None)
@given(
    events=st.lists(
        st.tuples(
            st.sampled_from(["read", "write"]),
            st.integers(0, 10_000),
            st.integers(0, 10_000),
            st.floats(0, 100, allow_nan=False),
            st.floats(0, 10, allow_nan=False),
            st.integers(0, 7),
        ),
        max_size=20,
    )
)
def test_property_trace_json_roundtrip(events):
    from repro.core import IOTrace

    t = IOTrace()
    for op, offset, nbytes, start, dur, node in events:
        t.record(op=op, path="f", offset=offset, nbytes=nbytes,
                 start=start, end=start + dur, node=node)
    again = IOTrace.from_json(t.to_json())
    assert again.events == t.events
    assert again.total_bytes("write") == t.total_bytes("write")
    assert again.sequential_fraction("read") == t.sequential_fraction("read")
