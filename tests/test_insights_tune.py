"""End-to-end tests: auto-tuning loop, acceptance contrast, CLI wiring."""

import json

import pytest

from repro.bench import build_workload, run_traced_experiment
from repro.cli import main
from repro.enzo import HDF4Strategy, MPIIOStrategy
from repro.insights import AutoTuner, Severity, diagnose
from repro.insights.autotune import stripe_size_of
from repro.mpiio.hints import Hints
from repro.topology import origin2000

MB = 1024 * 1024


def test_autotune_improves_small_request_workload():
    tuner = AutoTuner(
        lambda n: origin2000(nprocs=n),
        problem="AMR16",
        nprocs=4,
        strategy="hdf4",
        max_rounds=2,
    )
    report = tuner.tune()
    assert report.baseline.strategy == "hdf4"
    # the stall rule pushes past mpi-io to the end of the upgrade chain
    assert report.best.strategy == "mpi-io-async"
    assert report.bandwidth_delta > 0  # strictly positive improvement
    assert report.speedup > 1.0
    assert report.best.high == 0
    assert report.baseline.high >= 1
    assert report.unapplied_upgrades == []  # the chain was fully explored
    # the report explains itself and serializes
    text = report.explain()
    assert "auto-tune AMR16" in text
    data = report.to_dict()
    assert data["bandwidth_delta_mb_s"] > 0
    assert data["steps"][0]["strategy"] == "hdf4"


def diagnose_run(strategy, hints, nprocs=8):
    machine = origin2000(nprocs=nprocs)
    _result, trace = run_traced_experiment(
        machine, strategy, build_workload("AMR32"),
        nprocs=nprocs, do_read=False,
    )
    return diagnose(
        trace,
        nprocs=nprocs,
        nnodes=machine.nnodes,
        stripe_size=stripe_size_of(machine),
        hints=hints,
        strategy=strategy.name,
    )


def test_figure6_contrast_hdf4_high_vs_tuned_clean():
    """The acceptance criterion: the Figure-6 workload diagnoses HIGH under
    serial HDF4 and clean under tuned collective MPI-IO."""
    diag = diagnose_run(HDF4Strategy(), None)
    assert diag.count(Severity.HIGH) >= 1
    rules = {i.rule for i in diag.findings(Severity.HIGH)}
    assert rules & {"small-requests", "file-per-grid", "single-writer"}

    stripe = 1 * MB  # origin2000's XFS stripe
    tuned = Hints().replace(
        wb_buffer_size=4 * MB, cb_align=stripe, striping_unit=stripe
    )
    diag = diagnose_run(MPIIOStrategy(hints=tuned), tuned)
    assert diag.count(Severity.HIGH) == 0


def test_cli_tune_writes_bench_artifact(tmp_path, capsys):
    out = tmp_path / "BENCH_insights.json"
    rc = main([
        "tune", "--problem", "AMR16", "--procs", "4",
        "--strategy", "hdf4", "--out", str(out),
    ])
    assert rc == 0
    data = json.loads(out.read_text())
    assert data["bandwidth_delta_mb_s"] > 0
    assert data["speedup"] > 1.0
    assert data["steps"][-1]["high"] == 0
    assert "auto-tune" in capsys.readouterr().out


@pytest.fixture
def saved_trace(tmp_path):
    machine = origin2000(nprocs=4)
    _result, trace = run_traced_experiment(
        machine, HDF4Strategy(), build_workload("AMR16"),
        nprocs=4, do_read=False,
    )
    path = tmp_path / "trace.json"
    trace.save(path)
    return path


def test_cli_insights_reports_and_checks(saved_trace, capsys):
    rc = main(["insights", str(saved_trace), "--procs", "4",
               "--color", "never"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "[HIGH]" in out

    # --check turns HIGH findings into a failing exit code
    rc = main(["insights", str(saved_trace), "--procs", "4", "--check",
               "--color", "never"])
    assert rc == 1


def test_cli_insights_json_output(saved_trace, capsys):
    rc = main(["insights", str(saved_trace), "--procs", "4", "--json"])
    assert rc == 0
    data = json.loads(capsys.readouterr().out)
    assert data["counts"]["HIGH"] >= 1


def test_cli_insights_missing_trace_exits_2(tmp_path, capsys):
    rc = main(["insights", str(tmp_path / "nope.json")])
    assert rc == 2
    assert "not found" in capsys.readouterr().err


def test_cli_insights_corrupt_trace_exits_2(tmp_path, capsys):
    bad = tmp_path / "bad.json"
    bad.write_text("{not json")
    rc = main(["insights", str(bad)])
    assert rc == 2
    assert "cannot parse" in capsys.readouterr().err


def test_cli_analyze_saved_trace_and_bad_path(saved_trace, tmp_path, capsys):
    rc = main(["analyze", "--trace", str(saved_trace)])
    assert rc == 0
    assert "saved trace" in capsys.readouterr().out

    rc = main(["analyze", "--trace", str(tmp_path / "missing.json")])
    assert rc == 2
    assert "not found" in capsys.readouterr().err
