"""Direct unit tests for the contention mechanisms behind Figures 7-9:
coarse tokens, read-token flushes, read amplification, client channels."""

import pytest

from repro.pfs import StripedServerFS


def make_fs(**kw):
    defaults = dict(
        nservers=4,
        stripe_size=100,
        disk_bandwidth=1e6,
        seek_time=0.0,
        request_cpu_time=0.0,
    )
    defaults.update(kw)
    return StripedServerFS("mech", **defaults)


class TestFileGranularityTokens:
    def test_alternating_writers_thrash(self):
        fs = make_fs(write_token_time=1.0, token_granularity="file")
        fs.create("f")
        t = 0.0
        for i in range(6):
            t = fs.write("f", i * 10, b"x" * 10, node=i % 2, ready_time=t)
        # First write free, every node alternation thereafter revokes.
        assert fs.token_revocations == 5

    def test_single_writer_is_free(self):
        fs = make_fs(write_token_time=1.0, token_granularity="file")
        fs.create("f")
        t = 0.0
        for i in range(6):
            t = fs.write("f", i * 10, b"x" * 10, node=0, ready_time=t)
        assert fs.token_revocations == 0

    def test_separate_files_do_not_conflict(self):
        fs = make_fs(write_token_time=1.0, token_granularity="file")
        fs.create("a")
        fs.create("b")
        fs.write("a", 0, b"x", node=0)
        fs.write("b", 0, b"x", node=1)
        fs.write("a", 10, b"x", node=0)
        fs.write("b", 10, b"x", node=1)
        assert fs.token_revocations == 0

    def test_revocations_serialise_at_token_manager(self):
        fs = make_fs(write_token_time=1.0, token_granularity="file")
        fs.create("f")
        fs.write("f", 0, b"x", node=0, ready_time=0.0)
        # Two conflicting writes issued at the same instant queue at the
        # token manager: the second finishes a full revocation later.
        t1 = fs.write("f", 10, b"x", node=1, ready_time=0.0)
        t2 = fs.write("f", 20, b"x", node=2, ready_time=0.0)
        assert t2 - t1 >= 0.99

    def test_bad_granularity_rejected(self):
        with pytest.raises(ValueError):
            make_fs(token_granularity="byte")


class TestReadTokenFlush:
    def test_first_reader_pays_flush_then_shared(self):
        fs = make_fs(
            write_token_time=1.0, token_granularity="file", tokens_on_read=True
        )
        fs.create("f")
        fs.write("f", 0, b"x" * 50, node=0)
        fs.reset_timing()
        _, t1 = fs.read("f", 0, 50, node=1, ready_time=0.0)
        assert t1 >= 1.0  # flush of node 0's dirty data
        assert fs.token_revocations == 1
        _, t2 = fs.read("f", 0, 50, node=2, ready_time=t1)
        assert t2 - t1 < 1.0  # now shared: no more revocations
        assert fs.token_revocations == 1

    def test_reads_without_flag_are_free(self):
        fs = make_fs(write_token_time=1.0, token_granularity="file")
        fs.create("f")
        fs.write("f", 0, b"x" * 50, node=0)
        _, t = fs.read("f", 0, 50, node=1, ready_time=0.0)
        assert t < 1.0
        assert fs.token_revocations == 0


class TestReadAmplification:
    def test_small_read_costs_whole_stripe(self):
        fs = make_fs(
            stripe_size=1000,
            disk_bandwidth=1000.0,
            cache_bytes_per_server=10_000,
            stripe_aligned_io=True,
        )
        fs.create("f")
        fs.write("f", 0, b"x" * 1000)
        # Evict the write-through cache entry to force a cold read.
        for srv in fs.servers:
            srv.cache._blocks.clear()
        fs.reset_timing()
        _, t = fs.read("f", 0, 10, ready_time=0.0)
        # 10 bytes requested, but a whole 1000-byte block came off the disk.
        assert t >= 1.0

    def test_unamplified_read_is_cheap(self):
        fs = make_fs(
            stripe_size=1000,
            disk_bandwidth=1000.0,
            cache_bytes_per_server=10_000,
            stripe_aligned_io=False,
        )
        fs.create("f")
        fs.write("f", 0, b"x" * 1000)
        for srv in fs.servers:
            srv.cache._blocks.clear()
        fs.reset_timing()
        _, t = fs.read("f", 0, 10, ready_time=0.0)
        assert t < 0.1


class TestClientChannel:
    def test_single_stream_capped_by_channel(self):
        fs = make_fs(
            nservers=8, disk_bandwidth=1e9, client_channel_bandwidth=100.0
        )
        fs.create("f")
        t = fs.write("f", 0, b"x" * 1000, node=0, ready_time=0.0)
        assert t >= 10.0  # 1000 B / 100 B/s, regardless of 8 fast disks

    def test_distinct_clients_have_distinct_channels(self):
        fs = make_fs(
            nservers=8, disk_bandwidth=1e9, client_channel_bandwidth=100.0
        )
        fs.create("f")
        t0 = fs.write("f", 0, b"x" * 1000, node=0, ready_time=0.0)
        t1 = fs.write("f", 5000, b"x" * 1000, node=1, ready_time=0.0)
        # Parallel clients do not queue on each other's channels.
        assert abs(t0 - t1) < 1.0
        assert max(t0, t1) < 15.0


class TestSmpQueue:
    def test_same_node_requests_serialise(self):
        fs = make_fs(smp_io_queue_time=1.0, node_of_client=lambda c: 0)
        fs.create("f")
        t1 = fs.write("f", 0, b"x", node=0, ready_time=0.0)
        t2 = fs.write("f", 100, b"x", node=1, ready_time=0.0)
        assert t2 >= t1 + 0.99

    def test_different_nodes_do_not(self):
        fs = make_fs(smp_io_queue_time=1.0)
        fs.create("f")
        t1 = fs.write("f", 0, b"x", node=0, ready_time=0.0)
        t2 = fs.write("f", 100, b"x", node=1, ready_time=0.0)
        assert abs(t1 - t2) < 0.5
