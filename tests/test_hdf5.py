"""HDF5 library tests: dataspaces, hyperslabs, parallel dataset I/O."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hdf5 import Dataspace, H5File, Hyperslab
from repro.mpi import run_spmd

from .conftest import make_machine


class TestDataspace:
    def test_basic(self):
        s = Dataspace((4, 5))
        assert s.rank == 2
        assert s.npoints == 20
        assert s.select_all().selection_shape == (4, 5)

    def test_validation(self):
        with pytest.raises(ValueError):
            Dataspace(())
        with pytest.raises(ValueError):
            Dataspace((-1,))


class TestHyperslab:
    def test_simple_block_runs(self):
        space = Dataspace((4, 6))
        sel = Hyperslab(start=(1, 2), count=(2, 3))
        # stride == block == 1 makes the last axis dense: one run per row.
        starts, run_len = sel.file_runs(space)
        assert run_len == 3
        assert len(starts) == 2
        assert sel.selection_shape == (2, 3)

    def test_dense_last_axis_merges_into_rows(self):
        space = Dataspace((4, 6))
        sel = Hyperslab(start=(1, 2), count=(2, 3))
        starts, run_len = sel.file_runs(space)
        assert run_len == 3
        np.testing.assert_array_equal(starts, [1 * 6 + 2, 2 * 6 + 2])

    def test_strided_selection(self):
        space = Dataspace((1, 10))
        sel = Hyperslab(start=(0, 0), count=(1, 3), stride=(1, 4), block=(1, 2))
        starts, run_len = sel.file_runs(space)
        assert run_len == 2
        np.testing.assert_array_equal(starts, [0, 4, 8])
        assert sel.selection_shape == (1, 6)

    def test_3d_block(self):
        space = Dataspace((4, 4, 4))
        sel = Hyperslab(start=(1, 1, 0), count=(2, 2, 4))
        starts, run_len = sel.file_runs(space)
        assert run_len == 4
        assert len(starts) == 4

    def test_out_of_bounds_rejected(self):
        space = Dataspace((4, 4))
        with pytest.raises(ValueError):
            Hyperslab(start=(0, 2), count=(1, 3)).file_runs(space)

    def test_rank_mismatch_rejected(self):
        with pytest.raises(ValueError):
            Hyperslab(start=(0,), count=(1,)).file_runs(Dataspace((4, 4)))

    def test_overlapping_block_rejected(self):
        with pytest.raises(ValueError):
            Hyperslab(start=(0,), count=(2,), stride=(2,), block=(3,))

    def test_empty_selection(self):
        starts, run_len = Hyperslab(start=(0,), count=(0,)).file_runs(
            Dataspace((4,))
        )
        assert len(starts) == 0


@settings(max_examples=80, deadline=None)
@given(
    shape=st.tuples(st.integers(1, 6), st.integers(1, 8)),
    data=st.data(),
)
def test_property_hyperslab_runs_match_numpy(shape, data):
    """file_runs covers exactly the elements numpy fancy indexing selects."""
    space = Dataspace(shape)
    start, count, stride, block = [], [], [], []
    for n in shape:
        b = data.draw(st.integers(1, max(1, n)))
        sr = data.draw(st.integers(b, max(b, n)))
        max_c = (n - b) // sr + 1 if n >= b else 0
        c = data.draw(st.integers(0, max_c))
        st_max = n - ((c - 1) * sr + b) if c > 0 else n - 1
        s = data.draw(st.integers(0, max(0, st_max)))
        start.append(s)
        count.append(c)
        stride.append(sr)
        block.append(b)
    sel = Hyperslab(tuple(start), tuple(count), tuple(stride), tuple(block))
    starts, run_len = sel.file_runs(space)
    got = set()
    for s in starts:
        got.update(range(int(s), int(s) + run_len))
    mask = np.zeros(shape, dtype=bool)
    idx0 = [
        [s + i * sr + j for i in range(c) for j in range(b)]
        for s, c, sr, b in zip(start, count, stride, block)
    ]
    for i in idx0[0]:
        for j in idx0[1]:
            mask[i, j] = True
    expect = set(np.flatnonzero(mask.ravel()).tolist())
    assert got == expect
    assert len(starts) * run_len == sel.npoints


class TestH5File:
    def test_serial_roundtrip(self):
        def program(comm):
            f = H5File.create(comm, "f", driver="sec2")
            a = np.arange(60, dtype=np.float64).reshape(3, 4, 5)
            d = f.create_dataset("density", a.shape, a.dtype)
            d.write(a, collective=False)
            d.close()
            f.close()
            f = H5File.open(comm, "f", driver="sec2")
            got = f.open_dataset("density").read(collective=False)
            f.close()
            np.testing.assert_array_equal(a, got)
            return True

        assert run_spmd(make_machine(1), program).results[0]

    @pytest.mark.parametrize("nprocs", [2, 4])
    def test_parallel_hyperslab_write_roundtrip(self, nprocs):
        shape = (8, 6, 5)

        def program(comm):
            full = np.arange(np.prod(shape), dtype=np.float64).reshape(shape)
            f = H5File.create(comm, "f")
            d = f.create_dataset("density", shape, np.float64)
            # (Block, 1, 1) slabs along x.
            per = shape[0] // comm.size
            lo = comm.rank * per
            n = per if comm.rank < comm.size - 1 else shape[0] - lo
            sel = Hyperslab(start=(lo, 0, 0), count=(n,) + shape[1:])
            d.write(np.ascontiguousarray(full[lo : lo + n]), sel)
            d.close()
            f.close()
            f = H5File.open(comm, "f")
            got = f.open_dataset("density").read(sel)
            f.close()
            np.testing.assert_array_equal(got, full[lo : lo + n])
            return True

        assert all(run_spmd(make_machine(nprocs), program).results)

    def test_multiple_datasets_and_order(self):
        def program(comm):
            f = H5File.create(comm, "f")
            for name, shape in [("a", (4,)), ("b", (2, 2)), ("c", (3,))]:
                d = f.create_dataset(name, shape, np.int32)
                d.write(np.zeros(shape, np.int32))
                d.close()
            names = f.datasets()
            f.close()
            f = H5File.open(comm, "f")
            names2 = f.datasets()
            assert "a" in f and "zz" not in f
            f.close()
            return names, names2

        res = run_spmd(make_machine(2), program)
        assert res.results[0] == (["a", "b", "c"], ["a", "b", "c"])

    def test_attributes_roundtrip_and_rank0_writes(self):
        m = make_machine(4)

        def program(comm):
            f = H5File.create(comm, "f")
            d = f.create_dataset("x", (4,), np.float64)
            d.write(np.zeros(4))
            d.write_attr("units", "g/cm^3")
            d.write_attr("level", 3)
            d.close()
            f.close()
            f = H5File.open(comm, "f")
            attrs = f.open_dataset("x").attrs
            f.close()
            return attrs

        res = run_spmd(m, program)
        assert all(a == {"units": "g/cm^3", "level": 3} for a in res.results)

    def test_data_is_misaligned_by_metadata(self):
        """Paper overhead #2: data never starts on a large aligned boundary."""
        from repro.hdf5.format import HEADER_CAPACITY, SUPERBLOCK_SIZE

        def program(comm):
            f = H5File.create(comm, "f", driver="sec2")
            d = f.create_dataset("x", (1024,), np.float64)
            off = d.header.data_offset
            d.write(np.zeros(1024), collective=False)
            d.close()
            f.close()
            return off

        off = run_spmd(make_machine(1), program).results[0]
        assert off == SUPERBLOCK_SIZE + HEADER_CAPACITY
        assert off % 4096 != 0

    def test_create_close_synchronise(self):
        """Paper overhead #1: create/close are collective barriers."""
        m = make_machine(4, latency=1e-3)

        def program(comm):
            comm.compute(float(comm.rank))  # skewed arrival
            f = H5File.create(comm, "f")
            d = f.create_dataset("x", (4,), np.float64)
            t_after_create = comm.clock
            d.close()
            f.close()
            return t_after_create

        res = run_spmd(m, program)
        # All ranks left create at >= the slowest rank's arrival time.
        assert min(res.results) >= 3.0

    def test_buffer_validation(self):
        def program(comm):
            f = H5File.create(comm, "f", driver="sec2")
            d = f.create_dataset("x", (4, 4), np.float64)
            with pytest.raises(ValueError):
                d.write(np.zeros((3, 3)), collective=False)
            with pytest.raises(TypeError):
                d.write(np.zeros((4, 4), np.int32).view(np.int32), collective=False)
            f.close()
            return True

        assert run_spmd(make_machine(1), program).results[0]

    def test_duplicate_dataset_rejected(self):
        def program(comm):
            f = H5File.create(comm, "f", driver="sec2")
            f.create_dataset("x", (1,), np.float64)
            with pytest.raises(ValueError):
                f.create_dataset("x", (1,), np.float64)
            f.close()
            return True

        assert run_spmd(make_machine(1), program).results[0]

    def test_missing_dataset_raises(self):
        def program(comm):
            f = H5File.create(comm, "f", driver="sec2")
            f.close()
            f = H5File.open(comm, "f", driver="sec2")
            with pytest.raises(KeyError):
                f.open_dataset("nope")
            f.close()
            return True

        assert run_spmd(make_machine(1), program).results[0]

    def test_hyperslab_packing_cost_charged(self):
        """Paper overhead #3: fine-grained selections cost CPU per run."""

        def program(comm):
            f = H5File.create(comm, "f", driver="sec2")
            d = f.create_dataset("x", (64, 64), np.float64)
            t0 = comm.clock
            # Column selection: 64 runs.
            d.write(
                np.zeros((64, 1)),
                Hyperslab(start=(0, 0), count=(64, 1)),
                collective=False,
            )
            t_col = comm.clock - t0
            t0 = comm.clock
            # Row selection: 1 run, same byte count.
            d.write(
                np.zeros((1, 64)),
                Hyperslab(start=(0, 0), count=(1, 64)),
                collective=False,
            )
            t_row = comm.clock - t0
            f.close()
            return t_col, t_row

        t_col, t_row = run_spmd(make_machine(1), program).results[0]
        assert t_col > t_row


def test_unsupported_driver_and_mode():
    def program(comm):
        with pytest.raises(ValueError):
            H5File.open(comm, "f", mode="a")
        with pytest.raises(ValueError):
            H5File.create(comm, "f", driver="core")
        return True

    assert run_spmd(make_machine(1), program).results[0]
