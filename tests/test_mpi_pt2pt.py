"""Point-to-point messaging tests."""

import numpy as np
import pytest

from repro.mpi import ANY_SOURCE, ANY_TAG, payload_nbytes, run_spmd
from repro.sim import DeadlockError, RankFailedError

from .conftest import make_machine


def test_ring_send_recv(machine4):
    def program(comm):
        right = (comm.rank + 1) % comm.size
        left = (comm.rank - 1) % comm.size
        comm.send(comm.rank * 100, right, tag=7)
        return comm.recv(left, tag=7)

    res = run_spmd(machine4, program)
    assert res.results == [300, 0, 100, 200]


def test_numpy_payload_is_copied(machine4):
    def program(comm):
        if comm.rank == 0:
            arr = np.arange(10)
            comm.send(arr, 1)
            arr[:] = -1  # mutation after send must not affect the message
            return None
        if comm.rank == 1:
            got = comm.recv(0)
            return got.tolist()
        return None

    res = run_spmd(machine4, program)
    assert res.results[1] == list(range(10))


def test_message_ordering_same_pair(machine4):
    def program(comm):
        if comm.rank == 0:
            for i in range(5):
                comm.send(i, 1, tag=3)
        elif comm.rank == 1:
            return [comm.recv(0, tag=3) for _ in range(5)]
        return None

    res = run_spmd(machine4, program)
    assert res.results[1] == [0, 1, 2, 3, 4]


def test_tag_selectivity(machine4):
    def program(comm):
        if comm.rank == 0:
            comm.send("a", 1, tag=10)
            comm.send("b", 1, tag=20)
        elif comm.rank == 1:
            second = comm.recv(0, tag=20)
            first = comm.recv(0, tag=10)
            return (first, second)
        return None

    res = run_spmd(machine4, program)
    assert res.results[1] == ("a", "b")


def test_any_source_any_tag(machine4):
    def program(comm):
        if comm.rank == 0:
            got = [comm.recv(ANY_SOURCE, ANY_TAG) for _ in range(3)]
            return sorted(got)
        comm.send(comm.rank, 0, tag=comm.rank)
        return None

    res = run_spmd(machine4, program)
    assert res.results[0] == [1, 2, 3]


def test_recv_with_status(machine4):
    def program(comm):
        if comm.rank == 2:
            comm.send("hello", 0, tag=9)
        if comm.rank == 0:
            obj, (src, tag) = comm.recv_with_status(ANY_SOURCE, ANY_TAG)
            return (obj, src, tag)
        return None

    res = run_spmd(machine4, program)
    assert res.results[0] == ("hello", 2, 9)


def test_sendrecv_exchange(machine4):
    def program(comm):
        partner = comm.size - 1 - comm.rank
        return comm.sendrecv(comm.rank, partner, 1, partner, 1)

    res = run_spmd(machine4, program)
    assert res.results == [3, 2, 1, 0]


def test_transfer_advances_receiver_clock():
    m = make_machine(2, latency=0.5, bandwidth=100.0)

    def program(comm):
        if comm.rank == 0:
            comm.send(b"x" * 100, 1)  # 1s occupancy + 0.5 latency
        else:
            comm.recv(0)
        return comm.clock

    res = run_spmd(m, program)
    # Receiver cannot see the message before ~1.5s.
    assert res.results[1] >= 1.5


def test_recv_without_send_deadlocks(machine4):
    def program(comm):
        if comm.rank == 0:
            comm.recv(1, tag=5)
        return None

    with pytest.raises(RankFailedError) as ei:
        run_spmd(machine4, program)
    assert isinstance(ei.value.__cause__, DeadlockError)


def test_send_validation(machine4):
    def bad_dest(comm):
        comm.send(1, 99)

    with pytest.raises(RankFailedError):
        run_spmd(machine4, bad_dest)

    def bad_tag(comm):
        comm.send(1, 0, tag=-3)

    with pytest.raises(RankFailedError):
        run_spmd(machine4, bad_tag)


def test_payload_nbytes():
    assert payload_nbytes(np.zeros(10, dtype=np.float64)) == 80
    assert payload_nbytes(b"abc") == 3
    assert payload_nbytes(bytearray(5)) == 5
    assert payload_nbytes({"k": 1}) > 0


def test_compute_charges_time(machine4):
    def program(comm):
        comm.compute(2.5)
        return comm.clock

    res = run_spmd(machine4, program)
    assert all(t >= 2.5 for t in res.results)
    assert res.elapsed >= 2.5


def test_run_spmd_subset_of_machine():
    m = make_machine(8)
    res = run_spmd(m, lambda c: c.size, nprocs=3)
    assert res.results == [3, 3, 3]
    with pytest.raises(ValueError):
        run_spmd(m, lambda c: None, nprocs=9)
    with pytest.raises(ValueError):
        run_spmd(m, lambda c: None, nprocs=0)


def test_deterministic_timing(machine8):
    def program(comm):
        # Irregular communication pattern with data-dependent sizes.
        if comm.rank % 2 == 0 and comm.rank + 1 < comm.size:
            comm.send(np.zeros(comm.rank * 50 + 1), comm.rank + 1)
        elif comm.rank % 2 == 1:
            comm.recv(comm.rank - 1)
        return comm.clock

    r1 = run_spmd(make_machine(8, latency=1e-4, bandwidth=1e6), program)
    r2 = run_spmd(make_machine(8, latency=1e-4, bandwidth=1e6), program)
    assert r1.results == r2.results
    assert r1.elapsed == r2.elapsed
