"""Tests for the access-pattern analysis, metadata registry and optimizer."""

import numpy as np
import pytest

from repro.core import (
    AccessDescriptor,
    IOTrace,
    MetadataRegistry,
    Optimizer,
    PatternClass,
    classify_accesses,
    format_table,
    format_trace_report,
    trace_filesystem,
)


def block_descriptors_3d(shape, pgrid):
    """(Block, Block, Block) descriptors over a 3-D processor grid."""
    from repro.amr import BlockPartition

    nprocs = int(np.prod(pgrid))
    part = BlockPartition(shape, nprocs)
    out = []
    for r in range(nprocs):
        starts, sizes = part.block_of(r)
        out.append(
            AccessDescriptor(global_shape=shape, starts=starts, subsizes=sizes)
        )
    return out


class TestClassification:
    def test_block_block_block_is_regular(self):
        descs = block_descriptors_3d((8, 8, 8), (2, 2, 2))
        assert classify_accesses(descs) == PatternClass.REGULAR_BLOCK

    def test_slab_decomposition_is_contiguous(self):
        descs = [
            AccessDescriptor((8, 4, 4), starts=(i * 2, 0, 0), subsizes=(2, 4, 4))
            for i in range(4)
        ]
        assert classify_accesses(descs) == PatternClass.CONTIGUOUS

    def test_1d_block_is_contiguous(self):
        descs = [
            AccessDescriptor((100,), starts=(i * 25,), subsizes=(25,))
            for i in range(4)
        ]
        assert classify_accesses(descs) == PatternClass.CONTIGUOUS

    def test_explicit_indices_is_irregular(self):
        descs = [
            AccessDescriptor((100,), indices=(1, 5, 7)),
            AccessDescriptor((100,), indices=(2, 3)),
        ]
        assert classify_accesses(descs) == PatternClass.IRREGULAR

    def test_overlapping_blocks_is_irregular(self):
        descs = [
            AccessDescriptor((10,), starts=(0,), subsizes=(6,)),
            AccessDescriptor((10,), starts=(4,), subsizes=(6,)),
        ]
        assert classify_accesses(descs) == PatternClass.IRREGULAR

    def test_holes_are_irregular(self):
        descs = [AccessDescriptor((10,), starts=(0,), subsizes=(5,))]
        assert classify_accesses(descs) == PatternClass.IRREGULAR

    def test_descriptor_validation(self):
        with pytest.raises(ValueError):
            AccessDescriptor((10,))
        with pytest.raises(ValueError):
            AccessDescriptor((10,), starts=(0,))
        with pytest.raises(ValueError):
            AccessDescriptor((10,), starts=(0,), subsizes=(20,))
        with pytest.raises(ValueError):
            AccessDescriptor((10,), starts=(0,), subsizes=(5,), indices=(1,))
        with pytest.raises(ValueError):
            classify_accesses([])

    def test_enzo_patterns_classified_as_paper_says(self):
        """Baryon fields regular, particles irregular (paper Fig. 4)."""
        baryon = block_descriptors_3d((16, 16, 16), (2, 2, 1))
        assert classify_accesses(baryon) == PatternClass.REGULAR_BLOCK
        rng = np.random.default_rng(0)
        owner = rng.integers(0, 4, size=64)
        particle = [
            AccessDescriptor(
                (64,), indices=tuple(np.flatnonzero(owner == r).tolist())
            )
            for r in range(4)
        ]
        assert classify_accesses(particle) == PatternClass.IRREGULAR


class TestMetadataRegistry:
    def make(self):
        reg = MetadataRegistry()
        reg.register("top", "density", (64, 64, 64), np.float64,
                     PatternClass.REGULAR_BLOCK)
        reg.register("top", "particle_id", (1000,), np.int64,
                     PatternClass.IRREGULAR)
        reg.register(1, "density", (16, 16, 16), np.float64,
                     PatternClass.CONTIGUOUS)
        return reg

    def test_access_order_preserved(self):
        reg = self.make()
        assert [a.name for a in reg.arrays()] == [
            "density", "particle_id", "density"
        ]
        assert [a.order_index for a in reg.arrays()] == [0, 1, 2]

    def test_lookup_and_grouping(self):
        reg = self.make()
        assert reg.lookup("top", "density").rank == 3
        assert reg.grid_keys() == ["top", 1]
        assert len(reg.arrays("top")) == 2
        assert ("top", "density") in reg

    def test_nbytes(self):
        reg = self.make()
        assert reg.lookup("top", "particle_id").nbytes == 8000
        assert reg.total_nbytes() == 64**3 * 8 + 8000 + 16**3 * 8

    def test_duplicate_rejected(self):
        reg = self.make()
        with pytest.raises(ValueError):
            reg.register("top", "density", (4, 4, 4), np.float64,
                         PatternClass.REGULAR_BLOCK)

    def test_rank_dim_mismatch(self):
        from repro.core.metadata import ArrayMetadata

        with pytest.raises(ValueError):
            ArrayMetadata("x", 2, (4,), "float64", PatternClass.IRREGULAR, 0)


class TestOptimizer:
    def test_plan_follows_paper_rules(self):
        reg = TestMetadataRegistry().make()
        plan = Optimizer(stripe_size=65536).plan(reg)
        assert plan.plan_for("particle_id").method == "sort_blockwise"
        assert not plan.plan_for("particle_id").collective
        top_density = plan.arrays[0]
        assert top_density.method == "collective_subarray"
        assert top_density.collective
        sub_density = plan.arrays[2]
        assert sub_density.method == "independent_contiguous"
        assert plan.shared_file
        assert plan.align_to_stripe == 65536

    def test_explain_mentions_key_decisions(self):
        reg = TestMetadataRegistry().make()
        text = Optimizer().plan(reg).explain()
        assert "collective_subarray" in text
        assert "sort_blockwise" in text
        assert "single shared file" in text


class TestTrace:
    def test_manual_recording_and_stats(self):
        t = IOTrace()
        t.record(op="write", path="f", offset=0, nbytes=100, start=0.0,
                 end=1.0, node=0)
        t.record(op="write", path="f", offset=100, nbytes=100, start=1.0,
                 end=2.0, node=1)
        t.record(op="write", path="f", offset=500, nbytes=50, start=2.0,
                 end=3.0, node=0)
        assert t.total_bytes("write") == 250
        assert t.sequential_fraction("write") == pytest.approx(1 / 3)
        assert t.bandwidth("write") == pytest.approx(250 / 3.0)
        assert t.per_node_bytes("write") == {0: 150, 1: 100}
        assert len(t) == 3
        assert t.total_bytes("read") == 0
        assert t.bandwidth("read") == 0.0

    def test_size_histogram(self):
        t = IOTrace()
        for size in (100, 2000, 2**18, 2**21):
            t.record(op="read", path="f", offset=0, nbytes=size, start=0.0,
                     end=0.1, node=0)
        h = t.size_histogram("read")
        assert h["<1K"] == 1
        assert h["1K-16K"] == 1
        assert h["128K-1M"] == 1
        assert h[">=1M"] == 1

    def test_trace_filesystem_wrapper(self):
        from repro.pfs import FileSystem

        fs = FileSystem()
        trace = trace_filesystem(fs)
        fs.create("f")
        fs.write("f", 0, b"x" * 64)
        fs.read("f", 0, 64)
        assert len(trace) == 2
        assert trace.ops("write")[0].nbytes == 64
        assert trace.ops("read")[0].nbytes == 64

    def test_report_formatting(self):
        from repro.pfs import FileSystem

        fs = FileSystem()
        trace = trace_filesystem(fs)
        fs.create("f")
        for i in range(5):
            fs.write("f", i * 100, b"y" * 100)
        report = format_trace_report(trace, title="test run")
        assert "test run" in report
        assert "WRITE: 5 requests" in report
        assert "sequential frac" in report

    def test_format_table(self):
        out = format_table(["a", "bb"], [["1", "2"], ["333", "4"]])
        lines = out.splitlines()
        assert len(lines) == 4
        assert "333" in lines[3]
