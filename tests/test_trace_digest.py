"""Golden-trace determinism tests for the canonical IOTrace digest.

The regression gate's determinism axis rests on two properties tested
here against the two-phase collective path (the most communication- and
dict-ordering-heavy code in the stack):

* a fixed 4-rank subarray write produces a **byte-identical canonical
  event stream** across two runs in one process, and
* the digest is identical across processes started with different
  ``PYTHONHASHSEED`` values -- catching str-hash-dependent iteration
  order (sets/dicts of paths) anywhere under ``mpiio/``.
"""

import json
import os
import subprocess
import sys

import numpy as np
import pytest

from repro.core.trace import IOTrace, trace_filesystem
from repro.mpi import run_spmd
from repro.mpi.datatypes import FLOAT64, Subarray
from repro.mpiio import File, Hints

from .conftest import make_machine

NPROCS = 4


def subarray_write_program(comm):
    """The fixed collective write: rank r owns the (Block, 1, 1) slab of a
    16^3 array -- interleaved enough that every rank's data crosses the
    two-phase exchange."""
    shape = (16, 16, 16)
    n = shape[0] // comm.size
    ftype = Subarray(shape, (n, shape[1], shape[2]), (n * comm.rank, 0, 0), FLOAT64)
    fh = File.open(comm, "golden", "w", hints=Hints(cb_buffer_size=32 * 1024))
    fh.set_view(0, FLOAT64, ftype)
    fh.write_all(np.full((n, shape[1], shape[2]), float(comm.rank)))
    fh.close()


def traced_run():
    machine = make_machine(NPROCS)
    trace = trace_filesystem(machine.fs, include_meta=True)
    try:
        run_spmd(machine, subarray_write_program, nprocs=NPROCS)
    finally:
        trace.detach()
    return trace


def test_two_phase_canonical_stream_is_run_stable():
    a, b = traced_run(), traced_run()
    assert len(a) > 0
    assert a.canonical_events() == b.canonical_events()
    assert a.digest() == b.digest()
    assert a.digest().startswith("sha256:")


def test_canonical_events_preserve_recorded_order_and_coerce_types():
    trace = IOTrace()
    trace.record(op="write", path="f", offset=np.int64(8), nbytes=np.int64(4),
                 start=0.0, end=1.5, node=np.int64(2))
    trace.record(op="meta", path="f", offset=0, nbytes=0,
                 start=1.5, end=1.5, node=0, kind="open")
    events = trace.canonical_events()
    assert events[0] == ("write", "f", 8, 4, "0.0", "1.5", 2, "", 0)
    assert events[1][0] == "meta"
    assert all(isinstance(x, int) for x in (events[0][2], events[0][3], events[0][6]))
    # JSON-serializable despite numpy inputs (the digest depends on it).
    json.dumps(events)


def test_digest_is_sensitive_to_any_event_change():
    base = IOTrace()
    base.record(op="write", path="f", offset=0, nbytes=8,
                start=0.0, end=1.0, node=0)
    variants = []
    for field, value in [("offset", 8), ("nbytes", 16), ("end", 2.0),
                         ("node", 1), ("op", "read"), ("kind", "retry")]:
        t = IOTrace()
        kw = dict(op="write", path="f", offset=0, nbytes=8,
                  start=0.0, end=1.0, node=0)
        kw[field] = value
        t.record(**kw)
        variants.append(t.digest())
    assert len({base.digest(), *variants}) == len(variants) + 1


def test_digest_ignores_nothing_reordering():
    """Same events, swapped order => different digest (order is part of
    the golden stream by design)."""
    a, b = IOTrace(), IOTrace()
    e1 = dict(op="write", path="f", offset=0, nbytes=8, start=0.0, end=1.0, node=0)
    e2 = dict(op="write", path="f", offset=8, nbytes=8, start=1.0, end=2.0, node=1)
    a.record(**e1)
    a.record(**e2)
    b.record(**e2)
    b.record(**e1)
    assert a.digest() != b.digest()


_HASHSEED_SCRIPT = """
import sys
sys.path.insert(0, {src!r})
sys.path.insert(0, {tests_parent!r})
import numpy as np
from repro.core.trace import trace_filesystem
from repro.mpi import run_spmd
from tests.test_trace_digest import NPROCS, subarray_write_program
from tests.conftest import make_machine

machine = make_machine(NPROCS)
trace = trace_filesystem(machine.fs, include_meta=True)
run_spmd(machine, subarray_write_program, nprocs=NPROCS)
trace.detach()
print(trace.digest())
"""


@pytest.mark.parametrize("hashseed", ["0", "1", "12345"])
def test_two_phase_digest_is_hashseed_independent(hashseed):
    """The collective write's golden digest must not depend on string-hash
    ordering (PYTHONHASHSEED): any dict/set-of-paths iteration leak in
    mpiio/adio or the exchange plan would show up here."""
    repo = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    script = _HASHSEED_SCRIPT.format(
        src=os.path.join(repo, "src"), tests_parent=repo
    )
    env = dict(os.environ, PYTHONHASHSEED=hashseed)
    out = subprocess.run(
        [sys.executable, "-c", script], env=env, capture_output=True,
        text=True, timeout=120, check=True,
    )
    digest = out.stdout.strip()
    assert digest == traced_run().digest()
