"""Golden-output tests for the insights reporters."""

import json

from repro.insights import (
    Diagnosis,
    Insight,
    Recommendation,
    Severity,
    format_report,
    report_to_dict,
    report_to_json,
)


def sample_diagnosis():
    diag = Diagnosis()
    diag.add(
        Insight(
            rule="single-writer",
            severity=Severity.OK,
            title="writes spread across nodes",
            detail="busiest node moves 26% of the write bytes",
            op="write",
        )
    )
    diag.add(
        Insight(
            rule="small-requests",
            severity=Severity.HIGH,
            title="small write requests dominate",
            detail=(
                "93% of 1468 write requests are smaller than 128 KiB "
                "and they carry 64% of the bytes"
            ),
            op="write",
            evidence={"requests": 1468, "small_count_fraction": 0.93},
            recommendations=(
                Recommendation(
                    "set_hint",
                    "coalesce consecutive small writes client-side "
                    "(write-behind buffering)",
                    {"name": "wb_buffer_size", "value": 4 * 1024 * 1024},
                ),
            ),
        )
    )
    diag.sort()
    diag.summary = {
        "events": 1468,
        "writes": 1468,
        "files": 1,
        "nprocs": 8,
        "strategy": "mpi-io",
    }
    return diag


GOLDEN = """\
repro.insights -- I/O diagnosis
===============================
1468 events  1468 writes  1 files  P=8  strategy=mpi-io
1 HIGH  0 WARN  1 OK

[HIGH] small-requests (write): small write requests dominate
       93% of 1468 write requests are smaller than 128 KiB and they carry 64% of the bytes
       -> coalesce consecutive small writes client-side (write-behind buffering)
[OK] single-writer (write): writes spread across nodes"""


def test_format_report_golden_plain_text():
    assert format_report(sample_diagnosis(), color=False) == GOLDEN


def test_format_report_color_uses_ansi():
    out = format_report(sample_diagnosis(), color=True)
    assert "\x1b[1;31m" in out  # HIGH in bold red
    assert "\x1b[0m" in out
    # stripping the codes recovers the plain form
    import re

    assert re.sub(r"\x1b\[[0-9;]*m", "", out) == GOLDEN


def test_format_report_issues_only_hides_ok():
    out = format_report(sample_diagnosis(), color=False, show_ok=False)
    assert "[OK]" not in out
    assert "[HIGH]" in out


def test_format_report_empty_diagnosis():
    out = format_report(Diagnosis(), color=False)
    assert "no findings" in out
    assert "0 HIGH  0 WARN  0 OK" in out


def test_report_to_json_round_trip():
    diag = sample_diagnosis()
    data = json.loads(report_to_json(diag))
    assert data == report_to_dict(diag)
    assert data["counts"] == {"HIGH": 1, "WARN": 0, "INFO": 0, "OK": 1}
    assert data["summary"]["strategy"] == "mpi-io"
    high = data["insights"][0]
    assert high["severity"] == "HIGH"
    assert high["recommendations"][0]["params"]["name"] == "wb_buffer_size"
