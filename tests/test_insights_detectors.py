"""Unit tests for the insights detector rules.

Each rule gets a synthetic trace that triggers it and one that avoids it,
exercised in isolation through ``diagnose(..., rules=[rule_id])`` so a
finding can only come from the rule under test.
"""

import pytest

from repro.core.trace import IOTrace
from repro.insights import Severity, Thresholds, all_rules, diagnose

KB = 1024
MB = 1024 * 1024


def make_trace(events):
    """Build an IOTrace from dicts; defaults make one sequential writer."""
    trace = IOTrace()
    offsets = {}
    for i, e in enumerate(events):
        op = e.get("op", "write")
        path = e.get("path", "f")
        nbytes = e.get("nbytes", 0)
        if "offset" in e:
            offset = e["offset"]
        else:  # default: append sequentially per file
            offset = offsets.get(path, 0)
        offsets[path] = offset + nbytes
        trace.record(
            op=op, path=path, offset=offset, nbytes=nbytes,
            start=float(i), end=float(i) + 0.5,
            node=e.get("node", 0), kind=e.get("kind", ""),
        )
    return trace


def writes(sizes, path="f", node=0):
    return [{"op": "write", "path": path, "nbytes": n, "node": node}
            for n in sizes]


def run_rule(rule_id, trace, **kw):
    return diagnose(trace, rules=[rule_id], **kw)


def severities(diag):
    return [i.severity for i in diag]


def test_rule_registry_is_complete():
    rules = all_rules()
    assert {
        "small-requests", "tiny-interleaved", "random-access",
        "rmw-amplification", "file-per-grid", "misaligned-access",
        "independent-shared-file", "single-writer", "node-imbalance",
        "metadata-ratio", "open-churn",
    } <= set(rules)
    assert len(rules) >= 8


# -- request-size rules ------------------------------------------------------


def test_small_requests_high_when_bytes_dominated_by_small():
    trace = make_trace(writes([4 * KB] * 20))
    diag = run_rule("small-requests", trace)
    assert severities(diag) == [Severity.HIGH]
    recs = {r.action for r in diag.insights[0].recommendations}
    assert "set_hint" in recs


def test_small_requests_warn_when_bytes_live_in_large_requests():
    trace = make_trace(writes([4 * KB] * 8 + [4 * MB] * 2))
    diag = run_rule("small-requests", trace)
    assert severities(diag) == [Severity.WARN]


def test_small_requests_ok_for_large_stream():
    trace = make_trace(writes([1 * MB] * 10))
    diag = run_rule("small-requests", trace)
    assert severities(diag) == [Severity.OK]


def test_tiny_interleaved_high_on_alternating_stream():
    # the HDF5 shape: header-sized writes in-band with (small) payloads
    trace = make_trace(writes([512, 100 * KB] * 10))
    diag = run_rule("tiny-interleaved", trace)
    assert severities(diag) == [Severity.HIGH]
    assert diag.insights[0].recommendations[0].params == {"to": "mpi-io"}


def test_tiny_interleaved_warn_when_small_byte_share_is_modest():
    trace = make_trace(writes([512, 64 * KB] * 3 + [512, 1 * MB]))
    diag = run_rule("tiny-interleaved", trace)
    assert severities(diag) == [Severity.WARN]


def test_tiny_interleaved_ok_without_tiny_requests():
    trace = make_trace(writes([1 * MB] * 10))
    diag = run_rule("tiny-interleaved", trace)
    assert severities(diag) == [Severity.OK]


def test_random_access_warn_on_scattered_small_writes():
    events = [
        {"nbytes": 4 * KB, "offset": off}
        for off in (5 * MB, 1 * MB, 9 * MB, 3 * MB, 7 * MB, 0)
    ]
    diag = run_rule("random-access", make_trace(events))
    assert severities(diag) == [Severity.WARN]


def test_random_access_ok_for_sequential_stream():
    trace = make_trace(writes([4 * KB] * 10))
    diag = run_rule("random-access", trace)
    assert severities(diag) == [Severity.OK]


def test_rmw_amplification_high_when_readback_dominates():
    events = writes([100 * KB], path="a")
    events += [{"op": "read", "path": "a", "nbytes": 60 * KB, "offset": 0}]
    diag = run_rule("rmw-amplification", make_trace(events))
    assert severities(diag) == [Severity.HIGH]
    names = {r.params.get("name") for r in diag.insights[0].recommendations}
    assert "ds_write" in names


def test_rmw_amplification_warn_at_moderate_ratio():
    events = writes([100 * KB], path="a")
    events += [{"op": "read", "path": "a", "nbytes": 20 * KB, "offset": 0}]
    diag = run_rule("rmw-amplification", make_trace(events))
    assert severities(diag) == [Severity.WARN]


def test_rmw_amplification_ok_when_reads_hit_other_files():
    events = writes([100 * KB], path="a")
    events += [{"op": "read", "path": "b", "nbytes": 60 * KB, "offset": 0}]
    diag = run_rule("rmw-amplification", make_trace(events))
    assert severities(diag) == [Severity.OK]


def test_rmw_amplification_silent_without_reads():
    diag = run_rule("rmw-amplification", make_trace(writes([100 * KB])))
    assert len(diag) == 0


# -- layout rules ------------------------------------------------------------


def test_file_per_grid_high_at_file_explosion():
    events = []
    for g in range(8):
        events += writes([1 * MB], path=f"grid{g}")
    diag = run_rule("file-per-grid", make_trace(events), nprocs=4)
    assert severities(diag) == [Severity.HIGH]
    assert diag.insights[0].recommendations[0].params == {"to": "mpi-io"}


def test_file_per_grid_warn_between_thresholds():
    events = []
    for g in range(5):
        events += writes([1 * MB], path=f"grid{g}")
    diag = run_rule("file-per-grid", make_trace(events), nprocs=16)
    assert severities(diag) == [Severity.WARN]


def test_file_per_grid_ok_for_shared_file():
    diag = run_rule("file-per-grid", make_trace(writes([1 * MB] * 4)),
                    nprocs=8)
    assert severities(diag) == [Severity.OK]


def test_misaligned_access_warn_on_unaligned_offsets():
    events = [{"nbytes": 4 * KB, "offset": off} for off in (1, 100, 3000)]
    diag = run_rule("misaligned-access", make_trace(events),
                    stripe_size=64 * KB)
    assert severities(diag) == [Severity.WARN]
    names = {r.params["name"] for r in diag.insights[0].recommendations}
    assert names == {"cb_align", "striping_unit"}


def test_misaligned_access_ok_on_stripe_boundaries():
    events = [{"nbytes": 4 * KB, "offset": i * 64 * KB} for i in range(4)]
    diag = run_rule("misaligned-access", make_trace(events),
                    stripe_size=64 * KB)
    assert severities(diag) == [Severity.OK]


def test_misaligned_access_trusts_cb_align_hint():
    from repro.mpiio.hints import Hints

    events = [{"nbytes": 4 * KB, "offset": off} for off in (1, 100, 3000)]
    diag = run_rule("misaligned-access", make_trace(events),
                    stripe_size=64 * KB,
                    hints=Hints().replace(cb_align=64 * KB))
    assert severities(diag) == [Severity.OK]


def test_misaligned_access_silent_without_stripe():
    events = [{"nbytes": 4 * KB, "offset": 1}]
    diag = run_rule("misaligned-access", make_trace(events), stripe_size=0)
    assert len(diag) == 0


def test_independent_shared_file_warn_on_multiwriter_small_requests():
    events = writes([4 * KB] * 5, node=0) + writes([4 * KB] * 5, node=1)
    diag = run_rule("independent-shared-file", make_trace(events))
    assert severities(diag) == [Severity.WARN]


def test_independent_shared_file_ok_with_large_requests():
    events = writes([1 * MB] * 3, node=0) + writes([1 * MB] * 3, node=1)
    diag = run_rule("independent-shared-file", make_trace(events))
    assert severities(diag) == [Severity.OK]


def test_independent_shared_file_silent_for_single_writer():
    diag = run_rule("independent-shared-file",
                    make_trace(writes([4 * KB] * 5)))
    assert len(diag) == 0


# -- balance rules -----------------------------------------------------------


def test_single_writer_high_when_one_node_dominates():
    events = writes([900 * KB], node=0) + writes([100 * KB], node=1)
    diag = run_rule("single-writer", make_trace(events), nnodes=2)
    assert severities(diag) == [Severity.HIGH]
    assert diag.insights[0].evidence["node"] == 0


def test_single_writer_ok_when_spread():
    events = writes([500 * KB], node=0) + writes([500 * KB], node=1)
    diag = run_rule("single-writer", make_trace(events), nnodes=2)
    assert severities(diag) == [Severity.OK]


def test_node_imbalance_warn_on_skew_below_serialization():
    shares = [48, 12, 10, 10, 10, 10]  # top share 0.48, skew 2.88
    events = []
    for node, kb in enumerate(shares):
        events += writes([kb * KB], node=node)
    diag = run_rule("node-imbalance", make_trace(events), nnodes=6)
    assert severities(diag) == [Severity.WARN]


def test_node_imbalance_defers_to_single_writer():
    events = writes([900 * KB], node=0) + writes([100 * KB], node=1)
    diag = run_rule("node-imbalance", make_trace(events), nnodes=2)
    assert len(diag) == 0


def test_node_imbalance_ok_when_balanced():
    events = writes([1 * MB], node=0) + writes([1 * MB], node=1)
    diag = run_rule("node-imbalance", make_trace(events), nnodes=2)
    assert severities(diag) == [Severity.OK]


# -- metadata rules ----------------------------------------------------------


def meta(n, path="f", kind="open"):
    return [{"op": "meta", "path": path, "nbytes": 0, "offset": 0,
             "kind": kind} for _ in range(n)]


def test_metadata_ratio_high_when_namespace_rivals_data():
    trace = make_trace(writes([1 * MB] * 10) + meta(10))
    diag = run_rule("metadata-ratio", trace)
    assert severities(diag) == [Severity.HIGH]


def test_metadata_ratio_warn_at_moderate_ratio():
    trace = make_trace(writes([1 * MB] * 10) + meta(3))
    diag = run_rule("metadata-ratio", trace)
    assert severities(diag) == [Severity.WARN]


def test_metadata_ratio_ok_when_negligible():
    trace = make_trace(writes([1 * MB] * 100) + meta(1))
    diag = run_rule("metadata-ratio", trace)
    assert severities(diag) == [Severity.OK]


def test_metadata_ratio_silent_without_meta_events():
    diag = run_rule("metadata-ratio", make_trace(writes([1 * MB] * 10)))
    assert len(diag) == 0


def test_open_churn_high_on_reopen_storm():
    trace = make_trace(writes([1 * MB]) + meta(17))
    diag = run_rule("open-churn", trace)
    assert severities(diag) == [Severity.HIGH]


def test_open_churn_warn_at_moderate_churn():
    events = []
    for g in range(4):
        events += writes([1 * MB], path=f"g{g}") + meta(5, path=f"g{g}")
    diag = run_rule("open-churn", make_trace(events))
    assert severities(diag) == [Severity.WARN]


def test_open_churn_ok_with_one_open_per_file():
    events = []
    for g in range(4):
        events += writes([1 * MB], path=f"g{g}") + meta(1, path=f"g{g}")
    diag = run_rule("open-churn", make_trace(events))
    assert severities(diag) == [Severity.OK]


# -- diagnose integration ----------------------------------------------------


def test_diagnose_sorts_most_severe_first_and_counts():
    # small scattered multi-file writes: several rules fire at once
    events = []
    for g in range(8):
        events += writes([4 * KB] * 4, path=f"grid{g}", node=g % 2)
    diag = diagnose(make_trace(events), nprocs=8, strategy="hdf4")
    assert diag.count(Severity.HIGH) >= 1
    sevs = severities(diag)
    assert sevs == sorted(sevs)
    assert diag.summary["strategy"] == "hdf4"
    assert diag.summary["files"] == 8


def test_diagnose_with_custom_thresholds():
    trace = make_trace(writes([4 * KB] * 20))
    lax = Thresholds(small_request_bytes=1024)  # 4 KiB no longer "small"
    diag = diagnose(trace, rules=["small-requests"], thresholds=lax)
    assert severities(diag) == [Severity.OK]


def test_diagnose_unknown_rule_raises():
    with pytest.raises(KeyError):
        diagnose(make_trace(writes([1 * MB])), rules=["no-such-rule"])


# -- satellite trace helpers -------------------------------------------------


def test_alignment_fraction():
    trace = make_trace(
        [{"nbytes": KB, "offset": off} for off in (0, 64 * KB, 5, 7)]
    )
    assert trace.alignment_fraction("write", 64 * KB) == 0.5
    assert trace.alignment_fraction("read", 64 * KB) == 1.0  # empty
    with pytest.raises(ValueError):
        trace.alignment_fraction("write", 0)


def test_metadata_ratio_helper():
    trace = make_trace(writes([1 * MB] * 4) + meta(2))
    assert trace.metadata_ratio() == pytest.approx(0.5)
    all_meta = make_trace(meta(3))
    assert all_meta.metadata_ratio() == 3.0


def test_paths_first_seen_order():
    events = (writes([KB], path="b") + writes([KB], path="a")
              + writes([KB], path="b"))
    trace = make_trace(events)
    assert trace.paths() == ["b", "a"]
    assert trace.paths("read") == []
