"""Unit and property tests for the block store."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.pfs import BlockStore, FileExists, FileNotFound, StoredFile


class TestStoredFile:
    def test_write_then_read_roundtrip(self):
        f = StoredFile("a")
        f.write(0, b"hello world")
        assert f.read(0, 11) == b"hello world"
        assert f.size == 11

    def test_sparse_holes_read_as_zeros(self):
        f = StoredFile("a")
        f.write(10, b"xy")
        assert f.read(0, 12) == b"\0" * 10 + b"xy"
        assert f.size == 12

    def test_read_past_eof_zero_fills(self):
        f = StoredFile("a")
        f.write(0, b"ab")
        assert f.read(0, 5) == b"ab\0\0\0"

    def test_overwrite_in_place(self):
        f = StoredFile("a")
        f.write(0, b"aaaaaa")
        f.write(2, b"BB")
        assert f.read(0, 6) == b"aaBBaa"
        assert f.size == 6

    def test_truncate_shrinks_and_grows_logical_size(self):
        f = StoredFile("a")
        f.write(0, b"abcdef")
        f.truncate(3)
        assert f.size == 3
        assert f.read(0, 6) == b"abc\0\0\0"
        f.truncate(10)
        assert f.size == 10

    def test_memoryview_and_bytearray_inputs(self):
        f = StoredFile("a")
        f.write(0, bytearray(b"123"))
        f.write(3, memoryview(b"456"))
        assert f.read(0, 6) == b"123456"

    def test_negative_arguments_rejected(self):
        f = StoredFile("a")
        with pytest.raises(ValueError):
            f.write(-1, b"x")
        with pytest.raises(ValueError):
            f.read(-1, 4)
        with pytest.raises(ValueError):
            f.read(0, -4)
        with pytest.raises(ValueError):
            f.truncate(-1)


class TestBlockStore:
    def test_create_open_delete_cycle(self):
        bs = BlockStore()
        bs.create("f")
        assert bs.exists("f")
        bs.open("f").write(0, b"data")
        bs.delete("f")
        assert not bs.exists("f")

    def test_open_missing_raises(self):
        with pytest.raises(FileNotFound):
            BlockStore().open("nope")

    def test_open_with_create_flag(self):
        bs = BlockStore()
        f = bs.open("new", create=True)
        assert f.size == 0
        assert bs.exists("new")

    def test_exclusive_create_conflicts(self):
        bs = BlockStore()
        bs.create("f")
        with pytest.raises(FileExists):
            bs.create("f", exclusive=True)

    def test_create_truncates_existing(self):
        bs = BlockStore()
        bs.create("f").write(0, b"old")
        f = bs.create("f")
        assert f.size == 0

    def test_delete_missing_raises(self):
        with pytest.raises(FileNotFound):
            BlockStore().delete("nope")

    def test_listdir_sorted(self):
        bs = BlockStore()
        for name in ("c", "a", "b"):
            bs.create(name)
        assert bs.listdir() == ["a", "b", "c"]

    def test_total_bytes(self):
        bs = BlockStore()
        bs.create("a").write(0, b"12345")
        bs.create("b").write(10, b"x")
        assert bs.total_bytes() == 5 + 11


@settings(max_examples=60, deadline=None)
@given(
    writes=st.lists(
        st.tuples(st.integers(0, 500), st.binary(min_size=1, max_size=64)),
        min_size=1,
        max_size=20,
    )
)
def test_property_store_matches_reference_model(writes):
    """Random overlapping writes: the store equals a flat reference buffer."""
    f = StoredFile("p")
    ref = bytearray()
    for offset, data in writes:
        end = offset + len(data)
        if end > len(ref):
            ref.extend(b"\0" * (end - len(ref)))
        ref[offset:end] = data
        f.write(offset, data)
    assert f.size == len(ref)
    assert f.read(0, len(ref)) == bytes(ref)


@settings(max_examples=40, deadline=None)
@given(
    offset=st.integers(0, 1000),
    size=st.integers(0, 200),
    data=st.binary(min_size=0, max_size=300),
)
def test_property_read_is_pure(offset, size, data):
    """Reads never mutate: two identical reads return identical bytes."""
    f = StoredFile("p")
    f.write(17, data)
    first = f.read(offset, size)
    second = f.read(offset, size)
    assert first == second
    assert len(first) == size


PAGE = 64


def _page_model_write(pages: dict[int, bytearray], offset: int, data: bytes):
    """Reference model: a dict of fixed-size zero-default pages."""
    for i, byte in enumerate(data):
        pos = offset + i
        page = pages.setdefault(pos // PAGE, bytearray(PAGE))
        page[pos % PAGE] = byte


def _page_model_read(pages: dict[int, bytearray], offset: int, nbytes: int):
    out = bytearray(nbytes)
    for i in range(nbytes):
        pos = offset + i
        page = pages.get(pos // PAGE)
        if page is not None:
            out[i] = page[pos % PAGE]
    return bytes(out)


@settings(max_examples=60, deadline=None)
@given(
    ops=st.lists(
        st.one_of(
            st.tuples(st.just("w"), st.integers(0, 5000),
                      st.binary(min_size=1, max_size=300)),
            st.tuples(st.just("r"), st.integers(0, 6000),
                      st.integers(0, 400)),
        ),
        min_size=1,
        max_size=25,
    )
)
def test_property_sparse_file_matches_page_model(ops):
    """Interleaved sparse writes/reads agree with a dict-of-pages model.

    Far-apart offsets leave holes that the geometric-growth resize must
    zero-fill exactly once; every read (inside data, across holes, past
    EOF) must match the page model byte for byte.
    """
    f = StoredFile("p")
    pages: dict[int, bytearray] = {}
    size = 0
    for op in ops:
        if op[0] == "w":
            _, offset, data = op
            f.write(offset, data)
            _page_model_write(pages, offset, data)
            size = max(size, offset + len(data))
        else:
            _, offset, nbytes = op
            expected = _page_model_read(pages, offset, nbytes)
            # Reads past EOF return zeros in both models.
            assert f.read(offset, nbytes) == expected
        assert f.size == size
    # Full-file readback including every hole.
    assert f.read(0, size) == _page_model_read(pages, 0, size)


@settings(max_examples=40, deadline=None)
@given(
    first=st.integers(0, 100),
    jump=st.integers(1000, 100_000),
    data=st.binary(min_size=1, max_size=64),
)
def test_property_far_jump_growth_zero_fills_the_hole(first, jump, data):
    """A write far past EOF grows once and the whole gap reads as zeros."""
    f = StoredFile("p")
    f.write(first, b"x")
    f.write(first + jump, data)
    assert f.size == first + jump + len(data)
    gap = f.read(first + 1, jump - 1)
    assert gap == b"\0" * (jump - 1)
    assert f.read(first + jump, len(data)) == data
