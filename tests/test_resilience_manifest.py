"""Checkpoint-manifest unit tests: checksums, serialisation, verification."""

import zlib

import pytest

from repro.pfs import FileSystem
from repro.resilience import (
    CheckpointManifest,
    ManifestEntry,
    ManifestVerificationError,
    checksum_bytes,
    entry_for_bytes,
    entry_for_segments,
    manifest_path,
)


class TestChecksums:
    def test_chained_crc_equals_concatenated_crc(self):
        assert checksum_bytes(b"abc", b"def") == zlib.crc32(b"abcdef")

    def test_empty_is_zero(self):
        assert checksum_bytes() == 0
        assert checksum_bytes(b"") == 0


class TestEntries:
    def test_entry_for_bytes_single_segment(self):
        e = entry_for_bytes("top/field/density", "ckpt", 64, b"ABCD")
        assert e.segments == ((64, 4),)
        assert e.nbytes == 4
        assert e.checksum == zlib.crc32(b"ABCD")

    def test_entry_for_segments_filters_empty_and_checks_total(self):
        e = entry_for_segments(
            "x", "ckpt", [(0, 2), (10, 0), (20, 2)], b"ABCD"
        )
        assert e.segments == ((0, 2), (20, 2))
        with pytest.raises(ValueError, match="segments cover"):
            entry_for_segments("x", "ckpt", [(0, 2)], b"ABCD")

    def test_entry_accepts_numpy_arrays(self):
        import numpy as np

        arr = np.arange(4, dtype=np.float64)
        e = entry_for_bytes("x", "ckpt", 0, arr)
        assert e.nbytes == arr.nbytes
        assert e.checksum == zlib.crc32(arr.tobytes())


class TestManifest:
    def test_add_skips_empty_and_rejects_duplicates(self):
        m = CheckpointManifest(strategy="mpi-io")
        m.add(entry_for_bytes("a", "ckpt", 0, b""))
        assert len(m) == 0
        m.add(entry_for_bytes("a", "ckpt", 0, b"xy"))
        with pytest.raises(ValueError, match="duplicate"):
            m.add(entry_for_bytes("a", "ckpt", 8, b"zw"))

    def test_round_trip_is_deterministic(self):
        m = CheckpointManifest(strategy="hdf5")
        m.add(entry_for_bytes("b", "ckpt", 8, b"wxyz"))
        m.add(entry_for_bytes("a", "ckpt", 0, b"abcd"))
        raw = m.to_bytes()
        # Insertion order must not leak into the serialised commit record.
        m2 = CheckpointManifest(strategy="hdf5")
        m2.add(entry_for_bytes("a", "ckpt", 0, b"abcd"))
        m2.add(entry_for_bytes("b", "ckpt", 8, b"wxyz"))
        assert raw == m2.to_bytes()
        back = CheckpointManifest.from_bytes(raw)
        assert back.strategy == "hdf5"
        assert sorted(e.name for e in back) == ["a", "b"]
        assert {e.name: e.checksum for e in back} == {
            e.name: e.checksum for e in m
        }

    def test_from_bytes_wraps_garbage(self):
        with pytest.raises(ManifestVerificationError, match="corrupt"):
            CheckpointManifest.from_bytes(b"not a pickle")
        with pytest.raises(ManifestVerificationError):
            CheckpointManifest.from_bytes(b"")

    def test_from_bytes_rejects_future_version(self):
        import pickle

        raw = pickle.dumps({"version": 99, "strategy": "", "entries": []})
        with pytest.raises(ManifestVerificationError, match="version"):
            CheckpointManifest.from_bytes(raw)

    def test_manifest_path_convention(self):
        assert manifest_path("dump.cycle0001") == "dump.cycle0001.manifest"


class TestVerification:
    def _store_with(self, payloads):
        fs = FileSystem()
        for path, data in payloads.items():
            fs.create(path)
            fs.write(path, 0, data)
        return fs.store

    def test_clean_checkpoint_verifies(self):
        store = self._store_with({"ckpt": b"ABCDEFGH"})
        m = CheckpointManifest()
        m.add(entry_for_bytes("a", "ckpt", 0, b"ABCD"))
        m.add(entry_for_segments("b", "ckpt", [(4, 2), (6, 2)], b"EFGH"))
        assert m.verify(store) == []
        m.verify_or_raise(store, "ckpt")  # no raise

    def test_flipped_byte_is_caught(self):
        store = self._store_with({"ckpt": b"ABCDEFGH"})
        m = CheckpointManifest()
        m.add(entry_for_bytes("a", "ckpt", 0, b"ABCD"))
        store.open("ckpt").write(2, b"X")
        problems = m.verify(store)
        assert len(problems) == 1 and "checksum mismatch" in problems[0]
        with pytest.raises(ManifestVerificationError, match="a: checksum"):
            m.verify_or_raise(store, "ckpt")

    def test_truncated_file_is_caught_via_zero_fill(self):
        # BlockStore zero-fills reads past EOF: a torn write that stopped
        # short must be caught by the checksum, not by an exception.
        store = self._store_with({"ckpt": b"ABCD"})
        m = CheckpointManifest()
        m.add(entry_for_bytes("a", "ckpt", 0, b"ABCDEFGH"))
        problems = m.verify(store)
        assert len(problems) == 1 and "checksum mismatch" in problems[0]

    def test_missing_file_is_caught(self):
        store = self._store_with({})
        m = CheckpointManifest()
        m.add(entry_for_bytes("a", "gone", 0, b"ABCD"))
        problems = m.verify(store)
        assert len(problems) == 1 and "missing" in problems[0]

    def test_verify_or_raise_caps_the_problem_list(self):
        store = self._store_with({})
        m = CheckpointManifest()
        for i in range(8):
            m.add(entry_for_bytes(f"e{i}", f"gone{i}", 0, b"x"))
        with pytest.raises(ManifestVerificationError, match=r"\+3 more"):
            m.verify_or_raise(store, "ckpt")
