"""Robustness and edge-case tests across modules: corrupted files, closed
handles, bad arguments, unusual-but-legal call sequences."""

import numpy as np
import pytest

from repro.hdf4 import SDFile
from repro.hdf5 import H5File, ObjectHeader
from repro.mpi import run_spmd
from repro.mpiio import ADIOFile, File, Hints
from repro.sim import RankFailedError

from .conftest import make_machine


def single(fn, nprocs=1, fs=None):
    m = make_machine(nprocs, fs=fs)
    return run_spmd(m, fn).results[0], m


class TestCorruptedFormats:
    def test_hdf4_bad_magic(self):
        def program(comm):
            fs = comm.machine.fs
            fs.create("junk")
            fs.write("junk", 0, b"NOTAFILE" + b"\0" * 100)
            with pytest.raises(ValueError, match="magic"):
                SDFile.start(comm, "junk", "r")
            return True

        assert single(program)[0]

    def test_hdf5_bad_magic(self):
        def program(comm):
            fs = comm.machine.fs
            fs.create("junk")
            fs.write("junk", 0, b"\x89HDF\r\n\x1a\n" + b"\0" * 100)
            with pytest.raises(ValueError, match="magic"):
                H5File.open(comm, "junk", driver="sec2")
            return True

        assert single(program)[0]

    def test_hdf5_corrupt_object_header(self):
        header = ObjectHeader("x", np.float64, (4,), 100, 32)
        blob = bytearray(header.pack())
        blob[0] ^= 0x5A  # clobber the used-length field
        with pytest.raises(ValueError):
            ObjectHeader.unpack(bytes(blob))

    def test_hdf5_header_attr_overflow(self):
        header = ObjectHeader("x", np.float64, (4,), 100, 32)
        header.attrs["big"] = "y" * 600  # exceeds HEADER_CAPACITY
        with pytest.raises(ValueError, match="capacity"):
            header.pack()

    def test_mdms_schema_version_check(self):
        import pickle

        from repro.core import MDMS
        from repro.pfs import FileSystem

        fs = FileSystem()
        fs.create(".mdms.db")
        fs.write(".mdms.db", 0,
                 pickle.dumps({"version": 99, "apps": {}}))
        with pytest.raises(ValueError, match="schema"):
            MDMS(fs)

    def test_sidecar_missing_fails_cleanly(self):
        from repro.enzo import MPIIOStrategy

        def program(comm):
            MPIIOStrategy().read_checkpoint(comm, "never-written")

        m = make_machine(2)
        with pytest.raises(RankFailedError) as ei:
            run_spmd(m, program)
        assert isinstance(ei.value.__cause__, OSError)


class TestHandleLifecycles:
    def test_adio_use_after_close(self):
        def program(comm):
            fs = comm.machine.fs
            fs.create("f")
            adio = ADIOFile(fs, "f", comm)
            adio.close()
            with pytest.raises(ValueError, match="closed"):
                adio.read_contig(0, 1)
            with pytest.raises(ValueError, match="closed"):
                adio.write_contig(0, b"x")
            return True

        assert single(program)[0]

    def test_sd_end_twice_is_idempotent(self):
        def program(comm):
            sd = SDFile.start(comm, "f", "w")
            sd.create("x", np.float64, (2,)).write(np.zeros(2))
            sd.end()
            sd.end()  # no error
            return True

        assert single(program)[0]

    def test_h5_dataset_use_after_close(self):
        def program(comm):
            f = H5File.create(comm, "f", driver="sec2")
            d = f.create_dataset("x", (4,), np.float64)
            d.close()
            with pytest.raises(ValueError, match="closed"):
                d.write(np.zeros(4), collective=False)
            f.close()
            return True

        assert single(program)[0]

    def test_h5_close_twice(self):
        def program(comm):
            f = H5File.create(comm, "f", driver="sec2")
            f.close()
            f.close()
            return True

        assert single(program)[0]

    def test_mpiio_file_modes(self):
        def program(comm):
            with pytest.raises(ValueError):
                File.open(comm, "f", "x")
            fh = File.open(comm, "f", "w")
            fh.write_at(0, b"abc")
            fh.close()
            fh = File.open(comm, "f", "a")  # open existing for update
            assert fh.get_size() == 3
            fh.close()
            return True

        assert single(program)[0]

    def test_mpiio_seek_tell(self):
        def program(comm):
            fh = File.open(comm, "f", "w")
            assert fh.tell() == 0
            fh.write(b"0123")
            assert fh.tell() == 4
            fh.seek(1)
            got = fh.read(2)
            assert got == b"12"
            assert fh.tell() == 3
            with pytest.raises(ValueError):
                fh.seek(-1)
            fh.close()
            return True

        assert single(program)[0]


class TestCommEdgeCases:
    def test_dup_isolates_traffic(self):
        def program(comm):
            dup = comm.dup()
            if comm.rank == 0:
                comm.send("on-world", 1, tag=5)
                dup.send("on-dup", 1, tag=5)
            if comm.rank == 1:
                got_dup = dup.recv(0, tag=5)
                got_world = comm.recv(0, tag=5)
                return got_world, got_dup
            return None

        m = make_machine(2)
        res = run_spmd(m, program)
        assert res.results[1] == ("on-world", "on-dup")

    def test_split_comm_rank_is_not_world_rank(self):
        def program(comm):
            sub = comm.split(0 if comm.rank >= 2 else None)
            if sub is None:
                return None
            return (comm.rank, sub.rank)

        m = make_machine(4)
        res = run_spmd(m, program)
        assert res.results[2] == (2, 0)
        assert res.results[3] == (3, 1)

    def test_scatter_wrong_length_fails(self):
        from repro.mpi import collectives as coll

        def program(comm):
            objs = [1] if comm.rank == 0 else None  # wrong length
            coll.scatter(comm, objs, root=0)

        m = make_machine(3)
        with pytest.raises(RankFailedError):
            run_spmd(m, program)

    def test_comm_for_rank_outside_group_rejected(self):
        from repro.mpi.comm import Comm, MpiWorld
        from repro.sim import Engine

        eng = Engine(2)
        world = MpiWorld(engine=eng, machine=make_machine(2))

        def main(proc):
            with pytest.raises(ValueError):
                Comm(world, proc, group=[1 - proc.rank])
            return True

        assert all(eng.run(main))


class TestPartitionedStateErrors:
    def test_collect_empty(self):
        from repro.enzo import PartitionedState

        with pytest.raises(ValueError):
            PartitionedState.collect([])

    def test_collect_missing_piece(self):
        from repro.amr import BlockPartition, make_initial_conditions
        from repro.enzo import HierarchyMeta, PartitionedState

        h = make_initial_conditions((8, 8, 8), seed=0, pre_refine=0)
        meta = HierarchyMeta.from_hierarchy(h)
        part = BlockPartition.for_grid((8, 8, 8), 2)
        broken = PartitionedState(
            rank=0, nprocs=2, meta=meta,
            pieces={h.root_id: None}, partitions={h.root_id: part},
        )
        other = PartitionedState(
            rank=1, nprocs=2, meta=meta,
            pieces={h.root_id: None}, partitions={h.root_id: part},
        )
        with pytest.raises(ValueError, match="missing pieces"):
            PartitionedState.collect([broken, other])
