"""Tests for ENZO building blocks: metadata, layout, sort, state."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.amr import (
    BARYON_FIELDS,
    Grid,
    GridHierarchy,
    ParticleSet,
    make_initial_conditions,
)
from repro.amr.particles import PARTICLE_ARRAYS
from repro.enzo import (
    TOP,
    CheckpointLayout,
    HierarchyMeta,
    RankState,
    WorkloadModel,
    grid_bytes,
    hierarchies_equivalent,
    make_owner_map,
    parallel_sort_by_id,
    table1,
)
from repro.mpi import run_spmd

from .conftest import make_machine


@pytest.fixture(scope="module")
def hierarchy():
    return make_initial_conditions((16, 16, 16), seed=42, pre_refine=1)


class TestHierarchyMeta:
    def test_from_hierarchy(self, hierarchy):
        meta = HierarchyMeta.from_hierarchy(hierarchy)
        assert len(meta) == len(hierarchy)
        assert meta.root.dims == (16, 16, 16)
        assert meta.root.nparticles == len(hierarchy.root.particles)
        assert meta.subgrid_ids() == [g.id for g in hierarchy.subgrids()]

    def test_serialisation_roundtrip(self, hierarchy):
        meta = HierarchyMeta.from_hierarchy(hierarchy)
        again = HierarchyMeta.from_bytes(meta.to_bytes())
        assert meta == again

    def test_byte_accounting_matches_real_data(self, hierarchy):
        meta = HierarchyMeta.from_hierarchy(hierarchy)
        assert meta.total_data_nbytes() == hierarchy.total_data_nbytes()

    def test_root_required(self):
        with pytest.raises(ValueError):
            HierarchyMeta([], root_id=0)


class TestCheckpointLayout:
    def test_extents_are_disjoint_and_dense(self, hierarchy):
        meta = HierarchyMeta.from_hierarchy(hierarchy)
        layout = CheckpointLayout(meta)
        extents = sorted(
            (layout.extent(g, a, k) for (g, k, a) in layout.keys()),
            key=lambda e: e.offset,
        )
        cursor = 0
        for e in extents:
            assert e.offset == cursor  # dense: no holes, no overlap
            cursor = e.end
        assert cursor == layout.total_nbytes
        assert layout.total_nbytes == meta.total_data_nbytes()

    def test_canonical_order(self, hierarchy):
        meta = HierarchyMeta.from_hierarchy(hierarchy)
        layout = CheckpointLayout(meta)
        # Top fields first, in canonical order.
        prev_end = 0
        for name in BARYON_FIELDS:
            e = layout.extent(TOP, name)
            assert e.offset == prev_end
            prev_end = e.end
        # Then top particle arrays.
        for name in PARTICLE_ARRAYS:
            e = layout.extent(TOP, name, "particle")
            assert e.offset == prev_end
            prev_end = e.end

    def test_grid_span(self, hierarchy):
        meta = HierarchyMeta.from_hierarchy(hierarchy)
        layout = CheckpointLayout(meta)
        lo, hi = layout.grid_span(TOP)
        assert lo == 0
        assert hi == sum(
            layout.extent(TOP, n).nbytes for n in BARYON_FIELDS
        ) + sum(
            layout.extent(TOP, n, "particle").nbytes for n in PARTICLE_ARRAYS
        )

    def test_dtypes(self, hierarchy):
        meta = HierarchyMeta.from_hierarchy(hierarchy)
        layout = CheckpointLayout(meta)
        assert layout.extent(TOP, "particle_id", "particle").dtype == np.int64
        assert layout.extent(TOP, "mass", "particle").dtype == np.float64
        assert layout.extent(TOP, "density").dtype == np.float64


def random_particles(n, seed, id_lo=0, id_hi=10**6):
    rng = np.random.default_rng(seed)
    ids = rng.choice(np.arange(id_lo, id_hi), size=n, replace=False)
    return ParticleSet(
        ids=ids.astype(np.int64),
        positions=rng.random((n, 3)),
        velocities=rng.standard_normal((n, 3)),
        mass=rng.random(n),
        attributes=rng.random((n, 2)),
    )


class TestParallelSort:
    @pytest.mark.parametrize("nprocs", [1, 2, 4, 5])
    def test_global_order_and_conservation(self, nprocs):
        per_rank = 40

        def program(comm):
            mine = random_particles(per_rank, seed=comm.rank)
            out, offset, counts = parallel_sort_by_id(comm, mine)
            return out, offset, counts

        res = run_spmd(make_machine(nprocs), program)
        chunks = [r[0] for r in res.results]
        offsets = [r[1] for r in res.results]
        counts = res.results[0][2]
        # Chunks concatenate to the globally sorted sequence.
        merged = ParticleSet.concat(chunks)
        everything = ParticleSet.concat(
            [random_particles(per_rank, seed=r) for r in range(nprocs)]
        )
        assert merged.equal(everything.sort_by_id())
        # Offsets are the exclusive scan of counts.
        assert offsets == [sum(counts[:r]) for r in range(nprocs)]
        assert sum(counts) == nprocs * per_rank

    def test_skewed_distribution(self):
        def program(comm):
            n = 100 if comm.rank == 0 else 2
            mine = random_particles(n, seed=comm.rank + 10)
            out, offset, counts = parallel_sort_by_id(comm, mine)
            assert len(out) == counts[comm.rank]
            # My chunk is internally sorted.
            assert (np.diff(out.ids) >= 0).all()
            return counts

        res = run_spmd(make_machine(4), program)
        assert sum(res.results[0]) == 106

    def test_empty_everywhere(self):
        def program(comm):
            out, offset, counts = parallel_sort_by_id(comm, ParticleSet())
            return len(out), offset, sum(counts)

        res = run_spmd(make_machine(3), program)
        assert all(r == (0, 0, 0) for r in res.results)


class TestRankState:
    def test_from_hierarchy_covers_everything(self, hierarchy):
        nprocs = 4
        states = [
            RankState.from_hierarchy(hierarchy, r, nprocs) for r in range(nprocs)
        ]
        # Top pieces tile the root grid cells.
        assert sum(s.top_piece.ncells for s in states) == hierarchy.root.ncells
        # Every subgrid owned exactly once.
        owned = sorted(g for s in states for g in s.subgrids)
        assert owned == [g.id for g in hierarchy.subgrids()]

    def test_collect_roundtrip(self, hierarchy):
        nprocs = 4
        states = [
            RankState.from_hierarchy(hierarchy, r, nprocs) for r in range(nprocs)
        ]
        rebuilt = RankState.collect(states)
        assert hierarchies_equivalent(rebuilt, hierarchy)

    def test_owner_map_policies(self, hierarchy):
        meta = HierarchyMeta.from_hierarchy(hierarchy)
        lpt = make_owner_map(meta, 4, "lpt")
        rr = make_owner_map(meta, 4, "round_robin")
        assert set(lpt) == set(rr) == set(meta.subgrid_ids())
        with pytest.raises(ValueError):
            make_owner_map(meta, 4, "nope")

    def test_owner_map_meta_matches_hierarchy(self, hierarchy):
        meta = HierarchyMeta.from_hierarchy(hierarchy)
        assert make_owner_map(meta, 3, "lpt") == make_owner_map(
            hierarchy, 3, "lpt"
        )


class TestSizing:
    def test_grid_bytes(self):
        got = grid_bytes((4, 4, 4), 10)
        fields = 64 * 8 * len(BARYON_FIELDS)
        particles = 10 * 8 * len(PARTICLE_ARRAYS)
        assert got == fields + particles

    def test_table1_shape(self):
        rows = table1()
        assert [r["problem"] for r in rows] == ["AMR64", "AMR128", "AMR256"]
        # Volumes grow ~8x per problem-size step.
        for a, b in zip(rows, rows[1:]):
            assert 6 < b["read_mb"] / a["read_mb"] < 9
            assert 6 < b["write_mb"] / a["write_mb"] < 9
        # Writes (multiple dumps) exceed the single initial read.
        for r in rows:
            assert r["write_mb"] > r["read_mb"]

    def test_workload_model_consistency(self):
        m = WorkloadModel(root_dims=(64, 64, 64), ncycles=4, dump_every=2)
        assert m.write_bytes() == 2 * m.hierarchy_bytes()
        assert m.level_cells(0) == 64**3
        assert m.nparticles == int(64**3 * 0.25)
