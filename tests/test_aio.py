"""Tests for ``repro.aio``: the background flush service and overlap.

Covers the progress-engine queue semantics (post/retire order,
backpressure, deferred errors), the ``MPI_File_iwrite``-style request
objects, async-vs-sync byte equivalence and restartability, the Enzo
driver's compute/checkpoint overlap win, and the determinism properties
the regression gate relies on (run-stable and PYTHONHASHSEED-independent
golden digests with background-flush events interleaving compute).
"""

import os
import subprocess
import sys

import numpy as np
import pytest

from repro.aio import AioConfig, AioRequest, ProgressEngine
from repro.core.trace import IOTrace, trace_filesystem
from repro.enzo import RankState, hierarchies_equivalent
from repro.enzo.simulation import EnzoConfig, EnzoSimulation
from repro.insights import Severity, diagnose
from repro.iostack import registry
from repro.mpi import run_spmd
from repro.mpiio import File
from repro.topology.presets import origin2000

NPROCS = 4


class FakeProc:
    """Just enough of a Proc for unit-testing the progress engine."""

    def __init__(self):
        self.clock = 0.0

    def advance_to(self, t):
        self.clock = max(self.clock, t)


# -- config & queue semantics ----------------------------------------------


def test_aio_config_validates():
    assert AioConfig().queue_depth is None  # unbounded by count by default
    with pytest.raises(ValueError):
        AioConfig(queue_depth=0)
    with pytest.raises(ValueError):
        AioConfig(staging_bytes=0)


def test_progress_engine_retires_in_post_order():
    eng = ProgressEngine(AioConfig())
    proc = FakeProc()
    a = eng.post(AioRequest(path="f", nbytes=10, done_time=2.0))
    b = eng.post(AioRequest(path="f", nbytes=20, done_time=5.0))
    assert eng.clock == 5.0  # drain timeline extends to the last post
    assert eng.staged_bytes == 30
    assert not a.test(proc) and not b.test(proc)

    eng.retire_oldest(proc)
    assert a.retired and not b.retired
    assert proc.clock == 2.0
    assert eng.staged_bytes == 20

    eng.drain(proc)
    assert b.retired and proc.clock == 5.0 and eng.staged_bytes == 0


def test_wait_retires_every_older_request_first():
    eng = ProgressEngine(AioConfig())
    proc = FakeProc()
    older = eng.post(AioRequest(path="f", nbytes=1, done_time=1.0))
    newer = eng.post(AioRequest(path="f", nbytes=1, done_time=3.0))
    newer.wait(proc)
    assert older.retired and newer.retired
    assert proc.clock == 3.0


def test_queue_depth_backpressure_blocks_the_poster():
    eng = ProgressEngine(AioConfig(queue_depth=1))
    proc = FakeProc()
    eng.post(AioRequest(path="f", nbytes=1, done_time=4.0))
    eng.reserve(1, proc)  # queue full: must retire the oldest first
    assert proc.clock == 4.0 and len(eng.pending) == 0


def test_staging_bytes_backpressure_blocks_the_poster():
    eng = ProgressEngine(AioConfig(staging_bytes=100))
    proc = FakeProc()
    eng.post(AioRequest(path="f", nbytes=80, done_time=7.0))
    eng.reserve(10, proc)  # fits: no wait
    assert proc.clock == 0.0
    eng.reserve(30, proc)  # would exceed 100 staged bytes
    assert proc.clock == 7.0 and eng.staged_bytes == 0


def test_deferred_error_surfaces_at_retirement_oldest_first():
    eng = ProgressEngine(AioConfig())
    proc = FakeProc()
    boom = OSError("drain failed")
    eng.post(AioRequest(path="f", nbytes=1, done_time=1.0, error=boom))
    ok = eng.post(AioRequest(path="f", nbytes=1, done_time=2.0))
    with pytest.raises(OSError, match="drain failed"):
        ok.wait(proc)  # waiting on the younger request hits the older error
    ok.wait(proc)  # the failed request was consumed; the rest drains
    assert ok.retired


def test_precompleted_request_without_engine():
    req = AioRequest(path="f", nbytes=0, done_time=1.0, retired=True)
    assert req.test(FakeProc())
    req.wait(FakeProc())  # no-op


# -- iwrite request objects through the File layer --------------------------


def test_iwrite_at_returns_pending_request_then_waits():
    machine = origin2000(nprocs=2)
    payload = np.arange(4096, dtype=np.float64)

    def program(comm):
        fh = File.open(comm, "iw", "w", aio=AioConfig())
        req = fh.iwrite_at(0, payload)
        assert isinstance(req, AioRequest)
        pending_at_post = not req.test(comm.proc)
        req.wait(comm.proc)
        done_after_wait = req.test(comm.proc)
        fh.close()
        return pending_at_post, done_after_wait

    res = run_spmd(machine, program, nprocs=2)
    for pending, done in res.results:
        assert pending  # the drain runs ahead of the rank's clock
        assert done
    stored = machine.fs.store.open("iw").read(0, payload.nbytes)
    assert stored == payload.tobytes()


def test_iwrite_without_aio_config_is_precompleted():
    machine = origin2000(nprocs=2)

    def program(comm):
        fh = File.open(comm, "iw-sync", "w")
        req = fh.iwrite_at(0, b"x" * 512)
        ok = req.retired and req.test(comm.proc)
        fh.close()
        return ok

    res = run_spmd(machine, program, nprocs=2)
    assert all(res.results)


# -- async strategy: byte equivalence and restart ---------------------------


@pytest.fixture(scope="module")
def small_config():
    return EnzoConfig(problem="AMR16", ncycles=2, dump_every=1)


def run_enzo(machine, strategy, config, overlap):
    cfg = EnzoConfig(
        problem=config.problem, ncycles=config.ncycles,
        dump_every=config.dump_every, overlap=overlap,
    )
    sim = EnzoSimulation(
        config=cfg, strategy=strategy,
        hierarchy=EnzoSimulation.build_initial_hierarchy(cfg),
    )
    return run_spmd(
        machine, lambda comm: sim.run(comm, base="dump"), nprocs=NPROCS
    )


def test_async_checkpoint_restarts_bit_identical(small_config):
    machine = origin2000(nprocs=NPROCS)
    run_enzo(machine, registry.create("mpi-io-async"), small_config, True)

    # Restart from the overlapped dump with the synchronous reader: the
    # posted writes landed eagerly, so the data files are ordinary.
    strategy = registry.create("mpi-io")
    last = f"dump.cycle{small_config.ncycles:04d}"

    def restart(comm):
        state, _stats = strategy.read_checkpoint(comm, last)
        return state

    res = run_spmd(machine, restart, nprocs=NPROCS)
    rebuilt = RankState.collect(res.results)

    # The same workload written synchronously must agree bit for bit.
    machine2 = origin2000(nprocs=NPROCS)
    run_enzo(machine2, registry.create("mpi-io"), small_config, False)
    res2 = run_spmd(machine2, restart, nprocs=NPROCS)
    assert hierarchies_equivalent(rebuilt, RankState.collect(res2.results))


def test_overlap_beats_sync_on_makespan(small_config):
    sync = run_enzo(
        origin2000(nprocs=NPROCS), registry.create("mpi-io"),
        small_config, False,
    )
    over = run_enzo(
        origin2000(nprocs=NPROCS), registry.create("mpi-io-async"),
        small_config, True,
    )
    assert over.elapsed < sync.elapsed
    # The exposed write time shrinks: the drain hides behind compute.
    exposed = max(s["write_time"] for s in over.results)
    exposed_sync = max(s["write_time"] for s in sync.results)
    assert exposed < exposed_sync


# -- determinism: run-stable and PYTHONHASHSEED-independent -----------------


def traced_async_run():
    machine = origin2000(nprocs=NPROCS)
    cfg = EnzoConfig(problem="AMR16", ncycles=2, dump_every=1, overlap=True)
    sim = EnzoSimulation(
        config=cfg, strategy=registry.create("mpi-io-async"),
        hierarchy=EnzoSimulation.build_initial_hierarchy(cfg),
    )
    trace = trace_filesystem(machine.fs, include_meta=True)
    try:
        run_spmd(machine, lambda comm: sim.run(comm, base="dump"),
                 nprocs=NPROCS)
    finally:
        trace.detach()
    return trace


def test_overlap_event_stream_is_run_stable():
    a, b = traced_async_run(), traced_async_run()
    assert len(a) > 0
    assert a.canonical_events() == b.canonical_events()
    assert a.digest() == b.digest()


_HASHSEED_SCRIPT = """
import sys
sys.path.insert(0, {src!r})
sys.path.insert(0, {tests_parent!r})
from tests.test_aio import traced_async_run
print(traced_async_run().digest())
"""


@pytest.mark.parametrize("hashseed", ["0", "1", "12345"])
def test_overlap_digest_is_hashseed_independent(hashseed):
    """Background-flush events interleaved with compute must not pick up
    str-hash iteration order anywhere in aio/, mpiio/, or the driver."""
    repo = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    script = _HASHSEED_SCRIPT.format(
        src=os.path.join(repo, "src"), tests_parent=repo
    )
    env = dict(os.environ, PYTHONHASHSEED=hashseed)
    out = subprocess.run(
        [sys.executable, "-c", script], env=env, capture_output=True,
        text=True, timeout=300, check=True,
    )
    assert out.stdout.strip() == traced_async_run().digest()


# -- the synchronous-checkpoint-stall detector ------------------------------


def dense_write_trace(n=20, nbytes=1 << 20):
    trace = IOTrace()
    for i in range(n):
        trace.record(op="write", path="dump", offset=i * nbytes,
                     nbytes=nbytes, start=float(i), end=i + 0.9, node=0)
    return trace


def test_stall_rule_warns_on_sync_strategy_and_points_at_async():
    diag = diagnose(dense_write_trace(), nprocs=4,
                    rules=["sync-checkpoint-stall"], strategy="mpi-io")
    warns = diag.findings(Severity.WARN)
    assert len(warns) == 1
    recs = warns[0].recommendations
    assert recs and recs[0].params["to"] == "mpi-io-async"


def test_stall_rule_is_quiet_for_async_strategy():
    diag = diagnose(dense_write_trace(), nprocs=4,
                    rules=["sync-checkpoint-stall"],
                    strategy="mpi-io-async")
    assert diag.count(Severity.WARN) == 0
    assert diag.count(Severity.HIGH) == 0


def test_stall_rule_is_quiet_when_writes_are_sparse():
    trace = IOTrace()
    for i in range(4):
        trace.record(op="write", path="dump", offset=i * 100,
                     nbytes=100, start=i * 50.0, end=i * 50.0 + 0.5, node=0)
    diag = diagnose(trace, nprocs=4, rules=["sync-checkpoint-stall"],
                    strategy="mpi-io")
    assert diag.count(Severity.WARN) == 0
