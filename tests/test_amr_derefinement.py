"""Tests for hierarchy derefinement (grids removed when no longer needed)."""

import numpy as np

from repro.amr import (
    Grid,
    GridHierarchy,
    ParticleSet,
    derefine_hierarchy,
    evolve_hierarchy,
    make_initial_conditions,
    refine_hierarchy,
)


def make_refined(seed=0):
    h = make_initial_conditions((16, 16, 16), seed=seed, pre_refine=1,
                                refine_threshold=1.5)
    assert len(h) > 1
    return h


def test_derefine_removes_cooled_grids():
    h = make_refined()
    # With an absurdly high threshold nothing stays flagged.
    removed = derefine_hierarchy(h, overdensity_threshold=1e9)
    assert removed
    assert len(h) == 1
    assert h.root.child_ids == []


def test_derefine_keeps_active_grids():
    h = make_refined()
    n = len(h)
    # With a very low threshold everything stays flagged.
    removed = derefine_hierarchy(h, overdensity_threshold=0.0)
    assert removed == []
    assert len(h) == n


def test_particles_return_to_parent():
    h = make_refined(seed=2)
    total = h.total_particles()
    derefine_hierarchy(h, overdensity_threshold=1e9)
    assert h.total_particles() == total
    assert len(h.root.particles) == total


def test_refine_derefine_cycle_is_stable():
    """Evolving with refine+derefine keeps the hierarchy bounded and valid."""
    h = make_initial_conditions((16, 16, 16), seed=3, pre_refine=0,
                                refine_threshold=1.8)
    sizes = []
    for _ in range(4):
        evolve_hierarchy(h, dt=0.2)
        refine_hierarchy(h, overdensity_threshold=1.8, max_level=1)
        derefine_hierarchy(h, overdensity_threshold=1.8, keep_fraction=0.02)
        sizes.append(len(h))
        # Structure is always consistent: children within parents.
        for g in h.subgrids():
            parent = h[g.parent_id]
            assert (g.left_edge >= parent.left_edge - 1e-12).all()
            assert (g.right_edge <= parent.right_edge + 1e-12).all()
    assert all(s >= 1 for s in sizes)


def test_derefine_never_touches_root():
    root = Grid.make_root((8, 8, 8))
    root.fields["density"] = np.zeros((8, 8, 8)) + 0.1
    h = GridHierarchy(root)
    assert derefine_hierarchy(h, overdensity_threshold=10.0) == []
    assert len(h) == 1


def test_derefine_skips_grids_with_children():
    h = make_refined(seed=4)
    # Refine one more level so some level-1 grids have children.
    refine_hierarchy(h, overdensity_threshold=1.5, max_level=2)
    with_children = [g.id for g in h.subgrids() if g.child_ids]
    if not with_children:
        return  # nothing to check for this seed
    derefine_hierarchy(h, overdensity_threshold=1e9)
    # Parents with children were not directly removed in the first pass...
    # (their leaves were; a second pass could remove them next cycle.)
    for gid in with_children:
        # Either still present (children removed this pass) or gone via
        # its own subtree removal -- both leave the hierarchy consistent.
        if gid in h:
            assert h[gid].child_ids == []
