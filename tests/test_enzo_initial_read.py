"""Tests for the new-simulation (initial) read path of every strategy."""

import numpy as np
import pytest

from repro.amr import BlockPartition, Grid, make_initial_conditions
from repro.enzo import (
    HDF4Strategy,
    HDF5Strategy,
    MPIIOStrategy,
    RankState,
    hierarchies_equivalent,
)
from repro.enzo.state import PartitionedState
from repro.mpi import run_spmd

from .conftest import make_machine

STRATEGIES = {
    "hdf4": HDF4Strategy,
    "mpi-io": MPIIOStrategy,
    "hdf5": HDF5Strategy,
}


@pytest.fixture(scope="module")
def hierarchy():
    return make_initial_conditions(
        (16, 16, 16), seed=3, pre_refine=1, particles_per_cell=0.5
    )


def write_then_initial_read(hierarchy, cls, write_procs, read_procs):
    m = make_machine(write_procs)

    def wp(comm):
        st = RankState.from_hierarchy(hierarchy, comm.rank, comm.size)
        cls().write_checkpoint(comm, st, "ckpt")

    run_spmd(m, wp)
    m2 = make_machine(read_procs, fs=m.fs)

    def rp(comm):
        state, stats = cls().read_initial(comm, "ckpt")
        return state, stats

    res = run_spmd(m2, rp)
    return [r[0] for r in res.results], [r[1] for r in res.results]


class TestBlockPartitionForGrid:
    def test_large_grid_uses_all_ranks(self):
        part = BlockPartition.for_grid((16, 16, 16), 8)
        assert part.nprocs == 8
        assert part.pgrid == (2, 2, 2)

    def test_small_grid_clamps(self):
        part = BlockPartition.for_grid((1, 1, 4), 8)
        assert part.nprocs <= 4
        assert all(p <= d for p, d in zip(part.pgrid, (1, 1, 4)))

    def test_clamped_blocks_still_tile(self):
        part = BlockPartition.for_grid((3, 2, 5), 16)
        seen = np.zeros((3, 2, 5), dtype=int)
        for r in range(part.nprocs):
            sel = part.slices_of(r)
            seen[sel] += 1
        assert (seen == 1).all()

    def test_largest_axis_gets_largest_factor(self):
        part = BlockPartition.for_grid((100, 2, 2), 8)
        assert part.pgrid[0] == max(part.pgrid)


@pytest.mark.parametrize("name", list(STRATEGIES))
@pytest.mark.parametrize("nprocs", [1, 2, 4])
def test_initial_read_roundtrip(hierarchy, name, nprocs):
    states, stats = write_then_initial_read(hierarchy, STRATEGIES[name], 2, nprocs)
    rebuilt = PartitionedState.collect(states)
    assert hierarchies_equivalent(rebuilt, hierarchy)
    assert all(s.operation == "read_initial" for s in stats)
    assert all(s.elapsed > 0 for s in stats)


@pytest.mark.parametrize("name", list(STRATEGIES))
def test_initial_read_partitions_every_grid(hierarchy, name):
    states, _ = write_then_initial_read(hierarchy, STRATEGIES[name], 2, 4)
    meta = states[0].meta
    for g in meta.grids():
        part = states[0].partitions[g.id]
        pieces = [states[r].pieces[g.id] for r in range(4)]
        active = [p for p in pieces if p is not None]
        assert len(active) == part.nprocs
        # Pieces tile the grid's cells and particles are conserved.
        assert sum(p.ncells for p in active) == g.ncells
        assert sum(len(p.particles) for p in active) == g.nparticles


@pytest.mark.parametrize("name", list(STRATEGIES))
def test_initial_read_particles_live_in_their_piece(hierarchy, name):
    states, _ = write_then_initial_read(hierarchy, STRATEGIES[name], 2, 4)
    for s in states:
        for piece in s.pieces.values():
            if piece is None or len(piece.particles) == 0:
                continue
            assert piece.contains_points(piece.particles.positions).all()


def test_initial_read_more_ranks_than_cells(hierarchy):
    """Grids smaller than the communicator leave trailing ranks empty."""
    # Build a tiny hierarchy whose subgrid is very small.
    h = make_initial_conditions((8, 8, 8), seed=5, pre_refine=1)
    states, _ = write_then_initial_read(h, MPIIOStrategy, 2, 8)
    rebuilt = PartitionedState.collect(states)
    assert hierarchies_equivalent(rebuilt, h)


def test_initial_read_hdf4_funnels_through_rank0(hierarchy):
    """The original path reads every byte on processor 0."""
    m = make_machine(4)

    def wp(comm):
        st = RankState.from_hierarchy(hierarchy, comm.rank, comm.size)
        HDF4Strategy().write_checkpoint(comm, st, "ckpt")

    run_spmd(m, wp)

    def rp(comm):
        _state, stats = HDF4Strategy().read_initial(comm, "ckpt")
        return stats.bytes_moved

    res = run_spmd(make_machine(4, fs=m.fs), rp)
    assert res.results[0] == hierarchy.total_data_nbytes()
    assert all(b == 0 for b in res.results[1:])


def test_initial_read_mpiio_spreads_bytes(hierarchy):
    m = make_machine(4)

    def wp(comm):
        st = RankState.from_hierarchy(hierarchy, comm.rank, comm.size)
        MPIIOStrategy().write_checkpoint(comm, st, "ckpt")

    run_spmd(m, wp)

    def rp(comm):
        _state, stats = MPIIOStrategy().read_initial(comm, "ckpt")
        return stats.bytes_moved

    res = run_spmd(make_machine(4, fs=m.fs), rp)
    # Every rank reads a nontrivial share.
    assert all(b > 0 for b in res.results)
