"""Unit and property tests for striping arithmetic."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.pfs import StripeLayout
from repro.pfs.striped import coalesce_runs


class TestStripeLayout:
    def test_server_round_robin(self):
        lay = StripeLayout(stripe_size=10, nservers=3)
        assert [lay.server_of(o) for o in (0, 9, 10, 20, 30, 35)] == [0, 0, 1, 2, 0, 0]

    def test_local_offset_packs_densely(self):
        lay = StripeLayout(stripe_size=10, nservers=2)
        # Server 0 holds stripes 0, 2, 4... at local offsets 0, 10, 20...
        assert lay.local_offset(0) == 0
        assert lay.local_offset(5) == 5
        assert lay.local_offset(20) == 10
        assert lay.local_offset(25) == 15
        # Server 1 holds stripes 1, 3... at local 0, 10...
        assert lay.local_offset(10) == 0
        assert lay.local_offset(30) == 10

    def test_decompose_single_stripe(self):
        lay = StripeLayout(stripe_size=100, nservers=4)
        [c] = lay.decompose(10, 50)
        assert (c.server, c.file_offset, c.local_offset, c.size) == (0, 10, 10, 50)

    def test_decompose_spans_stripes(self):
        lay = StripeLayout(stripe_size=10, nservers=2)
        chunks = lay.decompose(5, 20)
        assert [(c.server, c.size) for c in chunks] == [(0, 5), (1, 10), (0, 5)]
        assert sum(c.size for c in chunks) == 20

    def test_decompose_empty(self):
        lay = StripeLayout(stripe_size=10, nservers=2)
        assert lay.decompose(5, 0) == []

    def test_servers_touched_small_and_wrapping(self):
        lay = StripeLayout(stripe_size=10, nservers=4)
        assert lay.servers_touched(0, 10) == {0}
        assert lay.servers_touched(5, 10) == {0, 1}
        assert lay.servers_touched(0, 1000) == {0, 1, 2, 3}
        assert lay.servers_touched(0, 0) == set()

    def test_validation(self):
        with pytest.raises(ValueError):
            StripeLayout(stripe_size=0, nservers=1)
        with pytest.raises(ValueError):
            StripeLayout(stripe_size=1, nservers=0)
        lay = StripeLayout(stripe_size=10, nservers=2)
        with pytest.raises(ValueError):
            lay.server_of(-1)
        with pytest.raises(ValueError):
            lay.decompose(0, -1)


class TestCoalesceRuns:
    def test_large_request_becomes_one_run_per_server(self):
        lay = StripeLayout(stripe_size=10, nservers=3)
        runs = coalesce_runs(lay.decompose(0, 90))
        assert len(runs) == 3
        assert sorted((r.server, r.local_offset, r.size) for r in runs) == [
            (0, 0, 30),
            (1, 0, 30),
            (2, 0, 30),
        ]

    def test_disjoint_pieces_stay_separate(self):
        lay = StripeLayout(stripe_size=10, nservers=2)
        chunks = lay.decompose(0, 10) + lay.decompose(40, 10)
        runs = coalesce_runs(chunks)
        # Both pieces are on server 0 (stripes 0 and 4) but local offsets
        # 0..10 and 20..30 are not adjacent.
        assert len(runs) == 2

    def test_empty(self):
        assert coalesce_runs([]) == []


@settings(max_examples=80, deadline=None)
@given(
    stripe=st.integers(1, 64),
    nservers=st.integers(1, 8),
    offset=st.integers(0, 2048),
    nbytes=st.integers(0, 2048),
)
def test_property_decompose_partitions_request(stripe, nservers, offset, nbytes):
    """Chunks exactly tile [offset, offset+nbytes) in order, no overlap."""
    lay = StripeLayout(stripe_size=stripe, nservers=nservers)
    chunks = lay.decompose(offset, nbytes)
    assert sum(c.size for c in chunks) == nbytes
    pos = offset
    for c in chunks:
        assert c.file_offset == pos
        assert c.server == lay.server_of(c.file_offset)
        assert c.local_offset == lay.local_offset(c.file_offset)
        # A chunk never crosses a stripe boundary.
        assert c.file_offset // stripe == (c.file_end - 1) // stripe
        pos = c.file_end
    assert pos == offset + nbytes


@settings(max_examples=80, deadline=None)
@given(
    stripe=st.integers(1, 32),
    nservers=st.integers(1, 6),
    offsets=st.lists(st.integers(0, 500), min_size=0, max_size=10),
)
def test_property_local_offsets_injective_per_server(stripe, nservers, offsets):
    """Two distinct file bytes on one server never share a local offset."""
    lay = StripeLayout(stripe_size=stripe, nservers=nservers)
    seen: dict[tuple[int, int], int] = {}
    for off in offsets:
        key = (lay.server_of(off), lay.local_offset(off))
        if key in seen:
            assert seen[key] == off
        seen[key] = off


@settings(max_examples=60, deadline=None)
@given(
    stripe=st.integers(1, 32),
    nservers=st.integers(1, 6),
    offset=st.integers(0, 512),
    nbytes=st.integers(1, 512),
)
def test_property_coalesced_runs_conserve_bytes(stripe, nservers, offset, nbytes):
    lay = StripeLayout(stripe_size=stripe, nservers=nservers)
    runs = coalesce_runs(lay.decompose(offset, nbytes))
    assert sum(r.size for r in runs) == nbytes
    # Coalescing never produces more runs than chunks, and for a contiguous
    # request at most one run per touched server.
    assert len(runs) <= len(lay.decompose(offset, nbytes))
    assert len(runs) <= max(1, len(lay.servers_touched(offset, nbytes)))


@settings(max_examples=150, deadline=None)
@given(
    stripe=st.integers(1, 48),
    nservers=st.integers(1, 8),
    offset=st.integers(0, 2048),
    nbytes=st.integers(1, 1024),
)
def test_property_server_runs_match_per_byte_map(stripe, nservers, offset, nbytes):
    """The vectorized segment table reconstructs the naive per-byte mapping.

    Ground truth: every byte of the request individually mapped through
    ``server_of``/``local_offset``.  Expanding each ``server_runs`` run to
    its (server, local_offset) byte addresses must reproduce that map
    exactly -- same multiset of addresses, and within each server the same
    contiguous span.
    """
    lay = StripeLayout(stripe_size=stripe, nservers=nservers)
    naive: dict[int, set[int]] = {}
    for o in range(offset, offset + nbytes):
        naive.setdefault(lay.server_of(o), set()).add(lay.local_offset(o))
    runs = lay.server_runs(offset, nbytes)
    expanded: dict[int, set[int]] = {}
    for server, local, size in runs:
        span = set(range(local, local + size))
        # One run per server for a contiguous request; no overlap possible.
        assert server not in expanded
        expanded[server] = span
    assert expanded == naive


@settings(max_examples=150, deadline=None)
@given(
    stripe=st.integers(1, 48),
    nservers=st.integers(1, 8),
    offset=st.integers(0, 2048),
    nbytes=st.integers(0, 1024),
)
def test_property_server_runs_equal_coalesced_decompose(
    stripe, nservers, offset, nbytes
):
    """Closed form == the stripe-walking reference, including run order."""
    lay = StripeLayout(stripe_size=stripe, nservers=nservers)
    closed = lay.server_runs(offset, nbytes)
    walked = [
        (r.server, r.local_offset, r.size)
        for r in coalesce_runs(lay.decompose(offset, nbytes))
    ]
    assert closed == walked
    assert sum(size for _, _, size in closed) == nbytes
