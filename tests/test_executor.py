"""The parallel cell executor: determinism, jobs resolution, CLI wiring.

The tentpole contract is that a cell record is a pure function of its
spec, so fanning the matrix across worker processes must be invisible in
the output: parallel == serial byte-for-byte, down to the JSON artifact.
These tests pin that on a small regress slice (the full matrix is the
slow-marked gate's job) plus the ``--jobs``/``REPRO_JOBS`` semantics.
"""

import json
import pathlib
import shutil

import pytest

from repro.bench.baselines import select_cells
from repro.bench.executor import default_jobs, resolve_jobs, run_cells
from repro.bench.regression import run_matrix
from repro.bench.timings import Telemetry
from repro.cli import main

ROOT = pathlib.Path(__file__).resolve().parent.parent
SLICE = ["fig6:hdf4:2", "fig6:hdf4:4", "fig6:mpi-io:2", "fig6:mpi-io:4"]


def _slice_cells():
    return select_cells(SLICE)


def _canon(records) -> bytes:
    return json.dumps(records, sort_keys=True).encode()


# -- determinism --------------------------------------------------------------


@pytest.mark.slow
def test_parallel_matches_serial_byte_for_byte():
    cells = _slice_cells()
    serial = run_matrix(cells, jobs=1)
    parallel = run_matrix(cells, jobs=4)
    assert _canon(serial) == _canon(parallel)


@pytest.mark.slow
def test_parallel_preserves_cell_order():
    cells = _slice_cells()
    payload = run_matrix(cells, jobs=4)
    assert list(payload["cells"]) == [c.id for c in cells]


@pytest.mark.slow
def test_run_cells_records_worker_telemetry():
    cells = _slice_cells()
    telemetry = Telemetry("regress", jobs=2)
    run_cells("regress", cells, extras={c.id: {"hints": None} for c in cells},
              jobs=2, telemetry=telemetry)
    entries = {e["cell"]: e for e in telemetry.entries}
    assert set(entries) == {c.id for c in cells}
    for e in entries.values():
        assert e["cache"] == "off"
        assert e["wall_us"] > 0
        assert e["worker"] >= 0
        assert e["queue_wait_us"] >= 0
    # dense worker ids: 2 jobs -> ids drawn from {0, 1}
    assert {e["worker"] for e in entries.values()} <= {0, 1}


def test_unknown_family_raises():
    with pytest.raises(ValueError):
        run_cells("no-such-family", [])


# -- jobs resolution ----------------------------------------------------------


def test_default_jobs_clamps_to_cells():
    assert default_jobs(1) == 1
    assert 1 <= default_jobs(64) <= 64


def test_resolve_jobs_explicit():
    assert resolve_jobs(3, n_cells=10) == 3
    # explicit values are taken as-is, not clamped to the cell count
    assert resolve_jobs(8, n_cells=2) == 8


@pytest.mark.parametrize("bad", [0, -1, -8])
def test_resolve_jobs_rejects_nonpositive(bad):
    with pytest.raises(ValueError):
        resolve_jobs(bad, n_cells=4)


def test_resolve_jobs_env_override():
    assert resolve_jobs(None, n_cells=10, env={"REPRO_JOBS": "6"}) == 6
    # env values are clamped to the cell count (no idle workers)
    assert resolve_jobs(None, n_cells=2, env={"REPRO_JOBS": "6"}) == 2


@pytest.mark.parametrize("bad", ["0", "-2", "four"])
def test_resolve_jobs_rejects_bad_env(bad):
    with pytest.raises(ValueError):
        resolve_jobs(None, n_cells=4, env={"REPRO_JOBS": bad})


def test_resolve_jobs_empty_env_means_unset():
    assert resolve_jobs(None, n_cells=1, env={"REPRO_JOBS": ""}) == 1


# -- CLI wiring ---------------------------------------------------------------


@pytest.mark.parametrize("command", ["regress", "scale", "overlap"])
@pytest.mark.parametrize("jobs", ["0", "-2"])
def test_cli_rejects_nonpositive_jobs(command, jobs, capsys):
    assert main([command, "--jobs", jobs]) == 2
    assert "--jobs" in capsys.readouterr().err


def test_cli_rejects_bad_repro_jobs_env(monkeypatch, capsys):
    monkeypatch.setenv("REPRO_JOBS", "zero")
    assert main(["regress", "--cell", "fig6:hdf4:2"]) == 2
    assert "REPRO_JOBS" in capsys.readouterr().err


@pytest.mark.slow
def test_cli_parallel_artifact_matches_serial(tmp_path, monkeypatch):
    monkeypatch.chdir(tmp_path)
    shutil.copy(ROOT / "BENCH_figures.json", tmp_path / "BENCH_figures.json")
    serial = tmp_path / "serial.json"
    parallel = tmp_path / "parallel.json"
    args = ["regress", "--quiet", "--no-cache", "--timings", "",
            "--cell", "fig6:hdf4:2", "--cell", "fig6:mpi-io:2"]
    assert main(args + ["--jobs", "1", "--out", str(serial)]) == 0
    assert main(args + ["--jobs", "4", "--out", str(parallel)]) == 0
    assert serial.read_bytes() == parallel.read_bytes()
