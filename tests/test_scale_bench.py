"""Weak-scaling bench: invariance, batched-path identity, and the gate.

The scale sweep (``repro scale``) runs with every fast path enabled:
batched collectives, batched per-grid requests, hoisted rank states.  These
tests pin what makes that legitimate -- the fast paths change *when* Python
work happens, never *what* gets written:

* doubling P preserves the restart round-trip bit-identically for every
  registered strategy (weak scaling: each P has its own workload);
* per-rank written-payload accounting stays exact at every P;
* a dump with batched collectives produces byte-identical files to the
  legacy per-message path;
* the vectorized particle-exchange rendezvous returns exactly what the
  legacy bucket alltoall returns, rank by rank.
"""

import time

import numpy as np
import pytest

from repro.bench.scale import ScaleCell, build_scale_states, run_scale_cell
from repro.bench.workloads import build_scale_workload
from repro.enzo import RankState, hierarchies_equivalent
from repro.enzo.sort import parallel_sort_by_id
from repro.iostack import registry
from repro.mpi import run_spmd

from .conftest import make_machine

ALL_STRATEGIES = sorted(registry.names())


def _write_program(comm, states, strategy, base):
    return strategy.write_checkpoint(comm, states[comm.rank], base)


def _read_program(comm, strategy, base):
    return strategy.read_checkpoint(comm, base)


def scale_dump(name, nprocs, *, batch=True, batch_requests=True, fs=None):
    """Write the P-sized weak-scaling workload; return (machine, results)."""
    hierarchy = build_scale_workload(nprocs)
    states = build_scale_states(hierarchy, nprocs)
    machine = make_machine(nprocs, fs=fs)
    strategy = registry.create(name)
    if batch_requests:
        strategy.batch_requests = True
    machine.fs.counters.reset()
    res = run_spmd(
        machine,
        _write_program,
        nprocs=nprocs,
        args=(states, strategy, "ckpt"),
        batch_collectives=batch,
    )
    return machine, res


@pytest.mark.parametrize("name", ALL_STRATEGIES)
@pytest.mark.parametrize("nprocs", [4, 8])
def test_roundtrip_bit_identity_under_weak_scaling(name, nprocs):
    """P -> 2P: each P's dump restarts bit-identically to its workload."""
    hierarchy = build_scale_workload(nprocs)
    machine, _ = scale_dump(name, nprocs)
    read_machine = make_machine(nprocs, fs=machine.fs)
    strategy = registry.create(name)
    res = run_spmd(
        read_machine,
        _read_program,
        nprocs=nprocs,
        args=(strategy, "ckpt"),
        batch_collectives=True,
    )
    rebuilt = RankState.collect([r[0] for r in res.results])
    assert hierarchies_equivalent(rebuilt, hierarchy)


@pytest.mark.parametrize("name", ALL_STRATEGIES)
def test_per_rank_byte_accounting(name):
    """Sum of per-rank payload bytes == total checkpoint payload, at every P."""
    for nprocs in (4, 8):
        hierarchy = build_scale_workload(nprocs)
        machine, res = scale_dump(name, nprocs)
        moved = sum(r.bytes_moved for r in res.results)
        assert moved == hierarchy.total_data_nbytes()
        # The file system sees the payload plus format overhead, never less.
        assert machine.fs.counters.bytes_written >= moved


def test_weak_scaling_workload_is_constant_per_rank():
    """Doubling P doubles cells and keeps exactly one subgrid per rank."""
    small, large = build_scale_workload(4), build_scale_workload(8)
    assert large.total_cells() == 2 * small.total_cells()
    assert large.total_data_nbytes() == 2 * small.total_data_nbytes()
    for nprocs, h in ((4, small), (8, large)):
        assert len(h) == nprocs + 1  # root + one level-1 subgrid per rank
        per_rank = [s.ncells for s in h.level_grids(1)]
        assert len(set(per_rank)) == 1


def _store_contents(machine):
    store = machine.fs.store
    return {p: store.open(p).read(0, store.open(p).size)
            for p in store.listdir()}


@pytest.mark.parametrize("name", ["mpi-io", "hdf4"])
def test_batched_collectives_write_identical_files(name):
    """Batched rendezvous vs legacy messages: the stores end up equal."""
    legacy_machine, _ = scale_dump(name, 8, batch=False, batch_requests=False)
    batched_machine, _ = scale_dump(name, 8, batch=True, batch_requests=False)
    legacy, batched = _store_contents(legacy_machine), _store_contents(batched_machine)
    assert sorted(legacy) == sorted(batched)
    for path in legacy:
        assert legacy[path] == batched[path], f"divergent bytes in {path}"


def test_batched_requests_write_identical_files():
    """One batched request per grid file vs one request per array."""
    plain_machine, _ = scale_dump("hdf4", 8, batch=True, batch_requests=False)
    batched_machine, _ = scale_dump("hdf4", 8, batch=True, batch_requests=True)
    assert _store_contents(plain_machine) == _store_contents(batched_machine)


def test_particle_exchange_matches_legacy_alltoall():
    """The vectorized sort rendezvous equals the P x P bucket exchange."""
    hierarchy = build_scale_workload(8)
    states = build_scale_states(hierarchy, 8)

    def program(comm, states):
        local = states[comm.rank].top_piece.particles
        return parallel_sort_by_id(comm, local)

    outs = {}
    for batch in (False, True):
        res = run_spmd(make_machine(8), program, nprocs=8,
                       args=(states,), batch_collectives=batch)
        outs[batch] = res.results
    for (ps_a, off_a, counts_a), (ps_b, off_b, counts_b) in zip(
        outs[False], outs[True]
    ):
        assert off_a == off_b and counts_a == counts_b
        np.testing.assert_array_equal(ps_a.ids, ps_b.ids)
        np.testing.assert_array_equal(ps_a.positions, ps_b.positions)
        np.testing.assert_array_equal(ps_a.velocities, ps_b.velocities)
        np.testing.assert_array_equal(ps_a.mass, ps_b.mass)
        np.testing.assert_array_equal(ps_a.attributes, ps_b.attributes)


def test_scale_cell_matches_committed_baseline():
    """One fast cell of the committed BENCH_scale.json reproduces exactly."""
    from repro.bench.scale import compare_scale, load_scale_baseline

    cell = ScaleCell("origin2000", "hdf4", 16)
    record = run_scale_cell(cell)
    baseline = load_scale_baseline("BENCH_scale.json")
    report = compare_scale({"cells": {cell.id: record}, "trends": []}, baseline)
    assert report.ok, [v["detail"] for v in report.violations]


@pytest.mark.slow
def test_p128_sweep_cell_within_wall_clock_budget():
    """A P=128 collective cell stays far from the interactive-use ceiling.

    Generous on purpose (shared CI hardware): the cell takes ~1 s on a
    laptop; the budget only catches order-of-magnitude regressions of the
    vectorized hot paths.
    """
    start = time.perf_counter()
    record = run_scale_cell(ScaleCell("origin2000", "mpi-io", 128))
    wall = time.perf_counter() - start
    assert record["cells"] == 128 * 8**3 * 2
    assert wall < 60.0, f"P=128 scale cell took {wall:.1f}s (budget 60s)"
