"""Fault-injection modes and spec validation (pfs.base resilience layer)."""

import pytest

from repro.pfs import (
    FAULT_MODES,
    FAULT_OPS,
    FaultSpec,
    FileSystem,
    InjectedIOError,
    TornWriteError,
)


class TestSpecValidation:
    """A silently ignored fault spec makes a fault test vacuously pass, so
    every malformed spec must raise ValueError at arming time."""

    def test_unknown_op_rejected(self):
        with pytest.raises(ValueError, match="unknown op"):
            FileSystem().inject_fault("sync")

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError, match="unknown fault mode"):
            FileSystem().inject_fault("write", mode="sometimes")

    def test_torn_requires_write(self):
        with pytest.raises(ValueError, match="torn"):
            FileSystem().inject_fault("read", mode="torn")
        with pytest.raises(ValueError, match="torn"):
            FileSystem().inject_fault("meta", mode="torn")

    def test_negative_after_rejected(self):
        with pytest.raises(ValueError, match="after"):
            FileSystem().inject_fault("write", after=-1)

    @pytest.mark.parametrize("p", [0.0, -0.5, 1.5])
    def test_probability_range(self, p):
        with pytest.raises(ValueError, match="probability"):
            FileSystem().inject_fault("write", mode="probabilistic",
                                      probability=p)

    def test_negative_min_nbytes_rejected(self):
        with pytest.raises(ValueError, match="min_nbytes"):
            FileSystem().inject_fault("write", min_nbytes=-1)

    @pytest.mark.parametrize("f", [1.0, -0.1, 2.0])
    def test_torn_fraction_range(self, f):
        with pytest.raises(ValueError, match="torn_fraction"):
            FileSystem().inject_fault("write", mode="torn", torn_fraction=f)

    def test_rejected_spec_is_not_armed(self):
        fs = FileSystem()
        fs.create("f")
        with pytest.raises(ValueError):
            fs.inject_fault("write", mode="bogus")
        fs.write("f", 0, b"x")  # nothing armed, nothing fires

    def test_spec_constants(self):
        assert set(FAULT_OPS) == {"read", "write", "meta"}
        assert "torn" in FAULT_MODES
        spec = FaultSpec(op="write", mode="torn")
        assert not spec.exhausted


class TestFiringModes:
    def test_oneshot_disarms_after_firing(self):
        fs = FileSystem()
        fs.create("f")
        spec = fs.inject_fault("write", "f")
        with pytest.raises(InjectedIOError):
            fs.write("f", 0, b"x")
        fs.write("f", 0, b"x")
        assert spec.fired == 1 and spec.exhausted

    def test_persistent_fires_on_every_match(self):
        fs = FileSystem()
        fs.create("f")
        spec = fs.inject_fault("write", "f", mode="persistent")
        for _ in range(3):
            with pytest.raises(InjectedIOError):
                fs.write("f", 0, b"x")
        assert spec.fired == 3 and not spec.exhausted

    def test_persistent_respects_after(self):
        fs = FileSystem()
        fs.create("f")
        fs.inject_fault("write", "f", mode="persistent", after=2)
        fs.write("f", 0, b"x")
        fs.write("f", 0, b"x")
        with pytest.raises(InjectedIOError):
            fs.write("f", 0, b"x")
        with pytest.raises(InjectedIOError):
            fs.write("f", 0, b"x")

    def test_probabilistic_is_seeded_and_reproducible(self):
        def run(seed):
            fs = FileSystem()
            fs.create("f")
            spec = fs.inject_fault(
                "write", "f", mode="probabilistic", probability=0.5, seed=seed
            )
            outcomes = []
            for _ in range(32):
                try:
                    fs.write("f", 0, b"x")
                    outcomes.append(0)
                except InjectedIOError:
                    outcomes.append(1)
            return outcomes, spec.fired

        a, fired_a = run(seed=7)
        b, fired_b = run(seed=7)
        c, _ = run(seed=8)
        assert a == b and fired_a == fired_b
        assert a != c  # a different stream actually changes the pattern
        assert 0 < fired_a < 32  # p=0.5 over 32 draws: some of each

    def test_min_nbytes_filters_small_requests(self):
        fs = FileSystem()
        fs.create("f")
        fs.inject_fault("write", "f", mode="persistent", min_nbytes=100)
        fs.write("f", 0, b"small")  # below the bar, passes
        with pytest.raises(InjectedIOError):
            fs.write("f", 0, b"x" * 100)

    def test_clear_faults_disarms_everything(self):
        fs = FileSystem()
        fs.create("f")
        fs.inject_fault("write", "f", mode="persistent")
        fs.inject_fault("read", "f", mode="persistent")
        fs.clear_faults()
        fs.write("f", 0, b"x")
        fs.read("f", 0, 1)


class TestTornWrites:
    def test_torn_write_persists_prefix_then_raises(self):
        fs = FileSystem()
        fs.create("f")
        fs.write("f", 0, b"\xff" * 8)
        fs.inject_fault("write", "f", mode="torn", torn_fraction=0.5)
        with pytest.raises(TornWriteError):
            fs.write("f", 0, b"ABCDEFGH")
        # First half landed, second half still holds the old bytes.
        f = fs.store.open("f")
        assert bytes(f.read(0, 8)) == b"ABCD" + b"\xff" * 4

    def test_torn_is_a_subclass_of_injected(self):
        # The retry layer catches InjectedIOError; torn writes must be
        # retryable through the same path.
        assert issubclass(TornWriteError, InjectedIOError)

    def test_torn_disarms_so_a_retry_heals_the_file(self):
        fs = FileSystem()
        fs.create("f")
        fs.inject_fault("write", "f", mode="torn", torn_fraction=0.25)
        with pytest.raises(TornWriteError):
            fs.write("f", 0, b"ABCDEFGH")
        fs.write("f", 0, b"ABCDEFGH")  # the retry: same bytes, same offset
        assert bytes(fs.store.open("f").read(0, 8)) == b"ABCDEFGH"

    def test_torn_zero_fraction_persists_nothing(self):
        fs = FileSystem()
        fs.create("f")
        fs.inject_fault("write", "f", mode="torn", torn_fraction=0.0)
        with pytest.raises(TornWriteError):
            fs.write("f", 0, b"ABCD")
        assert bytes(fs.store.open("f").read(0, 4)) == b"\x00" * 4

    def test_torn_list_write_tears_the_segment_stream(self):
        fs = FileSystem()
        fs.create("f")
        fs.inject_fault("write", "f", mode="torn", torn_fraction=0.5)
        with pytest.raises(TornWriteError):
            fs.write_list("f", [(0, 4), (8, 4)], b"AAAABBBB")
        f = fs.store.open("f")
        assert bytes(f.read(0, 4)) == b"AAAA"  # first segment persisted
        assert bytes(f.read(8, 4)) == b"\x00" * 4  # second never arrived

    def test_counters_track_partial_bytes(self):
        fs = FileSystem()
        fs.create("f")
        fs.inject_fault("write", "f", mode="torn", torn_fraction=0.5)
        with pytest.raises(TornWriteError):
            fs.write("f", 0, b"x" * 100)
        assert fs.counters.bytes_written == 50


class TestRecoveryNotification:
    def test_notify_recovery_counts_and_resets(self):
        fs = FileSystem()
        fs.notify_recovery("f", "retry", attempt=1)
        fs.notify_recovery("f", "recovered", attempt=1)
        assert fs.counters.recoveries == 2
        fs.counters.reset()
        assert fs.counters.recoveries == 0
