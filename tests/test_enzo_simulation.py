"""Tests for the ENZO simulation driver (evolve -> dump -> restart)."""

import pytest

from repro.enzo import (
    EnzoConfig,
    EnzoSimulation,
    HDF4Strategy,
    MPIIOStrategy,
    RankState,
    hierarchies_equivalent,
)
from repro.mpi import run_spmd

from .conftest import make_machine


def make_sim(strategy=None, **cfg_kw):
    defaults = dict(problem="AMR16", ncycles=2, max_level=1,
                    refine_threshold=2.0)
    defaults.update(cfg_kw)
    config = EnzoConfig(**defaults)
    return EnzoSimulation(
        config=config,
        strategy=strategy or MPIIOStrategy(),
        hierarchy=EnzoSimulation.build_initial_hierarchy(config),
    )


class TestEnzoConfig:
    def test_root_dims(self):
        assert EnzoConfig(problem="AMR64").root_dims == (64, 64, 64)
        with pytest.raises(ValueError):
            EnzoConfig(problem="AMR9000").root_dims

    def test_n_dumps(self):
        assert EnzoConfig(ncycles=6, dump_every=2).n_dumps() == 3
        assert EnzoConfig(ncycles=3, dump_every=1).n_dumps() == 3


class TestSimulationRun:
    @pytest.mark.parametrize("nprocs", [1, 4])
    def test_run_produces_dumps(self, nprocs):
        sim = make_sim()
        m = make_machine(nprocs)
        res = run_spmd(m, lambda c: sim.run(c, base="x"), nprocs=nprocs)
        summary = res.results[0]
        assert summary["dumps"] == ["x.cycle0001", "x.cycle0002"]
        assert summary["cycles"] == 2
        assert len(summary["write_stats"]) == 2
        # Checkpoint files really exist.
        assert m.fs.exists("x.cycle0002")
        assert m.fs.exists("x.cycle0002.hierarchy")

    def test_dump_every(self):
        sim = make_sim(ncycles=4, dump_every=2)
        m = make_machine(2)
        res = run_spmd(m, lambda c: sim.run(c, base="y"), nprocs=2)
        assert res.results[0]["dumps"] == ["y.cycle0002", "y.cycle0004"]

    def test_evolution_changes_dump_content(self):
        sim = make_sim(ncycles=2)
        m = make_machine(2)
        run_spmd(m, lambda c: sim.run(c, base="z"), nprocs=2)
        f1 = m.fs.store.open("z.cycle0001")
        f2 = m.fs.store.open("z.cycle0002")
        assert f1.read(0, f1.size) != f2.read(0, f2.size)

    def test_restart_recovers_final_state(self):
        sim = make_sim()
        m = make_machine(4)
        res = run_spmd(m, lambda c: sim.run(c, base="r"), nprocs=4)
        last = res.results[0]["dumps"][-1]
        restart = run_spmd(m, lambda c: sim.restart(c, last), nprocs=4)
        rebuilt = RankState.collect(restart.results)
        assert hierarchies_equivalent(rebuilt, sim.hierarchy)
        assert len(sim.read_stats) == 4  # one per rank

    def test_restart_with_hdf4(self):
        sim = make_sim(strategy=HDF4Strategy())
        m = make_machine(3)
        res = run_spmd(m, lambda c: sim.run(c, base="h"), nprocs=3)
        last = res.results[0]["dumps"][-1]
        restart = run_spmd(m, lambda c: sim.restart(c, last), nprocs=3)
        rebuilt = RankState.collect(restart.results)
        assert hierarchies_equivalent(rebuilt, sim.hierarchy)

    def test_run_requires_hierarchy(self):
        config = EnzoConfig(problem="AMR16")
        sim = EnzoSimulation(config=config, strategy=MPIIOStrategy())
        m = make_machine(1)
        from repro.sim import RankFailedError

        with pytest.raises(RankFailedError):
            run_spmd(m, lambda c: sim.run(c), nprocs=1)

    def test_compute_time_charged_per_cycle(self):
        sim = make_sim()
        m = make_machine(2)
        res = run_spmd(m, lambda c: (sim.run(c), c.clock)[1], nprocs=2)
        assert all(t > 0 for t in res.results)

    def test_refinement_grows_hierarchy(self):
        sim = make_sim(ncycles=1, max_level=2, refine_threshold=1.5)
        before = len(sim.hierarchy)
        m = make_machine(2)
        run_spmd(m, lambda c: sim.run(c, base="g"), nprocs=2)
        assert len(sim.hierarchy) >= before


class TestResume:
    def test_resume_continues_from_checkpoint(self):
        sim = make_sim(ncycles=2)
        m = make_machine(3)
        res = run_spmd(m, lambda c: sim.run(c, base="a"), nprocs=3)
        last = res.results[0]["dumps"][-1]
        grids_before = len(sim.hierarchy)

        # A fresh simulation object resumes from the dump on a new machine
        # sharing the same file system.
        sim2 = make_sim(ncycles=1)
        sim2.hierarchy = None
        m2 = make_machine(3, fs=m.fs)
        res2 = run_spmd(
            m2, lambda c: sim2.resume(c, last, base="b"), nprocs=3
        )
        summary = res2.results[0]
        assert summary["dumps"] == ["b.cycle0001"]
        assert m2.fs.exists("b.cycle0001")
        # The resumed run started from the dumped state (same or more grids
        # after one more refinement step).
        assert summary["grids"] >= 1
        assert len(sim2.read_stats) == 3

    def test_resumed_state_matches_original(self):
        """Resume with zero extra cycles reproduces the dumped hierarchy."""
        from repro.enzo import hierarchies_equivalent

        sim = make_sim(ncycles=1)
        m = make_machine(2)
        res = run_spmd(m, lambda c: sim.run(c, base="x"), nprocs=2)
        last = res.results[0]["dumps"][-1]

        sim2 = make_sim(ncycles=0)
        sim2.hierarchy = None
        m2 = make_machine(2, fs=m.fs)
        run_spmd(m2, lambda c: sim2.resume(c, last, base="y"), nprocs=2)
        assert hierarchies_equivalent(sim2.hierarchy, sim.hierarchy)
