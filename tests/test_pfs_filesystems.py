"""Tests for the file-system timing models (null, striped, local-disk)."""

import pytest

from repro.pfs import (
    BlockStore,
    FileSystem,
    LocalDiskFS,
    LRUCache,
    StripedServerFS,
)
from repro.topology import Network


def make_striped(**kw):
    defaults = dict(
        nservers=4,
        stripe_size=100,
        disk_bandwidth=1000.0,
        seek_time=0.0,
        request_cpu_time=0.0,
        net_latency=0.0,
    )
    defaults.update(kw)
    return StripedServerFS("testfs", **defaults)


class TestNullFileSystem:
    def test_data_roundtrip_zero_cost(self):
        fs = FileSystem()
        fs.create("f")
        t = fs.write("f", 0, b"abc", ready_time=5.0)
        assert t == 5.0
        data, t = fs.read("f", 0, 3, ready_time=7.0)
        assert data == b"abc"
        assert t == 7.0

    def test_counters(self):
        fs = FileSystem()
        fs.create("f")
        fs.write("f", 0, b"abcd")
        fs.read("f", 0, 2)
        assert fs.counters.writes == 1
        assert fs.counters.reads == 1
        assert fs.counters.bytes_written == 4
        assert fs.counters.bytes_read == 2
        fs.counters.reset()
        assert fs.counters.writes == 0

    def test_open_missing_fails_open_create_succeeds(self):
        fs = FileSystem()
        with pytest.raises(OSError):
            fs.open("nope")
        fs.open("nope", create=True)
        assert fs.exists("nope")

    def test_file_size(self):
        fs = FileSystem()
        fs.create("f")
        fs.write("f", 10, b"xy")
        assert fs.file_size("f") == 12


class TestStripedServerFS:
    def test_data_roundtrip(self):
        fs = make_striped()
        fs.create("f")
        payload = bytes(range(256)) * 4
        fs.write("f", 37, payload)
        data, _ = fs.read("f", 37, len(payload))
        assert data == payload

    def test_large_write_parallelises_over_servers(self):
        # 400 bytes over 4 servers at 1000 B/s disks: 100 B each -> 0.1 s,
        # vs 0.4 s if a single disk had to absorb it.
        fs = make_striped()
        fs.create("f")
        t = fs.write("f", 0, b"x" * 400, ready_time=0.0)
        assert t == pytest.approx(0.1)

    def test_single_stripe_write_hits_one_disk(self):
        fs = make_striped()
        fs.create("f")
        t = fs.write("f", 0, b"x" * 100, ready_time=0.0)
        assert t == pytest.approx(0.1)

    def test_seek_penalty_for_noncontiguous_access(self):
        fs = make_striped(seek_time=0.5, nservers=1)
        fs.create("f")
        t1 = fs.write("f", 0, b"x" * 100, ready_time=0.0)  # seek + 0.1
        t2 = fs.write("f", 100, b"x" * 100, ready_time=t1)  # sequential
        t3 = fs.write("f", 500, b"x" * 100, ready_time=t2)  # seek again
        assert t1 == pytest.approx(0.6)
        assert t2 == pytest.approx(0.7)
        assert t3 == pytest.approx(1.3)

    def test_read_cache_hit_skips_disk(self):
        fs = make_striped(nservers=1, cache_bytes_per_server=10_000)
        fs.create("f")
        t = fs.write("f", 0, b"x" * 100)
        _, t1 = fs.read("f", 0, 100, ready_time=t)
        # Write-through populated the cache: read costs no disk time.
        assert t1 == pytest.approx(t)

    def test_cold_read_pays_disk(self):
        fs = make_striped(nservers=1)
        fs.create("f")
        t = fs.write("f", 0, b"x" * 100)
        _, t1 = fs.read("f", 0, 100, ready_time=t)
        assert t1 == pytest.approx(t + 0.1)

    def test_request_cpu_charged_per_run(self):
        fs = make_striped(nservers=1, request_cpu_time=1.0)
        fs.create("f")
        # 300 bytes on one server is one coalesced run -> one CPU charge.
        t = fs.write("f", 0, b"x" * 300)
        assert t == pytest.approx(1.0 + 0.3)

    def test_write_token_thrash_between_nodes(self):
        fs = make_striped(nservers=1, write_token_time=1.0)
        fs.create("f")
        t0 = fs.write("f", 0, b"x" * 50, node=0, ready_time=0.0)
        base = t0
        # Same node, same stripe: no revocation.
        t1 = fs.write("f", 50, b"x" * 50, node=0, ready_time=base)
        # Different node touching the same stripe: one revocation.
        t2 = fs.write("f", 0, b"x" * 50, node=1, ready_time=t1)
        assert t1 - t0 < 1.0
        assert t2 - t1 > 1.0
        assert fs.token_revocations == 1

    def test_first_writer_pays_no_token(self):
        fs = make_striped(nservers=4, write_token_time=1.0)
        fs.create("f")
        t = fs.write("f", 0, b"x" * 400, node=0)
        assert t < 1.0
        assert fs.token_revocations == 0

    def test_smp_io_queue_serialises_node_requests(self):
        fs = make_striped(nservers=4, smp_io_queue_time=1.0)
        fs.create("f")
        # Two ranks on the same node (node_of_client maps both to node 0).
        fs.node_of_client = lambda c: 0
        t1 = fs.write("f", 0, b"x" * 100, node=0, ready_time=0.0)
        t2 = fs.write("f", 100, b"x" * 100, node=1, ready_time=0.0)
        assert t1 == pytest.approx(1.1)
        assert t2 == pytest.approx(2.1)  # queued behind rank 0's request

    def test_client_network_coupling(self):
        net = Network(2, latency=0.0, bandwidth=100.0)
        fs = make_striped(client_network=net, node_of_client=lambda c: c)
        fs.create("f")
        fs.write("f", 0, b"x" * 100, node=0)
        # The payload crossed node 0's egress link.
        assert net.egress[0].busy_time == pytest.approx(1.0)

    def test_metadata_cost(self):
        fs = make_striped(metadata_time=0.25, net_latency=0.1)
        t = fs.create("f", ready_time=0.0)
        assert t == pytest.approx(0.1 + 0.25 + 0.1)

    def test_zero_byte_ops_are_free(self):
        fs = make_striped()
        fs.create("f")
        assert fs.write("f", 0, b"", ready_time=3.0) == 3.0
        _, t = fs.read("f", 0, 0, ready_time=4.0)
        assert t == 4.0

    def test_shared_store_between_filesystems(self):
        store = BlockStore()
        fs1 = make_striped(store=store)
        fs2 = make_striped(store=store)
        fs1.create("f")
        fs1.write("f", 0, b"shared")
        data, _ = fs2.read("f", 0, 6)
        assert data == b"shared"


class TestLocalDiskFS:
    def make(self, **kw):
        defaults = dict(nnodes=4, disk_bandwidth=1000.0, seek_time=0.0)
        defaults.update(kw)
        return LocalDiskFS(**defaults)

    def test_data_roundtrip(self):
        fs = self.make()
        fs.create("f", node=2)
        fs.write("f", 0, b"abc", node=2)
        data, _ = fs.read("f", 0, 3, node=2)
        assert data == b"abc"

    def test_files_stick_to_first_node(self):
        fs = self.make()
        fs.create("f", node=1)
        fs.write("f", 0, b"x" * 100, node=1)
        # Another node accessing the same file uses node 1's disk.
        fs.write("f", 100, b"x" * 100, node=3)
        assert fs.placement["f"] == 1
        assert fs.disks[1].busy_time == pytest.approx(0.2)
        assert fs.disks[3].busy_time == 0.0

    def test_independent_disks_do_not_contend(self):
        fs = self.make()
        for n in range(4):
            fs.create(f"f{n}", node=n)
        times = [fs.write(f"f{n}", 0, b"x" * 1000, node=n) for n in range(4)]
        assert all(t == pytest.approx(1.0) for t in times)

    def test_seek_model(self):
        fs = self.make(seek_time=0.5, nnodes=1)
        fs.create("f", node=0)
        t1 = fs.write("f", 0, b"x" * 100, node=0)
        t2 = fs.write("f", 100, b"x" * 100, node=0, ready_time=t1)
        assert t1 == pytest.approx(0.6)
        assert t2 == pytest.approx(t1 + 0.1)

    def test_cache(self):
        fs = self.make(cache_bytes_per_node=1 << 20)
        fs.create("f", node=0)
        t = fs.write("f", 0, b"x" * 500, node=0)
        _, t2 = fs.read("f", 0, 500, node=0, ready_time=t)
        assert t2 == pytest.approx(t)

    def test_integration_report(self):
        fs = self.make()
        fs.create("a", node=0)
        fs.create("b", node=1)
        fs.create("c", node=1)
        assert fs.files_needing_integration() == {0: ["a"], 1: ["b", "c"]}

    def test_validation(self):
        with pytest.raises(ValueError):
            LocalDiskFS(nnodes=0, disk_bandwidth=1.0, seek_time=0.0)


class TestLRUCache:
    def test_zero_capacity_always_misses(self):
        c = LRUCache(capacity_bytes=0)
        assert c.lookup("f", 0, 100) == 100
        assert c.hits == 0

    def test_hit_after_populate(self):
        c = LRUCache(capacity_bytes=1 << 20, block_size=100)
        c.populate("f", 0, 100)
        assert c.lookup("f", 0, 100) == 0
        assert c.hits == 1

    def test_partial_hit(self):
        c = LRUCache(capacity_bytes=1 << 20, block_size=100)
        c.populate("f", 0, 100)
        missing = c.lookup("f", 0, 200)
        assert missing == 100

    def test_eviction_is_lru(self):
        c = LRUCache(capacity_bytes=200, block_size=100)  # 2 blocks
        c.populate("f", 0, 100)  # block 0
        c.populate("f", 100, 100)  # block 1
        c.lookup("f", 0, 100)  # touch block 0
        c.populate("f", 200, 100)  # evicts block 1 (LRU)
        assert c.lookup("f", 0, 100) == 0
        assert c.lookup("f", 100, 100) == 100

    def test_invalidate(self):
        c = LRUCache(capacity_bytes=1 << 20, block_size=100)
        c.populate("f", 0, 300)
        c.populate("g", 0, 100)
        c.invalidate("f")
        assert c.lookup("f", 0, 100) == 100
        assert c.lookup("g", 0, 100) == 0
