"""Collective-operation tests across communicator sizes (incl. non-powers of 2)."""

import numpy as np
import pytest

from repro.mpi import collectives as coll
from repro.mpi import run_spmd

from .conftest import make_machine

SIZES = [1, 2, 3, 4, 5, 8]


@pytest.mark.parametrize("size", SIZES)
def test_barrier_completes(size):
    m = make_machine(size)

    def program(comm):
        coll.barrier(comm)
        return True

    assert run_spmd(m, program).results == [True] * size


def test_barrier_synchronises_clocks():
    m = make_machine(4, latency=1e-3)

    def program(comm):
        comm.compute(float(comm.rank))  # rank 3 is 3s behind rank 0
        coll.barrier(comm)
        return comm.clock

    res = run_spmd(m, program)
    assert all(t >= 3.0 for t in res.results)


@pytest.mark.parametrize("size", SIZES)
@pytest.mark.parametrize("root", [0, "last"])
def test_bcast(size, root):
    root = size - 1 if root == "last" else 0
    m = make_machine(size)

    def program(comm):
        obj = {"payload": 42} if comm.rank == root else None
        return coll.bcast(comm, obj, root=root)

    res = run_spmd(m, program)
    assert res.results == [{"payload": 42}] * size


@pytest.mark.parametrize("size", SIZES)
@pytest.mark.parametrize("root", [0, "mid"])
def test_gather(size, root):
    root = size // 2 if root == "mid" else 0
    m = make_machine(size)

    def program(comm):
        return coll.gather(comm, comm.rank * 2, root=root)

    res = run_spmd(m, program)
    for r, out in enumerate(res.results):
        if r == root:
            assert out == [i * 2 for i in range(size)]
        else:
            assert out is None


@pytest.mark.parametrize("size", SIZES)
@pytest.mark.parametrize("root", [0, "last"])
def test_scatter(size, root):
    root = size - 1 if root == "last" else 0
    m = make_machine(size)

    def program(comm):
        objs = [f"item{r}" for r in range(comm.size)] if comm.rank == root else None
        return coll.scatter(comm, objs, root=root)

    res = run_spmd(m, program)
    assert res.results == [f"item{r}" for r in range(size)]


def test_scatter_gather_roundtrip():
    m = make_machine(5)

    def program(comm):
        objs = None
        if comm.rank == 0:
            objs = [np.full(3, r) for r in range(comm.size)]
        mine = coll.scatter(comm, objs, root=0)
        back = coll.gather(comm, mine, root=0)
        if comm.rank == 0:
            return [a.tolist() for a in back]
        return None

    res = run_spmd(m, program)
    assert res.results[0] == [[r] * 3 for r in range(5)]


@pytest.mark.parametrize("size", SIZES)
def test_allgather(size):
    m = make_machine(size)

    def program(comm):
        return coll.allgather(comm, comm.rank**2)

    res = run_spmd(m, program)
    expected = [r * r for r in range(size)]
    assert res.results == [expected] * size


@pytest.mark.parametrize("size", SIZES)
def test_alltoall(size):
    m = make_machine(size)

    def program(comm):
        objs = [(comm.rank, d) for d in range(comm.size)]
        return coll.alltoall(comm, objs)

    res = run_spmd(m, program)
    for r, out in enumerate(res.results):
        assert out == [(s, r) for s in range(size)]


def test_alltoall_numpy_payloads():
    m = make_machine(4)

    def program(comm):
        objs = [np.full(2, comm.rank * 10 + d) for d in range(comm.size)]
        got = coll.alltoall(comm, objs)
        return [a.tolist() for a in got]

    res = run_spmd(m, program)
    for r, out in enumerate(res.results):
        assert out == [[s * 10 + r] * 2 for s in range(4)]


@pytest.mark.parametrize("size", SIZES)
def test_reduce_sum(size):
    m = make_machine(size)

    def program(comm):
        return coll.reduce(comm, comm.rank + 1, op=coll.SUM, root=0)

    res = run_spmd(m, program)
    assert res.results[0] == size * (size + 1) // 2


@pytest.mark.parametrize("op,expected", [(coll.MAX, 7), (coll.MIN, 0), (coll.SUM, 28)])
def test_allreduce_ops(op, expected):
    m = make_machine(8)

    def program(comm):
        return coll.allreduce(comm, comm.rank, op=op)

    res = run_spmd(m, program)
    assert res.results == [expected] * 8


def test_allreduce_numpy_arrays():
    m = make_machine(4)

    def program(comm):
        return coll.allreduce(comm, np.array([comm.rank, 1.0]))

    res = run_spmd(m, program)
    for out in res.results:
        np.testing.assert_allclose(out, [6.0, 4.0])


@pytest.mark.parametrize("size", SIZES)
def test_exscan_sum(size):
    m = make_machine(size)

    def program(comm):
        return coll.exscan(comm, comm.rank + 1)

    res = run_spmd(m, program)
    assert res.results == [sum(range(1, r + 1)) for r in range(size)]


def test_exscan_custom_op():
    m = make_machine(4)

    def program(comm):
        return coll.exscan(comm, comm.rank + 1, op=coll.MAX)

    res = run_spmd(m, program)
    assert res.results == [None, 1, 2, 3]


def test_split_into_two_groups():
    m = make_machine(6)

    def program(comm):
        color = comm.rank % 2
        sub = comm.split(color)
        local = coll.allgather(sub, comm.rank)
        return (sub.rank, sub.size, local)

    res = run_spmd(m, program)
    for world_rank, (sub_rank, sub_size, members) in enumerate(res.results):
        assert sub_size == 3
        assert members == [r for r in range(6) if r % 2 == world_rank % 2]
        assert members[sub_rank] == world_rank


def test_split_with_none_color():
    m = make_machine(4)

    def program(comm):
        sub = comm.split(0 if comm.rank < 2 else None)
        if sub is None:
            return None
        return coll.allgather(sub, comm.rank)

    res = run_spmd(m, program)
    assert res.results == [[0, 1], [0, 1], None, None]


def test_split_key_reorders_ranks():
    m = make_machine(4)

    def program(comm):
        sub = comm.split(0, key=-comm.rank)  # reverse order
        return sub.rank

    res = run_spmd(m, program)
    assert res.results == [3, 2, 1, 0]


def test_collectives_on_subcommunicator_do_not_crosstalk():
    m = make_machine(4)

    def program(comm):
        sub = comm.split(comm.rank // 2)
        a = coll.allreduce(sub, comm.rank)
        b = coll.allreduce(comm, comm.rank)
        return (a, b)

    res = run_spmd(m, program)
    assert res.results == [(1, 6), (1, 6), (5, 6), (5, 6)]


def test_gather_scatter_large_numpy_volume():
    m = make_machine(4)

    def program(comm):
        arr = np.full(10_000, comm.rank, dtype=np.float64)
        parts = coll.gather(comm, arr, root=0)
        if comm.rank == 0:
            total = np.concatenate(parts)
            assert total.shape == (40_000,)
            return float(total.sum())
        return None

    res = run_spmd(m, program)
    assert res.results[0] == pytest.approx(10_000 * (0 + 1 + 2 + 3))
