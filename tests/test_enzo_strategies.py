"""Integration tests: checkpoint write + restart round-trips per strategy."""

import numpy as np
import pytest

from repro.amr import make_initial_conditions
from repro.enzo import (
    HDF4Strategy,
    HDF5Strategy,
    MPIIOStrategy,
    RankState,
    hierarchies_equivalent,
)
from repro.mpi import run_spmd

from .conftest import make_machine

STRATEGIES = {
    "hdf4": HDF4Strategy,
    "mpi-io": MPIIOStrategy,
    "hdf5": HDF5Strategy,
}


@pytest.fixture(scope="module")
def hierarchy():
    return make_initial_conditions(
        (16, 16, 16), seed=7, pre_refine=1, particles_per_cell=0.5
    )


def dump_and_restart(hierarchy, strategy_cls, nprocs, restart_procs=None):
    """Write a checkpoint on ``nprocs`` ranks, read it on ``restart_procs``."""
    restart_procs = restart_procs or nprocs
    write_machine = make_machine(nprocs)

    def write_program(comm):
        state = RankState.from_hierarchy(hierarchy, comm.rank, comm.size)
        strategy = strategy_cls()
        return strategy.write_checkpoint(comm, state, "ckpt")

    wres = run_spmd(write_machine, write_program)

    read_machine = make_machine(restart_procs, fs=write_machine.fs)

    def read_program(comm):
        strategy = strategy_cls()
        state, stats = strategy.read_checkpoint(comm, "ckpt")
        return state, stats

    rres = run_spmd(read_machine, read_program)
    states = [r[0] for r in rres.results]
    return wres, rres, RankState.collect(states)


@pytest.mark.parametrize("name", list(STRATEGIES))
@pytest.mark.parametrize("nprocs", [1, 2, 4])
def test_checkpoint_roundtrip(hierarchy, name, nprocs):
    _, _, rebuilt = dump_and_restart(hierarchy, STRATEGIES[name], nprocs)
    assert hierarchies_equivalent(rebuilt, hierarchy)


@pytest.mark.parametrize("name", list(STRATEGIES))
def test_restart_at_different_proc_count(hierarchy, name):
    """Write with 4 ranks, restart with 2 and with 6."""
    for restart_procs in (2, 6):
        _, _, rebuilt = dump_and_restart(
            hierarchy, STRATEGIES[name], 4, restart_procs
        )
        assert hierarchies_equivalent(rebuilt, hierarchy)


def test_cross_strategy_checkpoints_agree(hierarchy):
    """A checkpoint written by any strategy restores the same hierarchy."""
    _, _, via_mpiio = dump_and_restart(hierarchy, MPIIOStrategy, 4)
    _, _, via_hdf4 = dump_and_restart(hierarchy, HDF4Strategy, 2)
    _, _, via_hdf5 = dump_and_restart(hierarchy, HDF5Strategy, 3)
    assert hierarchies_equivalent(via_mpiio, via_hdf4)
    assert hierarchies_equivalent(via_mpiio, via_hdf5)


@pytest.mark.parametrize("name", list(STRATEGIES))
def test_write_stats_structure(hierarchy, name):
    wres, rres, _ = dump_and_restart(hierarchy, STRATEGIES[name], 2)
    for stats in wres.results:
        assert stats.operation == "write"
        assert stats.elapsed > 0
        assert set(stats.phases) >= {"top_fields", "top_particles", "subgrids"} or (
            name == "hdf4"
        )
        assert stats.bytes_moved >= 0
    read_stats = [r[1] for r in rres.results]
    assert all(s.operation == "read" for s in read_stats)
    # Total bytes written across ranks equals the hierarchy data volume.
    total_written = sum(s.bytes_moved for s in wres.results)
    assert total_written == hierarchy.total_data_nbytes()


def test_hdf4_gathers_to_rank0(hierarchy):
    """The HDF4 baseline funnels the top grid through processor 0."""
    nprocs = 4
    machine = make_machine(nprocs)

    def program(comm):
        state = RankState.from_hierarchy(hierarchy, comm.rank, comm.size)
        HDF4Strategy().write_checkpoint(comm, state, "ckpt")
        return None

    run_spmd(machine, program)
    # All messages funnelled into node 0's ingress during the gather.
    assert machine.network.ingress[0].requests > 0


def test_mpiio_uses_collective_io(hierarchy):
    """MPI-IO strategy produces far fewer, larger fs writes than naive."""
    nprocs = 4
    machine = make_machine(nprocs)

    def program(comm):
        state = RankState.from_hierarchy(hierarchy, comm.rank, comm.size)
        MPIIOStrategy().write_checkpoint(comm, state, "ckpt")
        return None

    run_spmd(machine, program)
    writes = machine.fs.counters.writes
    bytes_written = machine.fs.counters.bytes_written
    # Naively, each rank would write one request per subarray row: for this
    # 16^3 grid over a 2x2x1 processor grid that is an 8x16-double row =
    # 128 bytes.  Two-phase I/O + sieving must do far better on average.
    assert bytes_written / writes > 16 * 128


def test_checkpoint_files_differ_by_strategy(hierarchy):
    """HDF4 makes one file per grid; the others one shared file + sidecar."""
    _, _, _ = dump_and_restart(hierarchy, HDF4Strategy, 2)

    machine = make_machine(2)

    def program(comm, cls):
        state = RankState.from_hierarchy(hierarchy, comm.rank, comm.size)
        cls().write_checkpoint(comm, state, "ckpt")
        return None

    run_spmd(machine, program, args=(MPIIOStrategy,))
    files = machine.fs.store.listdir()
    assert files == ["ckpt", "ckpt.hierarchy", "ckpt.manifest"]

    machine4 = make_machine(2)
    run_spmd(machine4, program, args=(HDF4Strategy,))
    files4 = machine4.fs.store.listdir()
    assert "ckpt.grid0000" in files4
    # sidecar + manifest + top-grid file + one file per subgrid
    assert len(files4) == 3 + len(hierarchy.subgrids())


def test_deterministic_checkpoint_bytes(hierarchy):
    """Two identical MPI-IO runs produce byte-identical checkpoint files."""
    m1 = make_machine(4)
    m2 = make_machine(4)

    def program(comm):
        state = RankState.from_hierarchy(hierarchy, comm.rank, comm.size)
        MPIIOStrategy().write_checkpoint(comm, state, "ckpt")
        return comm.clock

    r1 = run_spmd(m1, program)
    r2 = run_spmd(m2, program)
    assert r1.results == r2.results  # identical virtual timings
    f1 = m1.fs.store.open("ckpt")
    f2 = m2.fs.store.open("ckpt")
    assert f1.size == f2.size
    assert f1.read(0, f1.size) == f2.read(0, f2.size)


class TestValidation:
    def test_cross_strategy_comparison_ok(self, hierarchy):
        from repro.enzo import compare_checkpoints

        m_a = make_machine(4)

        def wa(comm):
            st = RankState.from_hierarchy(hierarchy, comm.rank, comm.size)
            MPIIOStrategy().write_checkpoint(comm, st, "a")

        run_spmd(m_a, wa)
        m_b = make_machine(2)

        def wb(comm):
            st = RankState.from_hierarchy(hierarchy, comm.rank, comm.size)
            HDF4Strategy().write_checkpoint(comm, st, "b")

        run_spmd(m_b, wb)
        report = compare_checkpoints(
            m_a.fs, MPIIOStrategy(), "a", m_b.fs, HDF4Strategy(), "b"
        )
        assert report.ok, report.summary()
        assert report.compared > 0
        assert "bit-identical" in report.summary()

    def test_comparison_detects_corruption(self, hierarchy):
        from repro.enzo import compare_checkpoints

        m_a = make_machine(2)
        m_b = make_machine(2)
        for m, name in ((m_a, "a"), (m_b, "b")):
            def w(comm, base=name):
                st = RankState.from_hierarchy(hierarchy, comm.rank, comm.size)
                MPIIOStrategy().write_checkpoint(comm, st, base)

            run_spmd(m, w)
        # Flip one data byte in b's shared file (well past the header).
        f = m_b.fs.store.open("b")
        original = f.read(1000, 1)
        f.write(1000, bytes([original[0] ^ 0xFF]))
        report = compare_checkpoints(
            m_a.fs, MPIIOStrategy(), "a", m_b.fs, MPIIOStrategy(), "b"
        )
        assert not report.ok
        assert report.mismatched
        assert "FAIL" in report.summary()

    def test_read_checkpoint_arrays_keys(self, hierarchy):
        from repro.enzo import read_checkpoint_arrays
        from repro.enzo.layout import TOP

        m = make_machine(2)

        def w(comm):
            st = RankState.from_hierarchy(hierarchy, comm.rank, comm.size)
            MPIIOStrategy().write_checkpoint(comm, st, "c")

        run_spmd(m, w)
        arrays = read_checkpoint_arrays(m.fs, MPIIOStrategy(), "c")
        assert (TOP, "field", "density") in arrays
        assert (TOP, "particle", "particle_id") in arrays
        n_arrays_per_grid = 8 + 10
        assert len(arrays) == len(hierarchy) * n_arrays_per_grid
