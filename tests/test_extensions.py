"""Tests for the future-work extensions: MDMS, per-file striping, shared
file pointers, and history-driven hint suggestion."""

import numpy as np
import pytest

from repro.core import MDMS, IOTrace, MetadataRegistry, PatternClass
from repro.mpi import run_spmd
from repro.mpiio import File, Hints
from repro.pfs import FileSystem, StripedServerFS

from .conftest import make_machine


def make_registry():
    reg = MetadataRegistry()
    reg.register("top", "density", (32, 32, 32), np.float64,
                 PatternClass.REGULAR_BLOCK)
    reg.register("top", "particle/particle_id", (1000,), np.int64,
                 PatternClass.IRREGULAR)
    return reg


def make_trace(sizes_writes=(1024, 2048, 4096), sizes_reads=(8192,)):
    t = IOTrace()
    clock = 0.0
    for s in sizes_writes:
        t.record(op="write", path="f", offset=int(clock * 1000), nbytes=s,
                 start=clock, end=clock + 0.1, node=0)
        clock += 0.2
    for s in sizes_reads:
        t.record(op="read", path="f", offset=0, nbytes=s, start=clock,
                 end=clock + 0.1, node=1)
        clock += 0.2
    return t


class TestMDMS:
    def test_register_and_advise(self):
        fs = FileSystem()
        mdms = MDMS(fs)
        plan = mdms.register_application("enzo", make_registry(),
                                         stripe_size=65536)
        assert plan.plan_for("density").method == "collective_subarray"
        one = mdms.advise("enzo", "top", "particle/particle_id")
        assert one.method == "sort_blockwise"
        assert mdms.applications() == ["enzo"]

    def test_persistence_across_instances(self):
        fs = FileSystem()
        mdms = MDMS(fs)
        mdms.register_application("enzo", make_registry(), stripe_size=4096)
        mdms.record_run("enzo", make_trace())
        # A new MDMS over the same (simulated) file system sees everything.
        again = MDMS(fs)
        assert again.applications() == ["enzo"]
        assert again.history("enzo").runs == 1
        assert again.advise("enzo").align_to_stripe == 4096
        md = again.registry("enzo").lookup("top", "density")
        assert md.pattern is PatternClass.REGULAR_BLOCK

    def test_history_folding(self):
        fs = FileSystem()
        mdms = MDMS(fs)
        mdms.register_application("enzo", make_registry())
        mdms.record_run("enzo", make_trace())
        mdms.record_run("enzo", make_trace(sizes_writes=(100,) * 5))
        h = mdms.history("enzo")
        assert h.runs == 2
        assert h.total_write_requests == 8
        assert h.median_write_size == 100  # latest run's median

    def test_suggest_hints_from_history(self):
        fs = FileSystem()
        mdms = MDMS(fs)
        mdms.register_application("enzo", make_registry(), stripe_size=8192)
        mdms.record_run("enzo", make_trace())
        hints = mdms.suggest_hints("enzo")
        assert hints["cb_buffer_size"] >= 1 << 20
        assert hints["cb_align"] == 8192
        assert hints["ds_write"] is True  # strided writes observed

    def test_unknown_application(self):
        mdms = MDMS(FileSystem())
        with pytest.raises(KeyError):
            mdms.advise("nope")

    def test_db_file_really_exists(self):
        fs = FileSystem()
        mdms = MDMS(fs, db_path="meta/mdms.db")
        mdms.register_application("enzo", make_registry())
        assert fs.exists("meta/mdms.db")
        assert fs.file_size("meta/mdms.db") > 0


class TestPerFileStriping:
    def make_fs(self, **kw):
        defaults = dict(
            nservers=4, stripe_size=100, disk_bandwidth=1000.0, seek_time=0.0
        )
        defaults.update(kw)
        return StripedServerFS("fs", **defaults)

    def test_layout_override(self):
        fs = self.make_fs()
        fs.set_file_striping("special", 400)
        assert fs.layout_for("special").stripe_size == 400
        assert fs.layout_for("other").stripe_size == 100

    def test_data_unaffected_by_layout(self):
        fs = self.make_fs()
        fs.set_file_striping("f", 7)
        fs.create("f")
        payload = bytes(range(200))
        fs.write("f", 13, payload)
        data, _ = fs.read("f", 13, 200)
        assert data == payload

    def test_large_stripe_uses_one_server(self):
        fs = self.make_fs()
        fs.set_file_striping("big", 10_000)
        fs.create("big")
        fs.write("big", 0, b"x" * 400)
        # All on server 0 -> serial: 0.4 s, vs 0.1 s with default striping.
        assert fs.servers[0].disk.busy_time == pytest.approx(0.4)

    def test_striping_unit_hint_applied_on_create(self):
        fs = self.make_fs()
        m = make_machine(2, fs=fs)

        def program(comm):
            fh = File.open(comm, "hinted", "w",
                           hints=Hints(striping_unit=12345))
            fh.write_at_all(0, b"hello")
            fh.close()
            return None

        run_spmd(m, program)
        assert fs.layout_for("hinted").stripe_size == 12345


class TestSharedFilePointer:
    def test_writes_are_disjoint_and_cover(self):
        m = make_machine(4)

        def program(comm):
            fh = File.open(comm, "log", "w")
            payload = bytes([65 + comm.rank]) * (comm.rank + 1)
            fh.write_shared(payload)
            fh.close()
            return len(payload)

        res = run_spmd(m, program)
        total = sum(res.results)
        raw = m.fs.store.open("log").read(0, total)
        # Every rank's bytes appear exactly once, contiguously.
        for rank in range(4):
            marker = bytes([65 + rank]) * (rank + 1)
            assert raw.count(bytes([65 + rank])) == rank + 1
            assert marker in raw

    def test_shared_pointer_orders_deterministically(self):
        def run_once():
            m = make_machine(3, latency=1e-4)

            def program(comm):
                comm.compute(0.001 * (3 - comm.rank))  # reverse arrival order
                fh = File.open(comm, "log", "w")
                fh.write_shared(bytes([48 + comm.rank]) * 4)
                fh.close()
                return None

            run_spmd(m, program)
            return m.fs.store.open("log").read(0, 12)

        assert run_once() == run_once()

    def test_read_shared_consumes_in_order(self):
        m = make_machine(2)

        def program(comm):
            if comm.rank == 0:
                fh = File.open(comm, "f", "w")
                fh.write_at(0, bytes(range(16)))
                fh.close()
            else:
                File.open(comm, "f", "rw").close()
            fh = File.open(comm, "f", "r")
            a = fh.read_shared(8)
            fh.close()
            return a

        res = run_spmd(m, program)
        got = sorted(res.results)
        assert got == [bytes(range(8)), bytes(range(8, 16))]

    def test_partial_etype_rejected(self):
        from repro.mpi.datatypes import FLOAT64
        from repro.sim import RankFailedError

        m = make_machine(1)

        def program(comm):
            fh = File.open(comm, "f", "w")
            fh.set_view(0, FLOAT64)
            fh.write_shared(b"123")  # 3 bytes is not a whole float64

        with pytest.raises(RankFailedError):
            run_spmd(m, program)
