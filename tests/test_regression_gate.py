"""Tests for the paper-figure conformance & perf-regression harness.

Fast tests cover the declarative matrix, the comparison semantics
(bands, golden digests, exact counters, trend assertions) on synthetic
payloads, and the CLI's exit-code contract against the *committed*
``BENCH_figures.json`` baseline using the cheap fig5 cells.

The ``regression``-marked tests run real cells: the perturbation
self-test (a deliberately detuned ``cb_buffer_size`` must trip the gate
with a named violation) and -- ``slow``-marked -- the full-matrix
conformance run that re-validates every paper trend against the
committed baseline.
"""

import copy
import json
import os

import pytest

from repro.bench import (
    MATRIX,
    TRENDS,
    compare,
    format_report,
    load_baseline,
    parse_perturbations,
    run_matrix,
    select_cells,
)
from repro.bench.baselines import BASELINE_SCHEMA, cell_by_id
from repro.bench.regression import BANDED_METRICS, EXACT_METRICS
from repro.cli import main

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
BASELINE = os.path.join(REPO_ROOT, "BENCH_figures.json")


# -- declarative matrix -------------------------------------------------------


class TestMatrixDefinitions:
    def test_cell_ids_are_unique(self):
        ids = [c.id for c in MATRIX]
        assert len(ids) == len(set(ids))

    def test_every_figure_is_covered(self):
        figures = {c.figure for c in MATRIX}
        assert figures == {"fig5", "fig6", "fig7", "fig8", "fig9", "fig10",
                           "lustre", "scda", "foggie-nested", "nyx-plotfile",
                           "flashx-particles"}

    def test_trend_endpoints_exist_and_ids_unique(self):
        ids = {c.id for c in MATRIX}
        tids = [t.id for t in TRENDS]
        assert len(tids) == len(set(tids))
        for t in TRENDS:
            assert t.left in ids, t.id
            assert t.right in ids, t.id
            assert t.relation in ("gt", "ge", "lt", "le", "eq")

    def test_issue_mandated_trends_are_present(self):
        tids = {t.id for t in TRENDS}
        # the GPFS 16-proc read inversion and hdf5 <= mpiio, by name
        assert "fig7-read-inversion-P16" in tids
        assert {f"fig10-hdf5-bw-P{p}" for p in (4, 8, 16)} <= tids
        assert {f"fig6-write-bw-P{p}" for p in (4, 8, 16)} <= tids

    def test_trend_holds_relations(self):
        t = TRENDS[0]
        assert t.holds(1.0, 2.0) == (t.relation in ("lt", "le"))

    def test_cell_by_id(self):
        assert cell_by_id("fig6:hdf4:2").machine == "origin2000"
        with pytest.raises(KeyError):
            cell_by_id("fig6:hdf4:1024")


class TestSelectCells:
    def test_default_is_full_matrix(self):
        assert select_cells(None) == list(MATRIX)
        assert select_cells([]) == list(MATRIX)

    def test_figure_subset(self):
        cells = select_cells(["fig7"])
        assert {c.figure for c in cells} == {"fig7"}
        assert len(cells) == 4

    def test_exact_cell_and_dedup(self):
        cells = select_cells(["fig6:mpi-io:8", "fig6:mpi-io:8", "fig6:mpi-io"])
        assert len(cells) == len({c.id for c in cells})
        assert any(c.id == "fig6:mpi-io:8" for c in cells)

    @pytest.mark.parametrize(
        "spec", ["nosuch", "fig6:hdf9", "fig6:mpi-io:3", "fig6:mpi-io:x", "a:b:c:d", ""]
    )
    def test_bad_specs_raise(self, spec):
        with pytest.raises(ValueError):
            select_cells([spec])


class TestParsePerturbations:
    def test_good_spec(self):
        out = parse_perturbations(["fig6:mpi-io:8:cb_buffer_size=65536"])
        assert out == {"fig6:mpi-io:8": {"cb_buffer_size": 65536}}

    def test_bool_and_multiple(self):
        out = parse_perturbations(
            ["fig6:mpi-io:8:ds_read=false", "fig6:mpi-io:8:cb_align=4096"]
        )
        assert out == {"fig6:mpi-io:8": {"ds_read": False, "cb_align": 4096}}

    @pytest.mark.parametrize(
        "spec", ["nonsense", "fig6:mpi-io:8:nosuchhint=1", "fig6:mpi-io:8:cb_align"]
    )
    def test_bad_specs_raise(self, spec):
        with pytest.raises(ValueError):
            parse_perturbations([spec])


# -- comparison semantics on synthetic payloads -------------------------------


def fake_payload():
    cell = {
        "figure": "fig6", "machine": "origin2000", "problem": "AMR32",
        "strategy": "mpi-io", "nprocs": 8,
        "write_s": 0.5, "read_s": 0.1,
        "write_bw": 100.0, "read_bw": 200.0,
        "write_phases": {}, "read_phases": {},
        "bytes_written": 1000, "bytes_read": 500,
        "fs_write_requests": 10, "fs_read_requests": 5,
        "fs_recoveries": 0, "trace_events": 15,
        "trace_digest": "sha256:aaaa", "file_digest": "",
    }
    other = dict(cell, strategy="hdf4", write_bw=50.0, trace_digest="sha256:bbbb")
    return {
        "schema": BASELINE_SCHEMA,
        "rtol": 0.05,
        "cells": {"fig6:mpi-io:8": cell, "fig6:hdf4:8": other},
        "trends": [
            {
                "id": "fig6-write-bw-P8", "description": "mpiio wins",
                "metric": "write_bw", "left": "fig6:mpi-io:8",
                "relation": "gt", "right": "fig6:hdf4:8", "ok": True,
            }
        ],
    }


class TestCompare:
    def test_identical_payloads_pass(self):
        base = fake_payload()
        report = compare(copy.deepcopy(base), base)
        assert report.ok
        assert report.cells_checked == 2
        assert report.trends_checked == 1
        assert "PASS" in format_report(report)

    def test_band_violation_names_metric_and_cell(self):
        base = fake_payload()
        cur = copy.deepcopy(base)
        cur["cells"]["fig6:mpi-io:8"]["write_bw"] = 90.0  # -10% > 5% band
        report = compare(cur, base)
        kinds = {(v["kind"], v["metric"], v["cell"]) for v in report.violations}
        assert ("band", "write_bw", "fig6:mpi-io:8") in kinds
        text = format_report(report)
        assert "FAIL" in text and "write_bw" in text and "-10.0%" in text

    def test_within_band_passes(self):
        base = fake_payload()
        cur = copy.deepcopy(base)
        cur["cells"]["fig6:mpi-io:8"]["write_bw"] = 98.0  # -2% inside band
        assert compare(cur, base).ok

    def test_rtol_override(self):
        base = fake_payload()
        cur = copy.deepcopy(base)
        cur["cells"]["fig6:mpi-io:8"]["write_bw"] = 98.0
        assert not compare(cur, base, rtol=0.01).ok

    def test_digest_mismatch_is_a_violation(self):
        base = fake_payload()
        cur = copy.deepcopy(base)
        cur["cells"]["fig6:mpi-io:8"]["trace_digest"] = "sha256:cccc"
        report = compare(cur, base)
        assert any(v["kind"] == "digest" for v in report.violations)

    def test_exact_counter_drift_is_a_violation(self):
        base = fake_payload()
        cur = copy.deepcopy(base)
        cur["cells"]["fig6:mpi-io:8"]["fs_write_requests"] = 11
        report = compare(cur, base)
        assert any(
            v["kind"] == "count" and v["metric"] == "fs_write_requests"
            for v in report.violations
        )

    def test_cell_missing_from_baseline_is_a_violation(self):
        base = fake_payload()
        cur = copy.deepcopy(base)
        cur["cells"]["fig6:hdf5:8"] = dict(
            cur["cells"]["fig6:mpi-io:8"], strategy="hdf5"
        )
        report = compare(cur, base)
        assert any(v["kind"] == "missing-cell" for v in report.violations)

    def test_failed_trend_is_reported_with_description(self):
        base = fake_payload()
        cur = copy.deepcopy(base)
        # Invert the paper result: hdf4 suddenly faster. Keep bands green
        # by inverting the baseline too -- the trend must still fail.
        for payload in (cur, base):
            payload["cells"]["fig6:mpi-io:8"]["write_bw"] = 40.0
        cur["trends"][0]["ok"] = False
        report = compare(cur, base)
        trend = [v for v in report.violations if v["kind"] == "trend"]
        assert len(trend) == 1
        assert "fig6-write-bw-P8" in trend[0]["detail"]
        assert "mpiio wins" in trend[0]["detail"]

    def test_metric_lists_cover_payload(self):
        from repro.bench.regression import CADENCE_METRICS

        cell = fake_payload()["cells"]["fig6:mpi-io:8"]
        for m in BANDED_METRICS + EXACT_METRICS:
            if m in CADENCE_METRICS:  # cadence cells only; absent elsewhere
                continue
            assert m in cell


# -- CLI exit-code contract ---------------------------------------------------


class TestRegressCLI:
    def test_fig5_cells_match_committed_baseline(self, capsys):
        rc = main(["regress", "--cell", "fig5", "--baseline", BASELINE,
                   "--quiet"])
        out = capsys.readouterr().out
        assert rc == 0, out
        assert "PASS" in out

    def test_out_writes_current_results(self, tmp_path, capsys):
        out_path = tmp_path / "current.json"
        rc = main(["regress", "--cell", "fig5:two-phase:8", "--baseline",
                   BASELINE, "--quiet", "--out", str(out_path)])
        assert rc == 0
        payload = json.loads(out_path.read_text())
        assert set(payload["cells"]) == {"fig5:two-phase:8"}

    def test_missing_baseline_exits_2(self, tmp_path, capsys):
        rc = main(["regress", "--cell", "fig5:two-phase:8", "--baseline",
                   str(tmp_path / "nope.json"), "--quiet"])
        assert rc == 2
        assert "update-baseline" in capsys.readouterr().err

    def test_corrupt_baseline_exits_2(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("{\"schema\": 99}")
        rc = main(["regress", "--cell", "fig5:two-phase:8", "--baseline",
                   str(bad), "--quiet"])
        assert rc == 2

    def test_unknown_cell_exits_2(self, capsys):
        rc = main(["regress", "--cell", "fig99", "--quiet"])
        assert rc == 2
        assert "matches no cell" in capsys.readouterr().err

    def test_bad_perturb_exits_2(self, capsys):
        rc = main(["regress", "--cell", "fig5", "--perturb", "garbage",
                   "--quiet"])
        assert rc == 2

    def test_perturbing_hdf4_exits_2(self, capsys):
        rc = main(["regress", "--cell", "fig6:hdf4:2", "--baseline", BASELINE,
                   "--perturb", "fig6:hdf4:2:cb_buffer_size=65536", "--quiet"])
        assert rc == 2
        assert "no MPI-IO hints" in capsys.readouterr().err

    def test_update_baseline_subset_merges(self, tmp_path, capsys):
        path = tmp_path / "b.json"
        rc = main(["regress", "--cell", "fig5:two-phase:8",
                   "--update-baseline", "--baseline", str(path), "--quiet"])
        assert rc == 0
        first = load_baseline(str(path))
        assert set(first["cells"]) == {"fig5:two-phase:8"}
        rc = main(["regress", "--cell", "fig5", "--update-baseline",
                   "--baseline", str(path), "--quiet"])
        assert rc == 0
        merged = load_baseline(str(path))
        assert set(merged["cells"]) == {"fig5:two-phase:8", "fig5:independent:8"}
        # both fig5 trend endpoints now exist => trends were re-evaluated
        assert {t["id"] for t in merged["trends"]} >= {
            "fig5-collective-fewer-requests", "fig5-collective-faster",
        }
        # and the merged baseline gates green
        rc = main(["regress", "--cell", "fig5", "--baseline", str(path),
                   "--quiet"])
        assert rc == 0


# -- real-cell gate behaviour -------------------------------------------------


@pytest.mark.regression
class TestGateOnRealCells:
    def test_perturbed_tuning_hint_trips_the_gate(self, capsys):
        """Acceptance: detuning cb_buffer_size for the fig6 mpi-io cell
        fails the gate with a per-cell report naming the violated band."""
        rc = main([
            "regress", "--cell", "fig6:mpi-io:8", "--baseline", BASELINE,
            "--perturb", "fig6:mpi-io:8:cb_buffer_size=65536", "--quiet",
        ])
        out = capsys.readouterr().out
        assert rc == 1
        assert "FAIL" in out
        assert "fig6:mpi-io:8" in out
        # the violated band (and the diverged golden trace) are named
        assert "band" in out
        assert "digest" in out

    def test_fig5_trend_assertion_fires_on_inverted_result(self):
        """Force the fig5 contrast to invert (collective with a tiny
        collective buffer and one aggregator is no longer 'few large
        requests') and check the trend machinery reports it on live data."""
        cells = select_cells(["fig5"])
        current = run_matrix(
            cells,
            perturb={"fig5:two-phase:8": {
                "cb_buffer_size": 512, "ds_write": False,
            }},
        )
        failed = [t["id"] for t in current["trends"] if not t["ok"]]
        assert "fig5-collective-fewer-requests" in failed


@pytest.mark.regression
@pytest.mark.slow
class TestFullMatrixConformance:
    def test_full_matrix_matches_baseline_and_paper_trends(self):
        current = run_matrix()
        baseline = load_baseline(BASELINE)
        report = compare(current, baseline)
        assert report.ok, format_report(report)
        assert report.cells_checked == len(MATRIX)
        bad = [t["id"] for t in current["trends"] if not t["ok"]]
        assert not bad, f"paper trends violated: {bad}"
        assert report.trends_checked == len(TRENDS)
