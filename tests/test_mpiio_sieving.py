"""Data-sieving tests: correctness and request-count reduction."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mpi import run_spmd
from repro.mpiio import ADIOFile, Hints, plan_extents, sieve_read, sieve_write
from repro.pfs import FileSystem

from .conftest import make_machine


class TestPlanExtents:
    def test_single_segment(self):
        assert plan_extents([(10, 5)], 100, 0.0) == [(10, 5, 0, 1)]

    def test_packing_within_buffer(self):
        plans = plan_extents([(0, 4), (10, 4), (20, 4)], 100, 0.0)
        assert plans == [(0, 24, 0, 3)]

    def test_buffer_limit_splits(self):
        plans = plan_extents([(0, 4), (10, 4), (20, 4)], 16, 0.0)
        assert plans == [(0, 14, 0, 2), (20, 4, 2, 1)]

    def test_density_threshold_splits(self):
        # Two tiny segments 1000 bytes apart: density 8/1008 << 0.5.
        plans = plan_extents([(0, 4), (1004, 4)], 4096, 0.5)
        assert len(plans) == 2

    def test_empty(self):
        assert plan_extents([], 100, 0.0) == []

    def test_bad_buffer(self):
        with pytest.raises(ValueError):
            plan_extents([(0, 1)], 0, 0.0)


def run_single_rank(fn):
    """Run fn(comm) on one rank of a null-cost machine and return its result."""
    m = make_machine(1)
    return run_spmd(m, fn).results[0], m


def test_sieve_read_correctness_and_fewer_requests():
    def program(comm):
        fs = comm.machine.fs
        fs.create("f")
        payload = np.arange(1000, dtype=np.uint8).astype(np.uint8).tobytes()
        fs.write("f", 0, payload)
        adio = ADIOFile(fs, "f", comm)
        segs = [(i * 100, 10) for i in range(10)]  # 10 strided pieces
        fs.counters.reset()
        out = sieve_read(adio, segs, Hints(ds_read=True, ind_rd_buffer_size=4096))
        sieved_requests = fs.counters.reads
        fs.counters.reset()
        out2 = sieve_read(adio, segs, Hints(ds_read=False))
        naive_requests = fs.counters.reads
        expect = b"".join(payload[o : o + n] for o, n in segs)
        assert out == expect and out2 == expect
        return sieved_requests, naive_requests

    (sieved, naive), _ = run_single_rank(program)
    assert sieved == 1
    assert naive == 10


def test_sieve_write_rmw_preserves_holes():
    def program(comm):
        fs = comm.machine.fs
        fs.create("f")
        fs.write("f", 0, b"\xff" * 100)
        adio = ADIOFile(fs, "f", comm)
        segs = [(10, 5), (30, 5), (50, 5)]
        data = b"A" * 5 + b"B" * 5 + b"C" * 5
        sieve_write(adio, segs, data, Hints(ds_write=True, ind_wr_buffer_size=4096))
        got, _ = fs.read("f", 0, 100)
        return got

    got, _ = run_single_rank(program)
    expect = bytearray(b"\xff" * 100)
    expect[10:15] = b"A" * 5
    expect[30:35] = b"B" * 5
    expect[50:55] = b"C" * 5
    assert got == bytes(expect)


def test_sieve_write_direct_for_single_segment():
    def program(comm):
        fs = comm.machine.fs
        fs.create("f")
        adio = ADIOFile(fs, "f", comm)
        fs.counters.reset()
        sieve_write(adio, [(0, 50)], b"x" * 50, Hints(ds_write=True))
        return fs.counters.reads, fs.counters.writes

    (reads, writes), _ = run_single_rank(program)
    assert reads == 0  # no RMW for a contiguous write
    assert writes == 1


def test_sieve_write_data_length_validation():
    def program(comm):
        fs = comm.machine.fs
        fs.create("f")
        adio = ADIOFile(fs, "f", comm)
        with pytest.raises(ValueError):
            sieve_write(adio, [(0, 10)], b"short", Hints())
        return True

    assert run_single_rank(program)[0] is True


def test_sieving_reduces_time_on_seeky_filesystem():
    from repro.pfs import StripedServerFS

    def build():
        return StripedServerFS(
            "seeky",
            nservers=1,
            stripe_size=1 << 20,
            disk_bandwidth=50e6,
            seek_time=0.01,
        )

    segs = [(i * 1000, 8) for i in range(64)]

    def program(comm, hints):
        fs = comm.machine.fs
        fs.create("f")
        fs.write("f", 0, b"\0" * 65536)
        # Reset device state so both variants start identically.
        fs.servers[0].disk.busy_until = 0.0
        adio = ADIOFile(fs, "f", comm)
        start = comm.clock
        sieve_read(adio, segs, hints)
        return comm.clock - start

    m1 = make_machine(1, fs=build())
    t_sieved = run_spmd(m1, program, args=(Hints(ds_read=True),)).results[0]
    m2 = make_machine(1, fs=build())
    t_naive = run_spmd(m2, program, args=(Hints(ds_read=False),)).results[0]
    # 1 seek vs 64 seeks.
    assert t_sieved < t_naive / 5


@settings(max_examples=50, deadline=None)
@given(
    seg_spec=st.lists(
        st.tuples(st.integers(1, 40), st.integers(0, 40)), min_size=1, max_size=12
    ),
    buffer_size=st.integers(8, 512),
    use_ds=st.booleans(),
)
def test_property_sieve_roundtrip(seg_spec, buffer_size, use_ds):
    """write-then-read through sieving returns exactly what was written."""
    # Build sorted disjoint segments from (length, gap) pairs.
    segs = []
    pos = 0
    for length, gap in seg_spec:
        segs.append((pos, length))
        pos += length + gap + 1
    total = sum(n for _, n in segs)
    rng = np.random.default_rng(42)
    payload = rng.integers(0, 256, size=total, dtype=np.uint8).tobytes()

    def program(comm):
        fs = comm.machine.fs
        fs.create("f")
        adio = ADIOFile(fs, "f", comm)
        hints = Hints(
            ds_read=use_ds,
            ds_write=use_ds,
            ind_rd_buffer_size=buffer_size,
            ind_wr_buffer_size=buffer_size,
        )
        sieve_write(adio, segs, payload, hints)
        return sieve_read(adio, segs, hints)

    got = run_spmd(make_machine(1), program).results[0]
    assert got == payload
