"""Stress tests: the engine stays deterministic under chaotic workloads."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mpi import collectives as coll
from repro.mpi import run_spmd
from repro.mpiio import File, Hints
from repro.pfs import StripedServerFS

from .conftest import make_machine


def chaotic_program(comm, seed):
    """Random mix of compute, messaging, collectives and file I/O."""
    rng = np.random.default_rng(seed * 1000 + comm.rank)
    fh = File.open(comm, "chaos", "w", hints=Hints())
    trace = []
    for step in range(12):
        # The action must be identical on every rank (collectives and
        # paired messaging are collective-order-sensitive); per-rank
        # variation comes from the data and compute amounts instead.
        action = (step + seed) % 4
        if action == 0:
            comm.compute(float(rng.integers(1, 5)) * 1e-4)
        elif action == 1:
            # Neighbour exchange: even ranks send right, odd ranks receive.
            if comm.rank % 2 == 0 and comm.rank + 1 < comm.size:
                comm.send(np.arange(step + 1), comm.rank + 1, tag=step)
            elif comm.rank % 2 == 1:
                comm.recv(comm.rank - 1, tag=step)
        elif action == 2:
            total = coll.allreduce(comm, comm.rank + step)
            trace.append(total)
        else:
            fh.write_at(
                comm.rank * 4096 + step * 64,
                bytes([step]) * 64,
            )
        trace.append(round(comm.clock, 12))
    coll.barrier(comm)
    fh.close()
    return trace


@settings(max_examples=8, deadline=None)
@given(seed=st.integers(0, 100), nprocs=st.sampled_from([2, 3, 5, 8]))
def test_property_chaotic_runs_are_deterministic(seed, nprocs):
    def run_once():
        m = make_machine(nprocs, latency=1e-4, bandwidth=1e7,
                         fs=StripedServerFS(
                             "s", nservers=3, stripe_size=512,
                             disk_bandwidth=1e6, seek_time=1e-3,
                         ))
        res = run_spmd(m, chaotic_program, args=(seed,))
        blob = m.fs.store.open("chaos")
        return res.results, res.elapsed, blob.read(0, blob.size)

    r1 = run_once()
    r2 = run_once()
    assert r1[0] == r2[0]  # identical traces and clocks on every rank
    assert r1[1] == r2[1]  # identical makespan
    assert r1[2] == r2[2]  # identical file bytes


def test_large_rank_count_collective_storm():
    m = make_machine(48, latency=1e-5)

    def program(comm):
        x = coll.allreduce(comm, comm.rank)
        coll.barrier(comm)
        gathered = coll.allgather(comm, comm.rank * 2)
        return x, sum(gathered)

    res = run_spmd(m, program)
    expect = sum(range(48))
    assert all(r == (expect, 2 * expect) for r in res.results)


def test_many_small_messages_throughput():
    """2000+ messages through the engine complete and stay ordered."""
    m = make_machine(4, latency=1e-6)

    def program(comm):
        n = 500
        if comm.rank == 0:
            for i in range(n):
                comm.send(i, 1 + (i % 3), tag=7)
            return None
        received = []
        for _ in range(n // 3 + (1 if comm.rank - 1 < n % 3 else 0)):
            received.append(comm.recv(0, tag=7))
        assert received == sorted(received)  # pairwise FIFO
        return len(received)

    res = run_spmd(m, program)
    assert sum(r for r in res.results if r) == 500


def test_context_switch_accounting():
    m = make_machine(4)

    def program(comm):
        coll.barrier(comm)
        return True

    res = run_spmd(m, program)
    assert res.engine.context_switches > 0
