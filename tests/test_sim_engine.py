"""Unit tests for the discrete-event SPMD engine."""

import pytest

from repro.sim import (
    DeadlockError,
    Engine,
    NotRunningError,
    ProcState,
    RankFailedError,
    current_proc,
)


def test_single_rank_returns_value():
    eng = Engine(1)

    def main(proc):
        proc.advance(1.5)
        return proc.rank * 10

    assert eng.run(main) == [0]
    assert eng.procs[0].clock == pytest.approx(1.5)


def test_all_ranks_run_and_return():
    eng = Engine(8)
    results = eng.run(lambda p: p.rank * p.rank)
    assert results == [r * r for r in range(8)]


def test_advance_accumulates_time():
    eng = Engine(4)

    def main(proc):
        for _ in range(10):
            proc.advance(0.25)
        return proc.clock

    assert eng.run(main) == [pytest.approx(2.5)] * 4


def test_advance_rejects_negative():
    eng = Engine(1)

    def main(proc):
        proc.advance(-1.0)

    with pytest.raises(RankFailedError) as ei:
        eng.run(main)
    assert isinstance(ei.value.__cause__, ValueError)


def test_advance_to_is_monotone():
    eng = Engine(1)

    def main(proc):
        proc.advance_to(5.0)
        proc.advance_to(3.0)  # no-op: cannot move backwards
        return proc.clock

    assert eng.run(main) == [5.0]


def test_schedule_point_orders_shared_access_by_time():
    """Ranks touching shared state do so in virtual-time order."""
    eng = Engine(4)
    order = []

    def main(proc):
        # Rank r computes for (3 - r) seconds, so the rank with the largest
        # rank id reaches the shared list *first* in wall-clock terms but
        # *last* ranks by virtual time must win.
        proc.advance(3 - proc.rank)
        proc.schedule_point()
        order.append((proc.clock, proc.rank))

    eng.run(main)
    assert order == sorted(order)
    assert [r for _, r in order] == [3, 2, 1, 0]


def test_schedule_point_tie_breaks_by_rank():
    eng = Engine(5)
    order = []

    def main(proc):
        proc.schedule_point()
        order.append(proc.rank)
        proc.advance(1.0)
        proc.schedule_point()
        order.append(proc.rank)

    eng.run(main)
    assert order[:5] == [0, 1, 2, 3, 4]
    assert order[5:] == [0, 1, 2, 3, 4]


def test_block_and_wake_transfers_time():
    eng = Engine(2)

    def main(proc):
        other = eng.procs[1 - proc.rank]
        if proc.rank == 1:
            # Block until rank 0 wakes us at its (later) time.
            proc.block()
            return proc.clock
        proc.advance(10.0)
        proc.schedule_point()
        other.wake(at_time=proc.clock + 0.5)
        return proc.clock

    results = eng.run(main)
    assert results[0] == pytest.approx(10.0)
    assert results[1] == pytest.approx(10.5)


def test_wake_never_moves_clock_backwards():
    eng = Engine(2)

    def main(proc):
        other = eng.procs[1 - proc.rank]
        if proc.rank == 1:
            proc.advance(100.0)
            proc.schedule_point()
            proc.block()
            return proc.clock
        proc.advance(200.0)
        proc.schedule_point()
        other.wake(at_time=5.0)  # arrival in rank 1's past
        return None

    results = eng.run(main)
    assert results[1] == pytest.approx(100.0)


def test_deadlock_detected_when_all_block():
    eng = Engine(2)

    def main(proc):
        proc.block()

    with pytest.raises(RankFailedError) as ei:
        eng.run(main)
    assert isinstance(ei.value.__cause__, DeadlockError)


def test_deadlock_detected_when_peer_exits_without_waking():
    eng = Engine(2)

    def main(proc):
        if proc.rank == 0:
            return "done"
        proc.block()

    with pytest.raises(RankFailedError) as ei:
        eng.run(main)
    assert isinstance(ei.value.__cause__, DeadlockError)


def test_rank_exception_propagates_with_rank_id():
    eng = Engine(4)

    def main(proc):
        if proc.rank == 2:
            raise ValueError("boom on rank 2")
        proc.advance(1.0)
        proc.schedule_point()
        proc.block()  # would deadlock, but rank 2's failure aborts first

    with pytest.raises(RankFailedError) as ei:
        eng.run(main)
    assert ei.value.rank == 2
    assert isinstance(ei.value.__cause__, ValueError)


def test_engine_is_deterministic():
    """Two identical runs produce identical event orders and clocks."""

    def build():
        eng = Engine(6)
        trace = []

        def main(proc):
            for step in range(5):
                proc.advance(((proc.rank * 7 + step * 3) % 5) * 0.1)
                proc.schedule_point()
                trace.append((round(proc.clock, 9), proc.rank, step))
            return proc.clock

        clocks = eng.run(main)
        return trace, clocks

    t1, c1 = build()
    t2, c2 = build()
    assert t1 == t2
    assert c1 == c2


def test_current_proc_inside_and_outside():
    eng = Engine(2)

    def main(proc):
        assert current_proc() is proc
        return True

    assert eng.run(main) == [True, True]
    with pytest.raises(NotRunningError):
        current_proc()


def test_max_clock_reports_makespan():
    eng = Engine(3)
    eng.run(lambda p: p.advance(float(p.rank)))
    assert eng.max_clock == pytest.approx(2.0)


def test_nprocs_validation():
    with pytest.raises(ValueError):
        Engine(0)


def test_proc_state_after_run():
    eng = Engine(3)
    eng.run(lambda p: None)
    assert all(p.state is ProcState.DONE for p in eng.procs)


def test_run_passes_args_and_kwargs():
    eng = Engine(2)

    def main(proc, a, b=0):
        return proc.rank + a + b

    assert eng.run(main, args=(10,), kwargs={"b": 100}) == [110, 111]


def test_many_ranks():
    eng = Engine(64)
    results = eng.run(lambda p: p.rank)
    assert results == list(range(64))
