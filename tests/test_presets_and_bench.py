"""Tests for the platform presets, bench harness, figures and CLI."""

import numpy as np
import pytest

from repro.bench import (
    ExperimentResult,
    build_initial_workload,
    build_workload,
    render_bars,
    render_figure,
    run_checkpoint_experiment,
    workload_summary,
)
from repro.enzo import HDF4Strategy, MPIIOStrategy
from repro.topology import (
    PRESETS,
    chiba_city,
    chiba_city_local,
    ibm_sp2,
    origin2000,
)


class TestPresets:
    @pytest.mark.parametrize("name", sorted(PRESETS))
    def test_presets_construct_with_fs(self, name):
        m = PRESETS[name]()
        assert m.fs is not None
        assert m.nprocs >= 1
        assert m.network.nnodes >= m.nnodes

    def test_origin2000_is_one_rank_per_node(self):
        m = origin2000(nprocs=16)
        assert m.procs_per_node == 1
        assert m.node_of(15) == 15

    def test_sp2_is_8way_smp(self):
        m = ibm_sp2(nprocs=64)
        assert m.procs_per_node == 8
        assert m.node_of(63) == 7
        assert m.fs.write_token_time > 0
        assert m.fs.smp_io_queue_time > 0

    def test_chiba_has_oversubscribed_fabric(self):
        m = chiba_city(8)
        assert m.network.fabric_bandwidth < 8 * m.network.bandwidth

    def test_chiba_local_uses_scatter_mode(self):
        m = chiba_city_local(8)
        assert m.fs.scatter_mode

    def test_reset_timing_clears_devices(self):
        m = origin2000(nprocs=2)
        m.fs.create("f")
        m.fs.write("f", 0, b"x" * 100000, node=0, ready_time=0.0)
        m.network.transfer(0.0, 0, 1, 1000)
        assert any(s.disk.busy_until > 0 for s in m.fs.servers)
        m.reset_timing()
        assert all(s.disk.busy_until == 0 for s in m.fs.servers)
        assert all(t.busy_until == 0 for t in m.network.egress)


class TestWorkloads:
    def test_build_workload_cached_and_deterministic(self):
        a = build_workload("AMR16")
        b = build_workload("AMR16")
        # Defensive copies of one cached master: never the same object
        # (callers mutate hierarchies in place), always the same bytes.
        assert a is not b
        assert a.equal(b)
        c = build_workload("AMR16", seed=1)
        assert not c.equal(a)

    def test_initial_workload_has_fewer_grids(self):
        dump = build_workload("AMR32")
        init = build_initial_workload("AMR32")
        assert len(init) <= len(dump)
        assert init.root.dims == dump.root.dims

    def test_summary_fields(self):
        s = workload_summary(build_workload("AMR16"))
        assert set(s) == {"grids", "max_level", "cells", "particles", "data_mb"}
        assert s["cells"] >= 16**3


class TestRunner:
    def test_result_fields_and_row(self):
        m = origin2000(nprocs=4)
        h = build_workload("AMR16")
        r = run_checkpoint_experiment(m, MPIIOStrategy(), h, nprocs=4)
        assert isinstance(r, ExperimentResult)
        assert r.write_time > 0 and r.read_time > 0
        # Writes cover the data plus a little format/sidecar metadata.
        assert h.total_data_nbytes() <= r.bytes_written <= 1.1 * h.total_data_nbytes()
        assert r.nprocs == 4
        assert len(r.row()) == len(ExperimentResult.HEADERS)
        # fs_recoveries is the last column (visible in `repro table`).
        assert r.row()[-1] == r.fs_recoveries

    def test_do_read_false_skips_read(self):
        m = origin2000(nprocs=2)
        r = run_checkpoint_experiment(
            m, MPIIOStrategy(), build_workload("AMR16"), nprocs=2,
            do_read=False,
        )
        assert r.read_time == 0.0
        assert r.bytes_read == 0

    def test_restart_read_op(self):
        m = origin2000(nprocs=2)
        r = run_checkpoint_experiment(
            m, MPIIOStrategy(), build_workload("AMR16"), nprocs=2,
            read_op="restart",
        )
        assert r.read_time > 0

    def test_separate_read_hierarchy(self):
        m = origin2000(nprocs=2)
        dump = build_workload("AMR16")
        init = build_initial_workload("AMR16")
        r = run_checkpoint_experiment(
            m, HDF4Strategy(), dump, nprocs=2, read_hierarchy=init
        )
        # The initial files were written alongside the dump files.
        assert any(name.startswith("ckpt.init") for name in m.fs.store.listdir())
        assert r.bytes_read >= init.total_data_nbytes()

    def test_bad_read_op_rejected(self):
        m = origin2000(nprocs=2)
        with pytest.raises(ValueError):
            run_checkpoint_experiment(
                m, MPIIOStrategy(), build_workload("AMR16"), nprocs=2,
                read_op="nope",
            )

    def test_write_read_phases_reported(self):
        m = origin2000(nprocs=2)
        r = run_checkpoint_experiment(
            m, MPIIOStrategy(), build_workload("AMR16"), nprocs=2
        )
        assert set(r.write_phases) >= {"top_fields", "top_particles", "subgrids"}


class TestFigures:
    def test_render_bars_scales_to_peak(self):
        out = render_bars([("a", 1.0), ("b", 2.0)], width=10)
        lines = out.splitlines()
        assert lines[1].count("#") == 10
        assert lines[0].count("#") == 5

    def test_render_bars_empty(self):
        assert render_bars([]) == "(no data)"

    def test_render_figure_groups_by_x(self):
        out = render_figure(
            "t", {"hdf4": {"P=2": 1.0, "P=4": 1.0}, "mpi": {"P=2": 0.5}}
        )
        assert "P=2 hdf4" in out
        assert "P=2 mpi" in out
        assert "P=4 hdf4" in out

    def test_zero_values_render(self):
        out = render_bars([("x", 0.0)])
        assert "0.000" in out


class TestCLI:
    def test_table1(self, capsys):
        from repro.cli import main

        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "AMR256" in out

    def test_figure_fig10_small(self, capsys):
        from repro.cli import main

        assert main(["figure", "fig10", "--problem", "AMR16",
                     "--procs", "2"]) == 0
        out = capsys.readouterr().out
        assert "WRITE" in out
        assert "hdf5" in out

    def test_analyze(self, capsys):
        from repro.cli import main

        assert main(["analyze", "--problem", "AMR16", "--procs", "2"]) == 0
        out = capsys.readouterr().out
        assert "WRITE:" in out

    def test_simulate(self, capsys):
        from repro.cli import main

        assert main(["simulate", "--problem", "AMR16", "--procs", "2",
                     "--cycles", "1"]) == 0
        out = capsys.readouterr().out
        assert "verified bit-exact" in out

    def test_unknown_figure_rejected(self):
        from repro.cli import main

        with pytest.raises(SystemExit):
            main(["figure", "fig99"])
