#!/usr/bin/env python
"""Tuning MPI-IO hints, and letting the MDMS do it for you.

Sweeps the ROMIO hints that matter for the ENZO dump on the Origin2000 --
collective-buffer size, data sieving on/off, application-specific striping
-- then closes the paper's future-work loop: feed the observed trace into
the Meta-Data Management System and apply the hints *it* suggests.

Run:  python examples/hints_tuning.py
"""

import numpy as np

from repro.bench import build_workload, run_checkpoint_experiment
from repro.core import (
    MDMS,
    MetadataRegistry,
    PatternClass,
    trace_filesystem,
)
from repro.enzo import MPIIOStrategy, array_dtype
from repro.mpiio import Hints
from repro.topology import origin2000
from repro.core import format_table

NPROCS = 8
PROBLEM = "AMR32"


def timed(hints: Hints):
    machine = origin2000(nprocs=NPROCS)
    result = run_checkpoint_experiment(
        machine,
        MPIIOStrategy(hints=hints),
        build_workload(PROBLEM),
        nprocs=NPROCS,
        do_read=False,
    )
    return result.write_time


def sweep() -> None:
    rows = []
    for label, hints in [
        ("defaults", Hints()),
        ("cb_buffer 256 KiB", Hints(cb_buffer_size=256 * 1024)),
        ("cb_buffer 16 MiB", Hints(cb_buffer_size=16 << 20)),
        ("no write sieving", Hints(ds_write=False)),
        ("aggregators: all ranks", Hints(cb_nodes=0)),
        ("striping_unit 4 MiB", Hints(striping_unit=4 << 20)),
    ]:
        rows.append([label, f"{timed(hints):.3f}"])
    print(f"MPI-IO dump of {PROBLEM} on Origin2000, {NPROCS} procs:")
    print(format_table(["hints", "write [s]"], rows))


def mdms_loop() -> None:
    """Record a run in the MDMS, then run again with its suggested hints."""
    machine = origin2000(nprocs=NPROCS)
    hierarchy = build_workload(PROBLEM)
    trace = trace_filesystem(machine.fs)
    baseline = run_checkpoint_experiment(
        machine, MPIIOStrategy(), hierarchy, nprocs=NPROCS, do_read=False
    )

    registry = MetadataRegistry()
    root = hierarchy.root
    for name in root.fields.names:
        registry.register("top", name, root.dims, np.float64,
                          PatternClass.REGULAR_BLOCK)
    from repro.amr.particles import PARTICLE_ARRAYS

    for name in PARTICLE_ARRAYS:
        registry.register("top", f"particle/{name}",
                          (len(root.particles),), array_dtype(name),
                          PatternClass.IRREGULAR)

    mdms = MDMS(machine.fs)
    mdms.register_application(
        "enzo", registry, stripe_size=machine.fs.layout.stripe_size
    )
    mdms.record_run("enzo", trace)
    suggested = mdms.suggest_hints("enzo")
    print()
    print(f"MDMS-suggested hints after one observed run: {suggested}")
    tuned = timed(Hints(**suggested))
    print(f"baseline write: {baseline.write_time:.3f} s   "
          f"MDMS-tuned write: {tuned:.3f} s")


if __name__ == "__main__":
    sweep()
    mdms_loop()
