#!/usr/bin/env python
"""Full ENZO simulation flow: initialise, evolve, dump, restart.

Drives the cosmology application end-to-end on a simulated Origin2000:
initial conditions, several evolution cycles with mesh refinement and a
checkpoint dump per cycle, then a restart read of the final dump whose
reconstructed state is verified against the live hierarchy.

Run:  python examples/enzo_simulation.py
"""

from repro.core import format_table
from repro.enzo import (
    EnzoConfig,
    EnzoSimulation,
    MPIIOStrategy,
    RankState,
    hierarchies_equivalent,
)
from repro.mpi import run_spmd
from repro.topology import origin2000


def main() -> None:
    config = EnzoConfig(
        problem="AMR32",
        ncycles=3,
        dump_every=1,
        max_level=2,
        refine_threshold=2.2,
    )
    machine = origin2000(nprocs=8)
    hierarchy = EnzoSimulation.build_initial_hierarchy(config)
    print("initial hierarchy:")
    print(hierarchy.describe())
    print()

    sim = EnzoSimulation(config=config, strategy=MPIIOStrategy(),
                         hierarchy=hierarchy)

    def program(comm):
        summary = sim.run(comm, base="run")
        return summary

    results = run_spmd(machine, program, nprocs=8)
    summary = results.results[0]
    print(f"evolved {summary['cycles']} cycles -> {summary['grids']} grids "
          f"(max level {summary['max_level']})")
    print()
    rows = [
        [i + 1, f"{s.elapsed:.3f}", f"{s.bytes_moved / 2**20:.1f}"]
        for i, s in enumerate(summary["write_stats"])
    ]
    print("per-cycle checkpoint dumps (rank-0 view, simulated):")
    print(format_table(["cycle", "dump time [s]", "MB (this rank)"], rows))
    print()

    # Restart from the last dump and verify the state round-trips.
    last = summary["dumps"][-1]

    def restart_program(comm):
        state = sim.restart(comm, last)
        return state

    restart = run_spmd(machine, restart_program, nprocs=8)
    rebuilt = RankState.collect(restart.results)
    ok = hierarchies_equivalent(rebuilt, sim.hierarchy)
    print(f"restart read of {last!r}: "
          f"{'bit-exact state recovered' if ok else 'MISMATCH!'}")
    assert ok


if __name__ == "__main__":
    main()
