#!/usr/bin/env python
"""Cross-platform strategy comparison: the paper's evaluation in miniature.

Runs the HDF4 baseline and the optimised MPI-IO strategy on all four
platform models (Origin2000/XFS, IBM SP/GPFS, Chiba City/PVFS, Chiba City
local disks) and prints one table per platform, showing where the
optimisation wins and where the file system fights back.

Run:  python examples/platform_comparison.py           (AMR32, fast)
      python examples/platform_comparison.py AMR64     (paper size, slower)
"""

import sys

from repro.bench import (
    build_initial_workload,
    build_workload,
    run_checkpoint_experiment,
    workload_summary,
)
from repro.core import format_table
from repro.enzo import HDF4Strategy, MPIIOStrategy
from repro.topology import chiba_city, chiba_city_local, ibm_sp2, origin2000

PLATFORMS = [
    ("SGI Origin2000 / XFS", lambda: origin2000(nprocs=16), 16),
    ("IBM SP / GPFS", lambda: ibm_sp2(nprocs=32), 32),
    ("Chiba City / PVFS (fast Ethernet)", lambda: chiba_city(8), 8),
    ("Chiba City / node-local disks", lambda: chiba_city_local(8), 8),
]


def main() -> None:
    problem = sys.argv[1] if len(sys.argv) > 1 else "AMR32"
    hierarchy = build_workload(problem)
    initial = build_initial_workload(problem)
    print(f"workload {problem}: {workload_summary(hierarchy)}")

    for title, factory, nprocs in PLATFORMS:
        rows = []
        for strategy in (HDF4Strategy(), MPIIOStrategy()):
            result = run_checkpoint_experiment(
                factory(), strategy, hierarchy,
                nprocs=nprocs, read_hierarchy=initial,
            )
            rows.append(
                [strategy.name, f"{result.write_time:.3f}",
                 f"{result.read_time:.3f}"]
            )
        faster = (
            "MPI-IO faster"
            if float(rows[1][1]) < float(rows[0][1])
            else "HDF4 faster (file-system mismatch)"
        )
        print()
        print(f"{title} (P={nprocs}) -- write: {faster}")
        print(format_table(["strategy", "write [s]", "read [s]"], rows))


if __name__ == "__main__":
    main()
