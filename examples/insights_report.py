#!/usr/bin/env python
"""Trace a dump, diagnose it, let the auto-tuner fix it.

Walks the full insights loop on the paper's Figure-6 platform (SGI
Origin2000 / XFS) and workload (AMR32):

1. run the serial HDF4 dump traced and print the Drishti-style diagnosis
   (small-request dominance, file-per-grid, writes serialized through P0);
2. hand the same baseline to the :class:`~repro.insights.AutoTuner`, which
   applies the recommended strategy/hints and re-runs until no HIGH
   finding remains;
3. diagnose the tuned run to show the clean report.

Run:  python examples/insights_report.py
"""

from repro.bench import build_workload, run_traced_experiment
from repro.enzo import HDF4Strategy, MPIIOStrategy
from repro.insights import AutoTuner, Severity, diagnose, format_report
from repro.insights.autotune import stripe_size_of
from repro.mpiio import Hints
from repro.topology import origin2000

NPROCS = 8
PROBLEM = "AMR32"


def diagnose_dump(strategy, hints=None, title=""):
    machine = origin2000(nprocs=NPROCS)
    _result, trace = run_traced_experiment(
        machine, strategy, build_workload(PROBLEM),
        nprocs=NPROCS, do_read=False,
    )
    diagnosis = diagnose(
        trace,
        nprocs=NPROCS,
        nnodes=machine.nnodes,
        stripe_size=stripe_size_of(machine),
        hints=hints,
        strategy=strategy.name,
    )
    print(format_report(diagnosis, title=title, show_ok=False))
    return diagnosis


def main() -> None:
    print("=== 1. diagnose the original serial dump ===")
    diagnose_dump(
        HDF4Strategy(),
        title=f"hdf4 dump of {PROBLEM} on Origin2000, P={NPROCS}",
    )

    print()
    print("=== 2. closed-loop auto-tune from the same baseline ===")
    tuner = AutoTuner(
        lambda n: origin2000(nprocs=n),
        problem=PROBLEM,
        nprocs=NPROCS,
        strategy="hdf4",
    )
    report = tuner.tune()
    print(report.explain())

    print()
    print("=== 3. diagnose the tuned run ===")
    best = report.best
    tuned = Hints(**{
        k: v for k, v in best.hints.items()
        if getattr(Hints(), k, None) != v and k != "cb_nodes"
    })
    diagnosis = diagnose_dump(
        MPIIOStrategy(hints=tuned),
        hints=tuned,
        title=f"tuned {best.strategy} dump ({PROBLEM})",
    )
    print(f"\nHIGH findings after tuning: {diagnosis.count(Severity.HIGH)}")


if __name__ == "__main__":
    main()
