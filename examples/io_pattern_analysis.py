#!/usr/bin/env python
"""The paper's analysis workflow: trace, classify, optimise.

1. Run a checkpoint dump with the file system instrumented and print a
   Pablo-style I/O activity report (request sizes, sequentiality, skew).
2. Register the application's array metadata -- rank, dimensions, access
   pattern, access order -- and classify each array's pattern from its
   per-rank access descriptors (regular (Block,Block,Block) baryon fields
   vs irregular position-partitioned particle arrays).
3. Feed the metadata to the optimizer and print the resulting I/O plan:
   the strategy the paper's Section 3.2 implements by hand.

Run:  python examples/io_pattern_analysis.py
"""

import numpy as np

from repro.amr import BlockPartition
from repro.bench import build_workload
from repro.core import (
    AccessDescriptor,
    MetadataRegistry,
    Optimizer,
    classify_accesses,
    format_trace_report,
    trace_filesystem,
)
from repro.enzo import MPIIOStrategy, RankState
from repro.mpi import run_spmd
from repro.topology import origin2000

NPROCS = 8


def trace_a_dump(hierarchy):
    machine = origin2000(nprocs=NPROCS)
    trace = trace_filesystem(machine.fs)

    def program(comm):
        state = RankState.from_hierarchy(hierarchy, comm.rank, comm.size)
        MPIIOStrategy().write_checkpoint(comm, state, "dump")

    run_spmd(machine, program, nprocs=NPROCS)
    print(format_trace_report(trace, title="MPI-IO checkpoint dump trace"))
    print()


def classify_enzo_patterns(hierarchy):
    """Reproduce the paper's Figure 4 classification from observed accesses."""
    root = hierarchy.root
    part = BlockPartition(root.dims, NPROCS)

    baryon_descriptors = []
    for rank in range(NPROCS):
        starts, sizes = part.block_of(rank)
        baryon_descriptors.append(
            AccessDescriptor(global_shape=root.dims, starts=starts,
                             subsizes=sizes)
        )
    baryon_class = classify_accesses(baryon_descriptors)

    cells = root.cell_of(root.particles.positions)
    owners = part.owner_of_cells(cells)
    particle_descriptors = [
        AccessDescriptor(
            global_shape=(len(root.particles),),
            indices=tuple(np.flatnonzero(owners == r)[:64].tolist()),
        )
        for r in range(NPROCS)
    ]
    particle_class = classify_accesses(particle_descriptors)

    print(f"baryon fields   -> {baryon_class.value} "
          f"(Block, Block, Block over {part.pgrid} processors)")
    print(f"particle arrays -> {particle_class.value} "
          f"(partitioned by particle position)")
    print()
    return baryon_class, particle_class


def plan_from_metadata(hierarchy, baryon_class, particle_class):
    registry = MetadataRegistry()
    root = hierarchy.root
    for name in root.fields.names:
        registry.register("top", name, root.dims, np.float64, baryon_class)
    from repro.amr.particles import PARTICLE_ARRAYS
    from repro.enzo import array_dtype

    for name in PARTICLE_ARRAYS:
        # Particle velocity_* shares names with the baryon velocity fields;
        # namespace them as the I/O layers do.
        registry.register(
            "top", f"particle/{name}", (len(root.particles),),
            array_dtype(name), particle_class,
        )
    plan = Optimizer(stripe_size=1 << 20).plan(registry)
    print(plan.explain())


def main() -> None:
    hierarchy = build_workload("AMR32")
    trace_a_dump(hierarchy)
    baryon_class, particle_class = classify_enzo_patterns(hierarchy)
    plan_from_metadata(hierarchy, baryon_class, particle_class)


if __name__ == "__main__":
    main()
