#!/usr/bin/env python
"""Quickstart: dump and restart an AMR checkpoint with two I/O strategies.

Builds a small ENZO-like AMR hierarchy, writes a checkpoint with the
original sequential-HDF4 strategy and with the paper's optimised MPI-IO
strategy on a simulated SGI Origin2000, verifies both round-trip
bit-exactly, and prints the simulated I/O times.

Run:  python examples/quickstart.py
"""

from repro.bench import (
    build_initial_workload,
    build_workload,
    run_checkpoint_experiment,
    workload_summary,
)
from repro.core import format_table
from repro.enzo import HDF4Strategy, MPIIOStrategy
from repro.topology import origin2000


def main() -> None:
    problem = "AMR32"
    hierarchy = build_workload(problem)
    initial = build_initial_workload(problem)
    print(f"workload {problem}: {workload_summary(hierarchy)}")
    print()

    rows = []
    for strategy in (HDF4Strategy(), MPIIOStrategy()):
        result = run_checkpoint_experiment(
            origin2000(nprocs=8),
            strategy,
            hierarchy,
            nprocs=8,
            read_hierarchy=initial,
        )
        rows.append(
            [
                strategy.name,
                f"{result.write_time:.3f}",
                f"{result.read_time:.3f}",
                f"{result.bytes_written / 2**20:.1f}",
                result.fs_write_requests,
            ]
        )

    print("SGI Origin2000 / XFS, 8 processors (simulated seconds):")
    print(
        format_table(
            ["strategy", "write [s]", "read [s]", "MB written", "write reqs"],
            rows,
        )
    )
    print()
    print(
        "The MPI-IO strategy wins because the top grid is written with\n"
        "collective two-phase I/O and particles with a parallel sort plus\n"
        "block-wise writes, instead of funnelling through processor 0."
    )


if __name__ == "__main__":
    main()
