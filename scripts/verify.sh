#!/usr/bin/env bash
# Repo verify flow: tier-1 tests, resilience + insights smoke tests, lint
# gate, the paper-figure regression gate, and the tuned-vs-untuned
# bandwidth artifact.
#
# Usage:  bash scripts/verify.sh
set -euo pipefail
cd "$(dirname "$0")/.."
export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

echo "== tier-1 test suite =="
python -m pytest -x -q --durations=10

echo "== resilience smoke tests =="
python -m pytest -q tests/test_resilience*.py tests/test_crash_consistency.py \
    tests/test_cli_errors.py

echo "== insights smoke tests =="
python -m pytest -q tests/test_insights*.py

echo "== lint gate (full repro package) =="
if command -v ruff >/dev/null 2>&1; then
    ruff check src/repro \
        tests/test_resilience_faults.py tests/test_resilience_manifest.py \
        tests/test_resilience_roundtrip.py tests/test_crash_consistency.py \
        tests/test_cli_errors.py tests/test_insights_resilience.py \
        tests/test_iostack.py tests/test_aio.py tests/test_scenarios.py
else
    echo "ruff not installed; lint gate skipped"
fi

echo "== scenario registry lint (parse, normalize, build) =="
python -m repro scenarios --check

echo "== param-file ingestion end-to-end (verbatim FOGGIE file, 8x downscale) =="
python -m repro analyze --param-file examples/scenarios/foggie_25Mpc_DM_256-L2.enzo \
    --downscale 8 --procs 4 --save-trace BENCH_foggie.trace.json >/dev/null
python -m repro insights BENCH_foggie.trace.json

echo "== paper-figure regression gate (Figures 5-10 vs BENCH_figures.json) =="
python -m repro regress --quiet --out BENCH_figures.current.json

echo "== weak-scaling gate (P=16..1024 vs BENCH_scale.json) =="
python -m repro scale --quiet --out BENCH_scale.current.json

echo "== compute/checkpoint overlap bench (BENCH_overlap.json) =="
python -m repro overlap --out BENCH_overlap.json

echo "== insights smoke matrix (executor) =="
python -m repro bench insights --quiet

echo "== executor telemetry (10 slowest cells this run) =="
python -m repro bench timings --top 10

echo "== crash-consistency acceptance scenario =="
python -m repro simulate --problem AMR16 --procs 4 --cycles 1 \
    --inject write:torn:run --retries 2

echo "== tuned-vs-untuned bandwidth artifact =="
python -m repro tune --problem AMR32 --procs 8 --strategy hdf4 \
    --out BENCH_insights.json

echo "== lustre stripe-retune artifact (striping_factor widening) =="
python -m repro tune --problem AMR32 --procs 8 --strategy mpi-io \
    --machine lustre --out BENCH_insights_lustre.json
echo "verify OK"
