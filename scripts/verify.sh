#!/usr/bin/env bash
# Repo verify flow: tier-1 tests, insights smoke tests, lint gate, and the
# tuned-vs-untuned bandwidth artifact.
#
# Usage:  bash scripts/verify.sh
set -euo pipefail
cd "$(dirname "$0")/.."
export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

echo "== tier-1 test suite =="
python -m pytest -x -q

echo "== insights smoke tests =="
python -m pytest -q tests/test_insights*.py

echo "== lint gate (insights subsystem) =="
if command -v ruff >/dev/null 2>&1; then
    ruff check src/repro/insights
else
    echo "ruff not installed; lint gate skipped"
fi

echo "== tuned-vs-untuned bandwidth artifact =="
python -m repro tune --problem AMR32 --procs 8 --strategy hdf4 \
    --out BENCH_insights.json
echo "verify OK"
