"""Distributed simulation state as one rank sees it.

The paper's decomposition (Section 2.2, Figure 3): the *top grid* is
(Block, Block, Block)-partitioned so each rank holds one spatial piece of
its fields plus the particles inside that piece; *subgrids* are whole grids
assigned to ranks by the load balancer.

:class:`RankState` is what an I/O strategy writes from / reconstructs into.
``from_hierarchy`` derives a rank's state from a (replicated) global
hierarchy; ``collect`` reassembles a global hierarchy from all ranks' states
(used by restart verification and by the driver between runs).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..amr.grid import Grid
from ..amr.hierarchy import GridHierarchy
from ..amr.load_balance import assign_grids_lpt, assign_grids_round_robin
from ..amr.partition import BlockPartition
from .meta import HierarchyMeta

__all__ = [
    "RankState",
    "PartitionedState",
    "make_owner_map",
    "hierarchies_equivalent",
]


def hierarchies_equivalent(a: GridHierarchy, b: GridHierarchy) -> bool:
    """Data equality up to particle ordering within each grid.

    Checkpoint round-trips preserve every byte of field data and every
    particle, but particle *order* within a grid is only canonical (sorted
    by ID) after a dump+restart, so comparisons are order-insensitive.
    """
    ids_a = sorted(g.id for g in a.grids())
    ids_b = sorted(g.id for g in b.grids())
    if ids_a != ids_b:
        return False
    for gid in ids_a:
        ga, gb = a[gid], b[gid]
        if ga.dims != gb.dims or ga.level != gb.level:
            return False
        if not np.allclose(ga.left_edge, gb.left_edge) or not np.allclose(
            ga.right_edge, gb.right_edge
        ):
            return False
        if not ga.fields.equal(gb.fields):
            return False
        if not ga.particles.equal_as_sets(gb.particles):
            return False
    return True


def make_owner_map(
    hierarchy_or_meta, nprocs: int, policy: str = "lpt"
) -> dict[int, int]:
    """Assign subgrids to ranks.  ``policy``: 'lpt' or 'round_robin'.

    The paper uses load balancing during evolution and round-robin at
    restart read.
    """
    if isinstance(hierarchy_or_meta, HierarchyMeta):
        metas = [
            g for g in hierarchy_or_meta.grids()
            if g.id != hierarchy_or_meta.root_id
        ]

        class _Shim:  # adapt GridMeta to the load balancer's Grid duck-type
            def __init__(self, m):
                self.id = m.id
                self.data_nbytes = m.data_nbytes()

        grids = [_Shim(m) for m in metas]
    else:
        grids = hierarchy_or_meta.subgrids()
    if policy == "lpt":
        return assign_grids_lpt(grids, nprocs)
    if policy == "round_robin":
        return assign_grids_round_robin(grids, nprocs)
    raise ValueError(f"unknown policy {policy!r}")


@dataclass
class RankState:
    """One rank's share of the simulation data."""

    rank: int
    nprocs: int
    meta: HierarchyMeta
    partition: BlockPartition
    top_piece: Grid
    subgrids: dict[int, Grid] = field(default_factory=dict)
    owner: dict[int, int] = field(default_factory=dict)

    # -- construction -------------------------------------------------------

    @classmethod
    def from_hierarchy(
        cls,
        hierarchy: GridHierarchy,
        rank: int,
        nprocs: int,
        *,
        owner: dict[int, int] | None = None,
        policy: str = "lpt",
    ) -> "RankState":
        """Derive rank ``rank``'s state from a full hierarchy."""
        meta = HierarchyMeta.from_hierarchy(hierarchy)
        partition = BlockPartition(hierarchy.root.dims, nprocs)
        top_piece = partition.extract(hierarchy.root, rank)
        if owner is None:
            owner = make_owner_map(hierarchy, nprocs, policy)
        subgrids = {
            gid: hierarchy[gid] for gid, r in owner.items() if r == rank
        }
        return cls(rank, nprocs, meta, partition, top_piece, subgrids, dict(owner))

    # -- reassembly --------------------------------------------------------------

    @staticmethod
    def collect(states: list["RankState"]) -> GridHierarchy:
        """Rebuild the full hierarchy from every rank's state (host-side)."""
        if not states:
            raise ValueError("no states to collect")
        states = sorted(states, key=lambda s: s.rank)
        meta = states[0].meta
        part = states[0].partition
        root_meta = meta.root
        template = Grid(
            id=root_meta.id,
            level=0,
            dims=root_meta.dims,
            left_edge=np.array(root_meta.left_edge),
            right_edge=np.array(root_meta.right_edge),
        )
        root = part.reassemble(template, [s.top_piece for s in states])
        hierarchy = GridHierarchy(root)
        # Insert subgrids parent-before-child (id order guarantees this for
        # grids created by refine_hierarchy; sort by level then id for safety).
        all_sub: dict[int, Grid] = {}
        for s in states:
            all_sub.update(s.subgrids)
        for gid in sorted(all_sub, key=lambda g: (all_sub[g].level, g)):
            src = all_sub[gid]
            # Fresh node (sharing the data arrays) so collect() never
            # mutates grids that may still belong to a live hierarchy.
            grid = Grid(
                id=src.id,
                level=src.level,
                dims=src.dims,
                left_edge=src.left_edge.copy(),
                right_edge=src.right_edge.copy(),
                fields=src.fields,
                particles=src.particles,
                parent_id=src.parent_id,
            )
            hierarchy.add_grid(grid)
        return hierarchy

    # -- summaries -------------------------------------------------------------------

    def my_cells(self) -> int:
        return self.top_piece.ncells + sum(
            g.ncells for g in self.subgrids.values()
        )

    def my_data_nbytes(self) -> int:
        return self.top_piece.data_nbytes + sum(
            g.data_nbytes for g in self.subgrids.values()
        )

    def equal(self, other: "RankState") -> bool:
        """Bit-exact data equality (top piece order-normalised particles)."""
        if self.rank != other.rank or self.nprocs != other.nprocs:
            return False
        if self.meta != other.meta:
            return False
        if sorted(self.subgrids) != sorted(other.subgrids):
            return False
        a, b = self.top_piece, other.top_piece
        if not (
            a.fields.equal(b.fields) and a.particles.equal_as_sets(b.particles)
        ):
            return False
        return all(
            self.subgrids[g].fields.equal(other.subgrids[g].fields)
            and self.subgrids[g].particles.equal_as_sets(
                other.subgrids[g].particles
            )
            for g in self.subgrids
        )


@dataclass
class PartitionedState:
    """The new-simulation read result: *every* grid partitioned.

    The paper (Section 2.2): "processor 0 reads in all initial grids
    including the top-grid and some pre-refined subgrids.  Each grid is,
    then, evenly partitioned among all processors."  ``pieces`` maps a grid
    id (the root's included) to this rank's piece -- possibly ``None`` when
    the grid is too small to give every rank a block.
    """

    rank: int
    nprocs: int
    meta: HierarchyMeta
    pieces: dict = field(default_factory=dict)  # grid_id -> Grid piece | None
    partitions: dict = field(default_factory=dict)  # grid_id -> BlockPartition

    @staticmethod
    def collect(states: list["PartitionedState"]) -> GridHierarchy:
        """Reassemble the full hierarchy from every rank's pieces."""
        if not states:
            raise ValueError("no states to collect")
        states = sorted(states, key=lambda s: s.rank)
        meta = states[0].meta
        full: dict[int, Grid] = {}
        for gid in sorted(g.id for g in meta.grids()):
            part = states[0].partitions[gid]
            g = meta[gid]
            template = Grid(
                id=g.id,
                level=g.level,
                dims=g.dims,
                left_edge=np.array(g.left_edge),
                right_edge=np.array(g.right_edge),
                parent_id=g.parent_id,
            )
            pieces = [states[r].pieces[gid] for r in range(part.nprocs)]
            if any(p is None for p in pieces):
                raise ValueError(f"missing pieces for grid {gid}")
            combined = part.reassemble(template, pieces)
            combined.parent_id = g.parent_id
            full[gid] = combined
        hierarchy = GridHierarchy(full[meta.root_id])
        for gid in sorted(full, key=lambda i: (full[i].level, i)):
            if gid == meta.root_id:
                continue
            grid = full[gid]
            grid.child_ids = []
            hierarchy.add_grid(grid)
        return hierarchy

    def my_data_nbytes(self) -> int:
        return sum(p.data_nbytes for p in self.pieces.values() if p is not None)
