"""Lightweight plot-file dumps (the Nyx/AMReX ``plt*`` stream).

Checkpoints carry the full restartable state -- all eight baryon fields
plus every particle array -- through the composed I/O strategies, whose
shared-file layouts hardcode the full field set (``GridMeta.field_nbytes``
is what every rank's offset arithmetic is built on).  Plot files are a
different animal: a *subset* of fields, no particles, never restarted
from, written far more often.  They get this dedicated writer instead of
riding the checkpoint machinery.

Layout (AMReX-header-style, flattened to one shared file):

* a fixed 512-byte JSON header (rank 0 writes it; padded with spaces), then
* rank-major contiguous data segments: each rank packs its top-grid piece
  followed by its owned subgrids (id order), each grid contributing its
  plot fields in canonical ``BARYON_FIELDS`` order.

Every rank computes every rank's segment size from the replicated
hierarchy metadata and the block partition, so offsets need no
communication -- the same property the paper's shared-file checkpoint
layouts exploit.
"""

from __future__ import annotations

import json

import numpy as np

from ..amr.fields import BARYON_FIELDS
from ..mpi.comm import Comm
from ..mpiio.file import File
from .io_base import IOStats
from .state import RankState

__all__ = ["HEADER_NBYTES", "plotfile_nbytes", "write_plotfile"]

HEADER_NBYTES = 512


def _canonical_fields(fields) -> tuple[str, ...]:
    """Plot fields in canonical storage order (input order is irrelevant)."""
    wanted = set(fields)
    unknown = wanted - set(BARYON_FIELDS)
    if unknown:
        raise ValueError(
            f"unknown plot field(s) {sorted(unknown)}; "
            f"choose from {', '.join(BARYON_FIELDS)}"
        )
    out = tuple(f for f in BARYON_FIELDS if f in wanted)
    if not out:
        raise ValueError("plot file needs at least one field")
    return out


def _rank_payload_nbytes(state: RankState, rank: int, nfields: int) -> int:
    """Bytes of rank ``rank``'s segment (computable on every rank)."""
    _, sizes = state.partition.block_of(rank)
    ncells = int(np.prod(sizes))
    for gid in state.meta.subgrid_ids():
        if state.owner.get(gid) == rank:
            ncells += state.meta[gid].ncells
    return ncells * 8 * nfields


def plotfile_nbytes(state: RankState, fields) -> int:
    """Total file size (header + all rank segments)."""
    nfields = len(_canonical_fields(fields))
    return HEADER_NBYTES + sum(
        _rank_payload_nbytes(state, r, nfields) for r in range(state.nprocs)
    )


def write_plotfile(
    comm: Comm,
    state: RankState,
    path: str,
    *,
    fields=("density",),
    cycle: int | None = None,
) -> IOStats:
    """Write one plot file; returns this rank's :class:`IOStats`."""
    names = _canonical_fields(fields)
    nfields = len(names)
    stats = IOStats(strategy="plotfile", operation="plot")
    t0 = comm.clock

    offset = HEADER_NBYTES
    for rank in range(state.rank):
        offset += _rank_payload_nbytes(state, rank, nfields)

    fh = File.open(comm, path, "w")
    if state.rank == 0:
        header = {
            "format": "plotfile",
            "version": 1,
            "fields": list(names),
            "nprocs": state.nprocs,
            "ngrids": len(state.meta),
            "root_dims": list(state.meta.root.dims),
        }
        if cycle is not None:
            header["cycle"] = cycle
        blob = json.dumps(header, sort_keys=True).encode()
        if len(blob) > HEADER_NBYTES:
            fh.close()
            raise ValueError(
                f"plot-file header {len(blob)}B exceeds the fixed "
                f"{HEADER_NBYTES}B slot"
            )
        t_meta = comm.clock
        fh.write_at(0, np.frombuffer(blob.ljust(HEADER_NBYTES), np.uint8))
        stats.add_phase("meta", comm.clock - t_meta)
        stats.bytes_moved += HEADER_NBYTES

    parts = [
        np.ascontiguousarray(state.top_piece.fields[n]).reshape(-1)
        for n in names
    ]
    for gid in sorted(state.subgrids):
        grid = state.subgrids[gid]
        parts.extend(
            np.ascontiguousarray(grid.fields[n]).reshape(-1) for n in names
        )
    buf = np.concatenate(parts) if parts else np.zeros(0)
    t_data = comm.clock
    fh.write_at(offset, buf)
    stats.add_phase("data", comm.clock - t_data)
    stats.bytes_moved += buf.nbytes
    fh.close()
    stats.elapsed = comm.clock - t0
    return stats
