"""The parallel HDF5 checkpoint strategy (paper Section 3.3 / Figure 10).

Structurally identical to the MPI-IO strategy -- collective hyperslab access
for the regular baryon fields, sorted block-wise independent access for the
irregular particle arrays, one shared file -- but going through the HDF5
library, which adds the four overheads the paper measured: per-dataset
create/close synchronisation (and there is one dataset per array per grid),
metadata interleaved with data (misaligned offsets, small metadata writes),
recursive hyperslab packing, and rank-0-only attribute writes.

Since the layered-stack refactor this module is a thin composition: the
movement plan is the same :class:`~repro.iostack.transports.CollectiveTransport`
the MPI-IO strategy uses, the HDF5 object model lives in
:class:`repro.iostack.formats.HDF5Format`, and the orchestration in the
:class:`~repro.enzo.io_base.StackExecutor`.  The paper's Section 5 remedy
is the registered ``hdf5-aligned`` composition: the same layers with
``meta_aggregation`` and ``alignment`` options on the format.
"""

from __future__ import annotations

from ..hdf5.file import H5Costs
from ..mpiio.hints import Hints
from ..resilience.retry import RetryPolicy
from .io_base import ComposedStrategy

__all__ = ["HDF5Strategy"]


class HDF5Strategy(ComposedStrategy):
    """Parallel HDF5 I/O through the mpio driver."""

    name = "hdf5"

    def __init__(
        self,
        hints: Hints | None = None,
        costs: H5Costs | None = None,
        retry: RetryPolicy | None = None,
    ):
        from ..iostack.formats import HDF5Format
        from ..iostack.layouts import SharedFileLayoutPlanner
        from ..iostack.transports import CollectiveTransport

        self.hints = hints or Hints()
        self.costs = costs or H5Costs()
        super().__init__(
            "hdf5",
            SharedFileLayoutPlanner(),
            CollectiveTransport(),
            HDF5Format(self.hints, costs=self.costs),
            retry=retry,
        )
