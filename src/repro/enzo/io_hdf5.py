"""The parallel HDF5 checkpoint strategy (paper Section 3.3 / Figure 10).

Structurally identical to the MPI-IO strategy -- collective hyperslab access
for the regular baryon fields, sorted block-wise independent access for the
irregular particle arrays, one shared file -- but going through the HDF5
library, which adds the four overheads the paper measured: per-dataset
create/close synchronisation (and there is one dataset per array per grid),
metadata interleaved with data (misaligned offsets, small metadata writes),
recursive hyperslab packing, and rank-0-only attribute writes.
"""

from __future__ import annotations

import numpy as np

from ..amr.grid import Grid
from ..amr.particles import PARTICLE_ARRAYS, ParticleSet
from ..amr.partition import BlockPartition
from ..hdf5.dataspace import Hyperslab
from ..hdf5.file import H5Costs, H5File
from ..mpi.comm import Comm
from ..mpiio.hints import Hints
from ..resilience.manifest import entry_for_segments
from ..resilience.retry import RetryPolicy
from .io_base import IOStats, IOStrategy
from .meta import array_dtype
from .sort import parallel_sort_by_id
from .state import RankState, make_owner_map

__all__ = ["HDF5Strategy"]


def _dset_name(grid_key, kind: str, array_name: str) -> str:
    """Dataset path; ``kind`` disambiguates field vs particle velocity_*."""
    return f"{grid_key}/{kind}/{array_name}"


class HDF5Strategy(IOStrategy):
    """Parallel HDF5 I/O through the mpio driver."""

    name = "hdf5"

    def __init__(
        self,
        hints: Hints | None = None,
        costs: H5Costs | None = None,
        retry: RetryPolicy | None = None,
    ):
        self.hints = hints or Hints()
        self.costs = costs or H5Costs()
        self.retry = retry

    # -- write -------------------------------------------------------------

    def write_checkpoint(self, comm: Comm, state: RankState, base: str) -> IOStats:
        stats = IOStats(strategy=self.name, operation="write")
        t0 = comm.clock
        meta = state.meta
        self.write_meta_sidecar(comm, base, meta)
        f = H5File.create(
            comm, base, driver="mpio", hints=self.hints, costs=self.costs,
            retry=self.retry,
        )
        entries = []

        # Phase 1: top-grid fields -- collective hyperslab writes.
        t = comm.clock
        starts, sizes = state.partition.block_of(comm.rank)
        for name, arr in state.top_piece.fields.items():
            d = f.create_dataset(_dset_name("top", "field", name), meta.root.dims, np.float64)
            sel = Hyperslab(start=starts, count=sizes)
            self._collective_or_degraded(
                comm, base,
                lambda: d.write(arr, sel, collective=True),
                lambda: d.write(arr, sel, collective=False),
                nbytes=arr.nbytes,
            )
            entries.append(entry_for_segments(
                f"top/field/{name}/r{comm.rank:04d}", base,
                d.file_segments(sel), arr,
            ))
            d.write_attr("level", 0)
            d.close()
            stats.bytes_moved += arr.nbytes
        stats.add_phase("top_fields", comm.clock - t)

        # Phase 2: top-grid particles -- sort, then independent block writes.
        t = comm.clock
        sorted_parts, elem_offset, counts = parallel_sort_by_id(
            comm, state.top_piece.particles
        )
        n_total = meta.root.nparticles
        for name in PARTICLE_ARRAYS:
            d = f.create_dataset(
                _dset_name("top", "particle", name), (max(n_total, 1),), array_dtype(name)
            )
            if len(sorted_parts):
                arr = np.ascontiguousarray(sorted_parts.array(name))
                sel = Hyperslab(start=(elem_offset,), count=(len(arr),))
                d.write(arr, sel, collective=False)
                entries.append(entry_for_segments(
                    f"top/particle/{name}/r{comm.rank:04d}", base,
                    d.file_segments(sel), arr,
                ))
                stats.bytes_moved += arr.nbytes
            d.close()
        stats.add_phase("top_particles", comm.clock - t)

        # Phase 3: subgrids -- every dataset creation is collective (all
        # ranks synchronise for every array of every grid), then the owner
        # writes independently.
        t = comm.clock
        for gid in meta.subgrid_ids():
            g = meta[gid]
            mine = state.subgrids.get(gid)
            for name in list(state.top_piece.fields.names):
                d = f.create_dataset(_dset_name(gid, "field", name), g.dims, np.float64)
                if mine is not None:
                    d.write(mine.fields[name], collective=False)
                    entries.append(entry_for_segments(
                        f"grid{gid}/field/{name}", base,
                        d.file_segments(), mine.fields[name],
                    ))
                    stats.bytes_moved += mine.fields[name].nbytes
                d.close()
            gparts = mine.particles.sort_by_id() if mine is not None else None
            for name in PARTICLE_ARRAYS:
                d = f.create_dataset(
                    _dset_name(gid, "particle", name),
                    (max(g.nparticles, 1),),
                    array_dtype(name),
                )
                if mine is not None and g.nparticles:
                    arr = np.ascontiguousarray(gparts.array(name))
                    sel = Hyperslab(start=(0,), count=(len(arr),))
                    d.write(arr, sel, collective=False)
                    entries.append(entry_for_segments(
                        f"grid{gid}/particle/{name}", base,
                        d.file_segments(sel), arr,
                    ))
                    stats.bytes_moved += arr.nbytes
                d.close()
        stats.add_phase("subgrids", comm.clock - t)

        f.close()
        self.write_manifest(comm, base, entries)
        stats.elapsed = comm.clock - t0
        return stats

    # -- read ------------------------------------------------------------------

    def read_checkpoint(self, comm: Comm, base: str) -> tuple[RankState, IOStats]:
        from .io_mpiio import MPIIOStrategy  # reuse redistribution helper

        stats = IOStats(strategy=self.name, operation="read")
        t0 = comm.clock
        meta = self.read_meta_sidecar(comm, base)
        self.verify_manifest(comm, base)
        partition = BlockPartition(meta.root.dims, comm.size)
        f = H5File.open(
            comm, base, driver="mpio", hints=self.hints, costs=self.costs,
            retry=self.retry,
        )

        helper = MPIIOStrategy(self.hints)

        # Phase 1: top fields, collective hyperslab reads.
        t = comm.clock
        starts, sizes = partition.block_of(comm.rank)
        top_piece = helper._make_top_piece_shell(meta, partition, comm.rank)
        for name in top_piece.fields:
            d = f.open_dataset(_dset_name("top", "field", name))
            got = d.read(Hyperslab(start=starts, count=sizes), collective=True)
            top_piece.fields[name] = got
            d.close()
            stats.bytes_moved += got.nbytes
        stats.add_phase("top_fields", comm.clock - t)

        # Phase 2: particles -- blockwise independent reads + redistribution.
        t = comm.clock
        n_total = meta.root.nparticles
        lo = (n_total * comm.rank) // comm.size
        hi = (n_total * (comm.rank + 1)) // comm.size
        arrays = {}
        for name in PARTICLE_ARRAYS:
            d = f.open_dataset(_dset_name("top", "particle", name))
            if hi > lo:
                got = d.read(
                    Hyperslab(start=(lo,), count=(hi - lo,)), collective=False
                )
            else:
                got = np.empty(0, dtype=array_dtype(name))
            arrays[name] = got
            d.close()
            stats.bytes_moved += got.nbytes
        block = ParticleSet.from_arrays(arrays)
        top_piece.particles = helper._redistribute_particles(
            comm, block, meta, partition
        )
        stats.add_phase("top_particles", comm.clock - t)

        # Phase 3: subgrids round-robin.  Dataset open/close are collective
        # in parallel HDF5, so every rank walks every dataset even though
        # only the round-robin owner reads data -- one of the synchronisation
        # costs the paper measured.
        t = comm.clock
        owner = make_owner_map(meta, comm.size, policy="round_robin")
        subgrids: dict[int, Grid] = {}
        field_names = list(top_piece.fields.names)
        for gid in meta.subgrid_ids():
            g = meta[gid]
            mine = owner[gid] == comm.rank
            shell = self.make_subgrid_shell(meta, gid) if mine else None
            for name in field_names:
                d = f.open_dataset(_dset_name(gid, "field", name))
                if mine:
                    shell.fields[name] = d.read(collective=False)
                    stats.bytes_moved += shell.fields[name].nbytes
                d.close()
            parrays = {}
            for name in PARTICLE_ARRAYS:
                d = f.open_dataset(_dset_name(gid, "particle", name))
                if mine:
                    if g.nparticles:
                        got = d.read(
                            Hyperslab(start=(0,), count=(g.nparticles,)),
                            collective=False,
                        )
                    else:
                        got = np.empty(0, dtype=array_dtype(name))
                    parrays[name] = got
                    stats.bytes_moved += got.nbytes
                d.close()
            if mine:
                shell.particles = ParticleSet.from_arrays(parrays)
                subgrids[gid] = shell
        stats.add_phase("subgrids", comm.clock - t)

        f.close()
        stats.elapsed = comm.clock - t0
        return (
            RankState(
                rank=comm.rank,
                nprocs=comm.size,
                meta=meta,
                partition=partition,
                top_piece=top_piece,
                subgrids=subgrids,
                owner=owner,
            ),
            stats,
        )

    # -- new-simulation (initial) read --------------------------------------

    def read_initial(self, comm: Comm, base: str):
        """Parallel new-simulation read via hyperslab selections."""
        from .state import PartitionedState

        stats = IOStats(strategy=self.name, operation="read_initial")
        t0 = comm.clock
        meta = self.read_meta_sidecar(comm, base)
        f = H5File.open(
            comm, base, driver="mpio", hints=self.hints, costs=self.costs,
            retry=self.retry,
        )
        from .io_mpiio import MPIIOStrategy

        helper = MPIIOStrategy(self.hints)
        state = PartitionedState(rank=comm.rank, nprocs=comm.size, meta=meta)
        field_names = list(helper._field_names())
        for g in meta.grids():
            gid = g.id
            key = "top" if gid == meta.root_id else gid
            part = BlockPartition.for_grid(g.dims, comm.size)
            state.partitions[gid] = part
            active = comm.rank < part.nprocs
            piece = helper._make_piece_shell(meta, gid, part, comm.rank) if active else None
            for name in field_names:
                d = f.open_dataset(_dset_name(key, "field", name))
                if active:
                    starts, sizes = part.block_of(comm.rank)
                    got = d.read(
                        Hyperslab(start=starts, count=sizes), collective=True
                    )
                    piece.fields[name] = got
                    stats.bytes_moved += got.nbytes
                else:
                    # Collective read with an empty selection.
                    d.read(
                        Hyperslab(start=(0,) * len(g.dims), count=(0,) * len(g.dims)),
                        collective=True,
                    )
                d.close()
            n_total = g.nparticles
            active_ranks = part.nprocs
            if comm.rank < active_ranks:
                lo = (n_total * comm.rank) // active_ranks
                hi = (n_total * (comm.rank + 1)) // active_ranks
            else:
                lo = hi = 0
            arrays = {}
            for name in PARTICLE_ARRAYS:
                d = f.open_dataset(_dset_name(key, "particle", name))
                if hi > lo:
                    got = d.read(
                        Hyperslab(start=(lo,), count=(hi - lo,)), collective=False
                    )
                else:
                    got = np.empty(0, dtype=array_dtype(name))
                arrays[name] = got
                d.close()
                stats.bytes_moved += got.nbytes
            block = ParticleSet.from_arrays(arrays)
            mine = helper._redistribute_grid_particles(comm, block, meta, gid, part)
            if piece is not None:
                piece.particles = mine
                state.pieces[gid] = piece
            else:
                state.pieces[gid] = None
        f.close()
        stats.elapsed = comm.clock - t0
        return state, stats
