"""Shared-checkpoint-file layout.

The paper's optimisation 3.2.2 ("Making Use of Other Metadata"): since grid
accesses follow a fixed array order and the hierarchy metadata is
replicated, *all grids can be written into a single shared file* whose
layout every rank computes identically with zero communication.

Layout (byte offsets ascending)::

    top-grid baryon fields, canonical order (global 3-D arrays)
    top-grid particle arrays, canonical order (global 1-D arrays, sorted by id)
    per subgrid (id order): its baryon fields, then its particle arrays

The metadata itself goes into a ``<base>.hierarchy`` sidecar file (as real
ENZO does), written by rank 0.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..amr.fields import BARYON_FIELDS
from ..amr.particles import PARTICLE_ARRAYS
from .meta import HierarchyMeta, array_dtype

__all__ = ["ArrayExtent", "CheckpointLayout", "TOP"]

#: Pseudo grid-id key for the top grid's arrays.
TOP = "top"


@dataclass(frozen=True)
class ArrayExtent:
    """Where one named array of one grid lives in the shared file."""

    offset: int
    dtype: np.dtype
    shape: tuple[int, ...]

    @property
    def nbytes(self) -> int:
        return int(np.prod(self.shape)) * self.dtype.itemsize

    @property
    def end(self) -> int:
        return self.offset + self.nbytes


class CheckpointLayout:
    """Deterministic mapping (grid key, array name) -> :class:`ArrayExtent`."""

    def __init__(self, meta: HierarchyMeta):
        self.meta = meta
        self._extents: dict[tuple, ArrayExtent] = {}
        cursor = 0
        root = meta.root
        for name in BARYON_FIELDS:
            cursor = self._add(
                (TOP, "field", name), cursor, np.dtype(np.float64), root.dims
            )
        for name in PARTICLE_ARRAYS:
            cursor = self._add(
                (TOP, "particle", name), cursor, array_dtype(name),
                (root.nparticles,),
            )
        for gid in meta.subgrid_ids():
            g = meta[gid]
            for name in BARYON_FIELDS:
                cursor = self._add(
                    (gid, "field", name), cursor, np.dtype(np.float64), g.dims
                )
            for name in PARTICLE_ARRAYS:
                cursor = self._add(
                    (gid, "particle", name), cursor, array_dtype(name),
                    (g.nparticles,),
                )
        self.total_nbytes = cursor

    def _add(self, key, cursor, dtype, shape) -> int:
        ext = ArrayExtent(cursor, dtype, tuple(int(s) for s in shape))
        self._extents[key] = ext
        return ext.end

    def extent(self, grid_key, array_name: str, kind: str = "field") -> ArrayExtent:
        """Extent of one array.

        ``grid_key`` is :data:`TOP` or a grid id; ``kind`` is ``"field"``
        (baryon field) or ``"particle"`` (the two namespaces share names
        like ``velocity_x``).
        """
        return self._extents[(grid_key, kind, array_name)]

    def grid_span(self, grid_key) -> tuple[int, int]:
        """The contiguous byte range covering all of one grid's arrays."""
        exts = [e for (g, _, _), e in self._extents.items() if g == grid_key]
        return min(e.offset for e in exts), max(e.end for e in exts)

    def keys(self):
        return self._extents.keys()

    def __len__(self) -> int:
        return len(self._extents)
