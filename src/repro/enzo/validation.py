"""Checkpoint validation: cross-strategy, cross-format comparison.

Checkpoints written by different strategies (HDF4 files-per-grid, MPI-IO
shared file, HDF5 shared file) hold the same logical content.  This module
reads a checkpoint back through its own format reader on a single rank and
returns the content as plain arrays, so any two checkpoints can be compared
array-by-array — the test the paper's authors had to run by hand when they
swapped I/O layers under a production code.
"""

from __future__ import annotations

import numpy as np

from ..amr.fields import BARYON_FIELDS
from ..amr.particles import PARTICLE_ARRAYS
from ..mpi.runner import run_spmd
from ..pfs.base import FileSystem
from ..resilience.manifest import ManifestVerificationError
from ..sim.errors import RankFailedError
from ..topology.machine import Machine
from ..topology.network import Network
from .io_base import IOStrategy
from .layout import TOP
from .state import RankState

__all__ = ["read_checkpoint_arrays", "compare_checkpoints", "ValidationReport"]


def _null_machine(fs: FileSystem) -> Machine:
    m = Machine(
        name="validator",
        nprocs=1,
        procs_per_node=1,
        network=Network(1, latency=0.0, bandwidth=1e12),
    )
    return m.attach_fs(fs)


def read_checkpoint_arrays(
    fs: FileSystem, strategy: IOStrategy, base: str
) -> dict[tuple, np.ndarray]:
    """All arrays of a checkpoint, keyed by (grid key, kind, name).

    Grid keys are :data:`~repro.enzo.layout.TOP` for the root and the grid
    id for subgrids; particle arrays come back ID-sorted so orderings are
    canonical across strategies and writer counts.
    """
    machine = _null_machine(fs)

    def program(comm):
        state, _stats = strategy.read_checkpoint(comm, base)
        return state

    state: RankState = run_spmd(machine, program, nprocs=1).results[0]
    out: dict[tuple, np.ndarray] = {}
    top = state.top_piece
    for name in BARYON_FIELDS:
        out[(TOP, "field", name)] = top.fields[name]
    sorted_top = top.particles.sort_by_id()
    for name in PARTICLE_ARRAYS:
        out[(TOP, "particle", name)] = np.ascontiguousarray(
            sorted_top.array(name)
        )
    for gid, grid in sorted(state.subgrids.items()):
        for name in BARYON_FIELDS:
            out[(gid, "field", name)] = grid.fields[name]
        sorted_parts = grid.particles.sort_by_id()
        for name in PARTICLE_ARRAYS:
            out[(gid, "particle", name)] = np.ascontiguousarray(
                sorted_parts.array(name)
            )
    return out


class ValidationReport:
    """Outcome of a checkpoint comparison."""

    def __init__(self):
        self.missing: list[tuple] = []
        self.extra: list[tuple] = []
        self.mismatched: list[tuple] = []
        self.corrupt: list[str] = []  # manifest-verification failures
        self.compared = 0

    @property
    def ok(self) -> bool:
        return not (
            self.missing or self.extra or self.mismatched or self.corrupt
        )

    def summary(self) -> str:
        if self.ok:
            return f"OK: {self.compared} arrays bit-identical"
        parts = [f"compared {self.compared}"]
        if self.corrupt:
            parts.append(f"corrupt: {self.corrupt[0]}")
        if self.missing:
            parts.append(f"missing {len(self.missing)} (e.g. {self.missing[0]})")
        if self.extra:
            parts.append(f"extra {len(self.extra)} (e.g. {self.extra[0]})")
        if self.mismatched:
            parts.append(
                f"mismatched {len(self.mismatched)} (e.g. {self.mismatched[0]})"
            )
        return "FAIL: " + ", ".join(parts)


def compare_checkpoints(
    fs_a: FileSystem,
    strategy_a: IOStrategy,
    base_a: str,
    fs_b: FileSystem,
    strategy_b: IOStrategy,
    base_b: str,
) -> ValidationReport:
    """Array-by-array comparison of two checkpoints (any strategies).

    A checkpoint that fails its manifest integrity scan is reported as
    corrupt (``report.ok`` False, the key-space it covers listed under
    ``mismatched``) rather than raising -- validation's job is to report.
    """
    report = ValidationReport()
    try:
        a = read_checkpoint_arrays(fs_a, strategy_a, base_a)
    except RankFailedError as err:
        if not isinstance(err.__cause__, ManifestVerificationError):
            raise
        report.corrupt.append(f"{base_a}: {err.__cause__}")
        report.mismatched.append((base_a,))
        return report
    try:
        b = read_checkpoint_arrays(fs_b, strategy_b, base_b)
    except RankFailedError as err:
        if not isinstance(err.__cause__, ManifestVerificationError):
            raise
        report.corrupt.append(f"{base_b}: {err.__cause__}")
        report.mismatched.append((base_b,))
        return report
    report.missing = sorted(set(a) - set(b), key=str)
    report.extra = sorted(set(b) - set(a), key=str)
    for key in sorted(set(a) & set(b), key=str):
        report.compared += 1
        if not np.array_equal(a[key], b[key]):
            report.mismatched.append(key)
    return report
