"""The ENZO cosmology application and its three checkpoint I/O strategies."""

from .io_base import IOStats, IOStrategy, hierarchy_path
from .io_hdf4 import HDF4Strategy, subgrid_path, top_grid_path
from .io_hdf5 import HDF5Strategy
from .io_mpiio import MPIIOStrategy
from .layout import TOP, ArrayExtent, CheckpointLayout
from .meta import GridMeta, HierarchyMeta, array_dtype
from .simulation import PROBLEM_SIZES, EnzoConfig, EnzoSimulation
from .sizing import WorkloadModel, grid_bytes, table1
from .sort import parallel_sort_by_id
from .state import PartitionedState, RankState, hierarchies_equivalent, make_owner_map
from .validation import ValidationReport, compare_checkpoints, read_checkpoint_arrays

__all__ = [
    "IOStrategy",
    "IOStats",
    "hierarchy_path",
    "HDF4Strategy",
    "MPIIOStrategy",
    "HDF5Strategy",
    "top_grid_path",
    "subgrid_path",
    "CheckpointLayout",
    "ArrayExtent",
    "TOP",
    "GridMeta",
    "HierarchyMeta",
    "array_dtype",
    "EnzoConfig",
    "EnzoSimulation",
    "PROBLEM_SIZES",
    "WorkloadModel",
    "grid_bytes",
    "table1",
    "parallel_sort_by_id",
    "RankState",
    "PartitionedState",
    "ValidationReport",
    "compare_checkpoints",
    "read_checkpoint_arrays",
    "make_owner_map",
    "hierarchies_equivalent",
]
