"""I/O strategy interface and shared helpers.

A strategy implements the two timed operations of the study:

* :meth:`write_checkpoint` -- the per-cycle data dump (paper's "Write");
* :meth:`read_checkpoint` -- the restart / new-simulation read ("Read").

All strategies write the same logical content (every grid's baryon fields
and particle arrays, plus the replicated hierarchy metadata in a
``<base>.hierarchy`` sidecar), so checkpoints are comparable bit-for-bit
across strategies and processor counts.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from contextlib import contextmanager
from dataclasses import dataclass, field as dc_field

import numpy as np

from ..aio.core import drain_all
from ..amr.grid import Grid
from ..mpi import collectives as coll
from ..mpi.comm import Comm
from ..mpiio.adio import ADIOFile
from ..pfs.base import FileSystem, InjectedIOError
from ..resilience.manifest import (
    CheckpointManifest,
    ManifestVerificationError,
    manifest_path,
)
from ..resilience.retry import RetryPolicy
from .meta import HierarchyMeta
from .state import RankState

__all__ = [
    "ComposedStrategy",
    "IOStats",
    "IOStrategy",
    "PendingDump",
    "StackContext",
    "StackExecutor",
    "hierarchy_path",
]


def hierarchy_path(base: str) -> str:
    return f"{base}.hierarchy"


@dataclass
class IOStats:
    """Phase timing and volume breakdown of one strategy operation."""

    strategy: str = ""
    operation: str = ""  # "write" or "read"
    elapsed: float = 0.0
    phases: dict = dc_field(default_factory=dict)  # phase -> seconds (max over ranks)
    bytes_moved: int = 0

    def add_phase(self, name: str, seconds: float) -> None:
        self.phases[name] = self.phases.get(name, 0.0) + seconds


class IOStrategy(ABC):
    """Base class for the three checkpoint I/O implementations.

    Resilience: strategies accept an optional
    :class:`~repro.resilience.RetryPolicy` (``self.retry``) that the ADIO
    layer applies to every data operation, and each dump commits a
    ``<base>.manifest`` sidecar of per-array checksums that
    :meth:`verify_manifest` checks before a restart trusts the data.
    """

    name: str = "abstract"
    #: optional RetryPolicy; ``None`` = fail-fast (pre-resilience behaviour)
    retry: RetryPolicy | None = None
    #: optional repro.aio.AioConfig; ``None`` = fully synchronous I/O
    aio = None
    #: scale-mode: post a grid's array writes as one batched request
    #: (one schedule-point crossing); never set on pinned-digest paths
    batch_requests: bool = False

    @abstractmethod
    def write_checkpoint(
        self, comm: Comm, state: RankState, base: str
    ) -> IOStats:
        """Dump the full distributed state to ``base`` (collective)."""

    @abstractmethod
    def read_checkpoint(self, comm: Comm, base: str) -> tuple[RankState, IOStats]:
        """Read a checkpoint into a fresh per-rank state (collective)."""

    # -- shared helpers ----------------------------------------------------

    def _fs(self, comm: Comm) -> FileSystem:
        fs = comm.machine.fs
        if fs is None:
            raise ValueError("no file system attached to the machine")
        return fs

    def write_meta_sidecar(self, comm: Comm, base: str, meta: HierarchyMeta) -> None:
        """Rank 0 writes the hierarchy sidecar; everyone synchronises."""
        if comm.rank == 0:
            fs = self._fs(comm)
            path = hierarchy_path(base)
            proc = comm.proc
            proc.schedule_point()
            done = fs.create(
                path,
                node=comm.machine.node_of(comm.group[0]),
                ready_time=proc.clock,
            )
            proc.advance_to(done)
            adio = ADIOFile(fs, path, comm, retry=self.retry)
            adio.write_contig(0, meta.to_bytes())
        coll.barrier(comm)

    def read_meta_sidecar(self, comm: Comm, base: str) -> HierarchyMeta:
        """Rank 0 reads the sidecar and broadcasts it."""
        blob = None
        if comm.rank == 0:
            fs = self._fs(comm)
            path = hierarchy_path(base)
            proc = comm.proc
            proc.schedule_point()
            done = fs.open(
                path,
                node=comm.machine.node_of(comm.group[0]),
                ready_time=proc.clock,
            )
            proc.advance_to(done)
            adio = ADIOFile(fs, path, comm, retry=self.retry)
            blob = adio.read_contig(0, adio.size())
        blob = coll.bcast(comm, blob, root=0)
        return HierarchyMeta.from_bytes(blob)

    # -- manifest (crash consistency) --------------------------------------

    def write_manifest(self, comm: Comm, base: str, entries) -> None:
        """Commit the dump: gather per-rank entries, rank 0 writes the
        ``<base>.manifest`` sidecar, everyone synchronises.

        Called *after* the data file is closed so the manifest's presence
        marks a completed dump -- a crash mid-dump leaves no manifest and
        restart fails loudly in :meth:`verify_manifest`.
        """
        gathered = coll.gather(comm, list(entries), root=0)
        if comm.rank == 0:
            manifest = CheckpointManifest(strategy=self.name)
            for rank_entries in gathered:
                for entry in rank_entries:
                    manifest.add(entry)
            fs = self._fs(comm)
            path = manifest_path(base)
            proc = comm.proc
            proc.schedule_point()
            done = fs.create(
                path,
                node=comm.machine.node_of(comm.group[0]),
                ready_time=proc.clock,
            )
            proc.advance_to(done)
            adio = ADIOFile(fs, path, comm, retry=self.retry)
            adio.write_contig(0, manifest.to_bytes())
        coll.barrier(comm)

    def verify_manifest(self, comm: Comm, base: str) -> None:
        """Integrity-gate a restart: rank 0 loads the manifest and scans
        every recorded array's on-disk bytes against its checksum.

        Raises :class:`~repro.resilience.ManifestVerificationError` when
        the manifest is missing (dump never committed), unreadable, or any
        checksum mismatches (torn/lost writes) -- corrupt state is never
        silently returned.
        """
        if comm.rank == 0:
            fs = self._fs(comm)
            path = manifest_path(base)
            if not fs.exists(path):
                raise ManifestVerificationError(
                    f"checkpoint {base!r} has no manifest -- "
                    "the dump did not complete"
                )
            proc = comm.proc
            proc.schedule_point()
            done = fs.open(
                path,
                node=comm.machine.node_of(comm.group[0]),
                ready_time=proc.clock,
            )
            proc.advance_to(done)
            adio = ADIOFile(fs, path, comm, retry=self.retry)
            manifest = CheckpointManifest.from_bytes(
                adio.read_contig(0, adio.size())
            )
            manifest.verify_or_raise(fs.store, base)
        coll.barrier(comm)

    # -- recovery plumbing -------------------------------------------------

    def _notify(self, comm: Comm, base: str, kind: str, nbytes: int = 0) -> None:
        """Emit a recovery event on this rank's node at the current clock."""
        self._fs(comm).notify_recovery(
            base,
            kind,
            node=comm.machine.node_of(comm.group[comm.rank]),
            time=comm.clock,
            nbytes=nbytes,
        )

    def _collective_or_degraded(
        self, comm: Comm, base: str, write_collective, write_independent,
        nbytes: int = 0,
    ) -> bool:
        """Run a collective write, degrading to independent I/O on failure.

        Only active when ``self.retry`` enables ``degrade_collective``;
        otherwise the collective runs bare (no extra synchronisation) and
        failures propagate.  When any participant's collective attempt
        fails (after its ADIO-level retries), all ranks agree via allreduce
        and re-issue their share independently -- the same bytes land at
        the same offsets, so the result is identical, just slower.
        Returns True when the degraded path ran.
        """
        degrade = self.retry is not None and self.retry.degrade_collective
        if not degrade:
            write_collective()
            return False
        failed = 0
        try:
            write_collective()
        except InjectedIOError:
            failed = 1
        if coll.allreduce(comm, failed) == 0:
            return False
        self._notify(comm, base, "degraded", nbytes=nbytes)
        write_independent()
        return True

    @staticmethod
    def make_subgrid_shell(meta, gid) -> Grid:
        """An empty grid with the geometry the metadata records."""
        g = meta[gid]
        return Grid(
            id=g.id,
            level=g.level,
            dims=g.dims,
            left_edge=np.array(g.left_edge),
            right_edge=np.array(g.right_edge),
            parent_id=g.parent_id,
        )

    @staticmethod
    def make_root_shell(meta) -> Grid:
        g = meta.root
        return Grid(
            id=g.id,
            level=g.level,
            dims=g.dims,
            left_edge=np.array(g.left_edge),
            right_edge=np.array(g.right_edge),
        )


# -- the layered I/O stack (see repro.iostack) -------------------------------


@dataclass
class StackContext:
    """Per-operation state threaded through the stack layers.

    The executor owns it; transports time their phases through
    :meth:`timed` and both transports and format sessions append manifest
    entries to ``entries``.
    """

    strategy: "ComposedStrategy"
    comm: Comm
    base: str
    stats: IOStats
    entries: list

    @contextmanager
    def timed(self, name: str):
        """Record the simulated-clock span of a phase into the stats."""
        t = self.comm.clock
        yield
        self.stats.add_phase(name, self.comm.clock - t)


@dataclass
class PendingDump:
    """A posted checkpoint dump awaiting its drain + manifest commit.

    Produced by :meth:`StackExecutor.write_async`; the caller overlaps
    compute with the background drain and calls :meth:`complete` before
    the data may be needed (next dump, restart, shutdown).  ``complete``
    is where deferred I/O errors surface -- *before* the manifest is
    written, so a failed drain leaves no commit record and a restart
    fails loudly instead of trusting torn state.
    """

    ctx: StackContext
    _done: bool = False

    @property
    def stats(self) -> IOStats:
        return self.ctx.stats

    def complete(self) -> IOStats:
        """Drain, barrier, commit the manifest; returns the final stats.

        Idempotent; the recorded ``drain_wait`` phase is the part of the
        write the overlap failed to hide.
        """
        if self._done:
            return self.ctx.stats
        self._done = True
        ctx = self.ctx
        comm = ctx.comm
        t0 = comm.clock
        with ctx.timed("drain_wait"):
            drain_all(comm)
        coll.barrier(comm)  # every rank's data is durable before commit
        ctx.strategy.write_manifest(comm, ctx.base, ctx.entries)
        ctx.stats.elapsed += comm.clock - t0
        return ctx.stats


class StackExecutor:
    """Runs a composed strategy: the one place orchestration lives.

    The cross-cutting order every strategy shares, formerly copy-pasted
    per driver:

    * **write** -- hierarchy sidecar, open, transport-driven data phases,
      close, then the CRC32 manifest *commit record* (data before
      manifest: a crash mid-dump leaves no manifest, so restart fails
      loudly instead of reading torn state);
    * **read** -- sidecar, manifest verification, open, transport-driven
      phases, close;
    * **read_initial** -- sidecar then the transport's distribution read
      (no manifest gate and no phase breakdown, matching the original
      new-simulation paths).
    """

    def __init__(self, strategy: "ComposedStrategy"):
        self.strategy = strategy

    def write(self, comm: Comm, state: RankState, base: str) -> IOStats:
        s = self.strategy
        if getattr(s, "aio", None) is not None:
            # Async transport: post the data phases, then immediately
            # drain and commit (no compute to overlap with here -- the
            # Enzo driver's double buffering calls write_async directly).
            return self.write_async(comm, state, base).complete()
        stats = IOStats(strategy=s.name, operation="write")
        t0 = comm.clock
        layout = s.layout_planner.plan(state.meta)
        ctx = StackContext(s, comm, base, stats, [])
        s.write_meta_sidecar(comm, base, state.meta)
        session = s.format.open_write(ctx, state.meta, layout)
        s.transport.write(ctx, session, layout, state)
        session.close()
        s.write_manifest(comm, base, ctx.entries)
        stats.elapsed = comm.clock - t0
        return stats

    def write_async(self, comm: Comm, state: RankState, base: str) -> "PendingDump":
        """Post the dump's data phases and return without committing.

        Runs the exact sidecar/open/transport/close sequence of
        :meth:`write`, but with the strategy's ``aio`` config the data
        writes are posted to the background flush service, so the rank
        returns as soon as staging and communication are done.  The CRC32
        manifest is *not* written yet: :meth:`PendingDump.complete` drains
        every pending request (the explicit flush barrier) and only then
        commits, preserving the crash-consistency invariant that a
        manifest's presence proves fully-landed data.
        """
        s = self.strategy
        stats = IOStats(strategy=s.name, operation="write")
        t0 = comm.clock
        layout = s.layout_planner.plan(state.meta)
        ctx = StackContext(s, comm, base, stats, [])
        s.write_meta_sidecar(comm, base, state.meta)
        session = s.format.open_write(ctx, state.meta, layout)
        s.transport.write(ctx, session, layout, state)
        session.close()
        stats.elapsed = comm.clock - t0
        return PendingDump(ctx=ctx)

    def read(self, comm: Comm, base: str) -> tuple[RankState, IOStats]:
        s = self.strategy
        stats = IOStats(strategy=s.name, operation="read")
        t0 = comm.clock
        meta = s.read_meta_sidecar(comm, base)
        s.verify_manifest(comm, base)
        layout = s.layout_planner.plan(meta)
        ctx = StackContext(s, comm, base, stats, [])
        session = s.format.open_read(ctx, meta, layout)
        state = s.transport.read(ctx, session, layout, meta)
        session.close()
        stats.elapsed = comm.clock - t0
        return state, stats

    def read_initial(self, comm: Comm, base: str):
        s = self.strategy
        stats = IOStats(strategy=s.name, operation="read_initial")
        t0 = comm.clock
        meta = s.read_meta_sidecar(comm, base)
        layout = s.layout_planner.plan(meta)
        ctx = StackContext(s, comm, base, stats, [])
        session = s.format.open_read(ctx, meta, layout)
        state = s.transport.read_initial(ctx, session, layout, meta)
        session.close()
        stats.elapsed = comm.clock - t0
        return state, stats


class ComposedStrategy(IOStrategy):
    """An I/O strategy assembled from layout + transport + format layers.

    The named compositions in :mod:`repro.iostack.registry` instantiate
    this class; the legacy strategy classes subclass it with their
    original constructor signatures.  All behaviour runs through the
    :class:`StackExecutor`.
    """

    def __init__(
        self, name: str, layout_planner, transport, fmt,
        retry: RetryPolicy | None = None, aio=None,
    ):
        self.name = name
        self.layout_planner = layout_planner
        self.transport = transport
        self.format = fmt
        self.retry = retry
        #: optional repro.aio.AioConfig; non-None makes every data write
        #: nonblocking (posted to the per-rank background flush service)
        self.aio = aio
        self._executor = StackExecutor(self)

    def write_checkpoint(self, comm: Comm, state: RankState, base: str) -> IOStats:
        return self._executor.write(comm, state, base)

    def write_checkpoint_async(
        self, comm: Comm, state: RankState, base: str
    ) -> PendingDump:
        """Post a dump; :meth:`PendingDump.complete` commits it.

        Valid for any composition (a synchronous strategy's "pending"
        dump simply has nothing left to drain), so drivers can double
        -buffer unconditionally.
        """
        return self._executor.write_async(comm, state, base)

    def read_checkpoint(self, comm: Comm, base: str) -> tuple[RankState, IOStats]:
        return self._executor.read(comm, base)

    def read_initial(self, comm: Comm, base: str):
        return self._executor.read_initial(comm, base)
