"""I/O strategy interface and shared helpers.

A strategy implements the two timed operations of the study:

* :meth:`write_checkpoint` -- the per-cycle data dump (paper's "Write");
* :meth:`read_checkpoint` -- the restart / new-simulation read ("Read").

All strategies write the same logical content (every grid's baryon fields
and particle arrays, plus the replicated hierarchy metadata in a
``<base>.hierarchy`` sidecar), so checkpoints are comparable bit-for-bit
across strategies and processor counts.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field as dc_field

import numpy as np

from ..amr.grid import Grid
from ..mpi import collectives as coll
from ..mpi.comm import Comm
from ..mpiio.adio import ADIOFile
from ..pfs.base import FileSystem
from .meta import HierarchyMeta
from .state import RankState

__all__ = ["IOStrategy", "IOStats", "hierarchy_path"]


def hierarchy_path(base: str) -> str:
    return f"{base}.hierarchy"


@dataclass
class IOStats:
    """Phase timing and volume breakdown of one strategy operation."""

    strategy: str = ""
    operation: str = ""  # "write" or "read"
    elapsed: float = 0.0
    phases: dict = dc_field(default_factory=dict)  # phase -> seconds (max over ranks)
    bytes_moved: int = 0

    def add_phase(self, name: str, seconds: float) -> None:
        self.phases[name] = self.phases.get(name, 0.0) + seconds


class IOStrategy(ABC):
    """Base class for the three checkpoint I/O implementations."""

    name: str = "abstract"

    @abstractmethod
    def write_checkpoint(
        self, comm: Comm, state: RankState, base: str
    ) -> IOStats:
        """Dump the full distributed state to ``base`` (collective)."""

    @abstractmethod
    def read_checkpoint(self, comm: Comm, base: str) -> tuple[RankState, IOStats]:
        """Read a checkpoint into a fresh per-rank state (collective)."""

    # -- shared helpers ----------------------------------------------------

    def _fs(self, comm: Comm) -> FileSystem:
        fs = comm.machine.fs
        if fs is None:
            raise ValueError("no file system attached to the machine")
        return fs

    def write_meta_sidecar(self, comm: Comm, base: str, meta: HierarchyMeta) -> None:
        """Rank 0 writes the hierarchy sidecar; everyone synchronises."""
        if comm.rank == 0:
            fs = self._fs(comm)
            path = hierarchy_path(base)
            proc = comm.proc
            proc.schedule_point()
            done = fs.create(
                path,
                node=comm.machine.node_of(comm.group[0]),
                ready_time=proc.clock,
            )
            proc.advance_to(done)
            adio = ADIOFile(fs, path, comm)
            adio.write_contig(0, meta.to_bytes())
        coll.barrier(comm)

    def read_meta_sidecar(self, comm: Comm, base: str) -> HierarchyMeta:
        """Rank 0 reads the sidecar and broadcasts it."""
        blob = None
        if comm.rank == 0:
            fs = self._fs(comm)
            path = hierarchy_path(base)
            proc = comm.proc
            proc.schedule_point()
            done = fs.open(
                path,
                node=comm.machine.node_of(comm.group[0]),
                ready_time=proc.clock,
            )
            proc.advance_to(done)
            adio = ADIOFile(fs, path, comm)
            blob = adio.read_contig(0, adio.size())
        blob = coll.bcast(comm, blob, root=0)
        return HierarchyMeta.from_bytes(blob)

    @staticmethod
    def make_subgrid_shell(meta, gid) -> Grid:
        """An empty grid with the geometry the metadata records."""
        g = meta[gid]
        return Grid(
            id=g.id,
            level=g.level,
            dims=g.dims,
            left_edge=np.array(g.left_edge),
            right_edge=np.array(g.right_edge),
            parent_id=g.parent_id,
        )

    @staticmethod
    def make_root_shell(meta) -> Grid:
        g = meta.root
        return Grid(
            id=g.id,
            level=g.level,
            dims=g.dims,
            left_edge=np.array(g.left_edge),
            right_edge=np.array(g.right_edge),
        )
