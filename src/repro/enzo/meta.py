"""Hierarchy metadata: what every processor knows about every grid.

The paper (Section 2.2): "The hierarchy data structure is maintained on all
processors and contains grids metadata.  Each node of this structure points
to the real data of the grid."  The I/O strategies exploit exactly this:
because geometry, dimensions and particle counts of every grid are known
everywhere, every rank can compute an identical shared-file layout with no
communication.

ENZO keeps this in the ``.hierarchy`` sidecar file; so do we (serialized
with a small stable binary encoding via pickle of plain dicts).
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass

import numpy as np

from ..amr.fields import BARYON_FIELDS
from ..amr.hierarchy import GridHierarchy
from ..amr.particles import PARTICLE_ARRAYS

__all__ = ["GridMeta", "HierarchyMeta", "array_dtype"]


def array_dtype(array_name: str) -> np.dtype:
    """Storage dtype of a named per-grid array."""
    if array_name == "particle_id":
        return np.dtype(np.int64)
    return np.dtype(np.float64)


@dataclass(frozen=True)
class GridMeta:
    """Immutable metadata of one grid."""

    id: int
    level: int
    dims: tuple[int, int, int]
    left_edge: tuple[float, float, float]
    right_edge: tuple[float, float, float]
    nparticles: int
    parent_id: int | None

    @property
    def ncells(self) -> int:
        return int(np.prod(self.dims))

    def field_nbytes(self) -> int:
        return self.ncells * 8 * len(BARYON_FIELDS)

    def particle_nbytes(self) -> int:
        return sum(
            self.nparticles * array_dtype(a).itemsize for a in PARTICLE_ARRAYS
        )

    def data_nbytes(self) -> int:
        return self.field_nbytes() + self.particle_nbytes()


class HierarchyMeta:
    """The replicated metadata for a whole hierarchy."""

    def __init__(self, grids: list[GridMeta], root_id: int):
        self._grids = {g.id: g for g in grids}
        self.root_id = root_id
        if root_id not in self._grids:
            raise ValueError("root grid missing from metadata")

    @classmethod
    def from_hierarchy(cls, hierarchy: GridHierarchy) -> "HierarchyMeta":
        grids = [
            GridMeta(
                id=g.id,
                level=g.level,
                dims=g.dims,
                left_edge=tuple(g.left_edge),
                right_edge=tuple(g.right_edge),
                nparticles=len(g.particles),
                parent_id=g.parent_id,
            )
            for g in hierarchy.grids()
        ]
        return cls(grids, hierarchy.root_id)

    # -- access ------------------------------------------------------------

    @property
    def root(self) -> GridMeta:
        return self._grids[self.root_id]

    def __getitem__(self, grid_id: int) -> GridMeta:
        return self._grids[grid_id]

    def __len__(self) -> int:
        return len(self._grids)

    def __contains__(self, grid_id: int) -> bool:
        return grid_id in self._grids

    def grids(self) -> list[GridMeta]:
        """All grids in id order."""
        return [self._grids[g] for g in sorted(self._grids)]

    def subgrid_ids(self) -> list[int]:
        return [g for g in sorted(self._grids) if g != self.root_id]

    def total_data_nbytes(self) -> int:
        return sum(g.data_nbytes() for g in self.grids())

    # -- serialisation ----------------------------------------------------------

    def to_bytes(self) -> bytes:
        payload = {
            "root_id": self.root_id,
            "grids": [
                {
                    "id": g.id,
                    "level": g.level,
                    "dims": g.dims,
                    "left_edge": g.left_edge,
                    "right_edge": g.right_edge,
                    "nparticles": g.nparticles,
                    "parent_id": g.parent_id,
                }
                for g in self.grids()
            ],
        }
        return pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)

    @classmethod
    def from_bytes(cls, raw: bytes) -> "HierarchyMeta":
        payload = pickle.loads(raw)
        grids = [GridMeta(**g) for g in payload["grids"]]
        return cls(grids, payload["root_id"])

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, HierarchyMeta)
            and self.root_id == other.root_id
            and self.grids() == other.grids()
        )
