"""Parallel sample sort of particles by ID.

The paper (3.2.1): "To perform a parallel write for particle data, all
processors perform a parallel sort according to the particle ID and then all
processors independently perform block-wise MPI write."

Sample sort: each rank sorts locally, contributes ``oversample`` samples,
rank 0 picks P-1 splitters from the gathered sample, splitters are broadcast,
particles are exchanged all-to-all by splitter bucket, and each rank merges
its bucket.  Afterwards rank r holds a contiguous ID range, and an exclusive
scan of bucket sizes gives everyone's write offset.
"""

from __future__ import annotations

import numpy as np

from ..amr.particles import ParticleSet
from ..mpi import collectives as coll
from ..mpi.comm import Comm

__all__ = ["parallel_sort_by_id"]


def parallel_sort_by_id(
    comm: Comm, particles: ParticleSet, *, oversample: int = 8
) -> tuple[ParticleSet, int, list[int]]:
    """Globally sort particles by ID across the communicator.

    Returns ``(my_sorted_chunk, my_element_offset, counts_per_rank)``:
    concatenating the chunks in rank order yields the globally ID-sorted
    particle sequence, and ``my_element_offset`` is this rank's starting
    index within it (the block-wise write offset).
    """
    local = particles.sort_by_id()
    if comm.size == 1:
        return local, 0, [len(local)]

    # Draw evenly spaced samples from the locally sorted ids.
    n = len(local)
    k = min(oversample, n)
    if k > 0:
        picks = np.linspace(0, n - 1, k).astype(np.int64)
        samples = local.ids[picks]
    else:
        samples = np.empty(0, dtype=np.int64)
    gathered = coll.gather(comm, samples, root=0)
    if comm.rank == 0:
        pool = np.sort(np.concatenate(gathered)) if gathered else np.empty(0)
        if len(pool) >= comm.size - 1:
            idx = np.linspace(0, len(pool) - 1, comm.size + 1)[1:-1]
            splitters = pool[idx.astype(np.int64)]
        else:
            splitters = np.full(comm.size - 1, np.iinfo(np.int64).max)
    else:
        splitters = None
    splitters = coll.bcast(comm, splitters, root=0)

    # Bucket my particles: bucket b gets ids in (splitters[b-1], splitters[b]].
    from ..mpi import batch as _batch

    if _batch.batch_enabled(comm):
        # Scale mode: one rendezvous instead of a P x P bucket matrix
        # (byte-identical result, see batch.particle_exchange).
        mine = _batch.particle_exchange(comm, local, splitters).sort_by_id()
    else:
        buckets = np.searchsorted(splitters, local.ids, side="left")
        outgoing = [local.select(buckets == b) for b in range(comm.size)]
        incoming = coll.alltoall(comm, outgoing)
        mine = ParticleSet.concat(incoming).sort_by_id()

    counts = coll.allgather(comm, len(mine))
    offset = sum(counts[: comm.rank])
    return mine, offset, counts
