"""Analytic I/O-volume model (reproduces the paper's Table 1).

Table 1 reports "the amount of data read/written by the ENZO application
with three problem sizes" (AMR64/AMR128/AMR256).  The read volume is the
initial grids (top grid + pre-refined subgrids); the write volume is the
checkpoint dumps over the run.  Both follow directly from the workload
structure: per grid, ``len(BARYON_FIELDS)`` float64 arrays of the grid's
dims plus ``len(PARTICLE_ARRAYS)`` 1-D arrays over its particles.

The exact figures depend on run length and refinement depth (the paper does
not publish its cycle count); :func:`table1` therefore exposes those knobs
and the benchmark reports our configuration next to the paper's qualitative
shape: volumes grow ~8x per problem-size step and writes exceed reads.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..amr.fields import BARYON_FIELDS
from ..amr.particles import PARTICLE_ARRAYS
from .meta import array_dtype

__all__ = ["WorkloadModel", "grid_bytes", "table1"]


def grid_bytes(dims: tuple[int, int, int], nparticles: int) -> int:
    """Checkpoint bytes of one grid: baryon fields + particle arrays."""
    cells = int(np.prod(dims))
    fields = cells * 8 * len(BARYON_FIELDS)
    particles = sum(
        nparticles * array_dtype(a).itemsize for a in PARTICLE_ARRAYS
    )
    return fields + particles


@dataclass
class WorkloadModel:
    """Structural model of an ENZO run's data volumes.

    ``refined_fraction``: fraction of the domain covered by level-(l+1)
    grids relative to level l (each refinement doubles resolution, so a
    refined region's cells are ``8 * fraction`` of its parent level's).
    """

    root_dims: tuple[int, int, int]
    particles_per_cell: float = 0.25
    levels: int = 2
    refined_fraction: float = 0.15
    ncycles: int = 3
    dump_every: int = 1

    @property
    def root_cells(self) -> int:
        return int(np.prod(self.root_dims))

    @property
    def nparticles(self) -> int:
        return int(self.root_cells * self.particles_per_cell)

    def level_cells(self, level: int) -> int:
        """Cells at a refinement level (level 0 = root)."""
        cells = self.root_cells
        for _ in range(level):
            cells = int(cells * self.refined_fraction * 8)
        return cells

    def hierarchy_bytes(self) -> int:
        """One full checkpoint: all levels' fields + all particles once."""
        field_bytes = sum(
            self.level_cells(l) * 8 * len(BARYON_FIELDS)
            for l in range(self.levels + 1)
        )
        particle_bytes = sum(
            self.nparticles * array_dtype(a).itemsize for a in PARTICLE_ARRAYS
        )
        return field_bytes + particle_bytes

    def read_bytes(self) -> int:
        """Initial read: root grid + pre-refined subgrids (one level)."""
        field_bytes = sum(
            self.level_cells(l) * 8 * len(BARYON_FIELDS) for l in range(2)
        )
        particle_bytes = sum(
            self.nparticles * array_dtype(a).itemsize for a in PARTICLE_ARRAYS
        )
        return field_bytes + particle_bytes

    def write_bytes(self) -> int:
        """All checkpoint dumps over the run."""
        dumps = len(
            [c for c in range(1, self.ncycles + 1) if c % self.dump_every == 0]
        )
        return dumps * self.hierarchy_bytes()


def table1(
    problems: dict[str, tuple[int, int, int]] | None = None, **model_kw
) -> list[dict]:
    """Rows of Table 1: problem size, MB read, MB written."""
    if problems is None:
        problems = {
            "AMR64": (64, 64, 64),
            "AMR128": (128, 128, 128),
            "AMR256": (256, 256, 256),
        }
    rows = []
    for name, dims in problems.items():
        model = WorkloadModel(root_dims=dims, **model_kw)
        rows.append(
            {
                "problem": name,
                "read_mb": model.read_bytes() / 2**20,
                "write_mb": model.write_bytes() / 2**20,
            }
        )
    return rows
