"""The original ENZO I/O strategy: sequential HDF4 through processor 0.

Write (paper Section 2.2 / 3.1): the partitioned top-grid pieces are
*collected by processor 0*, combined into a single top grid (particles
sorted back into their original ID order), and written by processor 0 alone
into a top-grid file.  Subgrids are written by their owners into individual
per-grid files -- that part is parallel across files, but each file is
written through the sequential HDF4 library.

Read: processor 0 reads the whole top grid, partitions it, and scatters the
pieces; subgrids are read round-robin (restart behaviour), one file each.
"""

from __future__ import annotations

import numpy as np

from ..amr.grid import Grid
from ..amr.particles import PARTICLE_ARRAYS, ParticleSet
from ..amr.partition import BlockPartition
from ..hdf4.sd import SDFile
from ..mpi import collectives as coll
from ..mpi.comm import Comm
from ..resilience.manifest import entry_for_bytes
from ..resilience.retry import RetryPolicy
from .io_base import IOStats, IOStrategy
from .meta import array_dtype
from .state import RankState, make_owner_map

__all__ = ["HDF4Strategy", "top_grid_path", "subgrid_path"]


def top_grid_path(base: str) -> str:
    return f"{base}.grid0000"


def subgrid_path(base: str, gid: int) -> str:
    return f"{base}.grid{gid:04d}"


def _write_grid_sd(sd: SDFile, grid: Grid, entries: list | None = None) -> int:
    """Write one grid's arrays (canonical order) into an open SD file.

    Appends a manifest entry per array to ``entries`` when given.
    """
    path = sd._adio.path
    nbytes = 0

    def _put(name: str, arr) -> None:
        nonlocal nbytes
        sds = sd.create(name, arr.dtype, arr.shape)
        sds.write(arr)
        if entries is not None:
            entries.append(entry_for_bytes(
                f"{path}:{name}", path, sds.entry.data_offset, arr
            ))
        nbytes += arr.nbytes

    for name, arr in grid.fields.items():
        _put(name, arr)
    parts = grid.particles
    # "particle/" prefix keeps particle velocity_* distinct from the baryon
    # velocity fields (real ENZO names these particle_velocity_x etc.).
    for name in PARTICLE_ARRAYS:
        _put(f"particle/{name}", np.ascontiguousarray(parts.array(name)))
    return nbytes


def _read_grid_sd(sd: SDFile, shell: Grid) -> None:
    """Fill a grid shell from an open SD file (canonical order)."""
    for name in shell.fields:
        shell.fields[name] = sd.select(name).read()
    arrays = {
        name: sd.select(f"particle/{name}").read() for name in PARTICLE_ARRAYS
    }
    shell.particles = ParticleSet.from_arrays(arrays)


class HDF4Strategy(IOStrategy):
    """Original sequential-HDF4 I/O (the paper's baseline).

    ``read_mode`` selects which of the original code's two read paths the
    checkpoint read models:

    * ``"master"`` (default) -- the new-simulation path: "processor 0 reads
      in all initial grids including the top-grid and some pre-refined
      subgrids" and redistributes everything.  This is the path whose
      "high communication cost and sequential file access" motivates the
      paper.
    * ``"round_robin"`` -- the restart path: P0 handles only the top grid;
      every processor reads subgrid files round-robin.
    """

    name = "hdf4"

    def __init__(
        self, read_mode: str = "master", retry: RetryPolicy | None = None
    ):
        if read_mode not in ("master", "round_robin"):
            raise ValueError(f"unknown read_mode {read_mode!r}")
        self.read_mode = read_mode
        self.retry = retry

    # -- write -------------------------------------------------------------

    def write_checkpoint(self, comm: Comm, state: RankState, base: str) -> IOStats:
        stats = IOStats(strategy=self.name, operation="write")
        t0 = comm.clock
        self.write_meta_sidecar(comm, base, state.meta)

        # Phase 1: gather the top-grid pieces to processor 0 and combine.
        t = comm.clock
        pieces = coll.gather(comm, state.top_piece, root=0)
        if comm.rank == 0:
            template = self.make_root_shell(state.meta)
            combined = state.partition.reassemble(template, pieces)
            comm.compute(comm.machine.memcpy_time(combined.data_nbytes))
        stats.add_phase("top_gather", comm.clock - t)

        # Phase 2: processor 0 writes the combined top grid, sequentially.
        t = comm.clock
        entries: list = []
        if comm.rank == 0:
            sd = SDFile.start(comm, top_grid_path(base), "w", retry=self.retry)
            stats.bytes_moved += _write_grid_sd(sd, combined, entries)
            sd.end()
        stats.add_phase("top_write", comm.clock - t)

        # Phase 3: subgrids -- each owner writes its own per-grid files.
        t = comm.clock
        for gid in sorted(state.subgrids):
            sd = SDFile.start(comm, subgrid_path(base, gid), "w", retry=self.retry)
            stats.bytes_moved += _write_grid_sd(sd, state.subgrids[gid], entries)
            sd.end()
        coll.barrier(comm)
        stats.add_phase("subgrids", comm.clock - t)

        self.write_manifest(comm, base, entries)
        stats.elapsed = comm.clock - t0
        return stats

    # -- read ------------------------------------------------------------------

    def read_checkpoint(self, comm: Comm, base: str) -> tuple[RankState, IOStats]:
        stats = IOStats(strategy=self.name, operation="read")
        t0 = comm.clock
        meta = self.read_meta_sidecar(comm, base)
        self.verify_manifest(comm, base)
        partition = BlockPartition(meta.root.dims, comm.size)

        # Phase 1+2: processor 0 reads the whole top grid, partitions it and
        # scatters the pieces ("having processor 0 redistributing the grid
        # data to all other processors").
        t = comm.clock
        if comm.rank == 0:
            shell = self.make_root_shell(meta)
            sd = SDFile.start(comm, top_grid_path(base), "r", retry=self.retry)
            _read_grid_sd(sd, shell)
            sd.end()
            stats.bytes_moved += shell.data_nbytes
            pieces = [partition.extract(shell, r) for r in range(comm.size)]
            comm.compute(comm.machine.memcpy_time(shell.data_nbytes))
        else:
            pieces = None
        top_piece = coll.scatter(comm, pieces, root=0)
        stats.add_phase("top_read_scatter", comm.clock - t)

        # Phase 3: subgrids.
        t = comm.clock
        owner = make_owner_map(meta, comm.size, policy="round_robin")
        subgrids: dict[int, Grid] = {}
        if self.read_mode == "master":
            # New-simulation path: P0 reads every subgrid file sequentially
            # and sends each to its assigned processor.
            for gid in meta.subgrid_ids():
                shell = None
                if comm.rank == 0:
                    shell = self.make_subgrid_shell(meta, gid)
                    sd = SDFile.start(comm, subgrid_path(base, gid), "r", retry=self.retry)
                    _read_grid_sd(sd, shell)
                    sd.end()
                    stats.bytes_moved += shell.data_nbytes
                dest = owner[gid]
                if dest == 0:
                    if comm.rank == 0:
                        subgrids[gid] = shell
                elif comm.rank == 0:
                    comm.send(shell, dest, tag=17)
                elif comm.rank == dest:
                    subgrids[gid] = comm.recv(0, tag=17)
            coll.barrier(comm)
        else:
            # Restart path: every processor reads its files round-robin.
            for gid in meta.subgrid_ids():
                if owner[gid] != comm.rank:
                    continue
                shell = self.make_subgrid_shell(meta, gid)
                sd = SDFile.start(comm, subgrid_path(base, gid), "r", retry=self.retry)
                _read_grid_sd(sd, shell)
                sd.end()
                stats.bytes_moved += shell.data_nbytes
                subgrids[gid] = shell
            coll.barrier(comm)
        stats.add_phase("subgrids", comm.clock - t)

        stats.elapsed = comm.clock - t0
        return (
            RankState(
                rank=comm.rank,
                nprocs=comm.size,
                meta=meta,
                partition=partition,
                top_piece=top_piece,
                subgrids=subgrids,
                owner=owner,
            ),
            stats,
        )

    # -- new-simulation (initial) read --------------------------------------

    def read_initial(self, comm: Comm, base: str):
        """Original new-simulation read: P0 reads every grid sequentially,
        partitions it (Block, Block, Block) and distributes the pieces."""
        from .io_base import IOStats
        from .state import PartitionedState

        stats = IOStats(strategy=self.name, operation="read_initial")
        t0 = comm.clock
        meta = self.read_meta_sidecar(comm, base)
        state = PartitionedState(rank=comm.rank, nprocs=comm.size, meta=meta)
        for g in meta.grids():
            gid = g.id
            part = BlockPartition.for_grid(g.dims, comm.size)
            state.partitions[gid] = part
            pieces = None
            if comm.rank == 0:
                shell = (
                    self.make_root_shell(meta)
                    if gid == meta.root_id
                    else self.make_subgrid_shell(meta, gid)
                )
                path = (
                    top_grid_path(base) if gid == meta.root_id
                    else subgrid_path(base, gid)
                )
                sd = SDFile.start(comm, path, "r", retry=self.retry)
                _read_grid_sd(sd, shell)
                sd.end()
                stats.bytes_moved += shell.data_nbytes
                comm.compute(comm.machine.memcpy_time(shell.data_nbytes))
                pieces = [part.extract(shell, r) for r in range(part.nprocs)]
                pieces += [None] * (comm.size - part.nprocs)
            state.pieces[gid] = coll.scatter(comm, pieces, root=0)
        stats.elapsed = comm.clock - t0
        return state, stats
