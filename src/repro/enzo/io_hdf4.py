"""The original ENZO I/O strategy: sequential HDF4 through processor 0.

Write (paper Section 2.2 / 3.1): the partitioned top-grid pieces are
*collected by processor 0*, combined into a single top grid (particles
sorted back into their original ID order), and written by processor 0 alone
into a top-grid file.  Subgrids are written by their owners into individual
per-grid files -- that part is parallel across files, but each file is
written through the sequential HDF4 library.

Read: processor 0 reads the whole top grid, partitions it, and scatters the
pieces; subgrids are read round-robin (restart behaviour), one file each.

Since the layered-stack refactor this module is a thin composition: the
movement plan lives in :class:`repro.iostack.transports.FunnelTransport`,
the HDF4 SD object model in :class:`repro.iostack.formats.HDF4SDFormat`,
and the orchestration in the :class:`~repro.enzo.io_base.StackExecutor`.
"""

from __future__ import annotations

from ..iostack.layouts import subgrid_path, top_grid_path
from ..resilience.retry import RetryPolicy
from .io_base import ComposedStrategy

__all__ = ["HDF4Strategy", "top_grid_path", "subgrid_path"]


class HDF4Strategy(ComposedStrategy):
    """Original sequential-HDF4 I/O (the paper's baseline).

    ``read_mode`` selects which of the original code's two read paths the
    checkpoint read models:

    * ``"master"`` (default) -- the new-simulation path: "processor 0 reads
      in all initial grids including the top-grid and some pre-refined
      subgrids" and redistributes everything.  This is the path whose
      "high communication cost and sequential file access" motivates the
      paper.
    * ``"round_robin"`` -- the restart path: P0 handles only the top grid;
      every processor reads subgrid files round-robin.
    """

    name = "hdf4"

    def __init__(
        self, read_mode: str = "master", retry: RetryPolicy | None = None
    ):
        # Formats/transports are imported lazily so this module stays
        # importable while the iostack package is mid-import.
        from ..iostack.formats import HDF4SDFormat
        from ..iostack.layouts import FilePerGridLayoutPlanner
        from ..iostack.transports import FunnelTransport

        super().__init__(
            "hdf4",
            FilePerGridLayoutPlanner(),
            FunnelTransport(read_mode=read_mode),
            HDF4SDFormat(),
            retry=retry,
        )

    @property
    def read_mode(self) -> str:
        return self.transport.read_mode
