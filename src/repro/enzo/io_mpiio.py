"""The paper's optimised MPI-IO checkpoint strategy (Section 3.2).

* Top-grid baryon fields -- **collective two-phase I/O** through subarray
  file views of the (Block, Block, Block) decomposition (Figure 5);
* top-grid particle arrays -- **parallel sample sort by particle ID, then
  independent block-wise writes** (contiguous per rank, so non-collective);
  on read, block-wise contiguous reads followed by **redistribution by
  particle position** against the grid edges;
* subgrids -- each owner writes its grids' arrays **independently into the
  same single shared file** at offsets every rank derives from the
  replicated hierarchy metadata (Section 3.2.2's single-file optimisation);
  restart reads them round-robin.

Since the layered-stack refactor this module is a thin composition: the
movement plan lives in
:class:`repro.iostack.transports.CollectiveTransport`, the raw shared-file
byte layout in :class:`repro.iostack.formats.RawSharedFormat`, and the
orchestration in the :class:`~repro.enzo.io_base.StackExecutor`.
"""

from __future__ import annotations

from ..mpiio.hints import Hints
from ..resilience.retry import RetryPolicy
from .io_base import ComposedStrategy

__all__ = ["MPIIOStrategy"]


class MPIIOStrategy(ComposedStrategy):
    """Optimised parallel I/O via MPI-IO (the paper's contribution)."""

    name = "mpi-io"

    def __init__(
        self, hints: Hints | None = None, retry: RetryPolicy | None = None
    ):
        from ..iostack.formats import RawSharedFormat
        from ..iostack.layouts import SharedFileLayoutPlanner
        from ..iostack.transports import CollectiveTransport

        self.hints = hints or Hints()
        super().__init__(
            "mpi-io",
            SharedFileLayoutPlanner(),
            CollectiveTransport(),
            RawSharedFormat(self.hints),
            retry=retry,
        )

    # -- back-compat helpers (now thin wrappers over iostack.transports) ----

    def _make_top_piece_shell(self, meta, partition, rank):
        from ..iostack.transports import make_top_piece_shell

        return make_top_piece_shell(meta, partition, rank)

    def _redistribute_particles(self, comm, block, meta, partition):
        from ..iostack.transports import redistribute_particles

        return redistribute_particles(comm, block, meta, partition)

    def _field_names(self):
        from ..iostack.transports import field_names

        return field_names()

    def _make_piece_shell(self, meta, gid, part, rank):
        from ..iostack.transports import make_piece_shell

        return make_piece_shell(meta, gid, part, rank)

    def _redistribute_grid_particles(self, comm, block, meta, gid, part):
        from ..iostack.transports import redistribute_grid_particles

        return redistribute_grid_particles(comm, block, meta, gid, part)
