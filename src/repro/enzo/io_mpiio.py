"""The paper's optimised MPI-IO checkpoint strategy (Section 3.2).

* Top-grid baryon fields -- **collective two-phase I/O** through subarray
  file views of the (Block, Block, Block) decomposition (Figure 5);
* top-grid particle arrays -- **parallel sample sort by particle ID, then
  independent block-wise writes** (contiguous per rank, so non-collective);
  on read, block-wise contiguous reads followed by **redistribution by
  particle position** against the grid edges;
* subgrids -- each owner writes its grids' arrays **independently into the
  same single shared file** at offsets every rank derives from the
  replicated hierarchy metadata (Section 3.2.2's single-file optimisation);
  restart reads them round-robin.
"""

from __future__ import annotations

import numpy as np

from ..amr.grid import Grid
from ..amr.particles import PARTICLE_ARRAYS, ParticleSet
from ..amr.partition import BlockPartition
from ..mpi import collectives as coll
from ..mpi.comm import Comm
from ..mpi.datatypes import FLOAT64, Subarray
from ..mpiio.file import File
from ..mpiio.hints import Hints
from ..resilience.manifest import entry_for_bytes, entry_for_segments
from ..resilience.retry import RetryPolicy
from .io_base import IOStats, IOStrategy
from .layout import TOP, CheckpointLayout
from .meta import array_dtype
from .sort import parallel_sort_by_id
from .state import RankState, make_owner_map

__all__ = ["MPIIOStrategy"]


class MPIIOStrategy(IOStrategy):
    """Optimised parallel I/O via MPI-IO (the paper's contribution)."""

    name = "mpi-io"

    def __init__(
        self, hints: Hints | None = None, retry: RetryPolicy | None = None
    ):
        self.hints = hints or Hints()
        self.retry = retry

    # -- write -------------------------------------------------------------

    def write_checkpoint(self, comm: Comm, state: RankState, base: str) -> IOStats:
        stats = IOStats(strategy=self.name, operation="write")
        t0 = comm.clock
        layout = CheckpointLayout(state.meta)
        self.write_meta_sidecar(comm, base, state.meta)
        fh = File.open(comm, base, "w", hints=self.hints, retry=self.retry)
        entries = []

        # Phase 1: top-grid baryon fields, collective with subarray views.
        t = comm.clock
        starts, sizes = state.partition.block_of(comm.rank)
        root_dims = state.meta.root.dims
        for name, arr in state.top_piece.fields.items():
            ext = layout.extent(TOP, name)
            ftype = Subarray(root_dims, sizes, starts, FLOAT64)
            fh.set_view(ext.offset, FLOAT64, ftype)
            self._collective_or_degraded(
                comm, base,
                lambda: fh.write_at_all(0, arr),
                lambda: fh.write_at(0, arr),
                nbytes=arr.nbytes,
            )
            entries.append(entry_for_segments(
                f"top/field/{name}/r{comm.rank:04d}", base,
                fh.view_segments(0, arr.nbytes), arr,
            ))
            stats.bytes_moved += arr.nbytes
        stats.add_phase("top_fields", comm.clock - t)

        # Phase 2: top-grid particles -- parallel sort + block-wise writes.
        t = comm.clock
        fh.set_view(0)  # back to the plain byte view
        sorted_parts, elem_offset, _counts = parallel_sort_by_id(
            comm, state.top_piece.particles
        )
        for name in PARTICLE_ARRAYS:
            ext = layout.extent(TOP, name, "particle")
            arr = np.ascontiguousarray(sorted_parts.array(name))
            offset = ext.offset + elem_offset * ext.dtype.itemsize
            fh.write_at(offset, arr)
            entries.append(entry_for_bytes(
                f"top/particle/{name}/r{comm.rank:04d}", base, offset, arr
            ))
            stats.bytes_moved += arr.nbytes
        stats.add_phase("top_particles", comm.clock - t)

        # Phase 3: subgrids -- independent writes into the shared file.
        t = comm.clock
        for gid in sorted(state.subgrids):
            grid = state.subgrids[gid]
            for name, arr in grid.fields.items():
                ext = layout.extent(gid, name)
                fh.write_at(ext.offset, arr)
                entries.append(entry_for_bytes(
                    f"grid{gid}/field/{name}", base, ext.offset, arr
                ))
                stats.bytes_moved += arr.nbytes
            gparts = grid.particles.sort_by_id()
            for name in PARTICLE_ARRAYS:
                ext = layout.extent(gid, name, "particle")
                arr = np.ascontiguousarray(gparts.array(name))
                fh.write_at(ext.offset, arr)
                entries.append(entry_for_bytes(
                    f"grid{gid}/particle/{name}", base, ext.offset, arr
                ))
                stats.bytes_moved += arr.nbytes
        stats.add_phase("subgrids", comm.clock - t)

        fh.close()
        self.write_manifest(comm, base, entries)
        stats.elapsed = comm.clock - t0
        return stats

    # -- read ------------------------------------------------------------------

    def read_checkpoint(self, comm: Comm, base: str) -> tuple[RankState, IOStats]:
        stats = IOStats(strategy=self.name, operation="read")
        t0 = comm.clock
        meta = self.read_meta_sidecar(comm, base)
        self.verify_manifest(comm, base)
        layout = CheckpointLayout(meta)
        partition = BlockPartition(meta.root.dims, comm.size)
        fh = File.open(comm, base, "r", hints=self.hints, retry=self.retry)

        # Phase 1: top-grid fields, collective subarray reads.
        t = comm.clock
        starts, sizes = partition.block_of(comm.rank)
        top_piece = self._make_top_piece_shell(meta, partition, comm.rank)
        for name in top_piece.fields:
            ext = layout.extent(TOP, name)
            ftype = Subarray(meta.root.dims, sizes, starts, FLOAT64)
            fh.set_view(ext.offset, FLOAT64, ftype)
            got = fh.read_at_all(0, np.empty(sizes, dtype=np.float64))
            top_piece.fields[name] = got
            stats.bytes_moved += got.nbytes
        stats.add_phase("top_fields", comm.clock - t)

        # Phase 2: particles -- block-wise contiguous reads, then
        # redistribution by position against the grid edges.
        t = comm.clock
        fh.set_view(0)
        n_total = meta.root.nparticles
        lo = (n_total * comm.rank) // comm.size
        hi = (n_total * (comm.rank + 1)) // comm.size
        arrays = {}
        for name in PARTICLE_ARRAYS:
            ext = layout.extent(TOP, name, "particle")
            dt = array_dtype(name)
            raw = fh.read_at(
                ext.offset + lo * dt.itemsize, int((hi - lo) * dt.itemsize)
            )
            arrays[name] = np.frombuffer(raw, dtype=dt).copy()
            stats.bytes_moved += len(raw)
        block = ParticleSet.from_arrays(arrays)
        top_piece.particles = self._redistribute_particles(
            comm, block, meta, partition
        )
        stats.add_phase("top_particles", comm.clock - t)

        # Phase 3: subgrids, round-robin owners read whole arrays.
        t = comm.clock
        owner = make_owner_map(meta, comm.size, policy="round_robin")
        subgrids: dict[int, Grid] = {}
        for gid in meta.subgrid_ids():
            if owner[gid] != comm.rank:
                continue
            grid = self.make_subgrid_shell(meta, gid)
            for name in grid.fields:
                ext = layout.extent(gid, name)
                got = fh.read_at(ext.offset, np.empty(ext.shape, dtype=ext.dtype))
                grid.fields[name] = got
                stats.bytes_moved += got.nbytes
            parrays = {}
            for name in PARTICLE_ARRAYS:
                ext = layout.extent(gid, name, "particle")
                raw = fh.read_at(ext.offset, ext.nbytes)
                parrays[name] = np.frombuffer(raw, dtype=ext.dtype).copy()
                stats.bytes_moved += len(raw)
            grid.particles = ParticleSet.from_arrays(parrays)
            subgrids[gid] = grid
        stats.add_phase("subgrids", comm.clock - t)

        fh.close()
        stats.elapsed = comm.clock - t0
        return (
            RankState(
                rank=comm.rank,
                nprocs=comm.size,
                meta=meta,
                partition=partition,
                top_piece=top_piece,
                subgrids=subgrids,
                owner=owner,
            ),
            stats,
        )

    # -- helpers -----------------------------------------------------------------

    def _make_top_piece_shell(self, meta, partition: BlockPartition, rank: int):
        root = self.make_root_shell(meta)
        starts, sizes = partition.block_of(rank)
        left, right = partition.edges_of(rank, root)
        return Grid(
            id=root.id, level=0, dims=sizes, left_edge=left, right_edge=right
        )

    def _redistribute_particles(
        self, comm: Comm, block: ParticleSet, meta, partition: BlockPartition
    ) -> ParticleSet:
        """Send each particle to the rank whose sub-domain contains it."""
        root = self.make_root_shell(meta)
        if len(block):
            cells = root.cell_of(block.positions)
            owners = partition.owner_of_cells(cells)
        else:
            owners = np.empty(0, dtype=np.int64)
        outgoing = [block.select(owners == r) for r in range(comm.size)]
        incoming = coll.alltoall(comm, outgoing)
        return ParticleSet.concat(incoming).sort_by_id()

    # -- new-simulation (initial) read --------------------------------------

    def read_initial(self, comm: Comm, base: str) -> tuple["PartitionedState", "IOStats"]:
        """Parallel new-simulation read: every grid read collectively.

        Paper Section 3.3 sense: "all processors read the top-grid in
        parallel (collective I/O for regular partitioned baryon field data
        and noncollective I/O for irregular partitioned particle data)...
        the initial subgrid is read in the same way as the top-grid."
        """
        from .state import PartitionedState

        stats = IOStats(strategy=self.name, operation="read_initial")
        t0 = comm.clock
        meta = self.read_meta_sidecar(comm, base)
        layout = CheckpointLayout(meta)
        fh = File.open(comm, base, "r", hints=self.hints, retry=self.retry)
        state = PartitionedState(rank=comm.rank, nprocs=comm.size, meta=meta)
        for g in meta.grids():
            gid = g.id
            key = TOP if gid == meta.root_id else gid
            part = BlockPartition.for_grid(g.dims, comm.size)
            state.partitions[gid] = part
            active = comm.rank < part.nprocs
            piece = self._make_piece_shell(meta, gid, part, comm.rank) if active else None
            # Baryon fields: collective subarray reads (all ranks call).
            for name in self._field_names():
                ext = layout.extent(key, name)
                if active:
                    starts, sizes = part.block_of(comm.rank)
                    ftype = Subarray(g.dims, sizes, starts, FLOAT64)
                    fh.set_view(ext.offset, FLOAT64, ftype)
                    got = fh.read_at_all(0, np.empty(sizes, dtype=np.float64))
                    piece.fields[name] = got
                    stats.bytes_moved += got.nbytes
                else:
                    fh.set_view(ext.offset)
                    fh.read_at_all(0, 0)
            fh.set_view(0)
            # Particle arrays: block-wise reads + redistribution by position.
            n_total = g.nparticles
            active_ranks = part.nprocs
            if comm.rank < active_ranks:
                lo = (n_total * comm.rank) // active_ranks
                hi = (n_total * (comm.rank + 1)) // active_ranks
            else:
                lo = hi = 0
            arrays = {}
            for name in PARTICLE_ARRAYS:
                ext = layout.extent(key, name, "particle")
                dt = array_dtype(name)
                raw = fh.read_at(
                    ext.offset + lo * dt.itemsize, int((hi - lo) * dt.itemsize)
                )
                arrays[name] = np.frombuffer(raw, dtype=dt).copy()
                stats.bytes_moved += len(raw)
            block = ParticleSet.from_arrays(arrays)
            mine = self._redistribute_grid_particles(comm, block, meta, gid, part)
            if piece is not None:
                piece.particles = mine
                state.pieces[gid] = piece
            else:
                state.pieces[gid] = None
        fh.close()
        stats.elapsed = comm.clock - t0
        return state, stats

    def _field_names(self):
        from ..amr.fields import BARYON_FIELDS

        return BARYON_FIELDS

    def _make_piece_shell(self, meta, gid, part: BlockPartition, rank: int):
        g = meta[gid]
        shell = Grid(
            id=g.id, level=g.level, dims=g.dims,
            left_edge=np.array(g.left_edge),
            right_edge=np.array(g.right_edge),
            parent_id=g.parent_id,
        )
        starts, sizes = part.block_of(rank)
        left, right = part.edges_of(rank, shell)
        return Grid(
            id=g.id, level=g.level, dims=sizes,
            left_edge=left, right_edge=right, parent_id=g.parent_id,
        )

    def _redistribute_grid_particles(
        self, comm: Comm, block: ParticleSet, meta, gid, part: BlockPartition
    ) -> ParticleSet:
        """Route particles to the rank whose sub-block of grid ``gid``
        contains them."""
        g = meta[gid]
        shell = Grid(
            id=g.id, level=g.level, dims=g.dims,
            left_edge=np.array(g.left_edge),
            right_edge=np.array(g.right_edge),
            parent_id=g.parent_id,
        )
        if len(block):
            cells = shell.cell_of(block.positions)
            owners = part.owner_of_cells(cells)
        else:
            owners = np.empty(0, dtype=np.int64)
        outgoing = [
            block.select(owners == r) if r < part.nprocs else None
            for r in range(comm.size)
        ]
        incoming = coll.alltoall(comm, outgoing)
        return ParticleSet.concat(
            [p for p in incoming if p is not None]
        ).sort_by_id()
