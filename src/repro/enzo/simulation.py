"""The ENZO cosmology simulation driver (paper Figure 2).

Flow: read/construct the initial grids, then repeat { evolve the hierarchy
one cycle, adapt the mesh, rebalance, periodically dump a checkpoint }.
Restart resumes from a checkpoint.

Execution model: the solver state is *replicated* -- every rank observes the
same global hierarchy (rank 0 mutates it at synchronised points, all ranks
charge compute time for their own cells), while I/O runs on genuinely
distributed :class:`~repro.enzo.state.RankState` views.  This keeps the
physics deterministic and the memory footprint flat while making every byte
of the I/O traffic real.  The substitution is documented in DESIGN.md: the
paper's effects live entirely in the I/O and communication layers, which
are fully simulated.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..amr.hierarchy import GridHierarchy
from ..amr.initial_conditions import make_initial_conditions
from ..amr.refinement import refine_hierarchy
from ..amr.solver import evolve_hierarchy
from ..mpi import collectives as coll
from ..mpi.comm import Comm
from .io_base import IOStats, IOStrategy
from .state import RankState

__all__ = ["EnzoConfig", "EnzoSimulation", "PROBLEM_SIZES"]

#: The paper's three problem sizes (grid dimensionality per Section 4).
PROBLEM_SIZES = {
    "AMR64": (64, 64, 64),
    "AMR128": (128, 128, 128),
    "AMR256": (256, 256, 256),
    # Scaled-down variants for fast tests and laptop benches.
    "AMR16": (16, 16, 16),
    "AMR32": (32, 32, 32),
}


@dataclass
class EnzoConfig:
    """Simulation parameters."""

    problem: str = "AMR64"
    ncycles: int = 3
    dump_every: int = 1
    particles_per_cell: float = 0.25
    seed: int = 0
    pre_refine: int = 1
    max_level: int = 2
    refine_threshold: float = 1.8
    dt: float = 0.1
    owner_policy: str = "lpt"
    #: double-buffered write-behind: post dump *k* asynchronously and let
    #: cycle *k+1* compute while it drains (needs an async-capable
    #: strategy, e.g. the ``mpi-io-async`` composition; synchronous
    #: strategies dump inline regardless)
    overlap: bool = False

    @property
    def root_dims(self) -> tuple[int, int, int]:
        try:
            return PROBLEM_SIZES[self.problem]
        except KeyError:
            raise ValueError(
                f"unknown problem {self.problem!r}; choose from {sorted(PROBLEM_SIZES)}"
            ) from None

    def n_dumps(self) -> int:
        return len([c for c in range(1, self.ncycles + 1) if c % self.dump_every == 0])


@dataclass
class EnzoSimulation:
    """Drives one rank through the simulation flow.

    The hierarchy object is shared between ranks (replicated state); only
    rank 0 mutates it, inside barrier-fenced sections.
    """

    config: EnzoConfig
    strategy: IOStrategy
    hierarchy: GridHierarchy | None = None
    write_stats: list[IOStats] = field(default_factory=list)
    read_stats: list[IOStats] = field(default_factory=list)

    # -- setup ------------------------------------------------------------

    @staticmethod
    def build_initial_hierarchy(config: EnzoConfig) -> GridHierarchy:
        """Construct the initial grids (host-side; deterministic)."""
        return make_initial_conditions(
            config.root_dims,
            particles_per_cell=config.particles_per_cell,
            seed=config.seed,
            pre_refine=config.pre_refine,
            refine_threshold=config.refine_threshold,
        )

    # -- the main loop ------------------------------------------------------------

    def run(self, comm: Comm, base: str = "dump") -> dict:
        """Run ``ncycles`` evolution cycles with periodic checkpoint dumps.

        Returns a per-rank summary dict (same on every rank up to timing).
        """
        cfg = self.config
        if self.hierarchy is None:
            raise ValueError("assign a hierarchy before run() (replicated state)")
        state = RankState.from_hierarchy(
            self.hierarchy, comm.rank, comm.size, policy=cfg.owner_policy
        )
        dumps = []
        my_stats = []  # this rank's dump stats (self.write_stats is shared)
        overlap = cfg.overlap and getattr(self.strategy, "aio", None) is not None
        pending = None  # at most one in-flight dump (double buffering)
        for cycle in range(1, cfg.ncycles + 1):
            self._evolve_step(comm, state)
            # Mesh adaptation + rebalancing: structure may change, so the
            # per-rank views are rebuilt from the (replicated) hierarchy.
            state = RankState.from_hierarchy(
                self.hierarchy, comm.rank, comm.size, policy=cfg.owner_policy
            )
            if cycle % cfg.dump_every == 0:
                path = f"{base}.cycle{cycle:04d}"
                if pending is not None:
                    # Commit dump k-1 (drain + manifest) before posting k.
                    stats = pending.complete()
                    my_stats.append(stats)
                    self.write_stats.append(stats)
                if overlap:
                    pending = self.strategy.write_checkpoint_async(
                        comm, state, path
                    )
                else:
                    stats = self.strategy.write_checkpoint(comm, state, path)
                    my_stats.append(stats)
                    self.write_stats.append(stats)
                dumps.append(path)
        if pending is not None:
            stats = pending.complete()
            my_stats.append(stats)
            self.write_stats.append(stats)
        return {
            "dumps": dumps,
            "cycles": cfg.ncycles,
            "grids": len(self.hierarchy),
            "max_level": self.hierarchy.max_level,
            "write_time": sum(s.elapsed for s in my_stats),
            "write_stats": my_stats,
        }

    def restart(self, comm: Comm, path: str) -> RankState:
        """Restart-read a checkpoint; records timing in ``read_stats``."""
        state, stats = self.strategy.read_checkpoint(comm, path)
        self.read_stats.append(stats)
        return state

    def resume(self, comm: Comm, path: str, base: str = "resumed") -> dict:
        """Restart from ``path`` and continue evolving (the full restart
        scenario: read the checkpoint, rebuild the replicated hierarchy,
        then run the remaining cycles with dumps).

        The rebuild gathers every rank's pieces to rank 0 (real
        communication over the machine model) and installs the collected
        hierarchy as the shared replicated state.
        """
        state = self.restart(comm, path)
        gathered = coll.gather(comm, state, root=0)
        if comm.rank == 0:
            self.hierarchy = RankState.collect(gathered)
        coll.barrier(comm)  # hierarchy now installed for every rank
        return self.run(comm, base=base)

    # -- internals ---------------------------------------------------------------

    def _evolve_step(self, comm: Comm, state: RankState) -> None:
        cfg = self.config
        coll.barrier(comm)
        if comm.rank == 0:
            evolve_hierarchy(self.hierarchy, cfg.dt)
            refine_hierarchy(
                self.hierarchy,
                overdensity_threshold=cfg.refine_threshold,
                max_level=cfg.max_level,
            )
        # Every rank pays for its own cells (parallel compute model).
        comm.compute(
            comm.machine.compute_time(state.my_cells() * 2000.0)
        )
        coll.barrier(comm)
