"""The ENZO cosmology simulation driver (paper Figure 2).

Flow: read/construct the initial grids, then repeat { evolve the hierarchy
one cycle, adapt the mesh, rebalance, periodically dump a checkpoint }.
Restart resumes from a checkpoint.

Execution model: the solver state is *replicated* -- every rank observes the
same global hierarchy (rank 0 mutates it at synchronised points, all ranks
charge compute time for their own cells), while I/O runs on genuinely
distributed :class:`~repro.enzo.state.RankState` views.  This keeps the
physics deterministic and the memory footprint flat while making every byte
of the I/O traffic real.  The substitution is documented in DESIGN.md: the
paper's effects live entirely in the I/O and communication layers, which
are fully simulated.
"""

from __future__ import annotations

import math

from dataclasses import dataclass, field

from ..amr.hierarchy import GridHierarchy
from ..amr.initial_conditions import make_initial_conditions
from ..amr.refinement import refine_hierarchy
from ..amr.solver import evolve_hierarchy
from ..mpi import collectives as coll
from ..mpi.comm import Comm
from ..scenarios import Scenario
from ..scenarios import registry as scenario_registry
from .io_base import IOStats, IOStrategy
from .plotfile import write_plotfile
from .state import RankState

__all__ = ["EnzoConfig", "EnzoSimulation", "PROBLEM_SIZES"]

#: The paper's problem sizes (grid dimensionality per Section 4), now just
#: a view of the scenario registry's ``AMR*`` built-ins.  Kept for
#: backward compatibility; new code should resolve scenarios by name.
PROBLEM_SIZES = {
    name: scenario_registry.get(name).root_dims
    for name in scenario_registry.names()
    if name.startswith("AMR")
}


@dataclass
class EnzoConfig:
    """Simulation parameters.

    ``problem`` is a scenario name (resolved through the scenario
    registry) or a :class:`~repro.scenarios.Scenario` object, e.g. one
    loaded from a parameter file.  The cadence fields model Enzo/Nyx's
    two output streams: full restartable checkpoints every
    ``dump_every`` cycles, lightweight plot files every ``plot_every``
    cycles (either 0 = stream off), plus redshift-triggered checkpoints.
    """

    problem: str | Scenario = "AMR64"
    ncycles: int = 3
    dump_every: int = 1
    particles_per_cell: float = 0.25
    seed: int = 0
    pre_refine: int = 1
    max_level: int = 2
    refine_threshold: float = 1.8
    dt: float = 0.1
    owner_policy: str = "lpt"
    #: double-buffered write-behind: post dump *k* asynchronously and let
    #: cycle *k+1* compute while it drains (needs an async-capable
    #: strategy, e.g. the ``mpi-io-async`` composition; synchronous
    #: strategies dump inline regardless)
    overlap: bool = False
    #: plot-file stream cadence (0 = off) and its field subset.
    plot_every: int = 0
    plot_fields: tuple[str, ...] = ("density",)
    #: redshift-triggered checkpoint dumps (require a redshift range).
    output_redshifts: tuple[float, ...] = ()
    initial_redshift: float = 0.0
    final_redshift: float = 0.0

    @classmethod
    def from_scenario(cls, scenario: Scenario, **overrides) -> "EnzoConfig":
        """An :class:`EnzoConfig` running a scenario's workload + cadence."""
        kwargs = dict(
            problem=scenario,
            ncycles=scenario.ncycles,
            dump_every=scenario.checkpoint_every,
            particles_per_cell=scenario.particles_per_cell,
            seed=scenario.seed,
            pre_refine=scenario.pre_refine,
            max_level=scenario.max_level,
            refine_threshold=scenario.refine_threshold,
            plot_every=scenario.plot_every,
            plot_fields=scenario.plot_fields,
            output_redshifts=scenario.output_redshifts,
            initial_redshift=scenario.initial_redshift,
            final_redshift=scenario.final_redshift,
        )
        kwargs.update(overrides)
        return cls(**kwargs)

    def scenario(self) -> Scenario:
        """The scenario behind ``problem`` (registry lookup for names)."""
        if isinstance(self.problem, Scenario):
            return self.problem
        return scenario_registry.get(str(self.problem))

    @property
    def root_dims(self) -> tuple[int, int, int]:
        # Unknown names raise ScenarioError (a ValueError) with the same
        # "choose from ..." message the CLI's --scenario path prints.
        return tuple(self.scenario().root_dims)

    def n_dumps(self) -> int:
        if self.dump_every <= 0:
            return 0
        return len([
            c for c in range(1, self.ncycles + 1)
            if c % self.dump_every == 0
        ])

    def redshift_schedule(self) -> list[float]:
        """Redshift at the end of each cycle, log(1+z)-linear in cycle.

        Real cosmology codes step the expansion factor; the I/O model
        only needs a monotone z(cycle) so redshift-triggered dumps fire
        at deterministic cycles.
        """
        z0, z1 = self.initial_redshift, self.final_redshift
        n = self.ncycles
        out = []
        for c in range(1, n + 1):
            frac = c / n
            lz = math.log1p(z0) * (1.0 - frac) + math.log1p(z1) * frac
            out.append(math.expm1(lz))
        return out


@dataclass
class EnzoSimulation:
    """Drives one rank through the simulation flow.

    The hierarchy object is shared between ranks (replicated state); only
    rank 0 mutates it, inside barrier-fenced sections.
    """

    config: EnzoConfig
    strategy: IOStrategy
    hierarchy: GridHierarchy | None = None
    write_stats: list[IOStats] = field(default_factory=list)
    read_stats: list[IOStats] = field(default_factory=list)

    # -- setup ------------------------------------------------------------

    @staticmethod
    def build_initial_hierarchy(config: EnzoConfig) -> GridHierarchy:
        """Construct the initial grids (host-side; deterministic).

        Numeric knobs (seed, thresholds, pre-refine depth) come from the
        config -- historically so, and ``from_scenario`` copies them over
        -- while the scenario contributes its structural extensions
        (nested grids, must-refine regions, deep zoom levels), which are
        empty for the built-in ``AMR*`` sizes.
        """
        scenario = config.scenario()
        return make_initial_conditions(
            config.root_dims,
            particles_per_cell=config.particles_per_cell,
            seed=config.seed,
            pre_refine=config.pre_refine,
            refine_threshold=config.refine_threshold,
            nested_grids=scenario.nested_grids,
            must_refine=scenario.must_refine,
            deep_levels=scenario.deep_levels,
        )

    # -- the main loop ------------------------------------------------------------

    def run(self, comm: Comm, base: str = "dump") -> dict:
        """Run ``ncycles`` evolution cycles with periodic checkpoint dumps.

        Returns a per-rank summary dict (same on every rank up to timing).
        """
        cfg = self.config
        if self.hierarchy is None:
            raise ValueError("assign a hierarchy before run() (replicated state)")
        state = RankState.from_hierarchy(
            self.hierarchy, comm.rank, comm.size, policy=cfg.owner_policy
        )
        dumps = []
        plot_dumps = []
        redshift_dumps = []
        my_stats = []  # this rank's dump stats (self.write_stats is shared)
        plot_stats = []
        overlap = cfg.overlap and getattr(self.strategy, "aio", None) is not None
        pending = None  # at most one in-flight dump (double buffering)
        z_schedule = (
            cfg.redshift_schedule() if cfg.output_redshifts else []
        )
        z_emitted: set[int] = set()
        for cycle in range(1, cfg.ncycles + 1):
            self._evolve_step(comm, state)
            # Mesh adaptation + rebalancing: structure may change, so the
            # per-rank views are rebuilt from the (replicated) hierarchy.
            state = RankState.from_hierarchy(
                self.hierarchy, comm.rank, comm.size, policy=cfg.owner_policy
            )
            if cfg.dump_every > 0 and cycle % cfg.dump_every == 0:
                path = f"{base}.cycle{cycle:04d}"
                if pending is not None:
                    # Commit dump k-1 (drain + manifest) before posting k.
                    stats = pending.complete()
                    my_stats.append(stats)
                    self.write_stats.append(stats)
                if overlap:
                    pending = self.strategy.write_checkpoint_async(
                        comm, state, path
                    )
                else:
                    stats = self.strategy.write_checkpoint(comm, state, path)
                    my_stats.append(stats)
                    self.write_stats.append(stats)
                dumps.append(path)
            if cfg.plot_every > 0 and cycle % cfg.plot_every == 0:
                path = f"{base}.plt{cycle:04d}"
                plot_stats.append(write_plotfile(
                    comm, state, path, fields=cfg.plot_fields, cycle=cycle
                ))
                plot_dumps.append(path)
            if z_schedule:
                z_now = z_schedule[cycle - 1]
                for k, z_target in enumerate(cfg.output_redshifts):
                    if k in z_emitted or z_now > z_target:
                        continue
                    path = f"{base}.rd{k:04d}"
                    stats = self.strategy.write_checkpoint(comm, state, path)
                    my_stats.append(stats)
                    self.write_stats.append(stats)
                    redshift_dumps.append(path)
                    z_emitted.add(k)
        if pending is not None:
            stats = pending.complete()
            my_stats.append(stats)
            self.write_stats.append(stats)
        return {
            "dumps": dumps,
            "cycles": cfg.ncycles,
            "grids": len(self.hierarchy),
            "max_level": self.hierarchy.max_level,
            "write_time": sum(s.elapsed for s in my_stats),
            "write_stats": my_stats,
            "plot_dumps": plot_dumps,
            "redshift_dumps": redshift_dumps,
            "plot_time": sum(s.elapsed for s in plot_stats),
            "plot_bytes": sum(s.bytes_moved for s in plot_stats),
            "ckpt_bytes": sum(s.bytes_moved for s in my_stats),
        }

    def restart(self, comm: Comm, path: str) -> RankState:
        """Restart-read a checkpoint; records timing in ``read_stats``."""
        state, stats = self.strategy.read_checkpoint(comm, path)
        self.read_stats.append(stats)
        return state

    def resume(self, comm: Comm, path: str, base: str = "resumed") -> dict:
        """Restart from ``path`` and continue evolving (the full restart
        scenario: read the checkpoint, rebuild the replicated hierarchy,
        then run the remaining cycles with dumps).

        The rebuild gathers every rank's pieces to rank 0 (real
        communication over the machine model) and installs the collected
        hierarchy as the shared replicated state.
        """
        state = self.restart(comm, path)
        gathered = coll.gather(comm, state, root=0)
        if comm.rank == 0:
            self.hierarchy = RankState.collect(gathered)
        coll.barrier(comm)  # hierarchy now installed for every rank
        return self.run(comm, base=base)

    # -- internals ---------------------------------------------------------------

    def _evolve_step(self, comm: Comm, state: RankState) -> None:
        cfg = self.config
        coll.barrier(comm)
        if comm.rank == 0:
            evolve_hierarchy(self.hierarchy, cfg.dt)
            refine_hierarchy(
                self.hierarchy,
                overdensity_threshold=cfg.refine_threshold,
                max_level=cfg.max_level,
            )
        # Every rank pays for its own cells (parallel compute model).
        comm.compute(
            comm.machine.compute_time(state.my_cells() * 2000.0)
        )
        coll.barrier(comm)
