"""Crash-consistent checkpointing: fault tolerance for the I/O stack.

Three pieces make checkpoint/restart survive injected failures end-to-end:

- :class:`RetryPolicy` -- bounded retries with simulated-time backoff,
  wired through the ADIO layer so every strategy inherits it;
- :class:`CheckpointManifest` / :class:`ManifestEntry` -- per-dataset
  checksums written as a ``<base>.manifest`` sidecar by every strategy,
  verified at restart so a torn or incomplete dump fails loudly with
  :class:`ManifestVerificationError` instead of loading corrupt state;
- recovery events (``op="recovery"`` in :class:`~repro.core.trace.IOTrace`)
  feeding the ``retry-storm`` / ``degraded-collective`` insight rules.

Fault modes themselves (one-shot, persistent, probabilistic, torn-write)
live in :mod:`repro.pfs.base`; this package is the policy layer above.
"""

from .manifest import (
    CheckpointManifest,
    ManifestEntry,
    ManifestVerificationError,
    checksum_bytes,
    entry_for_bytes,
    entry_for_segments,
    manifest_path,
)
from .retry import RetryPolicy

__all__ = [
    "CheckpointManifest",
    "ManifestEntry",
    "ManifestVerificationError",
    "RetryPolicy",
    "checksum_bytes",
    "entry_for_bytes",
    "entry_for_segments",
    "manifest_path",
]
