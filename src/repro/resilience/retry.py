"""Bounded-retry policy for checkpoint I/O.

A :class:`RetryPolicy` tells the ADIO layer (and, above it, the checkpoint
strategies) how to react when the file system raises an
:class:`~repro.pfs.base.InjectedIOError`: retry up to ``max_retries`` times,
backing off in *simulated* time between attempts, and optionally degrade a
failed collective write to independent I/O rather than killing the dump.

The default policy (``max_retries=0``) is fail-fast -- identical to the
behaviour before the resilience subsystem existed -- so faults still
surface as :class:`~repro.sim.errors.RankFailedError` unless a caller
explicitly opts into recovery.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["RetryPolicy"]


@dataclass(frozen=True)
class RetryPolicy:
    """How many times to retry a failed I/O operation, and how patiently.

    Backoff is exponential in simulated seconds: attempt *k* (1-based)
    sleeps ``min(backoff_base * backoff_factor**(k-1), max_backoff)``
    before re-issuing the operation.  ``op_timeout`` is an observability
    bound: an individual operation whose service time exceeds it is
    reported as a ``slow-op`` recovery event in the trace (the simulated
    operation still completes -- there is no cancellation in the model,
    just as there is none in POSIX I/O).

    ``degrade_collective`` lets the MPI-IO/HDF5 strategies fall back from
    a failed collective write to per-rank independent writes of the same
    bytes instead of aborting the dump.
    """

    max_retries: int = 0
    backoff_base: float = 1e-3
    backoff_factor: float = 2.0
    max_backoff: float = 1.0
    op_timeout: float = 0.0  # 0 = no timeout reporting
    degrade_collective: bool = True

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.backoff_base < 0 or self.max_backoff < 0:
            raise ValueError("backoff must be >= 0")
        if self.backoff_factor < 1.0:
            raise ValueError("backoff_factor must be >= 1")
        if self.op_timeout < 0:
            raise ValueError("op_timeout must be >= 0")

    def backoff(self, attempt: int) -> float:
        """Simulated sleep before retry ``attempt`` (1-based)."""
        if attempt < 1:
            raise ValueError("attempt is 1-based")
        delay = self.backoff_base * self.backoff_factor ** (attempt - 1)
        return min(delay, self.max_backoff)
