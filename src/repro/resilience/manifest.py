"""Checkpoint manifest: per-dataset checksums for crash-consistent restart.

Every checkpoint strategy writes a ``<base>.manifest`` sidecar after the
data phase: one :class:`ManifestEntry` per array actually persisted, with
the file path, the exact byte segments the array occupies, and a CRC32 of
those bytes.  On restart the manifest is the commit record -- a dump that
crashed before writing it is detectably incomplete, and a dump whose data
was torn mid-write fails the checksum scan.  Either way restart raises
:class:`ManifestVerificationError` instead of silently reconstructing a
corrupt hierarchy.

The format follows the ``<base>.hierarchy`` sidecar convention: a pickled
payload with an explicit version field, written through the same simulated
file-system path as the data (so manifest writes are timed, counted and
fault-injectable like any other I/O).
"""

from __future__ import annotations

import pickle
import zlib
from dataclasses import dataclass

__all__ = [
    "CheckpointManifest",
    "ManifestEntry",
    "ManifestVerificationError",
    "manifest_path",
]

MANIFEST_VERSION = 1
MANIFEST_SUFFIX = ".manifest"


def manifest_path(base: str) -> str:
    """The manifest sidecar path for checkpoint ``base``."""
    return base + MANIFEST_SUFFIX


class ManifestVerificationError(RuntimeError):
    """The checkpoint failed integrity verification at restart.

    Raised when the manifest sidecar is missing (the dump never committed),
    unreadable, or when any entry's on-disk bytes no longer match the
    checksum recorded at write time (torn or lost writes).
    """


def checksum_bytes(*chunks) -> int:
    """CRC32 over the concatenation of ``chunks`` (bytes-like objects)."""
    crc = 0
    for chunk in chunks:
        crc = zlib.crc32(chunk, crc)
    return crc


@dataclass(frozen=True)
class ManifestEntry:
    """One persisted array: where its bytes live and what they hash to.

    ``segments`` is a tuple of ``(offset, nbytes)`` pairs in the order the
    array's linear bytes map onto the file (a contiguous array is a single
    segment; a collective subarray write is the rank's row segments).
    """

    name: str
    path: str
    segments: tuple
    checksum: int

    @property
    def nbytes(self) -> int:
        return sum(n for _, n in self.segments)


def entry_for_bytes(name: str, path: str, offset: int, data) -> ManifestEntry:
    """A single-segment entry for a contiguous write of ``data``."""
    buf = memoryview(data).cast("B")
    return ManifestEntry(
        name=name,
        path=path,
        segments=((int(offset), len(buf)),),
        checksum=checksum_bytes(buf),
    )


def entry_for_segments(name: str, path: str, segments, data) -> ManifestEntry:
    """An entry for ``data`` scattered over ``(offset, nbytes)`` segments."""
    buf = memoryview(data).cast("B")
    segs = tuple((int(off), int(n)) for off, n in segments if n > 0)
    total = sum(n for _, n in segs)
    if len(buf) != total:
        raise ValueError(f"data has {len(buf)} bytes, segments cover {total}")
    return ManifestEntry(
        name=name, path=path, segments=segs, checksum=checksum_bytes(buf)
    )


class CheckpointManifest:
    """The full set of entries for one checkpoint dump."""

    def __init__(self, strategy: str = "", entries=None):
        self.strategy = strategy
        self.entries: dict[str, ManifestEntry] = {}
        for e in entries or ():
            self.add(e)

    def add(self, entry: ManifestEntry) -> None:
        if entry.nbytes == 0:
            return  # empty slices carry no corruptible bytes
        if entry.name in self.entries:
            raise ValueError(f"duplicate manifest entry {entry.name!r}")
        self.entries[entry.name] = entry

    def __len__(self) -> int:
        return len(self.entries)

    def __iter__(self):
        return iter(self.entries.values())

    # -- serialisation ------------------------------------------------------

    def to_bytes(self) -> bytes:
        payload = {
            "version": MANIFEST_VERSION,
            "strategy": self.strategy,
            "entries": [
                (e.name, e.path, e.segments, e.checksum)
                for e in sorted(self.entries.values(), key=lambda e: e.name)
            ],
        }
        return pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)

    @classmethod
    def from_bytes(cls, raw: bytes) -> "CheckpointManifest":
        try:
            payload = pickle.loads(raw)
            version = payload["version"]
            if version != MANIFEST_VERSION:
                raise ValueError(f"unsupported manifest version {version}")
            manifest = cls(strategy=payload.get("strategy", ""))
            for name, path, segments, checksum in payload["entries"]:
                manifest.add(ManifestEntry(name, path, tuple(segments), checksum))
        except ManifestVerificationError:
            raise
        except Exception as exc:
            raise ManifestVerificationError(
                f"corrupt checkpoint manifest: {exc}"
            ) from exc
        return manifest

    # -- verification -------------------------------------------------------

    def verify(self, store) -> list[str]:
        """Integrity-scan the checkpoint against a BlockStore.

        Reads every entry's segments straight from the store (an untimed
        scan -- the caller charges whatever service time it wants) and
        returns a list of human-readable problems, empty when clean.
        Reads past a file's end zero-fill, so a torn write that shortened
        a file is caught by the checksum rather than an exception.
        """
        problems: list[str] = []
        for entry in sorted(self.entries.values(), key=lambda e: e.name):
            if not store.exists(entry.path):
                problems.append(f"{entry.name}: file {entry.path!r} is missing")
                continue
            f = store.open(entry.path)
            crc = 0
            if hasattr(f, "checksum"):
                # Zero-copy scan over the store's live buffer: no
                # checkpoint-sized bytes objects materialized per entry.
                for off, n in entry.segments:
                    crc = f.checksum(off, n, crc)
            else:  # pragma: no cover - non-BlockStore stores
                for off, n in entry.segments:
                    crc = zlib.crc32(f.read(off, n), crc)
            if crc != entry.checksum:
                problems.append(
                    f"{entry.name}: checksum mismatch in {entry.path!r} "
                    f"(expected {entry.checksum:#010x}, read {crc:#010x})"
                )
        return problems

    def verify_or_raise(self, store, base: str) -> None:
        problems = self.verify(store)
        if problems:
            detail = "; ".join(problems[:5])
            more = f" (+{len(problems) - 5} more)" if len(problems) > 5 else ""
            raise ManifestVerificationError(
                f"checkpoint {base!r} failed verification: {detail}{more}"
            )
