"""File-layout detectors: file counts, stripe alignment, shared-file use.

Section 3.2.2 of the paper argues for one shared file (restart reads and
tape migration) and stripe-aligned collective file domains; these rules
flag the patterns that argument was aimed at.
"""

from __future__ import annotations

from ..model import (
    ACTION_ADVISE,
    ACTION_SET_HINT,
    ACTION_SWITCH_STRATEGY,
    Insight,
    Recommendation,
    Severity,
)
from ..rules import TraceContext, rule

__all__ = []


@rule("file-per-grid")
def file_per_grid(ctx: TraceContext) -> list:
    """Too many output files (the original code's file-per-grid layout)."""
    th = ctx.thresholds
    paths = set()
    for op in ("write", "read"):
        paths.update(e.path for e in ctx.trace.ops(op))
    npaths = len(paths)
    if npaths == 0:
        return []
    high_at = max(8, ctx.nprocs or 0)
    evidence = {
        "files": npaths,
        "nprocs": ctx.nprocs,
        "grids": len(ctx.registry.grid_keys()) if ctx.registry else None,
    }
    if npaths >= high_at or npaths > th.many_files_warn:
        severity = Severity.HIGH if npaths >= high_at else Severity.WARN
        return [
            Insight(
                rule="file-per-grid",
                severity=severity,
                title="checkpoint is scattered over many files",
                detail=(
                    f"{npaths} distinct files touched (P={ctx.nprocs}) -- "
                    f"per-grid files serialize each grid behind one writer, "
                    f"slow restart reads, and fragment tape migration"
                ),
                evidence=evidence,
                recommendations=(
                    Recommendation(
                        ACTION_SWITCH_STRATEGY,
                        "put all grids in one shared file at offsets every "
                        "rank derives from the replicated hierarchy metadata",
                        {"to": "mpi-io"},
                    ),
                ),
            )
        ]
    return [
        Insight(
            rule="file-per-grid",
            severity=Severity.OK,
            title="single-shared-file layout in use",
            detail=f"{npaths} distinct files touched",
            evidence=evidence,
        )
    ]


@rule("misaligned-access")
def misaligned_access(ctx: TraceContext) -> list:
    """Request offsets vs. the file-system stripe boundary.

    Misaligned collective file domains make every aggregator touch one
    stripe more than necessary and, on token-based file systems, fight
    over the boundary stripes.  When the hints already pin ``cb_align``
    to the stripe the rule reports OK regardless of the raw offsets
    (write-behind flushes legitimately start mid-stripe).
    """
    th = ctx.thresholds
    stripe = ctx.stripe_size
    if stripe <= 0:
        return []
    hints = ctx.hints
    if hints is not None and getattr(hints, "cb_align", 0) == stripe:
        return [
            Insight(
                rule="misaligned-access",
                severity=Severity.OK,
                title="collective file domains aligned to the stripe",
                detail=f"cb_align matches the {stripe} B stripe",
                evidence={"stripe_size": stripe, "cb_align": stripe},
            )
        ]
    out = []
    for op in ctx.data_ops():
        aligned = ctx.trace.alignment_fraction(op, stripe)
        evidence = {"stripe_size": stripe, "aligned_fraction": round(aligned, 3)}
        if aligned < th.aligned_fraction:
            recs = [
                Recommendation(
                    ACTION_SET_HINT,
                    "align collective file domains to the stripe",
                    {"name": "cb_align", "value": stripe},
                ),
                Recommendation(
                    ACTION_SET_HINT,
                    "request an application-specific stripe at "
                    "file-create time",
                    {"name": "striping_unit", "value": stripe},
                ),
            ]
            if ctx.stripe_widen_to > 0:
                recs.append(
                    Recommendation(
                        ACTION_SET_HINT,
                        "widen the checkpoint file's stripe count over "
                        "all the file system's servers (lfs setstripe -c)",
                        {"name": "striping_factor",
                         "value": ctx.stripe_widen_to},
                    )
                )
            out.append(
                Insight(
                    rule="misaligned-access",
                    severity=Severity.WARN,
                    title=f"{op} offsets ignore the stripe boundary",
                    detail=(
                        f"only {aligned:.0%} of {op} requests start on the "
                        f"{stripe} B stripe boundary"
                    ),
                    op=op,
                    evidence=evidence,
                    recommendations=tuple(recs),
                )
            )
        else:
            out.append(
                Insight(
                    rule="misaligned-access",
                    severity=Severity.OK,
                    title=f"{op} offsets respect the stripe boundary",
                    detail=f"{aligned:.0%} of {op} requests stripe-aligned",
                    op=op,
                    evidence=evidence,
                )
            )
    return out


@rule("independent-shared-file")
def independent_shared_file(ctx: TraceContext) -> list:
    """Many nodes writing a shared file in small independent pieces.

    A shared file is the right layout -- but only with aggregation.  When
    several nodes each push small requests into the same file the servers
    see an interleaved stream no buffer can help.
    """
    th = ctx.thresholds
    flagged = []
    shared = 0
    for path, events in ctx.events_by_path("write").items():
        nodes = {e.node for e in events}
        if len(nodes) < 2:
            continue
        shared += 1
        total = sum(e.nbytes for e in events)
        small = sum(
            e.nbytes for e in events if e.nbytes < th.small_request_bytes
        )
        if total and small / total > th.shared_small_byte_fraction:
            flagged.append((path, len(nodes), small / total))
    if flagged:
        path, nnodes, frac = max(flagged, key=lambda t: t[2])
        return [
            Insight(
                rule="independent-shared-file",
                severity=Severity.WARN,
                title="shared file written by independent small requests",
                detail=(
                    f"{nnodes} nodes write {path!r} independently and "
                    f"{frac:.0%} of its bytes arrive in small requests -- "
                    f"aggregate through collective buffering or write-behind"
                ),
                op="write",
                evidence={
                    "path": path,
                    "writer_nodes": nnodes,
                    "small_byte_fraction": round(frac, 3),
                    "flagged_files": len(flagged),
                },
                recommendations=(
                    Recommendation(
                        ACTION_SET_HINT,
                        "coalesce the independent small writes client-side",
                        {"name": "wb_buffer_size", "value": 4 * 1024 * 1024},
                    ),
                    Recommendation(
                        ACTION_ADVISE,
                        "use collective two-phase I/O for the regularly "
                        "decomposed arrays sharing the file",
                    ),
                ),
            )
        ]
    if shared:
        return [
            Insight(
                rule="independent-shared-file",
                severity=Severity.OK,
                title="shared-file writes arrive aggregated",
                detail=f"{shared} shared file(s), large-request traffic",
                op="write",
                evidence={"shared_files": shared},
            )
        ]
    return []
