"""Overlap detectors: synchronous checkpoint stalls the drain could hide.

The async compositions (``repro.aio``) drain checkpoint bytes on a
background timeline while the next cycle computes.  A synchronous
strategy instead blocks every rank for the full dump -- time an
async-capable registration would give back.  This rule flags that stall
and names the registered async composition to switch to.
"""

from __future__ import annotations

from ..model import (
    ACTION_SWITCH_STRATEGY,
    Insight,
    Recommendation,
    Severity,
)
from ..rules import TraceContext, rule

__all__ = []


def _async_target(strategy: str) -> str | None:
    """The registered async composition ``strategy`` should move to.

    Prefers the first async step on the ``upgrades_to`` chain; falls back
    to a direct async variant (``hdf5-aligned`` -> ``hdf5-aligned-async``).
    """
    from ...iostack import registry

    for name in registry.upgrade_chain(strategy):
        if registry.get(name).options.get("async"):
            return name
    for comp in registry.compositions():
        if comp.variant_of == strategy and comp.options.get("async"):
            return comp.name
    return None


@rule("sync-checkpoint-stall")
def sync_checkpoint_stall(ctx: TraceContext) -> list:
    """Every rank blocked for the full dump a background flush could hide."""
    from ...iostack import registry

    th = ctx.thresholds
    if ctx.strategy is None:
        return []
    try:
        comp = registry.get(ctx.strategy)
    except ValueError:
        return []
    writes = ctx.trace.ops("write")
    if not writes:
        return []
    if comp.options.get("async"):
        return [
            Insight(
                rule="sync-checkpoint-stall",
                severity=Severity.OK,
                title="checkpoint drains in the background",
                detail=(
                    f"{ctx.strategy} posts writes to the per-rank flush "
                    "service; compute overlaps the drain"
                ),
                op="write",
                evidence={"strategy": ctx.strategy, "async": True},
            )
        ]
    target = _async_target(ctx.strategy)
    if target is None:
        return []
    span = max(e.end for e in writes) - min(e.start for e in writes)
    busy = sum(e.duration for e in writes)
    writers = len({e.node for e in writes})
    stall = busy / (span * max(writers, 1)) if span > 0 else 1.0
    evidence = {
        "strategy": ctx.strategy,
        "write_span_s": round(span, 6),
        "write_busy_s": round(busy, 6),
        "writer_nodes": writers,
        "stall_fraction": round(stall, 3),
    }
    if stall < th.sync_stall_fraction:
        return [
            Insight(
                rule="sync-checkpoint-stall",
                severity=Severity.OK,
                title="synchronous dump is not stall-bound",
                detail=(
                    f"writers busy {stall:.0%} of the dump span "
                    f"(threshold {th.sync_stall_fraction:.0%})"
                ),
                op="write",
                evidence=evidence,
            )
        ]
    return [
        Insight(
            rule="sync-checkpoint-stall",
            severity=Severity.WARN,
            title="synchronous checkpoint stalls compute",
            detail=(
                f"{writers} writer node(s) are busy {stall:.0%} of the "
                f"{span:.3f}s dump span while every rank waits -- a "
                f"write-behind strategy overlaps this drain with the next "
                f"cycle's compute"
            ),
            op="write",
            evidence=evidence,
            recommendations=(
                Recommendation(
                    ACTION_SWITCH_STRATEGY,
                    "post the dump to the background flush service and "
                    "commit the manifest behind the flush barrier",
                    {"to": target},
                ),
            ),
        )
    ]
