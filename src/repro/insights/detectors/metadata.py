"""Namespace-churn detectors (metadata ops vs. data ops).

These need a trace recorded with ``trace_filesystem(fs, include_meta=True)``;
without metadata events both rules stay silent rather than report a
misleading OK.
"""

from __future__ import annotations

from ..model import (
    ACTION_ADVISE,
    ACTION_SWITCH_STRATEGY,
    Insight,
    Recommendation,
    Severity,
)
from ..rules import TraceContext, rule

__all__ = []


@rule("metadata-ratio")
def metadata_ratio(ctx: TraceContext) -> list:
    """Metadata operations per data request."""
    th = ctx.thresholds
    meta = ctx.trace.ops("meta")
    if not meta:
        return []
    ratio = ctx.trace.metadata_ratio()
    evidence = {
        "meta_ops": len(meta),
        "data_ops": len(ctx.trace.events) - len(meta),
        "ratio": round(ratio, 3),
    }
    if ratio > th.metadata_ratio_warn:
        severity = (
            Severity.HIGH if ratio > th.metadata_ratio_high else Severity.WARN
        )
        return [
            Insight(
                rule="metadata-ratio",
                severity=severity,
                title="metadata traffic rivals data traffic",
                detail=(
                    f"{len(meta)} namespace operations against "
                    f"{evidence['data_ops']} data requests "
                    f"(ratio {ratio:.2f}) -- open/create churn is "
                    f"stealing the request budget"
                ),
                evidence=evidence,
                recommendations=(
                    Recommendation(
                        ACTION_ADVISE,
                        "open each file once per phase and reuse the "
                        "handle; keep per-grid attributes in the "
                        "replicated hierarchy sidecar",
                    ),
                ),
            )
        ]
    return [
        Insight(
            rule="metadata-ratio",
            severity=Severity.OK,
            title="metadata traffic negligible",
            detail=f"{len(meta)} namespace ops, ratio {ratio:.2f}",
            evidence=evidence,
        )
    ]


@rule("open-churn")
def open_churn(ctx: TraceContext) -> list:
    """Repeated opens of the same files (dataset-open churn)."""
    th = ctx.thresholds
    opens = [
        e for e in ctx.trace.ops("meta") if e.kind in ("open", "create")
    ]
    if not opens:
        return []
    data_paths = set(ctx.trace.paths("write")) | set(ctx.trace.paths("read"))
    nfiles = max(len(data_paths), 1)
    per_file = len(opens) / nfiles
    evidence = {
        "opens": len(opens),
        "files": nfiles,
        "opens_per_file": round(per_file, 2),
    }
    if len(opens) >= th.min_opens and per_file > th.opens_per_file_warn:
        severity = (
            Severity.HIGH
            if per_file > th.opens_per_file_high
            else Severity.WARN
        )
        return [
            Insight(
                rule="open-churn",
                severity=severity,
                title="files are re-opened over and over",
                detail=(
                    f"{len(opens)} opens against {nfiles} file(s) "
                    f"({per_file:.1f} per file) -- each dataset access "
                    f"pays a fresh namespace round-trip"
                ),
                evidence=evidence,
                recommendations=(
                    Recommendation(
                        ACTION_SWITCH_STRATEGY,
                        "share one open handle for the whole checkpoint "
                        "(single-shared-file layout)",
                        {"to": "mpi-io"},
                    ),
                ),
            )
        ]
    return [
        Insight(
            rule="open-churn",
            severity=Severity.OK,
            title="open traffic proportional to files",
            detail=f"{len(opens)} opens against {nfiles} file(s)",
            evidence=evidence,
        )
    ]
