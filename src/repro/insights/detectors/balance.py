"""Rank/node byte-distribution detectors.

The original ENZO funnels the combined top grid through processor 0
(Section 2.2); these rules catch that serialization and milder ownership
imbalance.
"""

from __future__ import annotations

from ..model import (
    ACTION_ADVISE,
    ACTION_SWITCH_STRATEGY,
    Insight,
    Recommendation,
    Severity,
)
from ..rules import TraceContext, rule

__all__ = []


@rule("single-writer")
def single_writer(ctx: TraceContext) -> list:
    """One node moves the majority of the bytes (serialized I/O)."""
    th = ctx.thresholds
    out = []
    for op in ctx.data_ops():
        per_node = ctx.trace.per_node_bytes(op)
        total = sum(per_node.values())
        if not total or (ctx.nnodes or len(per_node)) < 2:
            continue
        top_node, top_bytes = max(per_node.items(), key=lambda kv: kv[1])
        share = top_bytes / total
        evidence = {
            "node": top_node,
            "share": round(share, 3),
            "active_nodes": len(per_node),
            "nnodes": ctx.nnodes,
        }
        if share > th.single_writer_share:
            out.append(
                Insight(
                    rule="single-writer",
                    severity=Severity.HIGH,
                    title=f"{op}s serialized through one node",
                    detail=(
                        f"node {top_node} moves {share:.0%} of the {op} "
                        f"bytes while {ctx.nnodes or len(per_node)} nodes "
                        f"are available -- the gather-and-write-through-P0 "
                        f"pattern leaves the parallel file system idle"
                    ),
                    op=op,
                    evidence=evidence,
                    recommendations=(
                        Recommendation(
                            ACTION_SWITCH_STRATEGY,
                            "let every rank write its own piece in parallel "
                            "(collective I/O for regular partitions)",
                            {"to": "mpi-io"},
                        ),
                    ),
                )
            )
        else:
            out.append(
                Insight(
                    rule="single-writer",
                    severity=Severity.OK,
                    title=f"{op}s spread across nodes",
                    detail=(
                        f"busiest node moves {share:.0%} of the {op} bytes"
                    ),
                    op=op,
                    evidence=evidence,
                )
            )
    return out


@rule("node-imbalance")
def node_imbalance(ctx: TraceContext) -> list:
    """Per-node byte skew (uneven grid ownership), short of serialization."""
    th = ctx.thresholds
    out = []
    for op in ctx.data_ops():
        per_node = ctx.trace.per_node_bytes(op)
        if len(per_node) < 2:
            continue
        total = sum(per_node.values())
        if not total:
            continue
        top = max(per_node.values())
        mean = total / len(per_node)
        skew = top / mean
        if top / total > th.single_writer_share:
            continue  # the single-writer rule already owns this finding
        evidence = {"skew": round(skew, 3), "active_nodes": len(per_node)}
        if skew >= th.imbalance_skew:
            out.append(
                Insight(
                    rule="node-imbalance",
                    severity=Severity.WARN,
                    title=f"{op} bytes unevenly spread over nodes",
                    detail=(
                        f"busiest node moves {skew:.1f}x the mean -- grid "
                        f"ownership is lopsided, so the slowest node sets "
                        f"the {op} time"
                    ),
                    op=op,
                    evidence=evidence,
                    recommendations=(
                        Recommendation(
                            ACTION_ADVISE,
                            "rebalance grid ownership by bytes (owner map "
                            "weighted by grid size rather than round-robin)",
                        ),
                    ),
                )
            )
        else:
            out.append(
                Insight(
                    rule="node-imbalance",
                    severity=Severity.OK,
                    title=f"{op} bytes balanced across nodes",
                    detail=f"busiest node at {skew:.1f}x the mean",
                    op=op,
                    evidence=evidence,
                )
            )
    return out
