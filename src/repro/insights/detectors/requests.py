"""Request-size and access-order detectors.

These are the paper's Table-2 observations turned into rules: ENZO's dump
issues a flood of small requests (one per grid array), and the original
HDF libraries interleave metadata-sized header writes with the payload.
"""

from __future__ import annotations

from ..model import (
    ACTION_ADVISE,
    ACTION_SET_HINT,
    ACTION_SWITCH_STRATEGY,
    Insight,
    Recommendation,
    Severity,
)
from ..rules import TraceContext, rule

__all__ = []


def _kib(n: float) -> str:
    return f"{n / 1024:.0f} KiB"


@rule("small-requests")
def small_requests(ctx: TraceContext) -> list:
    """Dominance of small requests (paper Table 2: median ~ a few KiB)."""
    th = ctx.thresholds
    out = []
    for op in ctx.data_ops():
        count_frac, byte_frac = ctx.small_fractions(op)
        n = len(ctx.trace.ops(op))
        evidence = {
            "requests": n,
            "small_count_fraction": round(count_frac, 3),
            "small_byte_fraction": round(byte_frac, 3),
            "small_threshold_bytes": th.small_request_bytes,
        }
        if count_frac > th.small_count_fraction:
            high = byte_frac > th.small_byte_fraction
            recs = [
                Recommendation(
                    ACTION_SET_HINT,
                    "coalesce consecutive small writes client-side "
                    "(write-behind buffering)",
                    {"name": "wb_buffer_size", "value": 4 * 1024 * 1024},
                )
                if op == "write"
                else Recommendation(
                    ACTION_SET_HINT,
                    "enlarge the data-sieving read buffer so neighbouring "
                    "small reads are served from one file-system request",
                    {"name": "ind_rd_buffer_size", "value": 4 * 1024 * 1024},
                ),
                Recommendation(
                    ACTION_ADVISE,
                    "aggregate small per-array accesses with collective "
                    "two-phase I/O where the decomposition is regular",
                ),
            ]
            out.append(
                Insight(
                    rule="small-requests",
                    severity=Severity.HIGH if high else Severity.WARN,
                    title=f"small {op} requests dominate",
                    detail=(
                        f"{count_frac:.0%} of {n} {op} requests are smaller "
                        f"than {_kib(th.small_request_bytes)}"
                        + (
                            f" and they carry {byte_frac:.0%} of the bytes"
                            if high
                            else f" (but only {byte_frac:.0%} of the bytes)"
                        )
                    ),
                    op=op,
                    evidence=evidence,
                    recommendations=tuple(recs),
                )
            )
        else:
            out.append(
                Insight(
                    rule="small-requests",
                    severity=Severity.OK,
                    title=f"{op} request sizes healthy",
                    detail=(
                        f"{count_frac:.0%} of {n} {op} requests are below "
                        f"{_kib(th.small_request_bytes)}"
                    ),
                    op=op,
                    evidence=evidence,
                )
            )
    return out


@rule("tiny-interleaved")
def tiny_interleaved(ctx: TraceContext) -> list:
    """Metadata-sized writes interleaved with payload (the HDF5 slowdown).

    The paper attributes HDF5's poor write performance to its internal
    metadata being written in-band with the data: the request stream
    alternates between sub-KiB header updates and array payloads, which
    defeats sequential buffering at every layer.
    """
    th = ctx.thresholds
    out = []
    for op in ctx.data_ops():
        sizes = ctx.trace.request_sizes(op)
        tiny_frac = float((sizes < th.tiny_request_bytes).sum()) / len(sizes)
        pairs = flips = 0
        for events in ctx.events_by_path(op).values():
            for a, b in zip(events, events[1:]):
                pairs += 1
                if (a.nbytes < th.tiny_request_bytes) != (
                    b.nbytes < th.tiny_request_bytes
                ):
                    flips += 1
        alternation = flips / pairs if pairs else 0.0
        _, byte_frac = ctx.small_fractions(op)
        evidence = {
            "tiny_fraction": round(tiny_frac, 3),
            "alternation_fraction": round(alternation, 3),
            "small_byte_fraction": round(byte_frac, 3),
            "tiny_threshold_bytes": th.tiny_request_bytes,
        }
        triggered = (
            tiny_frac > th.tiny_count_fraction
            and alternation > th.interleave_fraction
            and byte_frac > th.metadata_ratio_warn
        )
        if triggered:
            severity = (
                Severity.HIGH
                if byte_frac > th.small_byte_fraction
                else Severity.WARN
            )
            out.append(
                Insight(
                    rule="tiny-interleaved",
                    severity=severity,
                    title=f"metadata-sized {op}s interleaved with data",
                    detail=(
                        f"{tiny_frac:.0%} of {op} requests are under "
                        f"{th.tiny_request_bytes} B and {alternation:.0%} of "
                        f"consecutive same-file requests flip between tiny "
                        f"and payload sizes -- in-band format metadata is "
                        f"fragmenting the data stream"
                    ),
                    op=op,
                    evidence=evidence,
                    recommendations=(
                        Recommendation(
                            ACTION_SWITCH_STRATEGY,
                            "write payload through the MPI-IO layout (format "
                            "metadata kept in the replicated sidecar, out of "
                            "the data path)",
                            {"to": "mpi-io"},
                        ),
                    ),
                )
            )
        else:
            out.append(
                Insight(
                    rule="tiny-interleaved",
                    severity=Severity.OK,
                    title=f"no metadata/data interleaving on {op}s",
                    detail=(
                        f"tiny-request alternation is {alternation:.0%} "
                        f"({tiny_frac:.0%} tiny requests)"
                    ),
                    op=op,
                    evidence=evidence,
                )
            )
    return out


@rule("random-access")
def random_access(ctx: TraceContext) -> list:
    """Small non-sequential access per node (strided/random patterns)."""
    th = ctx.thresholds
    out = []
    for op in ctx.data_ops():
        fractions = ctx.per_node_sequential(op)
        if not fractions:
            continue
        mean_seq = sum(fractions) / len(fractions)
        _, byte_frac = ctx.small_fractions(op)
        evidence = {
            "mean_node_sequential_fraction": round(mean_seq, 3),
            "small_byte_fraction": round(byte_frac, 3),
        }
        if mean_seq < th.sequential_fraction and byte_frac > th.small_byte_fraction:
            out.append(
                Insight(
                    rule="random-access",
                    severity=Severity.WARN,
                    title=f"small {op}s land non-sequentially",
                    detail=(
                        f"per-node sequential fraction is {mean_seq:.0%} "
                        f"while small requests carry {byte_frac:.0%} of the "
                        f"bytes -- each request pays a full seek/stripe visit"
                    ),
                    op=op,
                    evidence=evidence,
                    recommendations=(
                        Recommendation(
                            ACTION_ADVISE,
                            "sort irregular data by its global key before "
                            "writing (block-wise access becomes contiguous "
                            "per rank), or batch the access list with "
                            "list I/O",
                        ),
                    ),
                )
            )
        else:
            out.append(
                Insight(
                    rule="random-access",
                    severity=Severity.OK,
                    title=f"{op} access order healthy",
                    detail=(
                        f"per-node sequential fraction {mean_seq:.0%}; "
                        f"small-request byte share {byte_frac:.0%}"
                    ),
                    op=op,
                    evidence=evidence,
                )
            )
    return out


@rule("rmw-amplification")
def rmw_amplification(ctx: TraceContext) -> list:
    """Read-modify-write amplification from data sieving.

    Data sieving turns a strided independent write into read-extent /
    modify / write-extent; the reads show up in a write-phase trace as
    traffic on the very files being written.
    """
    th = ctx.thresholds
    writes = ctx.trace.ops("write")
    reads = ctx.trace.ops("read")
    if not writes or not reads:
        return []
    written_paths = {e.path for e in writes}
    rmw_bytes = sum(e.nbytes for e in reads if e.path in written_paths)
    written_bytes = sum(e.nbytes for e in writes)
    ratio = rmw_bytes / written_bytes if written_bytes else 0.0
    evidence = {
        "rmw_read_bytes": rmw_bytes,
        "written_bytes": written_bytes,
        "ratio": round(ratio, 3),
    }
    if ratio > th.rmw_ratio_warn:
        return [
            Insight(
                rule="rmw-amplification",
                severity=(
                    Severity.HIGH if ratio > th.rmw_ratio_high else Severity.WARN
                ),
                title="write traffic is amplified by read-modify-write",
                detail=(
                    f"{rmw_bytes} B were read back from files being written "
                    f"({ratio:.0%} of the written volume) -- data sieving is "
                    f"filling holes by reading whole extents"
                ),
                op="write",
                evidence=evidence,
                recommendations=(
                    Recommendation(
                        ACTION_SET_HINT,
                        "disable data sieving for writes",
                        {"name": "ds_write", "value": False},
                    ),
                    Recommendation(
                        ACTION_SET_HINT,
                        "carry the non-contiguous access list in one "
                        "request (list I/O) instead of sieving",
                        {"name": "use_listio", "value": True},
                    ),
                ),
            )
        ]
    if rmw_bytes == 0:
        return [
            Insight(
                rule="rmw-amplification",
                severity=Severity.OK,
                title="no read-modify-write amplification",
                detail="no reads against files being written",
                op="write",
                evidence=evidence,
            )
        ]
    return [
        Insight(
            rule="rmw-amplification",
            severity=Severity.OK,
            title="read-modify-write amplification negligible",
            detail=f"read-back is {ratio:.0%} of the written volume",
            op="write",
            evidence=evidence,
        )
    ]
