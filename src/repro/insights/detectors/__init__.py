"""Detector rules; importing this package registers every rule.

Each module groups related rules:

* :mod:`.requests`   -- request-size and access-order pathologies;
* :mod:`.layout`     -- file-count, alignment, and shared-file findings;
* :mod:`.balance`    -- rank/node byte-distribution findings;
* :mod:`.metadata`   -- namespace-churn findings;
* :mod:`.resilience` -- retry-storm and degraded-collective findings;
* :mod:`.overlap`    -- synchronous-checkpoint-stall findings.
"""

from . import balance, layout, metadata, overlap, requests, resilience  # noqa: F401
