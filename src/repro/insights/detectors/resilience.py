"""Resilience detectors: retry storms and degraded collective dumps.

These consume the ``op="recovery"`` events the fault-tolerance layer emits
(:meth:`FileSystem.notify_recovery`, surfaced by ``trace_filesystem``).
A trace with no recovery events keeps both rules silent -- a run without a
retry policy should not be reported as "resilient", just undiagnosed.
"""

from __future__ import annotations

from ..model import (
    ACTION_ADVISE,
    Insight,
    Recommendation,
    Severity,
)
from ..rules import TraceContext, rule

__all__ = []


def _data_op_count(ctx: TraceContext) -> int:
    return len(ctx.trace.ops("write")) + len(ctx.trace.ops("read"))


@rule("retry-storm")
def retry_storm(ctx: TraceContext) -> list:
    """I/O retries per data request; give-ups are always HIGH."""
    th = ctx.thresholds
    recoveries = ctx.trace.ops("recovery")
    if not recoveries:
        return []
    retries = [e for e in recoveries if e.kind == "retry"]
    giveups = [e for e in recoveries if e.kind == "giveup"]
    data_ops = max(_data_op_count(ctx), 1)
    ratio = len(retries) / data_ops
    evidence = {
        "retries": len(retries),
        "giveups": len(giveups),
        "data_ops": data_ops,
        "retry_ratio": round(ratio, 3),
        "max_attempt": max((e.attempt for e in retries), default=0),
    }
    if giveups:
        return [
            Insight(
                rule="retry-storm",
                severity=Severity.HIGH,
                title="retries exhausted: operations gave up",
                detail=(
                    f"{len(giveups)} operation(s) failed even after "
                    f"{len(retries)} retries -- the dump did not complete "
                    f"and the checkpoint is not restartable"
                ),
                evidence=evidence,
                recommendations=(
                    Recommendation(
                        ACTION_ADVISE,
                        "raise RetryPolicy.max_retries or fix the failing "
                        "path; verify the target file system's health",
                    ),
                ),
            )
        ]
    if ratio > th.retry_ratio_warn or retries:
        severity = (
            Severity.HIGH if ratio > th.retry_ratio_high
            else Severity.WARN if ratio > th.retry_ratio_warn
            else Severity.INFO
        )
        return [
            Insight(
                rule="retry-storm",
                severity=severity,
                title=(
                    "retry storm during I/O"
                    if severity <= Severity.WARN  # WARN or more severe
                    else "transient I/O faults were recovered"
                ),
                detail=(
                    f"{len(retries)} retries across {data_ops} data "
                    f"requests (ratio {ratio:.2f}); all eventually "
                    f"succeeded"
                ),
                evidence=evidence,
                recommendations=(
                    Recommendation(
                        ACTION_ADVISE,
                        "a sustained retry rate signals a failing device "
                        "or path -- check the storage target before the "
                        "backoff cost dominates the dump",
                    ),
                ) if severity <= Severity.WARN else (),
            )
        ]
    return [
        Insight(
            rule="retry-storm",
            severity=Severity.OK,
            title="no retries needed",
            detail=f"{len(recoveries)} recovery event(s), none were retries",
            evidence=evidence,
        )
    ]


@rule("degraded-collective")
def degraded_collective(ctx: TraceContext) -> list:
    """Collective writes that fell back to independent I/O."""
    th = ctx.thresholds
    recoveries = ctx.trace.ops("recovery")
    if not recoveries:
        return []
    degraded = [e for e in recoveries if e.kind == "degraded"]
    evidence = {
        "degraded": len(degraded),
        "degraded_bytes": sum(e.nbytes for e in degraded),
    }
    if degraded:
        severity = (
            Severity.HIGH if len(degraded) >= th.degraded_high
            else Severity.WARN
        )
        return [
            Insight(
                rule="degraded-collective",
                severity=severity,
                title="collective writes degraded to independent I/O",
                detail=(
                    f"{len(degraded)} collective write(s) lost a "
                    f"participant and were re-issued independently -- the "
                    f"dump completed but without two-phase aggregation"
                ),
                evidence=evidence,
                recommendations=(
                    Recommendation(
                        ACTION_ADVISE,
                        "the data is intact (checksummed in the manifest) "
                        "but bandwidth suffered; investigate the failing "
                        "aggregator node",
                    ),
                ),
            )
        ]
    return [
        Insight(
            rule="degraded-collective",
            severity=Severity.OK,
            title="no degraded collectives",
            detail="all collective writes completed collectively",
            evidence=evidence,
        )
    ]
