"""Rule registry, thresholds, and the :func:`diagnose` entry point.

A detector rule is a function ``rule(ctx: TraceContext) -> list[Insight]``
registered with the :func:`rule` decorator.  :func:`diagnose` runs every
registered rule over a :class:`TraceContext` and returns the sorted
:class:`~repro.insights.model.Diagnosis`.

Thresholds follow Drishti's shape (fractions of requests / bytes that turn
a pattern into a finding); the values are calibrated against this repo's
simulated platforms so the paper's Figure-6 contrast (sequential HDF4 vs.
tuned collective MPI-IO) reproduces as HIGH-vs-clean.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.trace import IOTrace
from .model import Diagnosis, Insight

__all__ = ["TraceContext", "Thresholds", "rule", "all_rules", "diagnose"]


@dataclass(frozen=True)
class Thresholds:
    """Tunable detection thresholds (Drishti-style)."""

    #: a request below this many bytes is "small"
    small_request_bytes: int = 128 * 1024
    #: a request below this many bytes is "metadata-sized" (tiny)
    tiny_request_bytes: int = 1024
    #: small-request finding: fraction of requests that are small
    small_count_fraction: float = 0.70
    #: ... escalates to HIGH when small requests also carry this byte share
    small_byte_fraction: float = 0.25
    #: tiny/data interleaving: tiny-request fraction and alternation rate
    tiny_count_fraction: float = 0.40
    interleave_fraction: float = 0.50
    #: random-access finding: per-node sequential fraction below this
    sequential_fraction: float = 0.30
    #: misalignment finding: aligned-offset fraction below this
    aligned_fraction: float = 0.25
    #: shared-file finding: small-byte share of a multi-writer file
    shared_small_byte_fraction: float = 0.25
    #: file-count findings (N-N style output)
    many_files_warn: int = 4
    #: node-balance findings
    single_writer_share: float = 0.50
    imbalance_skew: float = 2.5
    #: metadata findings
    metadata_ratio_warn: float = 0.10
    metadata_ratio_high: float = 0.50
    opens_per_file_warn: float = 4.0
    opens_per_file_high: float = 16.0
    min_opens: int = 16
    #: read-modify-write amplification (reads observed during a write phase)
    rmw_ratio_warn: float = 0.15
    rmw_ratio_high: float = 0.50
    #: resilience findings: retries per data request
    retry_ratio_warn: float = 0.05
    retry_ratio_high: float = 0.25
    #: ... and degraded collective-to-independent fallbacks per run
    degraded_high: int = 4
    #: sync-checkpoint-stall: writer busy fraction of the dump span above
    #: which a synchronous strategy is worth moving to write-behind
    sync_stall_fraction: float = 0.15


@dataclass
class TraceContext:
    """Everything a detector may consult.

    Only ``trace`` is required; the optional platform/strategy context
    sharpens findings (e.g. the alignment rule goes quiet when the hints
    already pin collective domains to the stripe).
    """

    trace: IOTrace
    nprocs: int = 0
    nnodes: int = 0
    stripe_size: int = 0
    #: total server (OST) count when the file system stripes each file over
    #: fewer servers than it has -- i.e. there is stripe-width headroom the
    #: ``striping_factor`` hint can claim; 0 on fixed-width file systems.
    stripe_widen_to: int = 0
    hints: object | None = None  # mpiio.Hints
    strategy: str | None = None
    registry: object | None = None  # core.MetadataRegistry
    thresholds: Thresholds = field(default_factory=Thresholds)

    # -- shared derived helpers (used by several detectors) -----------------

    def data_ops(self) -> list[str]:
        """The data op streams present in the trace, write first."""
        return [op for op in ("write", "read") if self.trace.ops(op)]

    def small_fractions(self, op: str) -> tuple[float, float]:
        """(count fraction, byte fraction) of small requests for ``op``."""
        sizes = self.trace.request_sizes(op)
        if not len(sizes):
            return 0.0, 0.0
        small = sizes < self.thresholds.small_request_bytes
        total = int(sizes.sum())
        return (
            float(small.sum()) / len(sizes),
            (int(sizes[small].sum()) / total) if total else 0.0,
        )

    def events_by_node(self, op: str) -> dict[int, list]:
        out: dict[int, list] = {}
        for e in self.trace.ops(op):
            out.setdefault(e.node, []).append(e)
        return out

    def events_by_path(self, op: str) -> dict[str, list]:
        out: dict[str, list] = {}
        for e in self.trace.ops(op):
            out.setdefault(e.path, []).append(e)
        return out

    def per_node_sequential(self, op: str) -> list[float]:
        """Sequential fraction of each node's own request stream."""
        fractions = []
        for events in self.events_by_node(op).values():
            last: dict[str, int] = {}
            sequential = 0
            for e in events:
                if last.get(e.path) == e.offset:
                    sequential += 1
                last[e.path] = e.offset + e.nbytes
            fractions.append(sequential / len(events))
        return fractions


_RULES: dict[str, callable] = {}


def rule(rule_id: str):
    """Register a detector under ``rule_id`` (used in reports and tests)."""

    def register(fn):
        if rule_id in _RULES:
            raise ValueError(f"duplicate rule id {rule_id!r}")
        _RULES[rule_id] = fn
        fn.rule_id = rule_id
        return fn

    return register


def all_rules() -> dict[str, callable]:
    """The registered detectors (import-time side effect of detectors/)."""
    from . import detectors  # noqa: F401  -- registers on first import

    return dict(_RULES)


def diagnose(
    trace: IOTrace,
    *,
    nprocs: int = 0,
    nnodes: int = 0,
    stripe_size: int = 0,
    stripe_widen_to: int = 0,
    hints=None,
    strategy: str | None = None,
    registry=None,
    thresholds: Thresholds | None = None,
    rules: list[str] | None = None,
) -> Diagnosis:
    """Run the detector rules over ``trace`` and return the diagnosis."""
    ctx = TraceContext(
        trace=trace,
        nprocs=nprocs,
        nnodes=nnodes or nprocs,
        stripe_size=stripe_size,
        stripe_widen_to=stripe_widen_to,
        hints=hints,
        strategy=strategy,
        registry=registry,
        thresholds=thresholds or Thresholds(),
    )
    registered = all_rules()
    selected = registered if rules is None else {
        r: registered[r] for r in rules
    }
    diagnosis = Diagnosis()
    for fn in selected.values():
        for insight in fn(ctx):
            diagnosis.add(insight)
    diagnosis.sort()
    diagnosis.summary = {
        "events": len(trace),
        "writes": len(trace.ops("write")),
        "reads": len(trace.ops("read")),
        "meta_ops": len(trace.ops("meta")),
        "files": len(trace.paths()),
        "nprocs": nprocs,
        "strategy": strategy or "",
        "suggested_upgrades": _suggested_upgrades(strategy),
    }
    return diagnosis


def _suggested_upgrades(strategy: str | None) -> list[str]:
    """The strategy's transitive upgrade chain, [] when unregistered."""
    if not strategy:
        return []
    from ..iostack import registry

    return list(registry.upgrade_chain(strategy))
