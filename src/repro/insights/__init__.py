"""``repro.insights`` -- I/O diagnosis and auto-tuning over IOTrace.

A Drishti-style rule engine for the simulated I/O stack: feed it a traced
run and it returns severity-ranked findings (small-request dominance,
serialized writers, file-per-grid layouts, metadata churn, misalignment,
read-modify-write amplification, ...), each carrying the evidence that
triggered it and machine-actionable recommendations.  The
:class:`AutoTuner` closes the loop: it maps those recommendations onto
MPI-IO hints and strategy selection, re-runs the workload, and reports
the bandwidth delta.

Typical use::

    from repro.insights import diagnose, format_report

    diagnosis = diagnose(trace, nprocs=8, stripe_size=1 << 20)
    print(format_report(diagnosis))
"""

from .autotune import STRATEGY_UPGRADES, AutoTuner, TuningReport, TuningStep
from .model import Diagnosis, Insight, Recommendation, Severity
from .reporter import format_report, report_to_dict, report_to_json
from .rules import Thresholds, TraceContext, all_rules, diagnose

__all__ = [
    "AutoTuner",
    "Diagnosis",
    "Insight",
    "Recommendation",
    "Severity",
    "STRATEGY_UPGRADES",
    "Thresholds",
    "TraceContext",
    "TuningReport",
    "TuningStep",
    "all_rules",
    "diagnose",
    "format_report",
    "report_to_dict",
    "report_to_json",
]
