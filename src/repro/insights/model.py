"""Data model for I/O diagnosis findings (Drishti-style).

An :class:`Insight` is one finding produced by a detector rule: a severity,
the human-readable statement, the numbers that triggered it (``evidence``),
and zero or more machine-actionable :class:`Recommendation` objects the
:mod:`~repro.insights.autotune` loop can apply.  A :class:`Diagnosis`
collects the findings of one trace analysis.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

__all__ = ["Severity", "Recommendation", "Insight", "Diagnosis"]


class Severity(enum.IntEnum):
    """Ordered severity levels; lower value = more severe (sorts first)."""

    HIGH = 0
    WARN = 1
    INFO = 2
    OK = 3


#: machine-actionable recommendation kinds understood by the auto-tuner
ACTION_SET_HINT = "set_hint"
ACTION_SWITCH_STRATEGY = "switch_strategy"
ACTION_ADVISE = "advise"  # human-only advice, nothing to apply


@dataclass(frozen=True)
class Recommendation:
    """One suggested remedy.

    ``action`` is a small closed vocabulary the auto-tuner dispatches on:

    * ``"set_hint"``      -- ``params = {"name": <Hints field>, "value": v}``;
    * ``"switch_strategy"`` -- ``params = {"to": <strategy name>}``;
    * ``"advise"``        -- free-form advice, ``params`` optional.
    """

    action: str
    text: str
    params: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {"action": self.action, "text": self.text, "params": dict(self.params)}


@dataclass(frozen=True)
class Insight:
    """One finding of one detector rule."""

    rule: str
    severity: Severity
    title: str
    detail: str
    #: which op stream the finding is about ("write" | "read" | "" for global)
    op: str = ""
    evidence: dict = field(default_factory=dict)
    recommendations: tuple = ()

    def to_dict(self) -> dict:
        return {
            "rule": self.rule,
            "severity": self.severity.name,
            "title": self.title,
            "detail": self.detail,
            "op": self.op,
            "evidence": dict(self.evidence),
            "recommendations": [r.to_dict() for r in self.recommendations],
        }


@dataclass
class Diagnosis:
    """All findings for one analyzed trace, sorted most-severe-first."""

    insights: list = field(default_factory=list)
    #: trace-level summary the reporter prints in its header
    summary: dict = field(default_factory=dict)

    def add(self, insight: Insight) -> None:
        self.insights.append(insight)

    def sort(self) -> None:
        self.insights.sort(key=lambda i: (i.severity, i.rule, i.op))

    def count(self, severity: Severity) -> int:
        return sum(1 for i in self.insights if i.severity is severity)

    def findings(self, severity: Severity | None = None) -> list:
        """Insights at ``severity``, or all non-OK findings when None."""
        if severity is None:
            return [i for i in self.insights if i.severity is not Severity.OK]
        return [i for i in self.insights if i.severity is severity]

    def recommendations(self, *, max_severity: Severity = Severity.WARN) -> list:
        """Actionable recommendations from findings at or above severity."""
        out = []
        for i in self.insights:
            if i.severity <= max_severity:
                out.extend(i.recommendations)
        return out

    def to_dict(self) -> dict:
        return {
            "summary": dict(self.summary),
            "counts": {s.name: self.count(s) for s in Severity},
            "insights": [i.to_dict() for i in self.insights],
        }

    def __iter__(self):
        return iter(self.insights)

    def __len__(self) -> int:
        return len(self.insights)
