"""Severity-colored text and JSON reporters for a Diagnosis.

The text layout follows Drishti: a header with severity totals, then one
block per finding, most severe first, with its recommendations indented
beneath.  Colors are ANSI and strictly optional (``color=False`` gives the
stable plain-text form the golden tests pin).
"""

from __future__ import annotations

import json
import sys

from .model import Diagnosis, Severity

__all__ = ["format_report", "report_to_dict", "report_to_json"]

_COLORS = {
    Severity.HIGH: "\x1b[1;31m",  # bold red
    Severity.WARN: "\x1b[33m",  # yellow
    Severity.INFO: "\x1b[36m",  # cyan
    Severity.OK: "\x1b[32m",  # green
}
_RESET = "\x1b[0m"
_DIM = "\x1b[2m"


def _paint(text: str, code: str, enabled: bool) -> str:
    return f"{code}{text}{_RESET}" if enabled else text


def format_report(
    diagnosis: Diagnosis,
    *,
    title: str = "repro.insights -- I/O diagnosis",
    color: bool | None = None,
    show_ok: bool = True,
) -> str:
    """Render ``diagnosis`` as the Drishti-style text report."""
    if color is None:
        color = sys.stdout.isatty()
    lines = [title, "=" * len(title)]

    s = diagnosis.summary
    if s:
        bits = [f"{s.get('events', 0)} events"]
        if s.get("writes"):
            bits.append(f"{s['writes']} writes")
        if s.get("reads"):
            bits.append(f"{s['reads']} reads")
        if s.get("meta_ops"):
            bits.append(f"{s['meta_ops']} meta ops")
        if s.get("files"):
            bits.append(f"{s['files']} files")
        if s.get("nprocs"):
            bits.append(f"P={s['nprocs']}")
        if s.get("strategy"):
            bits.append(f"strategy={s['strategy']}")
        lines.append(_paint("  ".join(bits), _DIM, color))

    counts = "  ".join(
        _paint(f"{diagnosis.count(sev)} {sev.name}", _COLORS[sev], color)
        for sev in (Severity.HIGH, Severity.WARN, Severity.OK)
    )
    lines.append(counts)
    lines.append("")

    shown = [
        i
        for i in diagnosis.insights
        if show_ok or i.severity is not Severity.OK
    ]
    if not shown:
        lines.append("no findings")
    for insight in shown:
        tag = _paint(f"[{insight.severity.name}]", _COLORS[insight.severity], color)
        op = f" ({insight.op})" if insight.op else ""
        lines.append(f"{tag} {insight.rule}{op}: {insight.title}")
        if insight.severity is not Severity.OK:
            lines.append(f"       {insight.detail}")
            for rec in insight.recommendations:
                lines.append(_paint(f"       -> {rec.text}", _DIM, color))
    return "\n".join(lines)


def report_to_dict(diagnosis: Diagnosis) -> dict:
    return diagnosis.to_dict()


def report_to_json(diagnosis: Diagnosis, *, indent: int = 2) -> str:
    return json.dumps(report_to_dict(diagnosis), indent=indent)
