"""Closed-loop auto-tuning: diagnose a run, apply the remedies, re-run.

:class:`AutoTuner` executes the checkpoint dump with the current strategy
and hints on a traced file system, feeds the trace through the detector
rules, maps the machine-actionable recommendations onto concrete knobs --
a strategy upgrade (``hdf4``/``hdf5`` -> the paper's collective ``mpi-io``)
or :class:`~repro.mpiio.hints.Hints` fields -- and repeats until the
diagnosis is free of HIGH findings, nothing new is applicable, or the
round budget runs out.  The :class:`TuningReport` records every step with
its bandwidth, so the before/after delta is explicit.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..bench.runners import run_traced_experiment
from ..bench.workloads import build_workload
from ..core.trace import IOTrace
from ..iostack import registry
from ..mpiio.hints import Hints
from .model import Diagnosis, Severity
from .rules import Thresholds, diagnose

__all__ = ["AutoTuner", "TuningReport", "TuningStep", "STRATEGY_UPGRADES"]

#: the escalation the paper's measurements justify, derived from the
#: ``upgrades_to`` declarations in the strategy registry: both the serial
#: HDF4 baseline and the metadata-bound parallel HDF5 move to collective
#: MPI-IO
STRATEGY_UPGRADES = registry.upgrades()


def stripe_size_of(machine) -> int:
    """The attached file system's stripe size, 0 if it has none."""
    layout = getattr(machine.fs, "layout", None)
    return int(getattr(layout, "stripe_size", 0) or 0)


def stripe_headroom_of(machine) -> int:
    """Total server count when files default to a narrower stripe, else 0.

    Lustre-style file systems expose ``nosts`` (total OSTs) and
    ``default_stripe_count`` (the volume default a file gets without an
    explicit layout); when the default is narrower than the volume, the
    ``striping_factor`` hint can claim the rest.  Fixed-width file systems
    (GPFS, PVFS, XFS in this repo) have no such headroom.
    """
    fs = machine.fs
    nosts = int(getattr(fs, "nosts", 0) or 0)
    current = int(getattr(fs, "default_stripe_count", 0) or 0)
    return nosts if 0 < current < nosts else 0


@dataclass
class TuningStep:
    """One diagnose-and-run iteration."""

    round: int
    strategy: str
    hints: dict
    write_time: float
    bytes_written: int
    bandwidth: float  # bytes / simulated second
    high: int
    warn: int
    high_rules: list = field(default_factory=list)
    applied: list = field(default_factory=list)  # actions that produced this step

    def to_dict(self) -> dict:
        return {
            "round": self.round,
            "strategy": self.strategy,
            "hints": dict(self.hints),
            "write_time_s": self.write_time,
            "bytes_written": self.bytes_written,
            "bandwidth_mb_s": self.bandwidth / 2**20,
            "high": self.high,
            "warn": self.warn,
            "high_rules": list(self.high_rules),
            "applied": list(self.applied),
        }


@dataclass
class TuningReport:
    """The full tuning trajectory plus the headline delta."""

    problem: str
    nprocs: int
    machine: str
    steps: list = field(default_factory=list)

    @property
    def baseline(self) -> TuningStep:
        return self.steps[0]

    @property
    def best(self) -> TuningStep:
        return max(self.steps, key=lambda s: s.bandwidth)

    @property
    def bandwidth_delta(self) -> float:
        """Best-minus-baseline bandwidth (bytes/s); positive = improvement."""
        return self.best.bandwidth - self.baseline.bandwidth

    @property
    def speedup(self) -> float:
        b = self.baseline.bandwidth
        return self.best.bandwidth / b if b else float("inf")

    @property
    def unapplied_upgrades(self) -> list[str]:
        """Registered upgrades the tuner suggested but never ran.

        The transitive ``upgrades_to`` chain of every visited strategy,
        minus the strategies actually measured -- non-empty output means
        the report's winner is not the end of the road (e.g. the round
        budget ran out before ``mpi-io-async`` was tried).  A chain step
        the tuner jumped *past* (something further down its chain was
        measured) is not unapplied.
        """
        tried = {s.strategy for s in self.steps}
        out: list[str] = []
        for strategy in sorted(tried):
            for target in registry.upgrade_chain(strategy):
                if target in tried or target in out:
                    continue
                if tried.intersection(registry.upgrade_chain(target)):
                    continue  # the tuner went further down this chain
                out.append(target)
        return out

    def to_dict(self) -> dict:
        return {
            "problem": self.problem,
            "nprocs": self.nprocs,
            "machine": self.machine,
            "steps": [s.to_dict() for s in self.steps],
            "baseline_bandwidth_mb_s": self.baseline.bandwidth / 2**20,
            "tuned_bandwidth_mb_s": self.best.bandwidth / 2**20,
            "bandwidth_delta_mb_s": self.bandwidth_delta / 2**20,
            "speedup": self.speedup,
            "unapplied_upgrades": self.unapplied_upgrades,
        }

    def explain(self) -> str:
        lines = [
            f"auto-tune {self.problem} on {self.machine}, P={self.nprocs}:"
        ]
        for s in self.steps:
            applied = f"  [{'; '.join(s.applied)}]" if s.applied else ""
            lines.append(
                f"  round {s.round}: {s.strategy:7s} "
                f"{s.bandwidth / 2**20:8.1f} MB/s  "
                f"{s.high} HIGH / {s.warn} WARN{applied}"
            )
        lines.append(
            f"  => {self.speedup:.2f}x "
            f"({self.baseline.bandwidth / 2**20:.1f} -> "
            f"{self.best.bandwidth / 2**20:.1f} MB/s)"
        )
        unapplied = self.unapplied_upgrades
        if unapplied:
            lines.append(
                "  suggested but not applied: " + ", ".join(unapplied)
            )
        return "\n".join(lines)


class AutoTuner:
    """Drive the diagnose -> retune -> re-run loop for one workload."""

    def __init__(
        self,
        machine_factory,
        *,
        problem: str = "AMR32",
        nprocs: int = 8,
        strategy: str = "hdf4",
        hints: Hints | None = None,
        max_rounds: int = 3,
        thresholds: Thresholds | None = None,
        retry=None,
    ):
        if strategy not in registry.names():
            raise ValueError(f"unknown strategy {strategy!r}")
        self.machine_factory = machine_factory
        self.problem = problem
        self.nprocs = nprocs
        self.strategy = strategy
        self.hints = hints or Hints()
        self.max_rounds = max_rounds
        self.thresholds = thresholds
        self.retry = retry  # resilience.RetryPolicy, threaded to strategies

    # -- one traced run ----------------------------------------------------

    def run_once(
        self, strategy: str, hints: Hints
    ) -> tuple[IOTrace, Diagnosis, object]:
        """Execute the dump traced, and diagnose the trace.

        Async compositions are measured the only way their win is visible:
        under compute/checkpoint overlap (the Enzo driver with write-behind
        on), reporting effective bandwidth -- the same convention the
        regression matrix uses for its async cells.
        """
        machine = self.machine_factory(self.nprocs)
        if registry.get(strategy).options.get("async"):
            from ..bench.runners import run_overlap_experiment
            from ..core.trace import trace_filesystem
            from ..enzo.simulation import EnzoConfig

            # Two overlapped dumps over four cycles: enough for the
            # write-behind to show, few enough files that the multi-dump
            # trace does not read as a file-per-grid layout.
            config = EnzoConfig(
                problem=self.problem, ncycles=4, dump_every=2, overlap=True
            )
            trace = trace_filesystem(machine.fs, include_meta=True)
            try:
                result = run_overlap_experiment(
                    machine,
                    registry.create(strategy, hints=hints, retry=self.retry),
                    config,
                    nprocs=self.nprocs,
                )
            finally:
                trace.detach()
        else:
            result, trace = run_traced_experiment(
                machine,
                registry.create(strategy, hints=hints, retry=self.retry),
                build_workload(self.problem),
                nprocs=self.nprocs,
                do_read=False,
            )
        diagnosis = diagnose(
            trace,
            nprocs=self.nprocs,
            nnodes=machine.nnodes,
            stripe_size=stripe_size_of(machine),
            stripe_widen_to=stripe_headroom_of(machine),
            hints=hints,
            strategy=strategy,
            thresholds=self.thresholds,
        )
        return trace, diagnosis, result

    # -- recommendation -> knob mapping ------------------------------------

    def apply_recommendations(
        self, diagnosis: Diagnosis, strategy: str, hints: Hints
    ) -> tuple[str, Hints, list]:
        """The (strategy, hints) the diagnosis asks for, plus a changelog."""
        applied: list[str] = []
        new_strategy = strategy
        for rec in diagnosis.recommendations(max_severity=Severity.WARN):
            if rec.action == "switch_strategy":
                target = rec.params.get("to", "")
                if (
                    target != new_strategy
                    and target in registry.upgrade_chain(new_strategy)
                ):
                    new_strategy = target
                    applied.append(f"strategy -> {target}")
        new_hints = hints
        if registry.get(new_strategy).takes_hints:
            for rec in diagnosis.recommendations(max_severity=Severity.WARN):
                if rec.action != "set_hint":
                    continue
                name, value = rec.params["name"], rec.params["value"]
                if getattr(new_hints, name, value) != value:
                    new_hints = new_hints.replace(**{name: value})
                    applied.append(f"{name}={value}")
        return new_strategy, new_hints, applied

    # -- the loop ----------------------------------------------------------

    def tune(self) -> TuningReport:
        machine_name = self.machine_factory(self.nprocs).name
        report = TuningReport(
            # str() so a Scenario-valued problem reports its name (and the
            # JSON export stays serializable).
            problem=str(self.problem), nprocs=self.nprocs,
            machine=machine_name,
        )
        strategy, hints = self.strategy, self.hints
        applied: list[str] = []
        for round_no in range(self.max_rounds + 1):
            _trace, diagnosis, result = self.run_once(strategy, hints)
            bandwidth = (
                result.bytes_written / result.write_time
                if result.write_time
                else 0.0
            )
            report.steps.append(
                TuningStep(
                    round=round_no,
                    strategy=strategy,
                    hints=hints.to_info(),
                    write_time=result.write_time,
                    bytes_written=result.bytes_written,
                    bandwidth=bandwidth,
                    high=diagnosis.count(Severity.HIGH),
                    warn=diagnosis.count(Severity.WARN),
                    high_rules=[
                        i.rule for i in diagnosis.findings(Severity.HIGH)
                    ],
                    applied=applied,
                )
            )
            if diagnosis.count(Severity.HIGH) == 0 and round_no > 0:
                break
            strategy, hints, applied = self.apply_recommendations(
                diagnosis, strategy, hints
            )
            if not applied:
                break
        self._explore_variants(report, hints)
        return report

    def _explore_variants(self, report: TuningReport, hints: Hints) -> None:
        """Try registered variants of strategies the loop already ran.

        Compositions declaring ``variant_of`` (e.g. ``hdf5-aligned``, the
        paper's Section 5 remedy of metadata aggregation plus alignment
        padding) are candidates whenever their base strategy was visited:
        they encode a tuning option the rule engine cannot reach through
        hint edits alone, so the tuner measures them explicitly and lets
        :attr:`TuningReport.best` pick the winner.
        """
        tried = {s.strategy for s in report.steps}
        round_no = report.steps[-1].round if report.steps else 0
        fs = self.machine_factory(self.nprocs).fs
        for comp in registry.compositions():
            if comp.variant_of is None or comp.variant_of not in tried:
                continue
            if comp.name in tried:
                continue
            try:
                registry.check_filesystem(comp.name, fs)
            except ValueError:
                continue  # e.g. scda on a scatter-mode node-local fs
            round_no += 1
            _trace, diagnosis, result = self.run_once(comp.name, hints)
            bandwidth = (
                result.bytes_written / result.write_time
                if result.write_time
                else 0.0
            )
            report.steps.append(
                TuningStep(
                    round=round_no,
                    strategy=comp.name,
                    hints=hints.to_info(),
                    write_time=result.write_time,
                    bytes_written=result.bytes_written,
                    bandwidth=bandwidth,
                    high=diagnosis.count(Severity.HIGH),
                    warn=diagnosis.count(Severity.WARN),
                    high_rules=[
                        i.rule for i in diagnosis.findings(Severity.HIGH)
                    ],
                    applied=[f"try variant {comp.name} (of {comp.variant_of})"],
                )
            )
