"""AMR grids: a rectangular patch of the domain at some refinement level."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from .fields import BARYON_FIELDS, FieldSet
from .particles import ParticleSet

__all__ = ["Grid"]


@dataclass
class Grid:
    """One grid patch.

    ``left_edge``/``right_edge`` are in domain units ([0, 1]^3 for the root
    grid); ``dims`` is the number of cells per axis.  ``fields`` uniformly
    sample the patch; ``particles`` are those whose position falls inside it.
    """

    id: int
    level: int
    dims: tuple[int, int, int]
    left_edge: np.ndarray
    right_edge: np.ndarray
    fields: FieldSet = None
    particles: ParticleSet = field(default_factory=ParticleSet)
    parent_id: Optional[int] = None
    child_ids: list[int] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.dims = tuple(int(d) for d in self.dims)
        self.left_edge = np.asarray(self.left_edge, dtype=np.float64)
        self.right_edge = np.asarray(self.right_edge, dtype=np.float64)
        if self.left_edge.shape != (3,) or self.right_edge.shape != (3,):
            raise ValueError("edges must be 3-vectors")
        if not (self.right_edge > self.left_edge).all():
            raise ValueError("right_edge must exceed left_edge")
        if self.fields is None:
            self.fields = FieldSet(self.dims)

    # -- geometry ------------------------------------------------------------

    @property
    def cell_width(self) -> np.ndarray:
        return (self.right_edge - self.left_edge) / np.array(self.dims)

    @property
    def ncells(self) -> int:
        return int(np.prod(self.dims))

    def contains_points(self, positions: np.ndarray) -> np.ndarray:
        """Boolean mask: which positions fall inside this grid's domain."""
        if len(positions) == 0:
            return np.zeros(0, dtype=bool)
        return (
            (positions >= self.left_edge) & (positions < self.right_edge)
        ).all(axis=1)

    def cell_of(self, positions: np.ndarray) -> np.ndarray:
        """Integer cell coordinates of positions (clipped to the grid)."""
        rel = (positions - self.left_edge) / self.cell_width
        idx = np.floor(rel).astype(np.int64)
        return np.clip(idx, 0, np.array(self.dims) - 1)

    # -- data summary --------------------------------------------------------------

    @property
    def data_nbytes(self) -> int:
        """Bytes of real data (fields + particles); what a dump writes."""
        return self.fields.nbytes + self.particles.nbytes

    def metadata(self) -> dict:
        """The hierarchy metadata every processor keeps (paper Section 2.2)."""
        return {
            "id": self.id,
            "level": self.level,
            "dims": self.dims,
            "left_edge": self.left_edge.tolist(),
            "right_edge": self.right_edge.tolist(),
            "nparticles": len(self.particles),
            "field_names": list(self.fields.names),
            "parent_id": self.parent_id,
            "child_ids": list(self.child_ids),
        }

    def equal(self, other: "Grid") -> bool:
        """Bit-exact data equality (geometry, fields and particles)."""
        return (
            self.id == other.id
            and self.level == other.level
            and self.dims == other.dims
            and np.array_equal(self.left_edge, other.left_edge)
            and np.array_equal(self.right_edge, other.right_edge)
            and self.fields.equal(other.fields)
            and self.particles.equal(other.particles)
        )

    def copy(self) -> "Grid":
        """Deep copy: fields, particles, edges and child list are all fresh."""
        return Grid(
            id=self.id,
            level=self.level,
            dims=self.dims,
            left_edge=self.left_edge.copy(),
            right_edge=self.right_edge.copy(),
            fields=self.fields.copy(),
            particles=self.particles.copy(),
            parent_id=self.parent_id,
            child_ids=list(self.child_ids),
        )

    @classmethod
    def make_root(cls, dims: tuple[int, int, int], grid_id: int = 0) -> "Grid":
        """The root grid covering the unit cube."""
        return cls(
            id=grid_id,
            level=0,
            dims=dims,
            left_edge=np.zeros(3),
            right_edge=np.ones(3),
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Grid {self.id} L{self.level} {self.dims} "
            f"[{self.left_edge.round(3)}..{self.right_edge.round(3)}] "
            f"np={len(self.particles)}>"
        )
