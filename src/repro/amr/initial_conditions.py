"""Cosmological initial conditions.

A real ENZO run starts from Zel'dovich-displaced particles and a baryon
density field with a power-law perturbation spectrum.  We generate the same
*statistical structure* (a Gaussian random field with power ~ k^-n, so the
density is clustered rather than uniform, which is what drives refinement)
with numpy FFTs, then sample dark-matter particles from the overdense
regions.  Deterministic for a given seed.
"""

from __future__ import annotations

import numpy as np

from .fields import BARYON_FIELDS
from .grid import Grid
from .hierarchy import GridHierarchy

__all__ = ["gaussian_random_field", "make_initial_conditions", "populate_grid_fields"]


def gaussian_random_field(
    dims: tuple[int, int, int],
    *,
    spectral_index: float = -4.5,
    sigma: float = 1.0,
    seed: int = 0,
) -> np.ndarray:
    """A zero-mean Gaussian random field with power spectrum ~ |k|^n.

    Steeper (more negative) ``spectral_index`` gives more large-scale
    clustering.  The default is chosen so overdense regions form a handful
    of localized clusters (like the evolved matter field on cluster scales),
    giving AMR hierarchies with the clustered structure of the paper's
    Figures 1 and 3 rather than noise-driven refinement everywhere.
    """
    rng = np.random.default_rng(seed)
    kx = np.fft.fftfreq(dims[0])[:, None, None]
    ky = np.fft.fftfreq(dims[1])[None, :, None]
    kz = np.fft.rfftfreq(dims[2])[None, None, :]
    k2 = kx**2 + ky**2 + kz**2
    k2[0, 0, 0] = 1.0  # avoid the DC divide; zeroed below
    amplitude = k2 ** (spectral_index / 4.0)  # sqrt of power ~ k^(n/2)
    noise = rng.standard_normal((dims[0], dims[1], dims[2] // 2 + 1)) + 1j * (
        rng.standard_normal((dims[0], dims[1], dims[2] // 2 + 1))
    )
    spec = noise * amplitude
    spec[0, 0, 0] = 0.0
    field = np.fft.irfftn(spec, s=dims, axes=(0, 1, 2))
    std = field.std()
    if std > 0:
        field *= sigma / std
    return field


def populate_grid_fields(grid: Grid, delta: np.ndarray) -> None:
    """Fill a grid's baryon fields from an overdensity field ``delta``.

    Density is ``1 + delta`` clipped positive; the other fields are smooth
    functions of it so checkpoints contain distinguishable data per field.
    """
    if delta.shape != grid.dims:
        raise ValueError(f"delta shape {delta.shape} != grid dims {grid.dims}")
    density = np.clip(1.0 + delta, 0.05, None)
    grid.fields["density"] = density
    grid.fields["temperature"] = 1e4 * density ** (2.0 / 3.0)
    grid.fields["total_energy"] = 1.5 * grid.fields["temperature"] + 0.1
    grid.fields["internal_energy"] = 1.5 * grid.fields["temperature"]
    grid.fields["dark_matter_density"] = 5.0 * density
    # Velocities: gradient-ish flows toward overdensities.
    for axis, name in enumerate(("velocity_x", "velocity_y", "velocity_z")):
        grid.fields[name] = -0.5 * np.gradient(density, axis=axis)


def make_initial_conditions(
    root_dims: tuple[int, int, int],
    *,
    particles_per_cell: float = 0.25,
    seed: int = 0,
    pre_refine: int = 1,
    refine_threshold: float = 1.8,
    refine_kwargs: dict | None = None,
    nested_grids: tuple = (),
    must_refine: tuple = (),
    deep_levels: int = 0,
) -> GridHierarchy:
    """Build the initial hierarchy: root grid + pre-refined subgrids.

    This is what the original code reads from the initial-grid files at the
    start of a new simulation ("the root grid and some initial pre-refined
    subgrids").  Particles are sampled preferentially in overdense cells
    (rejection sampling), giving the irregular spatial distribution the
    paper's particle I/O analysis is about.

    Scenario extensions (each a strict no-op when unset, so the historical
    RNG consumption order -- and with it every pinned digest -- is
    untouched):

    * ``nested_grids``: static initial grids (Enzo
      ``CosmologySimulationGrid*``), seeded before threshold refinement.
    * ``must_refine``: regions force-refined down to a target level after
      threshold refinement (must-refine particle masks).
    * ``deep_levels``: chain this many extra zoom levels onto the densest
      spot of the current finest grid (deep FOGGIE-style hierarchies).
    """
    root = Grid.make_root(root_dims)
    delta = gaussian_random_field(root_dims, seed=seed)
    populate_grid_fields(root, delta)

    # Sample particles with probability proportional to local density.
    rng = np.random.default_rng(seed + 1)
    n_particles = int(np.prod(root_dims) * particles_per_cell)
    density = root.fields["density"]
    prob = (density / density.sum()).ravel()
    cells = rng.choice(len(prob), size=n_particles, p=prob)
    coords = np.column_stack(np.unravel_index(cells, root_dims)).astype(np.float64)
    jitter = rng.random((n_particles, 3))
    positions = (coords + jitter) * root.cell_width + root.left_edge
    velocities = 0.01 * rng.standard_normal((n_particles, 3))
    root.particles = type(root.particles)(
        ids=np.arange(n_particles, dtype=np.int64),
        positions=positions,
        velocities=velocities,
        mass=np.full(n_particles, 1.0 / max(n_particles, 1)),
        attributes=np.column_stack(
            [np.zeros(n_particles), rng.random(n_particles)]
        ),
    )

    hierarchy = GridHierarchy(root)
    if nested_grids:
        _seed_nested_grids(hierarchy, nested_grids)
    if pre_refine > 0:
        from .refinement import refine_hierarchy

        for _ in range(pre_refine):
            refine_hierarchy(
                hierarchy,
                overdensity_threshold=refine_threshold,
                **(refine_kwargs or {}),
            )
    if must_refine:
        _apply_must_refine(hierarchy, must_refine)
    if deep_levels > 0:
        max_level = (refine_kwargs or {}).get("max_level", 4)
        _deepen_hierarchy(hierarchy, deep_levels, max_level=max_level)
    return hierarchy


# ---------------------------------------------------------------------------
# Scenario extensions: static nested grids, must-refine regions, deep zoom.
# All construction below is purely geometric and id-ordered -- no RNG -- so
# the same scenario always yields the same hierarchy bit-for-bit.
# ---------------------------------------------------------------------------


def _snap_box(parent: Grid, left_edge, right_edge):
    """Clip a domain-unit box to ``parent`` and snap it to its cell grid.

    Returns ``(lo, hi)`` cell-index tuples (hi exclusive), or ``None``
    when the intersection is empty.
    """
    cw = parent.cell_width
    lo, hi = [], []
    for axis in range(3):
        left = max(float(left_edge[axis]), float(parent.left_edge[axis]))
        right = min(float(right_edge[axis]), float(parent.right_edge[axis]))
        if right - left <= 1e-12:
            return None
        rel_lo = (left - parent.left_edge[axis]) / cw[axis]
        rel_hi = (right - parent.left_edge[axis]) / cw[axis]
        a = int(np.floor(rel_lo + 1e-9))
        b = int(np.ceil(rel_hi - 1e-9))
        a = max(0, min(a, parent.dims[axis] - 1))
        b = max(a + 1, min(b, parent.dims[axis]))
        lo.append(a)
        hi.append(b)
    return tuple(lo), tuple(hi)


def _make_child(hierarchy: GridHierarchy, parent: Grid, lo, hi) -> Grid:
    """Create a refined child over parent cells ``[lo, hi)`` (refine_grid's
    construction, without the flag clustering)."""
    from .refinement import (
        REFINE_FACTOR,
        _interpolate_fields,
        _move_particles_down,
    )

    cw = parent.cell_width
    child = Grid(
        id=hierarchy.new_grid_id(),
        level=parent.level + 1,
        dims=tuple((h - l) * REFINE_FACTOR for l, h in zip(lo, hi)),
        left_edge=parent.left_edge + np.array(lo) * cw,
        right_edge=parent.left_edge + np.array(hi) * cw,
        parent_id=parent.id,
    )
    _interpolate_fields(parent, child, lo, hi)
    _move_particles_down(parent, child)
    hierarchy.add_grid(child)
    return child


def _seed_nested_grids(hierarchy: GridHierarchy, specs) -> None:
    """Seed static nested initial grids (shallowest level first)."""
    from .refinement import REFINE_FACTOR

    for spec in sorted(specs, key=lambda s: (s.level, s.left_edge)):
        parent = None
        for grid in hierarchy.grids():
            if grid.level != spec.level - 1:
                continue
            if (np.asarray(spec.left_edge) >= grid.left_edge - 1e-12).all() and (
                np.asarray(spec.right_edge) <= grid.right_edge + 1e-12
            ).all():
                parent = grid
                break
        if parent is None:
            raise ValueError(
                f"nested grid at level {spec.level} "
                f"[{spec.left_edge}..{spec.right_edge}] has no containing "
                f"level-{spec.level - 1} grid"
            )
        box = _snap_box(parent, spec.left_edge, spec.right_edge)
        if box is None:
            raise ValueError(f"nested grid {spec} snaps to an empty box")
        lo, hi = box
        got = tuple((h - l) * REFINE_FACTOR for l, h in zip(lo, hi))
        if got != tuple(spec.dims):
            raise ValueError(
                f"nested grid dims {tuple(spec.dims)} disagree with its "
                f"edges (cell-snapped extent implies {got})"
            )
        _make_child(hierarchy, parent, lo, hi)


def _subtract_box(box, hole):
    """Disjoint boxes covering ``box`` minus ``hole`` (cell-index boxes)."""
    lo, hi = box
    hlo = tuple(max(a, b) for a, b in zip(lo, hole[0]))
    hhi = tuple(min(a, b) for a, b in zip(hi, hole[1]))
    if any(a >= b for a, b in zip(hlo, hhi)):
        return [box]
    pieces = []
    cur_lo, cur_hi = list(lo), list(hi)
    for axis in range(3):
        if cur_lo[axis] < hlo[axis]:
            p_lo, p_hi = list(cur_lo), list(cur_hi)
            p_hi[axis] = hlo[axis]
            pieces.append((tuple(p_lo), tuple(p_hi)))
            cur_lo[axis] = hlo[axis]
        if hhi[axis] < cur_hi[axis]:
            p_lo, p_hi = list(cur_lo), list(cur_hi)
            p_lo[axis] = hhi[axis]
            pieces.append((tuple(p_lo), tuple(p_hi)))
            cur_hi[axis] = hhi[axis]
    return pieces


def _apply_must_refine(hierarchy: GridHierarchy, regions) -> None:
    """Force refinement of each region down to its target level.

    Level by level, every grid overlapping a region gains children
    covering the region's footprint -- minus whatever its existing
    children already cover, so must-refine composes with both nested
    grids and threshold refinement without duplicated coverage.
    """
    for region in sorted(regions, key=lambda r: (r.level, r.left_edge)):
        for level in range(1, region.level + 1):
            parents = [g for g in hierarchy.grids() if g.level == level - 1]
            for parent in parents:
                box = _snap_box(parent, region.left_edge, region.right_edge)
                if box is None:
                    continue
                boxes = [box]
                for child_id in parent.child_ids:
                    child = hierarchy[child_id]
                    hole = _snap_box(parent, child.left_edge,
                                     child.right_edge)
                    if hole is None:
                        continue
                    boxes = [p for b in boxes
                             for p in _subtract_box(b, hole)]
                for lo, hi in sorted(boxes):
                    _make_child(hierarchy, parent, lo, hi)


def _deepen_hierarchy(hierarchy: GridHierarchy, deep_levels: int,
                      *, max_level: int) -> None:
    """Chain small zoom grids onto the densest spot, one level at a time."""
    half = 2  # half-width in parent cells: a 4^3 box -> an 8^3 child
    for _ in range(deep_levels):
        finest = hierarchy.max_level
        if finest >= max_level:
            break
        leaves = [g for g in hierarchy.grids() if g.level == finest]
        target = max(leaves, key=lambda g: float(g.fields["density"].max()))
        density = target.fields["density"]
        peak = np.unravel_index(int(np.argmax(density)), density.shape)
        lo, hi = [], []
        for axis in range(3):
            width = min(2 * half, target.dims[axis])
            a = max(0, min(peak[axis] - half, target.dims[axis] - width))
            lo.append(a)
            hi.append(a + width)
        _make_child(hierarchy, target, tuple(lo), tuple(hi))
