"""Cosmological initial conditions.

A real ENZO run starts from Zel'dovich-displaced particles and a baryon
density field with a power-law perturbation spectrum.  We generate the same
*statistical structure* (a Gaussian random field with power ~ k^-n, so the
density is clustered rather than uniform, which is what drives refinement)
with numpy FFTs, then sample dark-matter particles from the overdense
regions.  Deterministic for a given seed.
"""

from __future__ import annotations

import numpy as np

from .fields import BARYON_FIELDS
from .grid import Grid
from .hierarchy import GridHierarchy

__all__ = ["gaussian_random_field", "make_initial_conditions", "populate_grid_fields"]


def gaussian_random_field(
    dims: tuple[int, int, int],
    *,
    spectral_index: float = -4.5,
    sigma: float = 1.0,
    seed: int = 0,
) -> np.ndarray:
    """A zero-mean Gaussian random field with power spectrum ~ |k|^n.

    Steeper (more negative) ``spectral_index`` gives more large-scale
    clustering.  The default is chosen so overdense regions form a handful
    of localized clusters (like the evolved matter field on cluster scales),
    giving AMR hierarchies with the clustered structure of the paper's
    Figures 1 and 3 rather than noise-driven refinement everywhere.
    """
    rng = np.random.default_rng(seed)
    kx = np.fft.fftfreq(dims[0])[:, None, None]
    ky = np.fft.fftfreq(dims[1])[None, :, None]
    kz = np.fft.rfftfreq(dims[2])[None, None, :]
    k2 = kx**2 + ky**2 + kz**2
    k2[0, 0, 0] = 1.0  # avoid the DC divide; zeroed below
    amplitude = k2 ** (spectral_index / 4.0)  # sqrt of power ~ k^(n/2)
    noise = rng.standard_normal((dims[0], dims[1], dims[2] // 2 + 1)) + 1j * (
        rng.standard_normal((dims[0], dims[1], dims[2] // 2 + 1))
    )
    spec = noise * amplitude
    spec[0, 0, 0] = 0.0
    field = np.fft.irfftn(spec, s=dims, axes=(0, 1, 2))
    std = field.std()
    if std > 0:
        field *= sigma / std
    return field


def populate_grid_fields(grid: Grid, delta: np.ndarray) -> None:
    """Fill a grid's baryon fields from an overdensity field ``delta``.

    Density is ``1 + delta`` clipped positive; the other fields are smooth
    functions of it so checkpoints contain distinguishable data per field.
    """
    if delta.shape != grid.dims:
        raise ValueError(f"delta shape {delta.shape} != grid dims {grid.dims}")
    density = np.clip(1.0 + delta, 0.05, None)
    grid.fields["density"] = density
    grid.fields["temperature"] = 1e4 * density ** (2.0 / 3.0)
    grid.fields["total_energy"] = 1.5 * grid.fields["temperature"] + 0.1
    grid.fields["internal_energy"] = 1.5 * grid.fields["temperature"]
    grid.fields["dark_matter_density"] = 5.0 * density
    # Velocities: gradient-ish flows toward overdensities.
    for axis, name in enumerate(("velocity_x", "velocity_y", "velocity_z")):
        grid.fields[name] = -0.5 * np.gradient(density, axis=axis)


def make_initial_conditions(
    root_dims: tuple[int, int, int],
    *,
    particles_per_cell: float = 0.25,
    seed: int = 0,
    pre_refine: int = 1,
    refine_threshold: float = 1.8,
    refine_kwargs: dict | None = None,
) -> GridHierarchy:
    """Build the initial hierarchy: root grid + pre-refined subgrids.

    This is what the original code reads from the initial-grid files at the
    start of a new simulation ("the root grid and some initial pre-refined
    subgrids").  Particles are sampled preferentially in overdense cells
    (rejection sampling), giving the irregular spatial distribution the
    paper's particle I/O analysis is about.
    """
    root = Grid.make_root(root_dims)
    delta = gaussian_random_field(root_dims, seed=seed)
    populate_grid_fields(root, delta)

    # Sample particles with probability proportional to local density.
    rng = np.random.default_rng(seed + 1)
    n_particles = int(np.prod(root_dims) * particles_per_cell)
    density = root.fields["density"]
    prob = (density / density.sum()).ravel()
    cells = rng.choice(len(prob), size=n_particles, p=prob)
    coords = np.column_stack(np.unravel_index(cells, root_dims)).astype(np.float64)
    jitter = rng.random((n_particles, 3))
    positions = (coords + jitter) * root.cell_width + root.left_edge
    velocities = 0.01 * rng.standard_normal((n_particles, 3))
    root.particles = type(root.particles)(
        ids=np.arange(n_particles, dtype=np.int64),
        positions=positions,
        velocities=velocities,
        mass=np.full(n_particles, 1.0 / max(n_particles, 1)),
        attributes=np.column_stack(
            [np.zeros(n_particles), rng.random(n_particles)]
        ),
    )

    hierarchy = GridHierarchy(root)
    if pre_refine > 0:
        from .refinement import refine_hierarchy

        for _ in range(pre_refine):
            refine_hierarchy(
                hierarchy,
                overdensity_threshold=refine_threshold,
                **(refine_kwargs or {}),
            )
    return hierarchy
