"""The grid hierarchy: a tree of increasingly refined patches (paper Fig. 1).

The hierarchy *metadata* (geometry, sizes, parentage of every grid) is
maintained on all processors -- the paper points this out explicitly, and
the parallel I/O strategies rely on it to compute identical file layouts
everywhere.  The grid *data* (fields, particles) is distributed.
"""

from __future__ import annotations

from typing import Iterator, Optional

import numpy as np

from .grid import Grid

__all__ = ["GridHierarchy"]


class GridHierarchy:
    """A tree of grids indexed by id, rooted at grid 0's level."""

    def __init__(self, root: Grid):
        if root.parent_id is not None:
            raise ValueError("root grid cannot have a parent")
        self._grids: dict[int, Grid] = {root.id: root}
        self.root_id = root.id
        self._next_id = root.id + 1

    # -- access ----------------------------------------------------------

    @property
    def root(self) -> Grid:
        return self._grids[self.root_id]

    def __getitem__(self, grid_id: int) -> Grid:
        return self._grids[grid_id]

    def __contains__(self, grid_id: int) -> bool:
        return grid_id in self._grids

    def __len__(self) -> int:
        return len(self._grids)

    def grids(self) -> Iterator[Grid]:
        """All grids in id order (deterministic traversal)."""
        for gid in sorted(self._grids):
            yield self._grids[gid]

    def level_grids(self, level: int) -> list[Grid]:
        return [g for g in self.grids() if g.level == level]

    def subgrids(self) -> list[Grid]:
        """Every grid except the root, in id order."""
        return [g for g in self.grids() if g.id != self.root_id]

    @property
    def max_level(self) -> int:
        return max(g.level for g in self._grids.values())

    def children(self, grid_id: int) -> list[Grid]:
        return [self._grids[c] for c in self._grids[grid_id].child_ids]

    # -- construction ---------------------------------------------------------

    def new_grid_id(self) -> int:
        gid = self._next_id
        self._next_id += 1
        return gid

    def add_grid(self, grid: Grid) -> Grid:
        """Insert a grid; its parent must already be present."""
        if grid.id in self._grids:
            raise ValueError(f"grid id {grid.id} already in hierarchy")
        if grid.parent_id is None:
            raise ValueError("non-root grids need a parent")
        parent = self._grids.get(grid.parent_id)
        if parent is None:
            raise ValueError(f"parent {grid.parent_id} not in hierarchy")
        if grid.level != parent.level + 1:
            raise ValueError(
                f"grid level {grid.level} must be parent level + 1 "
                f"({parent.level + 1})"
            )
        eps = 1e-12
        if (grid.left_edge < parent.left_edge - eps).any() or (
            grid.right_edge > parent.right_edge + eps
        ).any():
            raise ValueError("child grid extends outside its parent")
        self._grids[grid.id] = grid
        parent.child_ids.append(grid.id)
        self._next_id = max(self._next_id, grid.id + 1)
        return grid

    def remove_subtree(self, grid_id: int) -> list[int]:
        """Remove a grid and all its descendants; returns removed ids."""
        if grid_id == self.root_id:
            raise ValueError("cannot remove the root grid")
        removed: list[int] = []
        stack = [grid_id]
        while stack:
            gid = stack.pop()
            grid = self._grids.pop(gid)
            removed.append(gid)
            stack.extend(grid.child_ids)
        removed_set = set(removed)
        for g in self._grids.values():
            g.child_ids = [c for c in g.child_ids if c not in removed_set]
        return removed

    def copy(self) -> "GridHierarchy":
        """Deep copy of the whole tree (grids, fields, particles).

        The ``lru_cache``'d workload builders hand out copies so a caller
        that mutates its hierarchy (``EnzoSimulation`` evolves it in
        place on rank 0) can never poison the cache for the next run.
        """
        out = GridHierarchy(self.root.copy())
        for grid in self.grids():
            if grid.id != self.root_id:
                out._grids[grid.id] = grid.copy()
        out._next_id = self._next_id
        return out

    # -- summaries ------------------------------------------------------------------

    def total_cells(self) -> int:
        return sum(g.ncells for g in self._grids.values())

    def total_particles(self) -> int:
        return sum(len(g.particles) for g in self._grids.values())

    def total_data_nbytes(self) -> int:
        return sum(g.data_nbytes for g in self._grids.values())

    def metadata(self) -> list[dict]:
        """Hierarchy metadata for all grids (what every processor holds)."""
        return [g.metadata() for g in self.grids()]

    def describe(self) -> str:
        lines = [f"hierarchy: {len(self)} grids, max level {self.max_level}"]
        for level in range(self.max_level + 1):
            grids = self.level_grids(level)
            cells = sum(g.ncells for g in grids)
            parts = sum(len(g.particles) for g in grids)
            lines.append(
                f"  level {level}: {len(grids)} grids, {cells} cells, "
                f"{parts} particles"
            )
        return "\n".join(lines)

    def equal(self, other: "GridHierarchy") -> bool:
        """Bit-exact equality of all grids."""
        if sorted(self._grids) != sorted(other._grids):
            return False
        return all(self[g].equal(other[g]) for g in self._grids)
