"""Toy hydrodynamics/N-body evolution.

The study needs the *I/O behaviour* of an evolving AMR hierarchy, not
astrophysical accuracy: data must change every cycle, stay clustered so
refinement remains non-trivial, and cost a defensible amount of compute
time.  The solver therefore does a cheap but real update:

* baryon fields: explicit diffusion plus a drift toward the local
  dark-matter density (a caricature of gravitational infall);
* particles: kick toward the densest cell in their grid (monopole
  gravity), drift, periodic wrap at the domain boundary;
* particles are re-homed to the finest grid containing them afterwards;
* compute time is charged per cell-update through the machine model.

Deterministic: no randomness after initial conditions.
"""

from __future__ import annotations

import numpy as np

from .grid import Grid
from .hierarchy import GridHierarchy
from .particles import ParticleSet

__all__ = ["evolve_grid", "evolve_hierarchy", "FLOPS_PER_CELL"]

#: Rough per-cell-per-step cost of a PPM-like hydro sweep (paper-era codes
#: quoted ~1-10 kflop/cell/step); used to charge compute time.
FLOPS_PER_CELL = 2000.0


def evolve_grid(grid: Grid, dt: float) -> None:
    """One explicit update of a grid's fields and particles (in place)."""
    rho = grid.fields["density"]
    # Six-point Laplacian with periodic wrap (cheap vectorised diffusion).
    lap = -6.0 * rho
    for axis in range(3):
        lap += np.roll(rho, 1, axis=axis) + np.roll(rho, -1, axis=axis)
    dm = grid.fields["dark_matter_density"]
    rho_new = rho + dt * (0.05 * lap + 0.02 * (dm / 5.0 - rho))
    np.clip(rho_new, 0.01, None, out=rho_new)
    grid.fields["density"] = rho_new
    grid.fields["temperature"] = 1e4 * rho_new ** (2.0 / 3.0)
    grid.fields["internal_energy"] = 1.5 * grid.fields["temperature"]
    grid.fields["total_energy"] = grid.fields["internal_energy"] + 0.1
    for axis, name in enumerate(("velocity_x", "velocity_y", "velocity_z")):
        grid.fields[name] = 0.9 * grid.fields[name] - 0.1 * np.gradient(
            rho_new, axis=axis
        )

    p = grid.particles
    if len(p):
        # Monopole kick toward the grid's densest cell.
        peak = np.unravel_index(np.argmax(rho_new), rho_new.shape)
        target = grid.left_edge + (np.array(peak) + 0.5) * grid.cell_width
        delta = target - p.positions
        dist2 = (delta**2).sum(axis=1, keepdims=True) + 1e-4
        p.velocities += dt * 0.1 * delta / dist2
        p.positions += dt * p.velocities
        np.mod(p.positions, 1.0, out=p.positions)  # periodic domain
        p.attributes[:, 0] += dt  # ages accumulate: attribute data changes


def _rehome_particles(hierarchy: GridHierarchy) -> None:
    """Move every particle to the finest grid containing its position."""
    everything = ParticleSet.concat(
        [g.particles for g in hierarchy.grids()]
    )
    for g in hierarchy.grids():
        g.particles = ParticleSet()
    if len(everything) == 0:
        return
    # Deepest-first so fine grids claim their particles before coarse ones.
    remaining = everything
    for grid in sorted(hierarchy.grids(), key=lambda g: -g.level):
        if len(remaining) == 0:
            break
        mask = grid.contains_points(remaining.positions)
        if mask.any():
            grid.particles = ParticleSet.concat(
                [grid.particles, remaining.select(mask)]
            )
            remaining = remaining.select(~mask)
    if len(remaining):
        # Positions exactly on the upper domain boundary wrap to the root.
        root = hierarchy.root
        root.particles = ParticleSet.concat([root.particles, remaining])


def evolve_hierarchy(
    hierarchy: GridHierarchy,
    dt: float = 0.1,
    *,
    comm=None,
    my_cells: int | None = None,
) -> None:
    """Advance every grid one step and re-home particles.

    When ``comm`` is given, charges compute time for ``my_cells`` cell
    updates (the cells this rank owns) through the machine model --
    the simulation structure itself is kept globally consistent.
    """
    for grid in hierarchy.grids():
        evolve_grid(grid, dt)
    _rehome_particles(hierarchy)
    if comm is not None:
        cells = my_cells if my_cells is not None else hierarchy.total_cells()
        comm.compute(comm.machine.compute_time(cells * FLOPS_PER_CELL))
