"""AMR cosmology substrate: grids, particles, hierarchy, refinement, solver."""

from .fields import BARYON_FIELDS, FIELD_DTYPE, FieldSet
from .grid import Grid
from .hierarchy import GridHierarchy
from .initial_conditions import (
    gaussian_random_field,
    make_initial_conditions,
    populate_grid_fields,
)
from .load_balance import assign_grids_lpt, assign_grids_round_robin, load_imbalance
from .particles import N_ATTRIBUTES, PARTICLE_ARRAYS, ParticleSet
from .partition import (
    BlockPartition,
    block_bounds,
    partition_particles,
    processor_grid,
)
from .refinement import (
    REFINE_FACTOR,
    cluster_flags,
    derefine_hierarchy,
    flag_cells,
    refine_grid,
    refine_hierarchy,
)
from .solver import FLOPS_PER_CELL, evolve_grid, evolve_hierarchy

__all__ = [
    "BARYON_FIELDS",
    "FIELD_DTYPE",
    "FieldSet",
    "Grid",
    "GridHierarchy",
    "ParticleSet",
    "PARTICLE_ARRAYS",
    "N_ATTRIBUTES",
    "gaussian_random_field",
    "make_initial_conditions",
    "populate_grid_fields",
    "assign_grids_lpt",
    "assign_grids_round_robin",
    "load_imbalance",
    "BlockPartition",
    "block_bounds",
    "partition_particles",
    "processor_grid",
    "REFINE_FACTOR",
    "cluster_flags",
    "flag_cells",
    "refine_grid",
    "refine_hierarchy",
    "derefine_hierarchy",
    "FLOPS_PER_CELL",
    "evolve_grid",
    "evolve_hierarchy",
]
