"""Adaptive mesh refinement: flagging and grid generation.

Cells whose (baryon + dark-matter) density exceeds a threshold are flagged;
flagged regions are clustered into rectangular patches by a simplified
Berger--Rigoutsos algorithm (recursive bisection of inefficient bounding
boxes); each patch becomes a child grid at twice the spatial resolution,
with fields interpolated from the parent and the parent's particles inside
the patch moved down (ENZO keeps particles on the finest containing grid).
"""

from __future__ import annotations

import numpy as np

from .grid import Grid
from .hierarchy import GridHierarchy
from .initial_conditions import populate_grid_fields  # noqa: F401 (re-export convenience)

__all__ = ["flag_cells", "cluster_flags", "refine_grid", "refine_hierarchy",
           "derefine_hierarchy", "REFINE_FACTOR"]

REFINE_FACTOR = 2


def flag_cells(grid: Grid, overdensity_threshold: float) -> np.ndarray:
    """Boolean mask of cells needing refinement."""
    return grid.fields["density"] > overdensity_threshold


def cluster_flags(
    flags: np.ndarray,
    *,
    min_efficiency: float = 0.15,
    min_cells: int = 8,
    max_boxes: int = 4096,
    max_box_cells: int | None = 16384,
) -> list[tuple[tuple[int, ...], tuple[int, ...]]]:
    """Cluster flagged cells into boxes (simplified Berger--Rigoutsos).

    Returns ``(lo, hi)`` cell-index boxes (hi exclusive).  A box is accepted
    when its flagged fraction reaches ``min_efficiency`` or it cannot be
    split further; otherwise it is bisected across its longest axis at the
    flag-signature minimum.  ``max_box_cells`` caps box volume (ENZO's
    MaximumSubgridSize): oversized boxes are split even when efficient,
    which keeps grids balanceable across processors.
    """
    boxes: list[tuple[tuple[int, ...], tuple[int, ...]]] = []
    if not flags.any():
        return boxes
    work = [_bounding_box(flags)]
    while work and len(boxes) + len(work) <= max_boxes:
        lo, hi = work.pop()
        sub = flags[tuple(slice(a, b) for a, b in zip(lo, hi))]
        total = sub.sum()
        if total == 0:
            continue
        volume = sub.size
        widths = [b - a for a, b in zip(lo, hi)]
        small_enough = max_box_cells is None or volume <= max_box_cells
        efficient = total / volume >= min_efficiency or max(widths) <= min_cells
        if efficient and small_enough:
            boxes.append((lo, hi))
            continue
        axis = int(np.argmax(widths))
        if efficient:
            # Splitting only for size: bisect (a dense box has a flat
            # signature, where the signature-minimum cut would shave
            # slivers and never converge).
            n = sub.shape[axis]
            cut = n // 2 if n >= 2 * min_cells else None
        else:
            cut = _best_cut(sub, axis, min_cells)
        if cut is None:
            boxes.append((lo, hi))
            continue
        lo1, hi1 = list(lo), list(hi)
        lo2, hi2 = list(lo), list(hi)
        hi1[axis] = lo[axis] + cut
        lo2[axis] = lo[axis] + cut
        for piece in ((tuple(lo1), tuple(hi1)), (tuple(lo2), tuple(hi2))):
            shrunk = _shrink_to_flags(flags, piece)
            if shrunk is not None:
                work.append(shrunk)
    boxes.extend(b for b in work)  # budget exhausted: accept remainder as-is
    return sorted(boxes)


def _bounding_box(flags: np.ndarray):
    idx = np.nonzero(flags)
    lo = tuple(int(a.min()) for a in idx)
    hi = tuple(int(a.max()) + 1 for a in idx)
    return lo, hi


def _shrink_to_flags(flags: np.ndarray, box):
    lo, hi = box
    sub = flags[tuple(slice(a, b) for a, b in zip(lo, hi))]
    if not sub.any():
        return None
    slo, shi = _bounding_box(sub)
    return (
        tuple(a + s for a, s in zip(lo, slo)),
        tuple(a + s for a, s in zip(lo, shi)),
    )


def _best_cut(sub: np.ndarray, axis: int, min_cells: int):
    """Cut index along ``axis`` at the signature minimum (None if too thin)."""
    n = sub.shape[axis]
    if n < 2 * min_cells:
        return None
    signature = sub.sum(axis=tuple(d for d in range(sub.ndim) if d != axis))
    interior = signature[min_cells : n - min_cells + 1]
    if len(interior) == 0:
        return None
    return min_cells + int(np.argmin(interior))


def refine_grid(
    hierarchy: GridHierarchy,
    grid: Grid,
    *,
    overdensity_threshold: float,
    min_efficiency: float = 0.15,
    max_boxes: int = 4096,
    max_box_cells: int | None = 16384,
) -> list[Grid]:
    """Create child grids under ``grid`` where it is over-dense."""
    flags = flag_cells(grid, overdensity_threshold)
    children: list[Grid] = []
    for lo, hi in cluster_flags(
        flags,
        min_efficiency=min_efficiency,
        max_boxes=max_boxes,
        max_box_cells=max_box_cells,
    ):
        cw = grid.cell_width
        left = grid.left_edge + np.array(lo) * cw
        right = grid.left_edge + np.array(hi) * cw
        dims = tuple((h - l) * REFINE_FACTOR for l, h in zip(lo, hi))
        child = Grid(
            id=hierarchy.new_grid_id(),
            level=grid.level + 1,
            dims=dims,
            left_edge=left,
            right_edge=right,
            parent_id=grid.id,
        )
        _interpolate_fields(grid, child, lo, hi)
        _move_particles_down(grid, child)
        hierarchy.add_grid(child)
        children.append(child)
    return children


def _interpolate_fields(parent: Grid, child: Grid, lo, hi) -> None:
    """Piecewise-constant prolongation of parent fields onto the child."""
    sel = tuple(slice(a, b) for a, b in zip(lo, hi))
    for name, arr in parent.fields.items():
        coarse = arr[sel]
        fine = coarse
        for axis in range(3):
            fine = np.repeat(fine, REFINE_FACTOR, axis=axis)
        child.fields[name] = fine


def _move_particles_down(parent: Grid, child: Grid) -> None:
    """Particles inside the child's domain belong to the child."""
    mask = child.contains_points(parent.particles.positions)
    if mask.any():
        child.particles = parent.particles.select(mask)
        parent.particles = parent.particles.select(~mask)


def refine_hierarchy(
    hierarchy: GridHierarchy,
    *,
    overdensity_threshold: float,
    max_level: int = 4,
    min_efficiency: float = 0.15,
    max_boxes: int = 4096,
    max_box_cells: int | None = 16384,
) -> list[Grid]:
    """Refine every current leaf grid below ``max_level``; returns new grids."""
    new: list[Grid] = []
    for grid in list(hierarchy.grids()):
        if grid.child_ids or grid.level >= max_level:
            continue
        new.extend(
            refine_grid(
                hierarchy,
                grid,
                overdensity_threshold=overdensity_threshold,
                min_efficiency=min_efficiency,
                max_boxes=max_boxes,
                max_box_cells=max_box_cells,
            )
        )
    return new


def derefine_hierarchy(
    hierarchy: GridHierarchy,
    *,
    overdensity_threshold: float,
    keep_fraction: float = 0.05,
) -> list[int]:
    """Remove leaf subgrids whose region no longer needs refinement.

    A leaf grid is dropped when fewer than ``keep_fraction`` of its cells
    remain flagged; its particles move back to the parent.  Returns the
    removed grid ids.  (Real SAMR codes rebuild each level every few steps;
    this is the simplest faithful equivalent and keeps hierarchies from
    growing monotonically across long runs.)
    """
    removed: list[int] = []
    for grid in list(hierarchy.grids()):
        if grid.id == hierarchy.root_id or grid.child_ids:
            continue
        if grid.id not in hierarchy:
            continue
        flagged = flag_cells(grid, overdensity_threshold).mean()
        if flagged >= keep_fraction:
            continue
        parent = hierarchy[grid.parent_id]
        if len(grid.particles):
            from .particles import ParticleSet

            parent.particles = ParticleSet.concat(
                [parent.particles, grid.particles]
            )
        removed.extend(hierarchy.remove_subtree(grid.id))
    return removed
