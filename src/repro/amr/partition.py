"""Domain decomposition: (Block, Block, Block) grids + irregular particles.

The paper's Figure 4: baryon-field 3-D arrays are partitioned (Block, Block,
Block) over a 3-D processor grid; the 1-D particle arrays are partitioned by
which processor's sub-domain each particle's *position* falls in -- regular
versus irregular access patterns, the axis of the whole study.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from .grid import Grid
from .particles import ParticleSet

__all__ = [
    "processor_grid",
    "block_bounds",
    "BlockPartition",
    "partition_particles",
]


@lru_cache(maxsize=None)
def processor_grid(nprocs: int) -> tuple[int, int, int]:
    """Factor ``nprocs`` into a near-cubic 3-D processor grid (cached).

    Mirrors ``MPI_Dims_create``: dimensions as equal as possible, sorted
    descending.  Cached: ``BlockPartition.pgrid`` hits this on every
    ``coords_of``/``block_of`` and the divisor scan is O(nprocs).
    """
    if nprocs < 1:
        raise ValueError("nprocs must be >= 1")
    best = (nprocs, 1, 1)
    best_score = None
    for px in range(1, nprocs + 1):
        if nprocs % px:
            continue
        rest = nprocs // px
        for py in range(1, rest + 1):
            if rest % py:
                continue
            pz = rest // py
            dims = tuple(sorted((px, py, pz), reverse=True))
            score = dims[0] - dims[2]  # spread; smaller is more cubic
            if best_score is None or score < best_score:
                best, best_score = dims, score
    return best


def block_bounds(n: int, parts: int, index: int) -> tuple[int, int]:
    """Cells ``[lo, hi)`` of block ``index`` when ``n`` cells split ``parts`` ways."""
    if not 0 <= index < parts:
        raise ValueError(f"index {index} out of range [0, {parts})")
    base, rem = divmod(n, parts)
    lo = index * base + min(index, rem)
    hi = lo + base + (1 if index < rem else 0)
    return lo, hi


@dataclass(frozen=True)
class BlockPartition:
    """The (Block, Block, Block) decomposition of one grid over ``nprocs``.

    ``pgrid_override`` fixes the processor grid explicitly (used when a
    small grid cannot be split as finely as the communicator is wide);
    otherwise the near-cubic :func:`processor_grid` factorisation applies.
    """

    dims: tuple[int, int, int]  # global cell dims of the partitioned grid
    nprocs: int
    pgrid_override: tuple[int, int, int] | None = None

    @property
    def pgrid(self) -> tuple[int, int, int]:
        if self.pgrid_override is not None:
            return self.pgrid_override
        return processor_grid(self.nprocs)

    @classmethod
    def for_grid(cls, dims: tuple[int, int, int], nprocs: int) -> "BlockPartition":
        """A partition that never splits an axis finer than its cells.

        The resulting partition may use fewer ranks than ``nprocs`` (its
        ``nprocs`` attribute says how many actually receive a piece).
        """
        ideal = processor_grid(nprocs)
        # Axes sorted by extent get the larger factors.
        axis_order = sorted(range(3), key=lambda a: -dims[a])
        clamped = [1, 1, 1]
        for factor, axis in zip(sorted(ideal, reverse=True), axis_order):
            clamped[axis] = min(factor, dims[axis])
        used = int(np.prod(clamped))
        return cls(tuple(dims), used, pgrid_override=tuple(clamped))

    def coords_of(self, rank: int) -> tuple[int, int, int]:
        """Processor-grid coordinates of ``rank`` (row-major)."""
        if not 0 <= rank < self.nprocs:
            raise ValueError(f"rank {rank} out of range")
        return tuple(int(c) for c in np.unravel_index(rank, self.pgrid))

    def block_of(self, rank: int) -> tuple[tuple[int, ...], tuple[int, ...]]:
        """``(starts, subsizes)`` of this rank's cell block in the global grid."""
        coords = self.coords_of(rank)
        starts, sizes = [], []
        for axis in range(3):
            lo, hi = block_bounds(self.dims[axis], self.pgrid[axis], coords[axis])
            starts.append(lo)
            sizes.append(hi - lo)
        return tuple(starts), tuple(sizes)

    def slices_of(self, rank: int) -> tuple[slice, slice, slice]:
        starts, sizes = self.block_of(rank)
        return tuple(slice(s, s + n) for s, n in zip(starts, sizes))

    def edges_of(self, rank: int, grid: Grid) -> tuple[np.ndarray, np.ndarray]:
        """Physical sub-domain boundaries of ``rank`` within ``grid``."""
        starts, sizes = self.block_of(rank)
        cw = grid.cell_width
        left = grid.left_edge + np.array(starts) * cw
        right = left + np.array(sizes) * cw
        return left, right

    def owner_of_cells(self, cells: np.ndarray) -> np.ndarray:
        """Rank owning each (N, 3) integer cell coordinate."""
        pgrid = self.pgrid
        coords = np.empty((len(cells), 3), dtype=np.int64)
        for axis in range(3):
            bounds = np.array(
                [block_bounds(self.dims[axis], pgrid[axis], i)[1]
                 for i in range(pgrid[axis])]
            )
            coords[:, axis] = np.searchsorted(bounds, cells[:, axis], side="right")
        return np.ravel_multi_index(
            (coords[:, 0], coords[:, 1], coords[:, 2]), pgrid
        )

    def extract(self, grid: Grid, rank: int) -> Grid:
        """Rank ``rank``'s piece of ``grid`` as a standalone grid patch.

        Fields are sliced (Block, Block, Block); particles are selected by
        position (the irregular pattern).
        """
        starts, sizes = self.block_of(rank)
        left, right = self.edges_of(rank, grid)
        piece = Grid(
            id=grid.id,
            level=grid.level,
            dims=sizes,
            left_edge=left,
            right_edge=right,
            parent_id=grid.parent_id,
        )
        sel = self.slices_of(rank)
        for name, arr in grid.fields.items():
            piece.fields[name] = np.ascontiguousarray(arr[sel])
        mask = _particle_mask(grid, self, rank)
        piece.particles = grid.particles.select(mask)
        return piece

    def reassemble(self, grid_template: Grid, pieces: list[Grid]) -> Grid:
        """Combine per-rank pieces back into a single grid.

        Particles are sorted by ID, matching the paper: "the particles and
        their associated data arrays are sorted in the original order in
        which the particles were initially read".
        """
        if len(pieces) != self.nprocs:
            raise ValueError(f"need {self.nprocs} pieces, got {len(pieces)}")
        combined = Grid(
            id=grid_template.id,
            level=grid_template.level,
            dims=self.dims,
            left_edge=grid_template.left_edge.copy(),
            right_edge=grid_template.right_edge.copy(),
            parent_id=grid_template.parent_id,
        )
        for rank, piece in enumerate(pieces):
            sel = self.slices_of(rank)
            for name in combined.fields:
                combined.fields[name][sel] = piece.fields[name]
        combined.particles = ParticleSet.concat(
            [p.particles for p in pieces]
        ).sort_by_id()
        return combined


def _particle_mask(grid: Grid, part: BlockPartition, rank: int) -> np.ndarray:
    """Which of ``grid``'s particles land in ``rank``'s sub-domain."""
    if len(grid.particles) == 0:
        return np.zeros(0, dtype=bool)
    cells = grid.cell_of(grid.particles.positions)
    owners = part.owner_of_cells(cells)
    return owners == rank


def partition_particles(
    grid: Grid, part: BlockPartition
) -> list[ParticleSet]:
    """Split a grid's particles by owning rank (irregular partition)."""
    if len(grid.particles) == 0:
        return [ParticleSet() for _ in range(part.nprocs)]
    cells = grid.cell_of(grid.particles.positions)
    owners = part.owner_of_cells(cells)
    return [grid.particles.select(owners == r) for r in range(part.nprocs)]
