"""Subgrid-to-processor assignment (Lan/Taylor/Bryan dynamic load balancing).

Two policies the paper's workflow uses:

* :func:`assign_grids_lpt` -- longest-processing-time greedy on data size,
  the moral equivalent of the dynamic load balancer of refs [5, 6]; used
  when distributing freshly refined subgrids;
* :func:`assign_grids_round_robin` -- "every processor reads the subgrids in
  a round-robin manner", the paper's restart-read policy.
"""

from __future__ import annotations

import heapq
from typing import Sequence

from .grid import Grid

__all__ = ["assign_grids_lpt", "assign_grids_round_robin", "load_imbalance"]


def assign_grids_lpt(grids: Sequence[Grid], nprocs: int) -> dict[int, int]:
    """Greedy LPT: heaviest grid to the least-loaded processor.

    Returns ``{grid_id: rank}``.  Deterministic: ties broken by rank, grids
    pre-sorted by (descending size, id).
    """
    if nprocs < 1:
        raise ValueError("nprocs must be >= 1")
    heap = [(0, rank) for rank in range(nprocs)]
    heapq.heapify(heap)
    out: dict[int, int] = {}
    for grid in sorted(grids, key=lambda g: (-g.data_nbytes, g.id)):
        load, rank = heapq.heappop(heap)
        out[grid.id] = rank
        heapq.heappush(heap, (load + grid.data_nbytes, rank))
    return out


def assign_grids_round_robin(grids: Sequence[Grid], nprocs: int) -> dict[int, int]:
    """Grid ``i`` (in id order) goes to rank ``i % nprocs``."""
    if nprocs < 1:
        raise ValueError("nprocs must be >= 1")
    ordered = sorted(grids, key=lambda g: g.id)
    return {g.id: i % nprocs for i, g in enumerate(ordered)}


def load_imbalance(
    grids: Sequence[Grid], assignment: dict[int, int], nprocs: int
) -> float:
    """max/mean per-rank byte load (1.0 = perfectly balanced)."""
    loads = [0] * nprocs
    for g in grids:
        loads[assignment[g.id]] += g.data_nbytes
    mean = sum(loads) / nprocs
    if mean == 0:
        return 1.0
    return max(loads) / mean
