"""Particle data: the 1-D arrays of one grid.

The paper: "particle ID, particle positions, particle velocities, particle
mass, and other particle attributes" -- a structure-of-arrays partitioned
*irregularly* (by which grid sub-domain each particle's position falls in).
"""

from __future__ import annotations

import numpy as np

__all__ = ["ParticleSet", "PARTICLE_ARRAYS", "N_ATTRIBUTES"]

N_ATTRIBUTES = 2  # e.g. creation time + metallicity in ENZO star particles

#: Canonical access order (the paper's fixed array order metadata).
PARTICLE_ARRAYS = (
    "particle_id",
    "position_x",
    "position_y",
    "position_z",
    "velocity_x",
    "velocity_y",
    "velocity_z",
    "mass",
    "attribute_0",
    "attribute_1",
)


class ParticleSet:
    """A structure-of-arrays particle container."""

    def __init__(
        self,
        ids: np.ndarray | None = None,
        positions: np.ndarray | None = None,
        velocities: np.ndarray | None = None,
        mass: np.ndarray | None = None,
        attributes: np.ndarray | None = None,
    ):
        self.ids = (
            np.asarray(ids, dtype=np.int64) if ids is not None
            else np.empty(0, dtype=np.int64)
        )
        n = len(self.ids)
        self.positions = (
            np.asarray(positions, dtype=np.float64)
            if positions is not None
            else np.zeros((n, 3))
        )
        self.velocities = (
            np.asarray(velocities, dtype=np.float64)
            if velocities is not None
            else np.zeros((n, 3))
        )
        self.mass = (
            np.asarray(mass, dtype=np.float64) if mass is not None else np.zeros(n)
        )
        self.attributes = (
            np.asarray(attributes, dtype=np.float64)
            if attributes is not None
            else np.zeros((n, N_ATTRIBUTES))
        )
        self._validate()

    def _validate(self) -> None:
        n = len(self.ids)
        if self.positions.shape != (n, 3):
            raise ValueError(f"positions shape {self.positions.shape} != ({n}, 3)")
        if self.velocities.shape != (n, 3):
            raise ValueError(f"velocities shape {self.velocities.shape} != ({n}, 3)")
        if self.mass.shape != (n,):
            raise ValueError(f"mass shape {self.mass.shape} != ({n},)")
        if self.attributes.shape != (n, N_ATTRIBUTES):
            raise ValueError(
                f"attributes shape {self.attributes.shape} != ({n}, {N_ATTRIBUTES})"
            )

    def __len__(self) -> int:
        return len(self.ids)

    @property
    def nbytes(self) -> int:
        return (
            self.ids.nbytes
            + self.positions.nbytes
            + self.velocities.nbytes
            + self.mass.nbytes
            + self.attributes.nbytes
        )

    # -- array-of-arrays view (the I/O layer's unit of access) -------------

    def array(self, name: str) -> np.ndarray:
        """The named 1-D array, in the canonical PARTICLE_ARRAYS naming."""
        if name == "particle_id":
            return self.ids
        if name.startswith("position_"):
            return self.positions[:, "xyz".index(name[-1])]
        if name.startswith("velocity_"):
            return self.velocities[:, "xyz".index(name[-1])]
        if name == "mass":
            return self.mass
        if name.startswith("attribute_"):
            return self.attributes[:, int(name.split("_")[1])]
        raise KeyError(name)

    @classmethod
    def from_arrays(cls, arrays: dict[str, np.ndarray]) -> "ParticleSet":
        """Rebuild from the canonical named 1-D arrays."""
        n = len(arrays["particle_id"])
        pos = np.column_stack([arrays[f"position_{c}"] for c in "xyz"])
        vel = np.column_stack([arrays[f"velocity_{c}"] for c in "xyz"])
        attrs = np.column_stack(
            [arrays[f"attribute_{i}"] for i in range(N_ATTRIBUTES)]
        )
        if n == 0:
            pos = pos.reshape(0, 3)
            vel = vel.reshape(0, 3)
            attrs = attrs.reshape(0, N_ATTRIBUTES)
        return cls(arrays["particle_id"], pos, vel, arrays["mass"], attrs)

    # -- manipulation -----------------------------------------------------------

    def select(self, mask_or_index) -> "ParticleSet":
        """Subset by boolean mask or index array."""
        return ParticleSet(
            self.ids[mask_or_index],
            self.positions[mask_or_index],
            self.velocities[mask_or_index],
            self.mass[mask_or_index],
            self.attributes[mask_or_index],
        )

    def sort_by_id(self) -> "ParticleSet":
        """Return a copy ordered by particle ID."""
        order = np.argsort(self.ids, kind="stable")
        return self.select(order)

    @classmethod
    def concat(cls, parts: list["ParticleSet"]) -> "ParticleSet":
        parts = [p for p in parts if len(p) > 0]
        if not parts:
            return cls()
        return cls(
            np.concatenate([p.ids for p in parts]),
            np.concatenate([p.positions for p in parts]),
            np.concatenate([p.velocities for p in parts]),
            np.concatenate([p.mass for p in parts]),
            np.concatenate([p.attributes for p in parts]),
        )

    def copy(self) -> "ParticleSet":
        return ParticleSet(
            self.ids.copy(),
            self.positions.copy(),
            self.velocities.copy(),
            self.mass.copy(),
            self.attributes.copy(),
        )

    def equal(self, other: "ParticleSet") -> bool:
        """Bit-exact equality, order-sensitive."""
        return (
            np.array_equal(self.ids, other.ids)
            and np.array_equal(self.positions, other.positions)
            and np.array_equal(self.velocities, other.velocities)
            and np.array_equal(self.mass, other.mass)
            and np.array_equal(self.attributes, other.attributes)
        )

    def equal_as_sets(self, other: "ParticleSet") -> bool:
        """Equality up to particle order (compare sorted by ID)."""
        if len(self) != len(other):
            return False
        return self.sort_by_id().equal(other.sort_by_id())
