"""Baryon fields: the 3-D arrays every ENZO grid carries.

The paper names them explicitly: "density, energy, velocity X, velocity Y,
velocity Z, temperature, dark matter, etc." -- each a 3-D array uniformly
sampling the grid's domain.  :class:`FieldSet` is an ordered mapping of
field name to array; the fixed order matters because the paper's metadata
analysis ("the access order of arrays") exploits it.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

__all__ = ["BARYON_FIELDS", "FIELD_DTYPE", "FieldSet"]

#: Fixed access order used by all I/O strategies (the paper's metadata).
BARYON_FIELDS = (
    "density",
    "total_energy",
    "velocity_x",
    "velocity_y",
    "velocity_z",
    "temperature",
    "dark_matter_density",
    "internal_energy",
)

FIELD_DTYPE = np.dtype(np.float64)


class FieldSet:
    """The baryon-field arrays of one grid, in canonical order."""

    def __init__(self, dims: tuple[int, int, int], names=BARYON_FIELDS):
        self.dims = tuple(int(d) for d in dims)
        if len(self.dims) != 3 or any(d < 1 for d in self.dims):
            raise ValueError(f"bad grid dims {dims}")
        self.names = tuple(names)
        self._data = {
            name: np.zeros(self.dims, dtype=FIELD_DTYPE) for name in self.names
        }

    def __getitem__(self, name: str) -> np.ndarray:
        return self._data[name]

    def __setitem__(self, name: str, value: np.ndarray) -> None:
        if name not in self._data:
            raise KeyError(f"unknown field {name!r}")
        value = np.asarray(value, dtype=FIELD_DTYPE)
        if value.shape != self.dims:
            raise ValueError(f"field shape {value.shape} != dims {self.dims}")
        self._data[name] = value

    def __iter__(self) -> Iterator[str]:
        return iter(self.names)

    def __contains__(self, name: str) -> bool:
        return name in self._data

    @property
    def nbytes(self) -> int:
        """Total bytes across all fields."""
        return sum(a.nbytes for a in self._data.values())

    def items(self):
        """(name, array) pairs in canonical order."""
        return ((n, self._data[n]) for n in self.names)

    def copy(self) -> "FieldSet":
        out = FieldSet(self.dims, self.names)
        for n in self.names:
            out._data[n] = self._data[n].copy()
        return out

    def allclose(self, other: "FieldSet", **kw) -> bool:
        return self.names == other.names and all(
            np.allclose(self._data[n], other._data[n], **kw) for n in self.names
        )

    def equal(self, other: "FieldSet") -> bool:
        """Bit-exact equality (used by checkpoint round-trip tests)."""
        return self.names == other.names and all(
            np.array_equal(self._data[n], other._data[n]) for n in self.names
        )
