"""Simulated parallel file systems.

* :class:`BlockStore` / :class:`StoredFile` -- real byte storage;
* :class:`FileSystem` -- the API the I/O libraries program against
  (zero-cost timing, used in unit tests);
* :class:`StripedServerFS` -- striped client/server model with the
  contention mechanisms of GPFS and PVFS (and, degenerately, XFS);
* :class:`LocalDiskFS` -- node-private disks (the paper's 4th experiment);
* :class:`LustreFS` -- Lustre-like OST/MDS model with per-file layouts;
* :class:`StripeLayout` -- striping arithmetic.
"""

from .base import (
    FAULT_MODES,
    FAULT_OPS,
    FaultSpec,
    FileSystem,
    FSCounters,
    InjectedIOError,
    LRUCache,
    TornWriteError,
)
from .blockstore import BlockStore, FileExists, FileNotFound, StoredFile
from .localfs import LocalDiskFS
from .lustre import LustreFS, LustreStripeLayout
from .striped import IOServer, StripedServerFS, coalesce_runs
from .striping import Chunk, StripeLayout

__all__ = [
    "FileSystem",
    "FSCounters",
    "LRUCache",
    "InjectedIOError",
    "TornWriteError",
    "FaultSpec",
    "FAULT_OPS",
    "FAULT_MODES",
    "BlockStore",
    "StoredFile",
    "FileNotFound",
    "FileExists",
    "LocalDiskFS",
    "LustreFS",
    "LustreStripeLayout",
    "StripedServerFS",
    "IOServer",
    "coalesce_runs",
    "Chunk",
    "StripeLayout",
]
