"""File-system abstraction shared by every parallel-file-system model.

A :class:`FileSystem` answers two questions for every operation: what bytes
(via the :class:`~repro.pfs.blockstore.BlockStore`, which stores real data)
and when it completes (via the subclass's timing model).  The layers above
(MPI-IO's ADIO binding, the HDF4/HDF5 libraries) only ever see this API.

Also here: :class:`LRUCache`, the extent cache used by server models for the
read-caching effects the paper observes on PVFS.
"""

from __future__ import annotations

import random
from collections import OrderedDict
from contextlib import contextmanager
from dataclasses import dataclass, field

from .blockstore import BlockStore

__all__ = [
    "FileSystem",
    "FSCounters",
    "FaultSpec",
    "LRUCache",
    "InjectedIOError",
    "TornWriteError",
    "FAULT_MODES",
    "FAULT_OPS",
]


@dataclass
class FSCounters:
    """Operation/byte counters, reported by the benchmark harness."""

    reads: int = 0
    writes: int = 0
    bytes_read: int = 0
    bytes_written: int = 0
    opens: int = 0
    metadata_ops: int = 0
    recoveries: int = 0

    def reset(self) -> None:
        self.reads = self.writes = 0
        self.bytes_read = self.bytes_written = 0
        self.opens = self.metadata_ops = 0
        self.recoveries = 0


class InjectedIOError(OSError):
    """Raised by a file system when a scheduled fault fires."""


class TornWriteError(InjectedIOError):
    """A write fault that persisted only a prefix of the request.

    Models a crash mid-write: part of the data reaches the store before
    the error surfaces, so the file holds a torn (partially-updated)
    region that only checksum verification can detect.
    """


FAULT_OPS = ("read", "write", "meta")
FAULT_MODES = ("oneshot", "persistent", "probabilistic", "torn")


@dataclass
class FaultSpec:
    """One armed fault and its firing discipline.

    Modes:

    - ``oneshot``: fire on the first match (after ``after`` skipped
      matches), then disarm -- the pre-existing behaviour.
    - ``persistent``: fire on *every* match; models a dead device or a
      permissions failure that never heals.
    - ``probabilistic``: fire on each match with ``probability``, using a
      private ``random.Random(seed)`` stream so runs are reproducible.
    - ``torn`` (writes only): persist the first ``torn_fraction`` of the
      request's bytes, then raise :class:`TornWriteError`; disarms after
      firing like ``oneshot``.

    ``min_nbytes`` restricts data faults to requests at least that large
    (useful for hitting aggregated collective writes while letting the
    small independent fallback writes through).
    """

    op: str
    path_substring: str = ""
    after: int = 0
    mode: str = "oneshot"
    probability: float = 1.0
    min_nbytes: int = 0
    torn_fraction: float = 0.5
    seed: int = 0
    fired: int = 0
    _skips_left: int = field(init=False, default=0, repr=False)
    _rng: random.Random = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.op not in FAULT_OPS:
            raise ValueError(f"unknown op {self.op!r} (expected one of {FAULT_OPS})")
        if self.mode not in FAULT_MODES:
            raise ValueError(
                f"unknown fault mode {self.mode!r} (expected one of {FAULT_MODES})"
            )
        if self.mode == "torn" and self.op != "write":
            raise ValueError("torn faults only apply to op='write'")
        if self.after < 0:
            raise ValueError("after must be >= 0")
        if not 0.0 < self.probability <= 1.0:
            raise ValueError("probability must be in (0, 1]")
        if self.min_nbytes < 0:
            raise ValueError("min_nbytes must be >= 0")
        if not 0.0 <= self.torn_fraction < 1.0:
            raise ValueError("torn_fraction must be in [0, 1)")
        self._skips_left = self.after
        self._rng = random.Random(self.seed)

    def matches(self, op: str, path: str, nbytes: int) -> bool:
        return (
            op == self.op
            and self.path_substring in path
            and nbytes >= self.min_nbytes
        )

    def should_fire(self) -> bool:
        """Consume one match; True when the fault fires on it."""
        if self._skips_left > 0:
            self._skips_left -= 1
            return False
        if self.mode == "probabilistic" and self._rng.random() >= self.probability:
            return False
        self.fired += 1
        return True

    @property
    def exhausted(self) -> bool:
        return self.mode in ("oneshot", "torn") and self.fired > 0


class FileSystem:
    """Base class: data path through the block store, timing via hooks.

    Subclasses override :meth:`_service_read` / :meth:`_service_write` /
    :meth:`_service_meta` to implement their performance model.  The base
    implementations are zero-cost (an "infinitely fast" file system), which
    is what the unit tests of higher layers use.

    Fault injection: :meth:`inject_fault` arms :class:`FaultSpec` failures
    (one-shot, persistent, probabilistic, or torn-write) so tests can
    verify that I/O errors surface cleanly through every library layer
    (they become :class:`~repro.sim.errors.RankFailedError` at the engine)
    and that the resilience layer recovers from them.
    """

    def __init__(self, name: str = "nullfs", store: BlockStore | None = None):
        self.name = name
        self.store = store if store is not None else BlockStore()
        self.counters = FSCounters()
        self._faults: list[FaultSpec] = []
        self.background_flush_active = False

    @contextmanager
    def background_flush(self):
        """Mark I/O issued inside the block as background-flush traffic.

        The async progress engine books its drain on a timeline that runs
        ahead of the issuing rank's clock.  A performance model whose
        client-side resources are shared with message passing must not let
        those future reservations head-of-line-block foreground traffic
        (a scalar busy-until device cannot interleave them), so models
        route background writes through a dedicated per-node flush channel
        instead.  Server-side resources stay shared: the flush still
        contends for disks and server CPUs like any other client.
        """
        prev = self.background_flush_active
        self.background_flush_active = True
        try:
            yield
        finally:
            self.background_flush_active = prev

    # -- fault injection -----------------------------------------------------

    def inject_fault(
        self,
        op: str,
        path_substring: str = "",
        *,
        after: int = 0,
        mode: str = "oneshot",
        probability: float = 1.0,
        min_nbytes: int = 0,
        torn_fraction: float = 0.5,
        seed: int = 0,
    ) -> FaultSpec:
        """Arm a fault; see :class:`FaultSpec` for the firing modes.

        ``op`` is "read", "write" or "meta"; the fault considers matching
        operations once ``after`` earlier matches have passed.  Unknown
        ``op``/``mode`` values and out-of-range parameters raise
        :class:`ValueError` immediately -- a silently ignored fault spec
        would make a fault-injection test vacuously pass.  Returns the
        armed spec so callers can inspect ``spec.fired``.
        """
        spec = FaultSpec(
            op=op,
            path_substring=path_substring,
            after=after,
            mode=mode,
            probability=probability,
            min_nbytes=min_nbytes,
            torn_fraction=torn_fraction,
            seed=seed,
        )
        self._faults.append(spec)
        return spec

    def clear_faults(self) -> None:
        """Disarm every fault (e.g. between test phases)."""
        self._faults.clear()

    def _check_fault(self, op: str, path: str, nbytes: int = 0) -> FaultSpec | None:
        """Raise if an armed non-torn fault fires; return a firing torn spec.

        Torn faults are returned instead of raised so :meth:`write` can
        persist the partial prefix before surfacing the error.
        """
        for spec in list(self._faults):
            if not spec.matches(op, path, nbytes):
                continue
            if not spec.should_fire():
                continue
            if spec.exhausted:
                self._faults.remove(spec)
            if spec.mode == "torn":
                return spec
            raise InjectedIOError(f"injected {op} fault on {path!r}")
        return None

    def _tear_write(self, spec: FaultSpec, path: str, offset: int, buf) -> None:
        """Persist the torn prefix of ``buf`` and raise TornWriteError."""
        n_keep = int(len(buf) * spec.torn_fraction)
        if n_keep > 0:
            f = self.store.open(path, create=True)
            f.write(offset, buf[:n_keep])
            self.counters.writes += 1
            self.counters.bytes_written += n_keep
        raise TornWriteError(
            f"injected torn write on {path!r}: {n_keep}/{len(buf)} bytes persisted"
        )

    def _tear_write_list(self, spec: FaultSpec, path: str, segments, buf) -> None:
        """Torn list-write: persist a prefix of the segment stream, then raise."""
        n_keep = int(len(buf) * spec.torn_fraction)
        if n_keep > 0:
            f = self.store.open(path, create=True)
            pos = 0
            for off, n in segments:
                if pos >= n_keep:
                    break
                take = min(n, n_keep - pos)
                f.write(off, buf[pos : pos + take])
                pos += take
            self.counters.writes += 1
            self.counters.bytes_written += n_keep
        raise TornWriteError(
            f"injected torn write on {path!r}: {n_keep}/{len(buf)} bytes persisted"
        )

    # -- recovery notification ------------------------------------------------

    def notify_recovery(
        self,
        path: str,
        kind: str,
        *,
        node: int = 0,
        time: float = 0.0,
        attempt: int = 0,
        nbytes: int = 0,
    ) -> None:
        """Report a resilience event (retry / recovered / degraded / ...).

        Counted in :attr:`FSCounters.recoveries` and forwarded to the
        :meth:`_service_recovery` hook, which tracing wraps so recovery
        shows up in the :class:`~repro.core.trace.IOTrace` alongside the
        I/O it rescued.
        """
        self.counters.recoveries += 1
        self._service_recovery(path, kind, node, time, attempt, nbytes)

    # -- namespace ------------------------------------------------------

    def create(self, path: str, *, node: int = 0, ready_time: float = 0.0) -> float:
        """Create or truncate ``path``; returns the completion time."""
        self._check_fault("meta", path)
        self.store.create(path)
        self.counters.opens += 1
        self.counters.metadata_ops += 1
        return self._service_meta("create", path, node, ready_time)

    def open(
        self, path: str, *, node: int = 0, ready_time: float = 0.0, create: bool = False
    ) -> float:
        """Open ``path`` (must exist unless ``create``); returns completion time."""
        self.store.open(path, create=create)
        self.counters.opens += 1
        self.counters.metadata_ops += 1
        return self._service_meta("open", path, node, ready_time)

    def delete(self, path: str, *, node: int = 0, ready_time: float = 0.0) -> float:
        self.store.delete(path)
        self.counters.metadata_ops += 1
        return self._service_meta("delete", path, node, ready_time)

    def exists(self, path: str) -> bool:
        return self.store.exists(path)

    def file_size(self, path: str) -> int:
        return self.store.open(path).size

    # -- data -------------------------------------------------------------

    def read(
        self, path: str, offset: int, nbytes: int, *, node: int = 0, ready_time: float = 0.0
    ) -> tuple[bytes, float]:
        """Read bytes; returns ``(data, completion_time)``."""
        self._check_fault("read", path, nbytes)
        f = self.store.open(path)
        data = f.read(offset, nbytes)
        self.counters.reads += 1
        self.counters.bytes_read += nbytes
        done = self._service_read(path, offset, nbytes, node, ready_time)
        return data, done

    def write(
        self,
        path: str,
        offset: int,
        data: bytes | bytearray | memoryview,
        *,
        node: int = 0,
        ready_time: float = 0.0,
    ) -> float:
        """Write bytes; returns the completion time."""
        buf = memoryview(data).cast("B")
        torn = self._check_fault("write", path, len(buf))
        if torn is not None:
            self._tear_write(torn, path, offset, buf)
        f = self.store.open(path, create=True)
        n = f.write(offset, data)
        self.counters.writes += 1
        self.counters.bytes_written += n
        return self._service_write(path, offset, n, node, ready_time)

    # -- list I/O ---------------------------------------------------------

    def read_list(
        self,
        path: str,
        segments: list[tuple[int, int]],
        *,
        node: int = 0,
        ready_time: float = 0.0,
    ) -> tuple[bytes, float]:
        """Read many (offset, nbytes) segments as ONE file-system request.

        This is PVFS list-I/O (Ching/Choudhary et al.): the request
        carries the whole access list, so the per-request software costs
        are paid once rather than per segment.  Returns the concatenated
        bytes and the completion time.  The base implementation simply
        loops; performance-model subclasses override the timing.
        """
        self._check_fault("read", path, sum(n for _, n in segments))
        f = self.store.open(path)
        data = b"".join(f.read(off, n) for off, n in segments)
        self.counters.reads += 1
        self.counters.bytes_read += sum(n for _, n in segments)
        done = self._service_list(path, segments, node, ready_time, "read")
        return data, done

    def write_list(
        self,
        path: str,
        segments: list[tuple[int, int]],
        data,
        *,
        node: int = 0,
        ready_time: float = 0.0,
    ) -> float:
        """Write ``data`` into many (offset, nbytes) segments as ONE request."""
        buf = memoryview(data).cast("B")
        total = sum(n for _, n in segments)
        if len(buf) != total:
            raise ValueError(f"data has {len(buf)} bytes, segments need {total}")
        torn = self._check_fault("write", path, total)
        if torn is not None:
            self._tear_write_list(torn, path, segments, buf)
        f = self.store.open(path, create=True)
        pos = 0
        for off, n in segments:
            f.write(off, buf[pos : pos + n])
            pos += n
        self.counters.writes += 1
        self.counters.bytes_written += total
        return self._service_list(path, segments, node, ready_time, "write")

    def _service_list(
        self,
        path: str,
        segments: list[tuple[int, int]],
        node: int,
        ready_time: float,
        op: str,
    ) -> float:
        """Timing hook for list I/O; defaults to per-segment service."""
        t = ready_time
        for off, n in segments:
            if op == "read":
                t = self._service_read(path, off, n, node, t)
            else:
                t = self._service_write(path, off, n, node, t)
        return t

    # -- timing hooks (override in subclasses) -----------------------------

    def _service_read(
        self, path: str, offset: int, nbytes: int, node: int, ready_time: float
    ) -> float:
        return ready_time

    def _service_write(
        self, path: str, offset: int, nbytes: int, node: int, ready_time: float
    ) -> float:
        return ready_time

    def _service_meta(self, op: str, path: str, node: int, ready_time: float) -> float:
        return ready_time

    def _service_recovery(
        self, path: str, kind: str, node: int, time: float, attempt: int, nbytes: int
    ) -> None:
        """Observability hook for recovery events; wrapped by tracing."""

    def reset_timing(self) -> None:
        """Zero device timelines (keep data and cache contents).

        Call between independently-timed phases so one phase's queue state
        does not leak into the next measurement.
        """

    def describe(self) -> str:
        """One-line description for benchmark reports."""
        return self.name


@dataclass
class LRUCache:
    """Block-granular LRU cache (read cache / prefetch buffer of a server).

    Tracks *which* blocks are resident, not their contents -- contents always
    come from the block store; the cache only decides whether disk time is
    charged.  Granularity is ``block_size`` bytes.
    """

    capacity_bytes: int = 0
    block_size: int = 65536
    #: charge whole blocks for partially-missing reads (GPFS-style
    #: block-aligned I/O: a small read costs a full file-system block).
    amplify: bool = False
    _blocks: OrderedDict = field(default_factory=OrderedDict, repr=False)
    hits: int = 0
    misses: int = 0

    @property
    def capacity_blocks(self) -> int:
        return self.capacity_bytes // self.block_size

    def _key_range(self, offset: int, nbytes: int) -> range:
        if nbytes <= 0:
            return range(0)
        first = offset // self.block_size
        last = (offset + nbytes - 1) // self.block_size
        return range(first, last + 1)

    def lookup(self, path: str, offset: int, nbytes: int) -> int:
        """Return the number of *missing* bytes (must come from disk).

        Resident blocks are refreshed (LRU touch); missing blocks are
        inserted, modelling demand-filling the cache as the read completes.
        """
        if self.capacity_blocks == 0:
            self.misses += 1
            return nbytes
        missing_blocks = 0
        keys = self._key_range(offset, nbytes)
        for b in keys:
            key = (path, b)
            if key in self._blocks:
                self._blocks.move_to_end(key)
                self.hits += 1
            else:
                missing_blocks += 1
                self.misses += 1
                self._insert(key)
        if self.amplify:
            return missing_blocks * self.block_size
        return min(nbytes, missing_blocks * self.block_size)

    def populate(self, path: str, offset: int, nbytes: int) -> None:
        """Mark blocks resident (e.g. after a write-through)."""
        if self.capacity_blocks == 0:
            return
        for b in self._key_range(offset, nbytes):
            self._insert((path, b))

    def invalidate(self, path: str) -> None:
        """Drop all blocks of ``path``."""
        stale = [k for k in self._blocks if k[0] == path]
        for k in stale:
            del self._blocks[k]

    def _insert(self, key) -> None:
        self._blocks[key] = True
        self._blocks.move_to_end(key)
        while len(self._blocks) > self.capacity_blocks:
            self._blocks.popitem(last=False)
