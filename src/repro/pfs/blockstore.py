"""In-memory byte storage backing every simulated file system.

The performance models in this package decide *when* an operation completes;
the :class:`BlockStore` decides *what* the bytes are.  Keeping real bytes --
instead of only tracking sizes -- means every simulated experiment doubles
as a correctness test: a checkpoint written through any I/O stack can be
re-read and compared bit-for-bit.

Files are sparse: reads from never-written ranges return zeros, like POSIX.
"""

from __future__ import annotations

import zlib

__all__ = ["StoredFile", "BlockStore", "FileNotFound", "FileExists"]


class FileNotFound(OSError):
    """The named file does not exist in the store."""


class FileExists(OSError):
    """Exclusive creation failed because the file already exists."""


class StoredFile:
    """A single file: a growable byte buffer plus a logical size.

    The buffer is over-allocated geometrically (capacity ``len(_buf)`` may
    exceed ``size``) so a sequence of appending writes costs amortized O(1)
    resizes instead of one zero-fill temporary per write.  Invariant: every
    byte of ``_buf`` at or past ``size`` is zero, so reads and re-grows can
    use the raw buffer without consulting the logical size.
    """

    __slots__ = ("path", "_buf", "size")

    def __init__(self, path: str):
        self.path = path
        self._buf = bytearray()
        self.size = 0

    def write(self, offset: int, data: bytes | bytearray | memoryview) -> int:
        """Write ``data`` at ``offset``, growing the file as needed."""
        if offset < 0:
            raise ValueError(f"negative offset: {offset}")
        data = memoryview(data).cast("B")
        end = offset + len(data)
        buf = self._buf
        cap = len(buf)
        if end > cap:
            # Single zero-filled resize, geometric so appends amortize.
            buf.extend(bytes(max(end, 2 * cap) - cap))
        buf[offset:end] = data
        if end > self.size:
            self.size = end
        return len(data)

    def read(self, offset: int, nbytes: int) -> bytes:
        """Read ``nbytes`` at ``offset``; ranges past EOF read as zeros.

        POSIX would short-read at EOF; zero-filling instead keeps the layers
        above simple (they always know the file size and never read past the
        data they wrote) while still being deterministic if they do.
        """
        if offset < 0:
            raise ValueError(f"negative offset: {offset}")
        if nbytes < 0:
            raise ValueError(f"negative read size: {nbytes}")
        end = offset + nbytes
        cap = len(self._buf)
        if end <= cap:
            # Bytes between size and capacity are zero by invariant, so the
            # raw buffer slice is already POSIX-correct.  One copy, not two.
            return bytes(memoryview(self._buf)[offset:end])
        if offset >= cap:
            return bytes(nbytes)
        return bytes(memoryview(self._buf)[offset:cap]) + bytes(end - cap)

    def checksum(self, offset: int, nbytes: int, crc: int = 0) -> int:
        """CRC32 of ``read(offset, nbytes)`` without materializing a copy.

        Manifest verification scans every recorded array; feeding
        ``zlib.crc32`` a memoryview of the live buffer avoids one full
        checkpoint-sized allocation per verify.
        """
        if offset < 0:
            raise ValueError(f"negative offset: {offset}")
        if nbytes < 0:
            raise ValueError(f"negative read size: {nbytes}")
        end = offset + nbytes
        cap = len(self._buf)
        pad = 0
        if offset >= cap:
            pad = nbytes
        else:
            crc = zlib.crc32(memoryview(self._buf)[offset:min(end, cap)], crc)
            if end > cap:
                pad = end - cap
        if pad:
            crc = zlib.crc32(bytes(pad), crc)
        return crc

    def truncate(self, size: int) -> None:
        """Set the logical size; shrinking discards bytes."""
        if size < 0:
            raise ValueError(f"negative size: {size}")
        if size < self.size:
            # Keep the capacity but re-zero the discarded tail so the
            # beyond-size-is-zero invariant holds for future reads/grows.
            hi = min(self.size, len(self._buf))
            if hi > size:
                self._buf[size:hi] = bytes(hi - size)
        self.size = size


class BlockStore:
    """A flat namespace of :class:`StoredFile` objects."""

    def __init__(self) -> None:
        self._files: dict[str, StoredFile] = {}

    def create(self, path: str, *, exclusive: bool = False) -> StoredFile:
        """Create (or truncate-open) ``path``."""
        if path in self._files:
            if exclusive:
                raise FileExists(path)
            f = self._files[path]
            f.truncate(0)
            return f
        f = StoredFile(path)
        self._files[path] = f
        return f

    def open(self, path: str, *, create: bool = False) -> StoredFile:
        """Return the file at ``path``; optionally create it if missing."""
        f = self._files.get(path)
        if f is None:
            if not create:
                raise FileNotFound(path)
            f = StoredFile(path)
            self._files[path] = f
        return f

    def exists(self, path: str) -> bool:
        return path in self._files

    def delete(self, path: str) -> None:
        if path not in self._files:
            raise FileNotFound(path)
        del self._files[path]

    def listdir(self) -> list[str]:
        """All file paths, sorted (the namespace is flat)."""
        return sorted(self._files)

    def total_bytes(self) -> int:
        """Sum of logical file sizes."""
        return sum(f.size for f in self._files.values())
