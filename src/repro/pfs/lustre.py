"""Lustre-like striped object-storage file system model.

Lustre differs from the GPFS/PVFS models in :mod:`repro.pfs.striped` in
three ways that matter for checkpoint I/O, and this module models each:

* **per-file layout** -- every file carries its own ``(stripe_count,
  stripe_size, start OST)`` layout chosen at create time (``lfs
  setstripe`` style).  A file with ``stripe_count < nosts`` uses only a
  subset of the OSTs, starting at a rotor-assigned index, so wide files
  and narrow files coexist on one volume.  Widening the stripe count of
  the checkpoint file is the classic Lustre tuning knob, exposed to
  MPI-IO through the ``striping_factor``/``striping_unit`` hints.
* **per-OST request queues** -- each object storage target serialises
  request processing through a queue with a fixed per-request service
  cost (analogous to the SMP I/O queues of the IBM SP model, but on the
  server side): many clients hammering one OST with small requests
  serialise there even when disks are idle.
* **a single MDS** -- opens, creates and deletes all pass through one
  metadata server whose service time grows with the number of files it
  tracks.  File-per-grid output patterns therefore degrade *faster* on
  Lustre than on node-local file systems, where each node only pays for
  its own namespace.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

from ..sim.resources import Timeline
from ..topology.network import Network
from .base import FileSystem, LRUCache
from .blockstore import BlockStore
from .striped import IOServer, coalesce_runs
from .striping import Chunk, StripeLayout

__all__ = ["LustreFS", "LustreStripeLayout"]


@dataclass(frozen=True)
class LustreStripeLayout:
    """A per-file Lustre layout: ``stripe_count`` OSTs out of ``ost_count``.

    Byte arithmetic is exactly round-robin striping over ``stripe_count``
    virtual servers (delegated to :class:`StripeLayout`); the virtual
    index ``i`` maps to the physical OST ``(start_ost + i) % ost_count``.
    """

    stripe_size: int
    stripe_count: int
    ost_count: int
    start_ost: int = 0

    def __post_init__(self) -> None:
        if self.ost_count < 1:
            raise ValueError("ost_count must be >= 1")
        if not 1 <= self.stripe_count <= self.ost_count:
            raise ValueError("stripe_count must be in [1, ost_count]")
        if not 0 <= self.start_ost < self.ost_count:
            raise ValueError("start_ost must be in [0, ost_count)")

    @cached_property
    def _inner(self) -> StripeLayout:
        return StripeLayout(stripe_size=self.stripe_size, nservers=self.stripe_count)

    def _ost(self, virtual: int) -> int:
        return (self.start_ost + virtual) % self.ost_count

    def server_of(self, offset: int) -> int:
        return self._ost(self._inner.server_of(offset))

    def local_offset(self, offset: int) -> int:
        return self._inner.local_offset(offset)

    def decompose(self, offset: int, nbytes: int) -> list[Chunk]:
        return [
            Chunk(
                server=self._ost(c.server),
                file_offset=c.file_offset,
                local_offset=c.local_offset,
                size=c.size,
            )
            for c in self._inner.decompose(offset, nbytes)
        ]

    def server_runs(self, offset: int, nbytes: int) -> list[tuple[int, int, int]]:
        return [
            (self._ost(server), local_offset, size)
            for server, local_offset, size in self._inner.server_runs(offset, nbytes)
        ]

    def stripe_span(self, offset: int, nbytes: int) -> tuple[int, int]:
        return self._inner.stripe_span(offset, nbytes)

    def servers_touched(self, offset: int, nbytes: int) -> set[int]:
        return {self._ost(s) for s in self._inner.servers_touched(offset, nbytes)}


class LustreFS(FileSystem):
    """Object-storage file system with per-file layouts, OST queues, one MDS."""

    def __init__(
        self,
        name: str,
        *,
        nosts: int,
        stripe_size: int,
        stripe_count: int = 1,
        disk_bandwidth: float,
        seek_time: float,
        request_cpu_time: float = 0.0,
        server_net_bandwidth: float = float("inf"),
        net_latency: float = 0.0,
        ost_queue_time: float = 0.0,
        mds_open_time: float = 0.0,
        mds_per_file_time: float = 0.0,
        cache_bytes_per_ost: int = 0,
        client_network: Network | None = None,
        client_channel_bandwidth: float = float("inf"),
        store: BlockStore | None = None,
        node_of_client=None,
    ):
        super().__init__(name=name, store=store)
        self.nosts = nosts
        self.default_stripe_count = min(stripe_count, nosts)
        # Volume-default layout; ``lfs setstripe`` overrides live in
        # ``_file_layouts``.  ``layout.stripe_size`` is what the insight
        # detectors align against.
        self.layout = LustreStripeLayout(
            stripe_size=stripe_size,
            stripe_count=self.default_stripe_count,
            ost_count=nosts,
        )
        self._file_layouts: dict[str, LustreStripeLayout] = {}
        self.net_latency = net_latency
        self.ost_queue_time = ost_queue_time
        self.mds_open_time = mds_open_time
        self.mds_per_file_time = mds_per_file_time
        self.client_network = client_network
        self.client_channel_bandwidth = client_channel_bandwidth
        self._client_channels: dict[int, Timeline] = {}
        self._flush_egress: dict[int, Timeline] = {}
        self.node_of_client = node_of_client or (lambda c: c)
        self.servers = [
            IOServer(
                index=i,
                disk_bandwidth=disk_bandwidth,
                seek_time=seek_time,
                request_cpu_time=request_cpu_time,
                net_bandwidth=server_net_bandwidth,
                net_latency=net_latency,
                cache=LRUCache(
                    capacity_bytes=cache_bytes_per_ost,
                    block_size=stripe_size,
                    amplify=False,
                ),
            )
            for i in range(nosts)
        ]
        # One request queue per OST: the server-side serialisation point.
        self._ost_queues = [Timeline(name=f"{name}.ostq[{i}]") for i in range(nosts)]
        # The single metadata server and the namespace it tracks.
        self.mds = Timeline(name=f"{name}.mds")
        self._mds_files: set[str] = set()
        # Round-robin rotor assigning each new file's starting OST, so
        # narrow files spread across the volume instead of piling on OST 0.
        self._next_ost = 0

    # -- layout ------------------------------------------------------------

    def set_file_striping(
        self,
        path: str,
        stripe_size: int | None = None,
        stripe_count: int | None = None,
    ) -> None:
        """``lfs setstripe``: pin ``path``'s layout before it is written.

        Either knob may be omitted to keep the volume default; an explicit
        layout always starts at OST 0 (``lfs setstripe -i 0`` semantics),
        keeping tuned runs deterministic.
        """
        if stripe_size is None and stripe_count is None:
            return
        count = self.default_stripe_count if stripe_count is None else stripe_count
        self._file_layouts[path] = LustreStripeLayout(
            stripe_size=self.layout.stripe_size if stripe_size is None else stripe_size,
            stripe_count=max(1, min(count, self.nosts)),
            ost_count=self.nosts,
        )

    def layout_for(self, path: str) -> LustreStripeLayout:
        return self._file_layouts.get(path, self.layout)

    def _assign_default_layout(self, path: str) -> None:
        if path in self._file_layouts:
            return
        self._file_layouts[path] = LustreStripeLayout(
            stripe_size=self.layout.stripe_size,
            stripe_count=self.default_stripe_count,
            ost_count=self.nosts,
            start_ost=self._next_ost,
        )
        self._next_ost = (self._next_ost + self.default_stripe_count) % self.nosts

    # -- client-side plumbing (mirrors StripedServerFS) --------------------

    def _channel(self, node: int, ready: float, nbytes: int) -> float:
        if self.client_channel_bandwidth == float("inf"):
            return ready
        ch = self._client_channels.get(node)
        if ch is None:
            ch = Timeline(name=f"{self.name}.chan[{node}]")
            self._client_channels[node] = ch
        _, done = ch.serve(ready, nbytes / self.client_channel_bandwidth)
        return done

    def _client_links(self, node: int):
        if self.client_network is None:
            return None, None, 0.0
        net = self.client_network
        egress = net.egress[node]
        if self.background_flush_active:
            egress = self._flush_egress.get(node)
            if egress is None:
                egress = Timeline(name=f"{self.name}.flush[{node}]")
                self._flush_egress[node] = egress
        return egress, net.ingress[node], 1.0 / net.bandwidth

    # -- timing model ------------------------------------------------------

    def _service_meta(self, op: str, path: str, node: int, ready_time: float) -> float:
        """Every namespace operation crosses the one MDS.

        Service time grows linearly with the files the MDS tracks, so a
        file-per-grid dump of G grids pays O(G^2) aggregate metadata time
        -- the single-MDS explosion the node-local model does not have.
        """
        cost = self.mds_open_time + self.mds_per_file_time * len(self._mds_files)
        _, t = self.mds.serve(ready_time + self.net_latency, cost)
        if op == "create":
            self._mds_files.add(path)
            self._assign_default_layout(path)
        elif op == "delete":
            self._mds_files.discard(path)
            self._file_layouts.pop(path, None)
        return t + self.net_latency

    def _ost_enqueue(self, ost: int, ready: float) -> float:
        if self.ost_queue_time == 0.0:
            return ready
        _, t = self._ost_queues[ost].serve(ready, self.ost_queue_time)
        return t

    def _service_write(
        self, path: str, offset: int, nbytes: int, node: int, ready_time: float
    ) -> float:
        if nbytes == 0:
            return ready_time
        smp_node = self.node_of_client(node)
        t = self._channel(smp_node, ready_time, nbytes)
        runs = self.layout_for(path).server_runs(offset, nbytes)
        egress, _, inv_bw = self._client_links(smp_node)
        completion = t
        servers = self.servers
        for server, local_offset, size in runs:
            if egress is not None:
                _, sent = egress.serve(t, size * inv_bw)
            else:
                sent = t
            arrive = self._ost_enqueue(server, sent + self.net_latency)
            done = servers[server].serve_write(path, local_offset, size, arrive)
            completion = max(completion, done + self.net_latency)  # ack
        return completion

    def _service_read(
        self, path: str, offset: int, nbytes: int, node: int, ready_time: float
    ) -> float:
        if nbytes == 0:
            return ready_time
        smp_node = self.node_of_client(node)
        t = self._channel(smp_node, ready_time, nbytes)
        runs = self.layout_for(path).server_runs(offset, nbytes)
        _, ingress, inv_bw = self._client_links(smp_node)
        completion = t
        servers = self.servers
        for server, local_offset, size in runs:
            arrive = self._ost_enqueue(server, t + self.net_latency)
            on_wire = servers[server].serve_read(path, local_offset, size, arrive)
            if ingress is not None:
                _, arrived = ingress.serve(on_wire + self.net_latency, size * inv_bw)
            else:
                arrived = on_wire + self.net_latency
            completion = max(completion, arrived)
        return completion

    def _service_list(self, path, segments, node, ready_time, op):
        """List I/O: one wire request; each OST elevator-serves its batch."""
        nbytes = sum(n for _, n in segments)
        if nbytes == 0:
            return ready_time
        smp_node = self.node_of_client(node)
        t = self._channel(smp_node, ready_time, nbytes)
        layout = self.layout_for(path)
        chunks = [c for off, n in segments for c in layout.decompose(off, n)]
        runs = coalesce_runs(sorted(chunks, key=lambda c: c.file_offset))
        egress, ingress, inv_bw = self._client_links(smp_node)
        per_server: dict[int, list] = {}
        for run in runs:
            per_server.setdefault(run.server, []).append(run)
        completion = t
        for sid, batch in per_server.items():
            srv = self.servers[sid]
            batch.sort(key=lambda r: r.local_offset)
            total = sum(r.size for r in batch)
            if op == "write":
                if egress is not None:
                    _, sent = egress.serve(t, total * inv_bw)
                else:
                    sent = t
                arrive = self._ost_enqueue(sid, sent + self.net_latency)
                _, tt = srv.net_in.serve(arrive, total / srv.net_bandwidth)
                _, tt = srv.cpu.serve(tt, srv.request_cpu_time)
                _, tt = srv.disk.serve(tt, srv.seek_time + total / srv.disk_bandwidth)
                srv._head = (path, batch[-1].local_offset + batch[-1].size)
                for run in batch:
                    srv.cache.populate(path, run.local_offset, run.size)
                completion = max(completion, tt + self.net_latency)
            else:
                arrive = self._ost_enqueue(sid, t + self.net_latency)
                _, tt = srv.cpu.serve(arrive, srv.request_cpu_time)
                missing = sum(
                    srv.cache.lookup(path, r.local_offset, r.size) for r in batch
                )
                if missing > 0:
                    _, tt = srv.disk.serve(
                        tt, srv.seek_time + missing / srv.disk_bandwidth
                    )
                    srv._head = (path, batch[-1].local_offset + batch[-1].size)
                _, on_wire = srv.net_out.serve(tt, total / srv.net_bandwidth)
                if ingress is not None:
                    _, arrived = ingress.serve(
                        on_wire + self.net_latency, total * inv_bw
                    )
                else:
                    arrived = on_wire + self.net_latency
                completion = max(completion, arrived)
        return completion

    def reset_timing(self) -> None:
        for srv in self.servers:
            srv.disk.reset()
            srv.cpu.reset()
            srv.net_in.reset()
            srv.net_out.reset()
            srv._head = None
        for q in self._ost_queues:
            q.reset()
        for ch in self._client_channels.values():
            ch.reset()
        for ch in self._flush_egress.values():
            ch.reset()
        self.mds.reset()

    def describe(self) -> str:
        lay = self.layout
        return (
            f"{self.name}: {self.nosts} OSTs, default "
            f"{lay.stripe_count}x{lay.stripe_size // 1024} KiB stripes, single MDS"
        )
