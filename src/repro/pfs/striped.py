"""Striped client/server parallel file system model (GPFS- and PVFS-like).

The model captures the effects the paper measures:

* **striping decomposition** -- a request is split into stripe-unit chunks,
  consecutive chunks on the same server are coalesced into runs, and each
  run is served by that server's network link, request CPU and disk;
* **disk seek locality** -- a run that does not start where the server's
  disk head last stopped pays a seek, so many small interleaved requests
  (the access-pattern/striping *mismatch*) are far slower than streams;
* **server read cache** -- recently touched blocks skip the disk, producing
  the PVFS read-caching benefit the paper observes;
* **shared-file write tokens** (GPFS) -- stripes have a writing owner; a
  write run whose stripes were last written by a different node pays a
  token-revocation penalty, so single-writer streams are cheap and
  fine-grained shared writes thrash;
* **SMP I/O queue** (IBM SP) -- every request from a node passes through a
  per-node queue with a fixed service cost, so many ranks of one SMP node
  doing I/O simultaneously serialise;
* **client NIC coupling** -- payload occupies the client's network-interface
  timeline of the machine interconnect, so I/O traffic and message-passing
  traffic contend (the fast-Ethernet effect on the Linux cluster).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..sim.resources import Timeline
from ..topology.network import Network
from .base import FileSystem, LRUCache
from .blockstore import BlockStore
from .striping import Chunk, StripeLayout

__all__ = ["IOServer", "StripedServerFS"]


@dataclass
class IOServer:
    """One I/O server: NIC in/out, request CPU, disk with head position."""

    index: int
    disk_bandwidth: float
    seek_time: float
    request_cpu_time: float
    net_bandwidth: float
    net_latency: float
    cache: LRUCache
    disk: Timeline = field(default_factory=Timeline)
    cpu: Timeline = field(default_factory=Timeline)
    net_in: Timeline = field(default_factory=Timeline)
    net_out: Timeline = field(default_factory=Timeline)
    # (path, local_offset) where the head stopped; used for seek detection.
    _head: tuple[str, int] | None = None

    def disk_time(self, path: str, local_offset: int, nbytes: int) -> float:
        """Service time for ``nbytes`` at ``local_offset``, tracking the head."""
        seek = 0.0
        if self._head != (path, local_offset):
            seek = self.seek_time
        self._head = (path, local_offset + nbytes)
        return seek + nbytes / self.disk_bandwidth

    def serve_write(self, path: str, local_offset: int, nbytes: int, arrive: float) -> float:
        """Payload has arrived at ``arrive``; returns write completion."""
        _, t = self.net_in.serve(arrive, nbytes / self.net_bandwidth)
        _, t = self.cpu.serve(t, self.request_cpu_time)
        _, t = self.disk.serve(t, self.disk_time(path, local_offset, nbytes))
        self.cache.populate(path, local_offset, nbytes)
        return t

    def serve_read(self, path: str, local_offset: int, nbytes: int, arrive: float) -> float:
        """Request arrived at ``arrive``; returns when data is on the wire."""
        _, t = self.cpu.serve(arrive, self.request_cpu_time)
        missing = self.cache.lookup(path, local_offset, nbytes)
        if missing > 0:
            _, t = self.disk.serve(t, self.disk_time(path, local_offset, missing))
        _, t = self.net_out.serve(t, nbytes / self.net_bandwidth)
        return t


@dataclass(frozen=True)
class _Run:
    """Consecutive chunks on one server merged into a single wire request."""

    server: int
    local_offset: int
    size: int


def coalesce_runs(chunks: list[Chunk]) -> list[_Run]:
    """Merge stripe chunks that are contiguous in a server's local store."""
    pending: dict[int, _Run] = {}
    runs: list[_Run] = []
    for c in chunks:
        prev = pending.get(c.server)
        if prev is not None and prev.local_offset + prev.size == c.local_offset:
            pending[c.server] = _Run(c.server, prev.local_offset, prev.size + c.size)
        else:
            if prev is not None:
                runs.append(prev)
            pending[c.server] = _Run(c.server, c.local_offset, c.size)
    runs.extend(pending.values())
    return runs


class StripedServerFS(FileSystem):
    """A file system striped over dedicated I/O servers.

    Parameters select which contention mechanisms are active; the presets in
    :mod:`repro.topology.presets` configure them per platform.
    """

    def __init__(
        self,
        name: str,
        *,
        nservers: int,
        stripe_size: int,
        disk_bandwidth: float,
        seek_time: float,
        request_cpu_time: float = 0.0,
        server_net_bandwidth: float = float("inf"),
        net_latency: float = 0.0,
        metadata_time: float = 0.0,
        cache_bytes_per_server: int = 0,
        client_network: Network | None = None,
        client_channel_bandwidth: float = float("inf"),
        write_token_time: float = 0.0,
        token_granularity: str = "stripe",
        tokens_on_read: bool = False,
        stripe_aligned_io: bool = False,
        smp_io_queue_time: float = 0.0,
        store: BlockStore | None = None,
        node_of_client=None,
    ):
        super().__init__(name=name, store=store)
        self.layout = StripeLayout(stripe_size=stripe_size, nservers=nservers)
        # The paper's closing file-system suggestion: "flexible,
        # application-specific disk file striping and distribution
        # patterns".  Files may override the volume default.
        self._file_layouts: dict[str, StripeLayout] = {}
        self.net_latency = net_latency
        self.metadata_time = metadata_time
        self.client_network = client_network
        # Per-process I/O path ceiling (syscall + page cache + HBA): caps
        # what a single synchronous stream achieves no matter how many
        # servers the file stripes over.
        self.client_channel_bandwidth = client_channel_bandwidth
        self._client_channels: dict[int, Timeline] = {}
        self.write_token_time = write_token_time
        if token_granularity not in ("stripe", "file"):
            raise ValueError(f"unknown token granularity {token_granularity!r}")
        # "stripe": a token per stripe unit (fine byte-range tokens).
        # "file": one coarse token per file -- GPFS's initial whole-range
        # grant; under interleaved multi-node access virtually every request
        # from a different node than the last holder pays a revocation,
        # which is the access/striping mismatch collapse the paper measured.
        self.token_granularity = token_granularity
        # Whether reads also need the (exclusive-held) token revoked -- i.e.
        # reading data another node recently wrote forces a flush.
        self.tokens_on_read = tokens_on_read
        self.smp_io_queue_time = smp_io_queue_time
        # Maps a client id (a rank) to its SMP node; identity when None.
        self.node_of_client = node_of_client or (lambda c: c)
        self.servers = [
            IOServer(
                index=i,
                disk_bandwidth=disk_bandwidth,
                seek_time=seek_time,
                request_cpu_time=request_cpu_time,
                net_bandwidth=server_net_bandwidth,
                net_latency=net_latency,
                cache=LRUCache(
                    capacity_bytes=cache_bytes_per_server,
                    block_size=stripe_size,
                    amplify=stripe_aligned_io,
                ),
            )
            for i in range(nservers)
        ]
        # GPFS-like byte-range write tokens: stripe index -> owning node.
        # Revocations serialise at the token manager (round-trip + flush of
        # the previous owner's cached copy), which is what makes
        # fine-grained shared-file writes collapse.
        self._stripe_owner: dict[tuple[str, int], int] = {}
        self.token_manager = Timeline(name=f"{name}.token-mgr")
        # Per-SMP-node I/O request queues (created lazily).
        self._node_queues: dict[int, Timeline] = {}
        # Per-node background-flush NIC channels (created lazily): the
        # async progress thread's injection path.  Drain writes are booked
        # ahead of the issuing rank's clock; putting them on the shared
        # ``client_network`` egress would let those future reservations
        # head-of-line-block ordinary messages, which a real NIC
        # timeshares instead.
        self._flush_egress: dict[int, Timeline] = {}
        self.token_revocations = 0

    # -- helpers -----------------------------------------------------------

    def set_file_striping(
        self, path: str, stripe_size: int | None = None, stripe_count: int | None = None
    ) -> None:
        """Give ``path`` its own stripe size (application-specific layout).

        Must be called before data is written; the simulated store keeps
        bytes independently of layout, so only timing is affected.
        ``stripe_count`` is accepted for hint-plumbing symmetry with
        :class:`~repro.pfs.lustre.LustreFS` but ignored: this model's
        server count is fixed at volume creation.
        """
        if stripe_size is None:
            return
        self._file_layouts[path] = StripeLayout(
            stripe_size=stripe_size, nservers=self.layout.nservers
        )

    def layout_for(self, path: str) -> StripeLayout:
        return self._file_layouts.get(path, self.layout)

    def _node_queue(self, node: int) -> Timeline:
        q = self._node_queues.get(node)
        if q is None:
            q = Timeline(name=f"{self.name}.ioq[{node}]")
            self._node_queues[node] = q
        return q

    def _channel(self, node: int, ready: float, nbytes: int) -> float:
        """Occupy the client's per-process I/O channel; returns done time."""
        if self.client_channel_bandwidth == float("inf"):
            return ready
        ch = self._client_channels.get(node)
        if ch is None:
            ch = Timeline(name=f"{self.name}.chan[{node}]")
            self._client_channels[node] = ch
        _, done = ch.serve(ready, nbytes / self.client_channel_bandwidth)
        return done

    def _client_links(self, node: int):
        if self.client_network is None:
            return None, None, 0.0
        net = self.client_network
        egress = net.egress[node]
        if self.background_flush_active:
            egress = self._flush_egress.get(node)
            if egress is None:
                egress = Timeline(name=f"{self.name}.flush[{node}]")
                self._flush_egress[node] = egress
        return egress, net.ingress[node], 1.0 / net.bandwidth

    def _token_keys(
        self, path: str, chunks: list[Chunk], layout: StripeLayout
    ) -> list[tuple]:
        if self.token_granularity == "file":
            return [(path,)]
        seen: set[int] = set()
        keys: list[tuple] = []
        for c in chunks:
            stripe = c.file_offset // layout.stripe_size
            if stripe not in seen:
                seen.add(stripe)
                keys.append((path, stripe))
        return keys

    def _contig_token_keys(self, path: str, offset: int, nbytes: int, layout):
        """Token keys of one contiguous range, without materializing chunks.

        A contiguous request touches each stripe exactly once and in
        ascending order, so the keys are just the stripe span -- identical
        to what :meth:`_token_keys` derives from the chunk walk.
        """
        if self.token_granularity == "file":
            return ((path,),)
        first, last = layout.stripe_span(offset, nbytes)
        return ((path, s) for s in range(first, last + 1))

    def _token_penalty(self, path: str, keys, node: int, ready: float) -> float:
        """GPFS write-token cost: revocations serialise at the token manager.

        Returns the time at which all needed tokens are held.  Ranges never
        written before are granted for free; a range last written by a
        different node costs one serialised revocation round-trip (which is
        why interleaved fine-grained shared-file writes collapse).
        """
        if self.write_token_time == 0.0:
            return ready
        t = ready
        owners = self._stripe_owner
        for key in keys:
            owner = owners.get(key)
            if owner != node:
                if owner is not None:
                    self.token_revocations += 1
                    _, t = self.token_manager.serve(t, self.write_token_time)
                owners[key] = node
        return t

    def _read_token_penalty(self, path: str, keys, node: int, ready: float) -> float:
        """Reading data another node holds a write token for flushes it once.

        After the flush the range is shared (owner ``None``): subsequent
        readers are free until somebody writes again.
        """
        if self.write_token_time == 0.0 or not self.tokens_on_read:
            return ready
        t = ready
        owners = self._stripe_owner
        for key in keys:
            owner = owners.get(key)
            if owner is not None and owner != node:
                self.token_revocations += 1
                _, t = self.token_manager.serve(t, self.write_token_time)
                owners[key] = None
        return t

    # -- timing model --------------------------------------------------------

    def _service_meta(self, op: str, path: str, node: int, ready_time: float) -> float:
        # A metadata round-trip to server 0's CPU.
        srv = self.servers[0]
        _, t = srv.cpu.serve(ready_time + self.net_latency, self.metadata_time)
        return t + self.net_latency

    def _service_write(
        self, path: str, offset: int, nbytes: int, node: int, ready_time: float
    ) -> float:
        if nbytes == 0:
            return ready_time
        smp_node = self.node_of_client(node)
        t = ready_time
        if self.smp_io_queue_time > 0.0:
            _, t = self._node_queue(smp_node).serve(t, self.smp_io_queue_time)
        t = self._channel(smp_node, t, nbytes)
        layout = self.layout_for(path)
        t = self._token_penalty(
            path, self._contig_token_keys(path, offset, nbytes, layout), smp_node, t
        )
        # Closed-form per-server runs: O(servers touched), not O(stripes).
        runs = layout.server_runs(offset, nbytes)
        egress, _, inv_bw = self._client_links(smp_node)
        completion = t
        servers = self.servers
        for server, local_offset, size in runs:
            if egress is not None:
                _, sent = egress.serve(t, size * inv_bw)
            else:
                sent = t
            done = servers[server].serve_write(
                path, local_offset, size, sent + self.net_latency
            )
            completion = max(completion, done + self.net_latency)  # ack
        return completion

    def _service_read(
        self, path: str, offset: int, nbytes: int, node: int, ready_time: float
    ) -> float:
        if nbytes == 0:
            return ready_time
        smp_node = self.node_of_client(node)
        t = ready_time
        if self.smp_io_queue_time > 0.0:
            _, t = self._node_queue(smp_node).serve(t, self.smp_io_queue_time)
        t = self._channel(smp_node, t, nbytes)
        layout = self.layout_for(path)
        t = self._read_token_penalty(
            path, self._contig_token_keys(path, offset, nbytes, layout), smp_node, t
        )
        runs = layout.server_runs(offset, nbytes)
        _, ingress, inv_bw = self._client_links(smp_node)
        completion = t
        servers = self.servers
        for server, local_offset, size in runs:
            on_wire = servers[server].serve_read(
                path, local_offset, size, t + self.net_latency
            )
            if ingress is not None:
                _, arrived = ingress.serve(on_wire + self.net_latency, size * inv_bw)
            else:
                arrived = on_wire + self.net_latency
            completion = max(completion, arrived)
        return completion

    def _service_list(self, path, segments, node, ready_time, op):
        """PVFS list-I/O: the access list travels in one request.

        Per-request costs (SMP queue, client channel, request CPU at each
        server) are paid once; the disk still serves each physical run.
        """
        nbytes = sum(n for _, n in segments)
        if nbytes == 0:
            return ready_time
        smp_node = self.node_of_client(node)
        t = ready_time
        if self.smp_io_queue_time > 0.0:
            _, t = self._node_queue(smp_node).serve(t, self.smp_io_queue_time)
        t = self._channel(smp_node, t, nbytes)
        layout = self.layout_for(path)
        chunks = [
            c for off, n in segments for c in layout.decompose(off, n)
        ]
        if op == "write":
            t = self._token_penalty(
                path, self._token_keys(path, chunks, layout), smp_node, t
            )
        else:
            t = self._read_token_penalty(
                path, self._token_keys(path, chunks, layout), smp_node, t
            )
        runs = coalesce_runs(sorted(chunks, key=lambda c: c.file_offset))
        egress, ingress, inv_bw = self._client_links(smp_node)
        # Group the list's runs per server: the server sees the whole batch
        # and can elevator-schedule it, so it pays one request-CPU charge
        # and one seek for the batch, then streams the bytes in offset
        # order -- the core advantage of list I/O over per-segment access.
        per_server: dict[int, list] = {}
        for run in runs:
            per_server.setdefault(run.server, []).append(run)
        completion = t
        for sid, batch in per_server.items():
            srv = self.servers[sid]
            batch.sort(key=lambda r: r.local_offset)
            total = sum(r.size for r in batch)
            if op == "write":
                if egress is not None:
                    _, sent = egress.serve(t, total * inv_bw)
                else:
                    sent = t
                _, tt = srv.net_in.serve(
                    sent + self.net_latency, total / srv.net_bandwidth
                )
                _, tt = srv.cpu.serve(tt, srv.request_cpu_time)
                _, tt = srv.disk.serve(
                    tt, srv.seek_time + total / srv.disk_bandwidth
                )
                srv._head = (path, batch[-1].local_offset + batch[-1].size)
                for run in batch:
                    srv.cache.populate(path, run.local_offset, run.size)
                completion = max(completion, tt + self.net_latency)
            else:
                _, tt = srv.cpu.serve(t + self.net_latency, srv.request_cpu_time)
                missing = sum(
                    srv.cache.lookup(path, r.local_offset, r.size)
                    for r in batch
                )
                if missing > 0:
                    _, tt = srv.disk.serve(
                        tt, srv.seek_time + missing / srv.disk_bandwidth
                    )
                    srv._head = (
                        path, batch[-1].local_offset + batch[-1].size
                    )
                _, on_wire = srv.net_out.serve(tt, total / srv.net_bandwidth)
                if ingress is not None:
                    _, arrived = ingress.serve(
                        on_wire + self.net_latency, total * inv_bw
                    )
                else:
                    arrived = on_wire + self.net_latency
                completion = max(completion, arrived)
        return completion

    def reset_timing(self) -> None:
        for srv in self.servers:
            srv.disk.reset()
            srv.cpu.reset()
            srv.net_in.reset()
            srv.net_out.reset()
            srv._head = None
        for q in self._node_queues.values():
            q.reset()
        for ch in self._client_channels.values():
            ch.reset()
        for ch in self._flush_egress.values():
            ch.reset()
        self.token_manager.reset()

    def describe(self) -> str:
        lay = self.layout
        return (
            f"{self.name}: {lay.nservers} servers, {lay.stripe_size // 1024} KiB stripes"
        )
