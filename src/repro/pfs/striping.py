"""Striping layout arithmetic.

Parallel file systems in this study (GPFS, PVFS) stripe each file round-robin
over their I/O servers in fixed-size units chosen at configuration time.  The
paper's central file-system observation is the *mismatch* between these fixed
physical patterns and the application's logical access patterns: a logically
contiguous request can shatter into chunks on many servers, and logically
disjoint requests from different processors can collide on one server.

:class:`StripeLayout` is the pure arithmetic: file offset <-> (server, local
offset), and decomposition of byte ranges into per-server chunks.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["StripeLayout", "Chunk"]


@dataclass(frozen=True)
class Chunk:
    """A piece of a file request that lands on one server.

    ``local_offset`` is the position inside the server's backing store for
    this file (stripes a server owns are packed densely, like PVFS does).
    """

    server: int
    file_offset: int
    local_offset: int
    size: int

    @property
    def file_end(self) -> int:
        return self.file_offset + self.size


@dataclass(frozen=True)
class StripeLayout:
    """Round-robin striping of a file across ``nservers`` servers."""

    stripe_size: int
    nservers: int

    def __post_init__(self) -> None:
        if self.stripe_size < 1:
            raise ValueError("stripe_size must be >= 1")
        if self.nservers < 1:
            raise ValueError("nservers must be >= 1")

    def server_of(self, offset: int) -> int:
        """The server holding the byte at ``offset``."""
        if offset < 0:
            raise ValueError("negative offset")
        return (offset // self.stripe_size) % self.nservers

    def local_offset(self, offset: int) -> int:
        """Position of ``offset`` inside its server's dense local store."""
        stripe = offset // self.stripe_size
        return (stripe // self.nservers) * self.stripe_size + offset % self.stripe_size

    def decompose(self, offset: int, nbytes: int) -> list[Chunk]:
        """Split ``[offset, offset + nbytes)`` into per-server chunks.

        Chunks are returned in file-offset order; consecutive stripes on the
        same server are *not* merged (each stripe crossing is a separate
        chunk), mirroring how stripe-unit requests hit the wire.
        """
        if nbytes < 0:
            raise ValueError("negative size")
        chunks: list[Chunk] = []
        pos = offset
        end = offset + nbytes
        while pos < end:
            stripe = pos // self.stripe_size
            stripe_end = (stripe + 1) * self.stripe_size
            size = min(end, stripe_end) - pos
            chunks.append(
                Chunk(
                    server=stripe % self.nservers,
                    file_offset=pos,
                    local_offset=self.local_offset(pos),
                    size=size,
                )
            )
            pos += size
        return chunks

    def server_runs(self, offset: int, nbytes: int) -> list[tuple[int, int, int]]:
        """Per-server coalesced ``(server, local_offset, size)`` runs.

        Closed form for what ``coalesce_runs(decompose(offset, nbytes))``
        computes by walking every stripe: within one contiguous request a
        server's stripes are consecutive in its dense local store, so each
        touched server contributes exactly one run.  Runs are returned in
        first-touched-stripe order (the dict insertion order the chunk walk
        produces), because the timing code books egress/disk/cache in that
        order.  Cost is O(servers touched), not O(stripes).
        """
        if nbytes < 0:
            raise ValueError("negative size")
        if nbytes == 0:
            return []
        if offset < 0:
            raise ValueError("negative offset")
        ss = self.stripe_size
        n = self.nservers
        end = offset + nbytes
        first = offset // ss
        last = (end - 1) // ss
        head = offset - first * ss  # bytes skipped in the first stripe
        tail = (last + 1) * ss - end  # bytes unused in the last stripe
        runs: list[tuple[int, int, int]] = []
        for k in range(first, min(first + n, last + 1)):
            m = (last - k) // n + 1  # stripes this server owns in-range
            trim_head = head if k == first else 0
            trim_tail = tail if k + (m - 1) * n == last else 0
            runs.append((
                k % n,
                (k // n) * ss + trim_head,
                m * ss - trim_head - trim_tail,
            ))
        return runs

    def stripe_span(self, offset: int, nbytes: int) -> tuple[int, int]:
        """``(first_stripe, last_stripe)`` of a non-empty byte range."""
        return offset // self.stripe_size, (offset + nbytes - 1) // self.stripe_size

    def servers_touched(self, offset: int, nbytes: int) -> set[int]:
        """The set of servers a request lands on."""
        if nbytes <= 0:
            return set()
        first = offset // self.stripe_size
        last = (offset + nbytes - 1) // self.stripe_size
        if last - first + 1 >= self.nservers:
            return set(range(self.nservers))
        return {(s % self.nservers) for s in range(first, last + 1)}
