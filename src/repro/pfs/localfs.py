"""Node-local disk file system (the paper's fourth experiment).

On Chiba City the authors re-ran the workload with every compute node doing
I/O to its *own* local disk through the PVFS interface, eliminating the
compute-node/I-O-node network entirely.  "The only overhead of MPI-IO is the
user-level inter-communication among compute nodes", and the distributed
output files need post-hoc integration.

:class:`LocalDiskFS` models that: one disk per node, no network on the data
path, a shared flat namespace (so the simulation can verify the data), and a
bookkeeping map of which node's disk holds each file so the harness can
report the integration burden the paper notes.
"""

from __future__ import annotations

from ..sim.resources import Timeline
from .base import FileSystem, LRUCache
from .blockstore import BlockStore

__all__ = ["LocalDiskFS"]


class LocalDiskFS(FileSystem):
    """One private disk per compute node; files live where first written."""

    def __init__(
        self,
        name: str = "localdisk",
        *,
        nnodes: int,
        disk_bandwidth: float,
        seek_time: float,
        request_cpu_time: float = 0.0,
        metadata_time: float = 0.0,
        cache_bytes_per_node: int = 0,
        scatter_mode: bool = False,
        store: BlockStore | None = None,
        node_of_client=None,
    ):
        """``scatter_mode=True`` reproduces the paper's PVFS-interface-over-
        local-disks setup: every access is served by the *accessor's own*
        disk (each node keeps its pieces locally; no shared placement, and
        the distributed pieces would need post-hoc integration).
        """
        super().__init__(name=name, store=store)
        if nnodes < 1:
            raise ValueError("need at least one node")
        self.scatter_mode = scatter_mode
        self.nnodes = nnodes
        self.disk_bandwidth = disk_bandwidth
        self.seek_time = seek_time
        self.request_cpu_time = request_cpu_time
        self.metadata_time = metadata_time
        self.node_of_client = node_of_client or (lambda c: c)
        self.disks = [Timeline(name=f"{name}.disk[{i}]") for i in range(nnodes)]
        self.caches = [
            LRUCache(capacity_bytes=cache_bytes_per_node) for _ in range(nnodes)
        ]
        self._heads: list[tuple[str, int] | None] = [None] * nnodes
        # path -> node of the disk physically holding the file
        self.placement: dict[str, int] = {}

    def _disk_time(self, node: int, path: str, offset: int, nbytes: int) -> float:
        seek = 0.0
        if self._heads[node] != (path, offset):
            seek = self.seek_time
        self._heads[node] = (path, offset + nbytes)
        return seek + nbytes / self.disk_bandwidth

    def _place(self, path: str, node: int) -> int:
        if self.scatter_mode:
            self.placement.setdefault(path, node)  # recorded for reporting
            return node
        return self.placement.setdefault(path, node)

    def _service_meta(self, op: str, path: str, node: int, ready_time: float) -> float:
        if op in ("create", "open"):
            self._place(path, self.node_of_client(node) % self.nnodes)
        return ready_time + self.metadata_time

    def _service_write(
        self, path: str, offset: int, nbytes: int, node: int, ready_time: float
    ) -> float:
        if nbytes == 0:
            return ready_time
        home = self._place(path, self.node_of_client(node) % self.nnodes)
        t = ready_time + self.request_cpu_time
        dur = self._disk_time(home, path, offset, nbytes)
        _, done = self.disks[home].serve(t, dur)
        self.caches[home].populate(path, offset, nbytes)
        return done

    def _service_read(
        self, path: str, offset: int, nbytes: int, node: int, ready_time: float
    ) -> float:
        if nbytes == 0:
            return ready_time
        home = self._place(path, self.node_of_client(node) % self.nnodes)
        t = ready_time + self.request_cpu_time
        missing = self.caches[home].lookup(path, offset, nbytes)
        if missing > 0:
            dur = self._disk_time(home, path, offset, missing)
            _, t = self.disks[home].serve(t, dur)
        return t

    def reset_timing(self) -> None:
        for d in self.disks:
            d.reset()
        self._heads = [None] * self.nnodes

    def files_needing_integration(self) -> dict[int, list[str]]:
        """Which files sit on which node's private disk (paper's caveat)."""
        by_node: dict[int, list[str]] = {}
        for path, node in sorted(self.placement.items()):
            by_node.setdefault(node, []).append(path)
        return by_node

    def describe(self) -> str:
        return f"{self.name}: {self.nnodes} private node-local disks"
