"""Access-pattern classification (the paper's Section 3.1 analysis).

The paper's central observation: ENZO's arrays fall into two classes --

* **regular** -- the 3-D baryon fields, partitioned (Block, Block, Block);
  every rank's piece is a subarray of the global array, so collective I/O
  with subarray file views applies;
* **irregular** -- the 1-D particle arrays, partitioned by particle
  position; no closed-form per-rank mapping exists, so the right treatment
  is block-wise contiguous I/O plus redistribution (read) or a parallel
  sort plus block-wise I/O (write).

This module classifies observed per-rank access descriptors into those
classes (plus plain ``contiguous``), which the optimizer keys on.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Optional, Sequence

import numpy as np

__all__ = ["PatternClass", "AccessDescriptor", "classify_accesses"]


class PatternClass(Enum):
    """How a distributed array is carved among ranks."""

    CONTIGUOUS = "contiguous"  # each rank one contiguous range
    REGULAR_BLOCK = "regular_block"  # n-D (Block, ..., Block) subarrays
    IRREGULAR = "irregular"  # anything position/value dependent


@dataclass(frozen=True)
class AccessDescriptor:
    """One rank's declared access to one global array.

    For n-D block accesses, ``starts``/``subsizes`` describe the subarray;
    for 1-D accesses they are 1-tuples.  ``indices`` is set instead when the
    selection is an explicit element list (the irregular case).
    """

    global_shape: tuple[int, ...]
    starts: Optional[tuple[int, ...]] = None
    subsizes: Optional[tuple[int, ...]] = None
    indices: Optional[tuple[int, ...]] = None

    def __post_init__(self) -> None:
        if (self.starts is None) != (self.subsizes is None):
            raise ValueError("starts and subsizes must be given together")
        if self.starts is None and self.indices is None:
            raise ValueError("descriptor needs either a subarray or indices")
        if self.starts is not None and self.indices is not None:
            raise ValueError("descriptor cannot be both subarray and indices")
        if self.starts is not None:
            if not (
                len(self.starts) == len(self.subsizes) == len(self.global_shape)
            ):
                raise ValueError("rank mismatch")
            for s, n, g in zip(self.starts, self.subsizes, self.global_shape):
                if s < 0 or n < 0 or s + n > g:
                    raise ValueError("subarray outside the global array")

    @property
    def nelements(self) -> int:
        if self.indices is not None:
            return len(self.indices)
        return int(np.prod(self.subsizes))


def classify_accesses(
    descriptors: Sequence[AccessDescriptor],
) -> PatternClass:
    """Classify the union of all ranks' accesses to one array.

    * every descriptor an explicit index list -> IRREGULAR;
    * subarrays that tile the full array and are contiguous in the flat
      file order (1-D splits, or splits along the first axis only)
      -> CONTIGUOUS;
    * subarrays that tile the full array -> REGULAR_BLOCK;
    * anything else (overlap, holes, mixed kinds) -> IRREGULAR.
    """
    if not descriptors:
        raise ValueError("no descriptors to classify")
    if any(d.indices is not None for d in descriptors):
        return PatternClass.IRREGULAR
    shape = descriptors[0].global_shape
    if any(d.global_shape != shape for d in descriptors):
        return PatternClass.IRREGULAR
    # Exact-cover check on a counting grid (coarse but exact: benchmark
    # decompositions have at most a few thousand blocks).
    cover = np.zeros(shape, dtype=np.int16)
    for d in descriptors:
        sel = tuple(slice(s, s + n) for s, n in zip(d.starts, d.subsizes))
        cover[sel] += 1
    if not (cover == 1).all():
        return PatternClass.IRREGULAR
    # Contiguous iff every block spans the full extent of all axes but the
    # first (row-major order) -- then each rank's bytes are one file run.
    def is_contig(d: AccessDescriptor) -> bool:
        return all(
            s == 0 and n == g
            for s, n, g in list(zip(d.starts, d.subsizes, shape))[1:]
        )

    if all(is_contig(d) for d in descriptors):
        return PatternClass.CONTIGUOUS
    return PatternClass.REGULAR_BLOCK
