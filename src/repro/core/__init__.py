"""The paper's primary contribution as a reusable library.

* :mod:`~repro.core.access_pattern` -- regular/irregular classification;
* :mod:`~repro.core.metadata` -- the array-metadata registry (rank, dims,
  pattern, access order);
* :mod:`~repro.core.optimizer` -- metadata -> per-array I/O plan;
* :mod:`~repro.core.trace` / :mod:`~repro.core.report` -- I/O tracing and
  Pablo-style analysis reports.
"""

from .access_pattern import AccessDescriptor, PatternClass, classify_accesses
from .mdms import MDMS, AccessHistory
from .metadata import ArrayMetadata, MetadataRegistry
from .optimizer import ArrayPlan, IOPlan, Optimizer
from .report import format_table, format_trace_report
from .trace import IOEvent, IOTrace, trace_filesystem

__all__ = [
    "AccessDescriptor",
    "MDMS",
    "AccessHistory",
    "PatternClass",
    "classify_accesses",
    "ArrayMetadata",
    "MetadataRegistry",
    "ArrayPlan",
    "IOPlan",
    "Optimizer",
    "IOEvent",
    "IOTrace",
    "trace_filesystem",
    "format_table",
    "format_trace_report",
]
