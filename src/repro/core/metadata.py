"""The application-metadata registry (paper Sections 3.1-3.2).

"When analyzing the I/O characteristics of the ENZO simulation, several
useful metadata are discovered: the rank and dimensions of data arrays, the
access patterns of arrays, and the data access order.  With the help of
these metadata, the proper optimal I/O strategies can be determined."

:class:`ArrayMetadata` records exactly those facts for one array;
:class:`MetadataRegistry` holds them per (grid, array) and preserves the
fixed access order.  The :mod:`repro.core.optimizer` consumes this registry
to emit an I/O plan; the MDMS of ref [7] is the same idea as a service.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .access_pattern import PatternClass

__all__ = ["ArrayMetadata", "MetadataRegistry"]


@dataclass(frozen=True)
class ArrayMetadata:
    """What the optimizer needs to know about one distributed array."""

    name: str
    rank: int
    dims: tuple[int, ...]
    dtype: str
    pattern: PatternClass
    #: position in the fixed per-grid access order
    order_index: int

    def __post_init__(self) -> None:
        if self.rank != len(self.dims):
            raise ValueError(f"rank {self.rank} != len(dims {self.dims})")
        np.dtype(self.dtype)  # validates

    @property
    def nbytes(self) -> int:
        return int(np.prod(self.dims)) * np.dtype(self.dtype).itemsize


class MetadataRegistry:
    """Ordered collection of array metadata, grouped by grid key."""

    def __init__(self) -> None:
        self._arrays: dict[tuple, ArrayMetadata] = {}
        self._order: list[tuple] = []

    def register(
        self,
        grid_key,
        name: str,
        dims: tuple[int, ...],
        dtype,
        pattern: PatternClass,
    ) -> ArrayMetadata:
        """Record one array; registration order defines access order."""
        key = (grid_key, name)
        if key in self._arrays:
            raise ValueError(f"array {key} already registered")
        md = ArrayMetadata(
            name=name,
            rank=len(dims),
            dims=tuple(int(d) for d in dims),
            dtype=np.dtype(dtype).name,
            pattern=pattern,
            order_index=len(self._order),
        )
        self._arrays[key] = md
        self._order.append(key)
        return md

    def lookup(self, grid_key, name: str) -> ArrayMetadata:
        return self._arrays[(grid_key, name)]

    def arrays(self, grid_key=None) -> list[ArrayMetadata]:
        """All arrays in access order, optionally for one grid."""
        keys = self._order if grid_key is None else [
            k for k in self._order if k[0] == grid_key
        ]
        return [self._arrays[k] for k in keys]

    def items(self) -> list:
        """(key, metadata) pairs in access order; key is (grid_key, name)."""
        return [(k, self._arrays[k]) for k in self._order]

    def grid_keys(self) -> list:
        seen: list = []
        for g, _ in self._order:
            if g not in seen:
                seen.append(g)
        return seen

    def total_nbytes(self) -> int:
        return sum(a.nbytes for a in self._arrays.values())

    def __len__(self) -> int:
        return len(self._arrays)

    def __contains__(self, key) -> bool:
        return tuple(key) in self._arrays
