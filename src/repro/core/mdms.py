"""Meta-Data Management System (the paper's stated future work, ref [7]).

"Our future work, on application level, includes using Meta-Data Management
System (MDMS) on AMR applications to develop a powerful I/O system with the
help of the collected metadata."

The MDMS of Liao/Shen/Choudhary is a persistent database that sits beside
the application: it stores what is known about every dataset (rank, dims,
pattern, access order) together with observed access history, and answers
"how should this array be accessed?" without the application hard-coding a
strategy.  This module implements that loop over the simulated stack:

* :class:`MDMS` persists an application's :class:`MetadataRegistry`,
  per-array access statistics and the optimizer's plans **into the
  simulated file system** (a real serialized database file, so it survives
  across simulated runs exactly like the real MDMS's relational tables);
* ``record_run`` folds a new I/O trace into the stored history;
* ``advise`` returns the per-array plan, re-optimised whenever new
  metadata arrives, plus history-derived hints (observed request sizes ->
  suggested collective-buffer and sieving sizes).
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass, field

from ..pfs.base import FileSystem
from .access_pattern import PatternClass
from .metadata import ArrayMetadata, MetadataRegistry
from .optimizer import IOPlan, Optimizer
from .trace import IOTrace

__all__ = ["MDMS", "AccessHistory"]


@dataclass
class AccessHistory:
    """Aggregated observations for one application's I/O."""

    runs: int = 0
    total_read_requests: int = 0
    total_write_requests: int = 0
    total_bytes_read: int = 0
    total_bytes_written: int = 0
    median_write_size: int = 0
    median_read_size: int = 0
    sequential_write_fraction: float = 0.0

    def fold(self, trace: IOTrace) -> None:
        """Merge one run's trace into the history."""
        self.runs += 1
        reads = trace.request_sizes("read")
        writes = trace.request_sizes("write")
        self.total_read_requests += len(reads)
        self.total_write_requests += len(writes)
        self.total_bytes_read += int(reads.sum()) if len(reads) else 0
        self.total_bytes_written += int(writes.sum()) if len(writes) else 0
        if len(writes):
            self.median_write_size = int(sorted(writes)[len(writes) // 2])
        if len(reads):
            self.median_read_size = int(sorted(reads)[len(reads) // 2])
        self.sequential_write_fraction = trace.sequential_fraction("write")


class MDMS:
    """A persistent metadata service over a (simulated) file system."""

    SCHEMA_VERSION = 1

    def __init__(self, fs: FileSystem, db_path: str = ".mdms.db"):
        self.fs = fs
        self.db_path = db_path
        self._apps: dict[str, dict] = {}
        if fs.exists(db_path):
            self._load()

    # -- registration -----------------------------------------------------

    def register_application(
        self, app: str, registry: MetadataRegistry, *, stripe_size: int | None = None
    ) -> IOPlan:
        """Store (or refresh) an application's metadata; returns its plan."""
        entry = self._apps.setdefault(
            app, {"registry": None, "history": AccessHistory(), "stripe": None}
        )
        entry["registry"] = registry
        if stripe_size is not None:
            entry["stripe"] = stripe_size
        plan = Optimizer(stripe_size=entry["stripe"]).plan(registry)
        entry["plan"] = plan
        self._persist()
        return plan

    def record_run(self, app: str, trace: IOTrace) -> None:
        """Fold one run's observed I/O into the application's history."""
        entry = self._require(app)
        entry["history"].fold(trace)
        self._persist()

    # -- queries ----------------------------------------------------------------

    def applications(self) -> list[str]:
        return sorted(self._apps)

    def registry(self, app: str) -> MetadataRegistry:
        return self._require(app)["registry"]

    def history(self, app: str) -> AccessHistory:
        return self._require(app)["history"]

    def advise(self, app: str, grid_key=None, array_name: str | None = None):
        """The stored plan -- whole, or for one array."""
        plan: IOPlan = self._require(app)["plan"]
        if array_name is None:
            return plan
        md = self.registry(app).lookup(grid_key, array_name)
        return plan.plan_for(md.name)

    def suggest_hints(self, app: str) -> dict:
        """History-driven hint values (the 'powerful I/O system' loop).

        Collective buffers want to hold many observed requests; sieving
        buffers want to be an order of magnitude above the median request.
        """
        h = self._require(app)["history"]
        out: dict = {}
        if h.median_write_size:
            out["cb_buffer_size"] = max(1 << 20, 64 * h.median_write_size)
        if h.median_read_size:
            out["ind_rd_buffer_size"] = max(1 << 20, 32 * h.median_read_size)
        if h.sequential_write_fraction < 0.5 and h.total_write_requests:
            out["ds_write"] = True  # mostly non-sequential: sieve writes
        stripe = self._require(app)["stripe"]
        if stripe:
            out["cb_align"] = stripe
        return out

    # -- persistence (a real file in the simulated FS) --------------------------

    def _require(self, app: str) -> dict:
        try:
            return self._apps[app]
        except KeyError:
            raise KeyError(f"unknown application {app!r}") from None

    def _persist(self) -> None:
        payload = {"version": self.SCHEMA_VERSION, "apps": {}}
        for app, entry in self._apps.items():
            reg = entry["registry"]
            payload["apps"][app] = {
                "stripe": entry["stripe"],
                "history": entry["history"],
                "arrays": [
                    (key, md.dims, md.dtype, md.pattern.value)
                    for key, md in reg.items()
                ]
                if reg is not None
                else [],
            }
        blob = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
        if not self.fs.exists(self.db_path):
            self.fs.create(self.db_path)
        self.fs.write(self.db_path, 0, blob)

    def _load(self) -> None:
        size = self.fs.file_size(self.db_path)
        blob, _ = self.fs.read(self.db_path, 0, size)
        payload = pickle.loads(blob)
        if payload.get("version") != self.SCHEMA_VERSION:
            raise ValueError(
                f"MDMS schema version {payload.get('version')} unsupported"
            )
        for app, stored in payload["apps"].items():
            registry = MetadataRegistry()
            for (grid_key, name), dims, dtype, pattern in stored["arrays"]:
                registry.register(
                    grid_key, name, dims, dtype, PatternClass(pattern)
                )
            plan = Optimizer(stripe_size=stored["stripe"]).plan(registry)
            self._apps[app] = {
                "registry": registry,
                "history": stored["history"],
                "stripe": stored["stripe"],
                "plan": plan,
            }
