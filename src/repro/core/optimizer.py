"""The metadata-driven I/O strategy optimizer.

This is the paper's contribution distilled into a reusable decision
procedure: given the registered array metadata (rank, dims, pattern class,
access order), emit a per-array plan --

* regular n-D block partitions  -> collective two-phase I/O with subarray
  file views;
* irregular (position-keyed) 1-D arrays -> parallel sort by key +
  independent block-wise writes; block-wise reads + redistribution;
* per-rank contiguous arrays -> plain independent contiguous I/O (the
  block-wise pattern "always results in contiguous access", so collective
  buffering would only add overhead);

plus the file-level advice of Section 3.2.2: put all grids in one shared
file (better restart reads and contiguous tape migration), and align
collective file domains to the file-system stripe when one is known.

The MDMS of ref [7] (the stated future work) is this optimizer fed from a
persistent store; :class:`IOPlan.explain` produces the human-readable
rationale.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .access_pattern import PatternClass
from .metadata import ArrayMetadata, MetadataRegistry

__all__ = ["ArrayPlan", "IOPlan", "Optimizer"]


@dataclass(frozen=True)
class ArrayPlan:
    """The chosen treatment for one array."""

    array: ArrayMetadata
    method: str  # "collective_subarray" | "sort_blockwise" | "independent_contiguous"
    collective: bool
    rationale: str


@dataclass
class IOPlan:
    """A complete plan: per-array methods plus file-level advice."""

    arrays: list = field(default_factory=list)
    shared_file: bool = True
    align_to_stripe: int | None = None
    notes: list = field(default_factory=list)

    def plan_for(self, name: str) -> ArrayPlan:
        for p in self.arrays:
            if p.array.name == name:
                return p
        raise KeyError(name)

    def recommended_hints(self):
        """MPI-IO hints that realise this plan's file-level advice.

        Stripe alignment (when a stripe is known) plus write-behind
        buffering for the independent contiguous streams the plan keeps
        out of collective I/O.  The insights auto-tuner arrives at the
        same knobs from the trace side; this is the metadata side.
        """
        from ..mpiio.hints import Hints

        hints = Hints()
        if self.align_to_stripe:
            hints = hints.replace(
                cb_align=self.align_to_stripe,
                striping_unit=self.align_to_stripe,
            )
        if any(not a.collective for a in self.arrays):
            hints = hints.replace(wb_buffer_size=4 * 1024 * 1024)
        return hints

    def explain(self) -> str:
        lines = ["I/O plan:"]
        for p in self.arrays:
            mode = "collective" if p.collective else "independent"
            lines.append(
                f"  {p.array.name} (rank {p.array.rank}, {p.array.pattern.value}): "
                f"{p.method} [{mode}] -- {p.rationale}"
            )
        lines.append(
            "  file: single shared file"
            if self.shared_file
            else "  file: one file per grid"
        )
        if self.align_to_stripe:
            lines.append(
                f"  align collective file domains to {self.align_to_stripe} B stripes"
            )
        lines.extend(f"  note: {n}" for n in self.notes)
        return "\n".join(lines)


class Optimizer:
    """Derives an :class:`IOPlan` from registered metadata."""

    def __init__(self, stripe_size: int | None = None):
        self.stripe_size = stripe_size

    def plan(self, registry: MetadataRegistry) -> IOPlan:
        plan = IOPlan(align_to_stripe=self.stripe_size)
        for md in registry.arrays():
            plan.arrays.append(self._plan_array(md))
        if any(a.method == "collective_subarray" for a in plan.arrays):
            plan.notes.append(
                "two-phase collective I/O merges the (Block,...,Block) "
                "pieces into one large contiguous access per aggregator"
            )
        if any(a.method == "sort_blockwise" for a in plan.arrays):
            plan.notes.append(
                "irregular arrays are written sorted by their global key so "
                "block-wise access is contiguous per rank"
            )
        return plan

    def _plan_array(self, md: ArrayMetadata) -> ArrayPlan:
        if md.pattern is PatternClass.REGULAR_BLOCK:
            return ArrayPlan(
                array=md,
                method="collective_subarray",
                collective=True,
                rationale=(
                    "regular block partition of a multi-dimensional array: "
                    "each rank's piece is strided in the file, so collective "
                    "two-phase I/O with a subarray file view avoids the many "
                    "small non-contiguous requests"
                ),
            )
        if md.pattern is PatternClass.IRREGULAR:
            return ArrayPlan(
                array=md,
                method="sort_blockwise",
                collective=False,
                rationale=(
                    "position-dependent partition has no closed-form file "
                    "mapping: sort globally by key then write block-wise "
                    "(contiguous per rank, so non-collective I/O suffices); "
                    "read block-wise and redistribute"
                ),
            )
        return ArrayPlan(
            array=md,
            method="independent_contiguous",
            collective=False,
            rationale=(
                "each rank's access is already one contiguous file range; "
                "collective buffering would add communication for no gain"
            ),
        )
