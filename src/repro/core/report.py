"""Human-readable I/O analysis reports (Pablo-style, ref [20]).

Turns an :class:`~repro.core.trace.IOTrace` into the kind of summary the
paper's analysis section is built from: volumes, request-size histograms,
sequentiality, bandwidth, and per-node skew.
"""

from __future__ import annotations

from .trace import IOTrace

__all__ = ["format_trace_report", "format_table"]


def format_table(headers: list[str], rows: list[list]) -> str:
    """Plain-text table with right-aligned numeric columns."""
    cells = [[str(c) for c in row] for row in rows]
    widths = [
        max(len(h), *(len(r[i]) for r in cells)) if cells else len(h)
        for i, h in enumerate(headers)
    ]
    def fmt(row):
        return "  ".join(c.rjust(w) for c, w in zip(row, widths))
    lines = [fmt(headers), fmt(["-" * w for w in widths])]
    lines.extend(fmt(r) for r in cells)
    return "\n".join(lines)


def _mb(nbytes: float) -> str:
    return f"{nbytes / 2**20:.2f} MB"


def format_trace_report(trace: IOTrace, title: str = "I/O activity") -> str:
    """The full analysis report for one traced run."""
    lines = [title, "=" * len(title)]
    for op in ("read", "write"):
        events = trace.ops(op)
        lines.append(f"\n{op.upper()}: {len(events)} requests")
        if not events:
            continue
        sizes = trace.request_sizes(op)
        lines.append(f"  volume          : {_mb(trace.total_bytes(op))}")
        lines.append(
            f"  request size    : min {sizes.min()} B / "
            f"median {int(sorted(sizes)[len(sizes) // 2])} B / max {sizes.max()} B"
        )
        lines.append(
            f"  sequential frac : {trace.sequential_fraction(op):.2f}"
        )
        bw = trace.bandwidth(op)
        lines.append(f"  bandwidth       : {_mb(bw)}/s over {trace.elapsed(op):.3f} s")
        lines.append("  size histogram  :")
        for bucket, count in trace.size_histogram(op).items():
            if count:
                lines.append(f"    {bucket:>9}: {count}")
        per_node = trace.per_node_bytes(op)
        if len(per_node) > 1:
            top = max(per_node.values())
            mean = sum(per_node.values()) / len(per_node)
            lines.append(
                f"  node skew       : max/mean = {top / mean:.2f} "
                f"over {len(per_node)} nodes"
            )
    return "\n".join(lines)
