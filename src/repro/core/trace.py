"""I/O tracing and request statistics (Pablo-style, ref [20]).

The paper's analysis started from traces of the ENZO code's I/O activity.
:class:`IOTrace` records every file-system request of a simulated run --
operation, offset, size, issue/finish virtual times, rank -- and computes
the aggregate statistics the analysis rests on: request-size distribution,
sequential fraction, per-rank skew, and achieved bandwidth.

Attach with :func:`trace_filesystem` (wraps a FileSystem's timing hooks),
or record manually.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, field

import numpy as np

__all__ = ["IOEvent", "IOTrace", "trace_filesystem"]


@dataclass(frozen=True)
class IOEvent:
    """One traced request."""

    op: str  # "read" | "write" | "meta" | "recovery"
    path: str
    offset: int
    nbytes: int
    start: float
    end: float
    node: int
    #: metadata sub-operation ("open" | "create" | "delete") for op="meta",
    #: recovery kind ("retry" | "recovered" | "degraded" | "giveup" |
    #: "slow-op") for op="recovery"; empty for data requests; optional so
    #: pre-existing traces still load.
    kind: str = ""
    #: retry attempt number for op="recovery" events (0 otherwise).
    attempt: int = 0

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass
class IOTrace:
    """An append-only request log with derived statistics."""

    events: list = field(default_factory=list)

    def record(self, **kw) -> None:
        self.events.append(IOEvent(**kw))

    # -- selections ---------------------------------------------------------

    def ops(self, op: str) -> list:
        return [e for e in self.events if e.op == op]

    def recoveries(self, kind: str | None = None) -> list:
        """Recovery events (retry/recovered/degraded/giveup/slow-op)."""
        events = self.ops("recovery")
        if kind is None:
            return events
        return [e for e in events if e.kind == kind]

    def recovery_summary(self) -> dict[str, int]:
        """Recovery-event counts by kind."""
        out: dict[str, int] = {}
        for e in self.ops("recovery"):
            out[e.kind] = out.get(e.kind, 0) + 1
        return out

    # -- statistics -----------------------------------------------------------

    def request_sizes(self, op: str) -> np.ndarray:
        return np.array([e.nbytes for e in self.ops(op)], dtype=np.int64)

    def total_bytes(self, op: str) -> int:
        return int(self.request_sizes(op).sum()) if self.ops(op) else 0

    def sequential_fraction(self, op: str) -> float:
        """Fraction of requests starting where the previous one (per file)
        ended -- the metric that exposes small-strided access patterns."""
        events = self.ops(op)
        if not events:
            return 0.0
        last_end: dict[str, int] = {}
        sequential = 0
        for e in events:
            if last_end.get(e.path) == e.offset:
                sequential += 1
            last_end[e.path] = e.offset + e.nbytes
        return sequential / len(events)

    def size_histogram(self, op: str, edges=None) -> dict[str, int]:
        """Requests bucketed by size decade."""
        if edges is None:
            edges = [0, 1 << 10, 1 << 14, 1 << 17, 1 << 20, 1 << 62]
            labels = ["<1K", "1K-16K", "16K-128K", "128K-1M", ">=1M"]
        else:
            labels = [f"[{a},{b})" for a, b in zip(edges, edges[1:])]
        sizes = self.request_sizes(op)
        counts, _ = np.histogram(sizes, bins=edges)
        return dict(zip(labels, counts.tolist()))

    def elapsed(self, op: str | None = None) -> float:
        events = self.events if op is None else self.ops(op)
        if not events:
            return 0.0
        return max(e.end for e in events) - min(e.start for e in events)

    def bandwidth(self, op: str) -> float:
        """Aggregate achieved bytes/second over the op's active interval."""
        t = self.elapsed(op)
        return self.total_bytes(op) / t if t > 0 else 0.0

    def alignment_fraction(self, op: str, boundary: int) -> float:
        """Fraction of ``op`` requests whose file offset falls on a
        ``boundary``-byte boundary (stripe / file-system block).

        Misaligned requests straddle stripe units and pay extra server
        visits and lock traffic; 1.0 is returned for an empty selection so
        "no requests" never reads as "misaligned requests".
        """
        if boundary < 1:
            raise ValueError("boundary must be >= 1")
        events = self.ops(op)
        if not events:
            return 1.0
        aligned = sum(1 for e in events if e.offset % boundary == 0)
        return aligned / len(events)

    def metadata_ratio(self) -> float:
        """Metadata operations (open/create/delete) per data request.

        The paper attributes HDF5's slowdown to exactly this interleaving
        of metadata and data traffic; a high ratio means the run spends its
        requests on namespace churn rather than payload.  Returns 0.0 for
        a trace with no data requests (all-metadata traces are reported as
        ratio = number of metadata ops).
        """
        meta = len(self.ops("meta"))
        data = len(self.ops("read")) + len(self.ops("write"))
        if data == 0:
            return float(meta)
        return meta / data

    def paths(self, op: str | None = None) -> list[str]:
        """Distinct file paths touched, in first-seen order."""
        events = self.events if op is None else self.ops(op)
        seen: dict[str, None] = {}
        for e in events:
            seen.setdefault(e.path, None)
        return list(seen)

    def per_node_bytes(self, op: str) -> dict[int, int]:
        out: dict[int, int] = {}
        for e in self.ops(op):
            out[e.node] = out.get(e.node, 0) + e.nbytes
        return out

    def __len__(self) -> int:
        return len(self.events)

    # -- canonical form / golden digests ------------------------------------

    def canonical_events(self) -> list[tuple]:
        """The event stream as plain tuples, in recorded order.

        One tuple per event: ``(op, path, offset, nbytes, start, end, node,
        kind, attempt)`` with times rendered by ``repr`` (full float
        precision, no locale or formatting ambiguity).  Recorded order is
        deliberately preserved rather than sorted: the simulated run is
        supposed to be deterministic, so any reordering between two runs of
        the same program (dict/set iteration order, scheduling drift) is a
        bug this form must expose, not mask.
        """
        return [
            (
                e.op, e.path, int(e.offset), int(e.nbytes),
                repr(float(e.start)), repr(float(e.end)),
                int(e.node), e.kind, int(e.attempt),
            )
            for e in self.events
        ]

    def digest(self) -> str:
        """SHA-256 over the canonical event stream (``"sha256:<hex>"``).

        Two runs of the same SPMD program on the same machine model must
        produce equal digests -- this is the golden-trace determinism gate
        the regression harness compares across runs and against the
        committed baseline.
        """
        h = hashlib.sha256()
        for ev in self.canonical_events():
            h.update(json.dumps(ev, separators=(",", ":")).encode())
            h.update(b"\n")
        return f"sha256:{h.hexdigest()}"

    # -- serialisation ------------------------------------------------------

    def to_json(self) -> str:
        """Export as JSON (one event object per entry, Pablo-SDDF-like)."""
        return json.dumps([asdict(e) for e in self.events])

    @classmethod
    def from_json(cls, raw: str) -> "IOTrace":
        trace = cls()
        for entry in json.loads(raw):
            trace.record(**entry)
        return trace

    def save(self, path) -> None:
        """Write the JSON export to a real (host) file."""
        with open(path, "w") as f:
            f.write(self.to_json())

    @classmethod
    def load(cls, path) -> "IOTrace":
        with open(path) as f:
            return cls.from_json(f.read())


def trace_filesystem(fs, *, include_meta: bool = False) -> IOTrace:
    """Instrument a FileSystem in place; returns the live trace.

    Wraps the private timing hooks so every read/write lands in the trace
    with its virtual start/finish times.  With ``include_meta=True``,
    namespace operations (open/create/delete) are recorded as ``op="meta"``
    events too -- the raw material for metadata-churn diagnosis.

    List-I/O requests are recorded one event per segment, tagged with the
    request's overall start/finish (segments share one wire request).

    The returned trace carries a ``detach()`` callable that restores the
    original hooks, so a file system can be traced for one phase only.
    """
    trace = IOTrace()
    orig_read, orig_write = fs._service_read, fs._service_write
    orig_list, orig_meta = fs._service_list, fs._service_meta
    orig_recovery = fs._service_recovery
    in_list = False  # list-I/O may fall back to per-segment service hooks

    def traced_read(path, offset, nbytes, node, ready_time):
        done = orig_read(path, offset, nbytes, node, ready_time)
        if not in_list:
            trace.record(
                op="read", path=path, offset=offset, nbytes=nbytes,
                start=ready_time, end=done, node=node,
            )
        return done

    def traced_write(path, offset, nbytes, node, ready_time):
        done = orig_write(path, offset, nbytes, node, ready_time)
        if not in_list:
            trace.record(
                op="write", path=path, offset=offset, nbytes=nbytes,
                start=ready_time, end=done, node=node,
            )
        return done

    def traced_list(path, segments, node, ready_time, op):
        nonlocal in_list
        in_list = True
        try:
            done = orig_list(path, segments, node, ready_time, op)
        finally:
            in_list = False
        for off, n in segments:
            trace.record(
                op=op, path=path, offset=off, nbytes=n,
                start=ready_time, end=done, node=node,
            )
        return done

    def traced_meta(op, path, node, ready_time):
        done = orig_meta(op, path, node, ready_time)
        trace.record(
            op="meta", path=path, offset=0, nbytes=0,
            start=ready_time, end=done, node=node, kind=op,
        )
        return done

    def traced_recovery(path, kind, node, time, attempt, nbytes):
        orig_recovery(path, kind, node, time, attempt, nbytes)
        trace.record(
            op="recovery", path=path, offset=0, nbytes=nbytes,
            start=time, end=time, node=node, kind=kind, attempt=attempt,
        )

    fs._service_read = traced_read
    fs._service_write = traced_write
    fs._service_list = traced_list
    fs._service_recovery = traced_recovery
    if include_meta:
        fs._service_meta = traced_meta

    def detach():
        fs._service_read, fs._service_write = orig_read, orig_write
        fs._service_list, fs._service_meta = orig_list, orig_meta
        fs._service_recovery = orig_recovery

    trace.detach = detach
    return trace
