"""repro: reproduction of "I/O Analysis and Optimization for an AMR
Cosmology Application" (Li, Liao, Choudhary, Taylor -- CLUSTER 2002).

A complete simulated parallel-I/O stack -- discrete-event SPMD engine,
MPI + MPI-IO (two-phase collective I/O, data sieving, file views), HDF4 and
parallel-HDF5 libraries, striped parallel file systems -- plus an ENZO-like
AMR cosmology application and the paper's metadata-driven I/O optimizer.

Quick start::

    from repro.topology import origin2000
    from repro.bench import build_workload, run_checkpoint_experiment
    from repro.enzo import HDF4Strategy, MPIIOStrategy

    hierarchy = build_workload("AMR32")
    result = run_checkpoint_experiment(
        origin2000(nprocs=8), MPIIOStrategy(), hierarchy
    )
    print(result.write_time, result.read_time)
"""

from . import (
    amr,
    bench,
    core,
    enzo,
    hdf4,
    hdf5,
    mpi,
    mpiio,
    pfs,
    resilience,
    sim,
    topology,
)

__version__ = "1.0.0"

__all__ = [
    "sim",
    "topology",
    "pfs",
    "mpi",
    "mpiio",
    "hdf4",
    "hdf5",
    "amr",
    "enzo",
    "core",
    "bench",
    "resilience",
    "__version__",
]
