"""Exception hierarchy for the discrete-event simulation engine."""

from __future__ import annotations


class SimError(Exception):
    """Base class for all simulation-engine errors."""


class DeadlockError(SimError):
    """Raised when every live rank is blocked and none can make progress.

    This corresponds to a real MPI deadlock (e.g. two ranks both calling a
    blocking receive on each other without a matching send).
    """


class RankFailedError(SimError):
    """Raised by :meth:`Engine.run` when one of the SPMD ranks raised.

    The original exception is available as ``__cause__`` and the failing
    rank as :attr:`rank`.
    """

    def __init__(self, rank: int, message: str = ""):
        super().__init__(message or f"rank {rank} raised an exception")
        self.rank = rank


class NotRunningError(SimError):
    """A simulation primitive was called outside of :meth:`Engine.run`."""
