"""Shared-resource timing primitives.

A simulated machine is full of serially-reusable devices: disk spindles, I/O
node service threads, network links.  All of them share one behaviour: a
request that arrives while the device is busy waits, then occupies the device
for a service time.  :class:`Timeline` captures exactly that (an FCFS device
timeline), and the devices in :mod:`repro.pfs` and :mod:`repro.topology`
compose it with their own service-time formulas.

Timelines are pure timing state -- they do not block threads.  Callers are
expected to invoke them from a scheduling point (see
:meth:`repro.sim.engine.Proc.schedule_point`) so that requests arrive in
global virtual-time order, which makes FCFS well defined and deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["Timeline", "BandwidthLink", "ParallelServer"]


@dataclass
class Timeline:
    """An FCFS serially-reusable device.

    Attributes
    ----------
    busy_until:
        Virtual time at which the device next becomes idle.
    busy_time:
        Total time the device has spent serving requests (utilisation).
    requests:
        Number of requests served.
    """

    name: str = "device"
    busy_until: float = 0.0
    busy_time: float = 0.0
    requests: int = 0

    def reset(self) -> None:
        """Forget all timing state (start a fresh measurement window)."""
        self.busy_until = 0.0
        self.busy_time = 0.0
        self.requests = 0

    def serve(self, ready_time: float, duration: float) -> tuple[float, float]:
        """Serve a request that is ready at ``ready_time`` for ``duration``.

        Returns ``(start, end)``: when service actually began (after any
        queueing delay) and when it completed.  The device is marked busy
        until ``end``.
        """
        if duration < 0:
            raise ValueError(f"negative service duration: {duration}")
        start = max(ready_time, self.busy_until)
        end = start + duration
        self.busy_until = end
        self.busy_time += duration
        self.requests += 1
        return start, end

    def peek(self, ready_time: float) -> float:
        """When would a request ready at ``ready_time`` start service?"""
        return max(ready_time, self.busy_until)


@dataclass
class BandwidthLink:
    """A shared link with per-message latency and finite bandwidth.

    Transfer time for ``nbytes`` is ``latency + nbytes / bandwidth``; messages
    queue FCFS on the link for the bandwidth portion (the latency portion is
    pipelined and does not occupy the link).
    """

    name: str = "link"
    latency: float = 0.0  # seconds
    bandwidth: float = float("inf")  # bytes / second
    timeline: Timeline = field(default_factory=Timeline)
    bytes_moved: int = 0

    def transfer(self, ready_time: float, nbytes: int) -> float:
        """Return the arrival (completion) time of an ``nbytes`` message."""
        if nbytes < 0:
            raise ValueError(f"negative message size: {nbytes}")
        occupancy = nbytes / self.bandwidth if self.bandwidth != float("inf") else 0.0
        _, end = self.timeline.serve(ready_time, occupancy)
        self.bytes_moved += nbytes
        return end + self.latency

    def transfer_time(self, nbytes: int) -> float:
        """Uncontended transfer time for ``nbytes`` (no queueing)."""
        if self.bandwidth == float("inf"):
            return self.latency
        return self.latency + nbytes / self.bandwidth


class ParallelServer:
    """``k`` identical FCFS servers fed from one queue (e.g. a disk array).

    Requests are dispatched to whichever server frees up first.  With
    ``k == 1`` this degenerates to :class:`Timeline`.
    """

    def __init__(self, name: str = "servers", k: int = 1):
        if k < 1:
            raise ValueError("need at least one server")
        self.name = name
        self.servers = [Timeline(name=f"{name}[{i}]") for i in range(k)]

    def reset(self) -> None:
        """Forget all timing state (start a fresh measurement window)."""
        for s in self.servers:
            s.reset()

    def serve(self, ready_time: float, duration: float) -> tuple[float, float]:
        """Serve on the earliest-available server; returns ``(start, end)``."""
        best = min(self.servers, key=lambda s: s.peek(ready_time))
        return best.serve(ready_time, duration)

    @property
    def busy_time(self) -> float:
        return sum(s.busy_time for s in self.servers)

    @property
    def requests(self) -> int:
        return sum(s.requests for s in self.servers)
