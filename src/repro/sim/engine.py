"""Deterministic discrete-event engine for SPMD simulations.

The engine runs ``nprocs`` *virtual processors* (ranks), each as a Python
thread, but admits **exactly one** thread at a time.  Each rank carries a
virtual clock; whenever a rank is about to interact with shared state (send
a message, touch a file-system resource, enter a barrier) it first reaches a
*schedule point* where control is handed to whichever runnable rank currently
has the smallest clock.  Because context switches happen only at schedule
points chosen by the library, and the next rank is always selected by the
total order ``(clock, rank)``, a simulation is fully deterministic: the same
program produces the same event ordering and the same virtual times on every
run, independent of OS thread scheduling.

Two invariants make the model sound:

* shared-state operations are globally time-ordered -- a rank only performs
  one when no other *runnable* rank has a smaller clock, and a blocked rank
  can only be woken to a time at or after its waker's clock;
* pure local computation (``advance``) never needs a context switch, keeping
  the engine cheap for compute-heavy ranks.

This is a conservative parallel-discrete-event design in the spirit of the
sequential simulators used for interconnect and storage research, shrunk to
exactly what the parallel-I/O stack above it needs.
"""

from __future__ import annotations

import heapq
import threading
from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Callable, Optional, Sequence

from .errors import DeadlockError, NotRunningError, RankFailedError

__all__ = ["Engine", "Proc", "ProcState", "current_proc"]


class ProcState(Enum):
    """Life-cycle state of a virtual processor."""

    READY = "ready"  # runnable, waiting to be scheduled
    RUNNING = "running"  # the single currently-executing rank
    BLOCKED = "blocked"  # waiting for a wake() from another rank
    DONE = "done"  # SPMD function returned
    FAILED = "failed"  # SPMD function raised


_tls = threading.local()


def current_proc() -> "Proc":
    """Return the :class:`Proc` of the calling simulation thread.

    Raises :class:`NotRunningError` when called from outside a simulation.
    """
    proc = getattr(_tls, "proc", None)
    if proc is None:
        raise NotRunningError("no simulation rank is active on this thread")
    return proc


@dataclass
class Proc:
    """One virtual processor: a rank with its own virtual clock."""

    engine: "Engine"
    rank: int
    clock: float = 0.0
    state: ProcState = ProcState.READY
    _go: threading.Event = field(default_factory=threading.Event)
    result: Any = None
    error: Optional[BaseException] = None
    # Free-form per-rank scratch space for layers above (MPI mailboxes, ...).
    ns: dict = field(default_factory=dict)

    # -- time ------------------------------------------------------------

    def advance(self, dt: float) -> None:
        """Consume ``dt`` seconds of purely local (compute) virtual time."""
        if dt < 0:
            raise ValueError(f"negative time advance: {dt}")
        self.clock += dt

    def advance_to(self, t: float) -> None:
        """Move the clock forward to ``t`` (no-op if already past it)."""
        if t > self.clock:
            self.clock = t

    # -- scheduling ------------------------------------------------------

    def schedule_point(self) -> None:
        """Yield until this rank has the minimum clock among runnable ranks.

        Call this *immediately before* any operation on shared state so that
        such operations occur in global virtual-time order.
        """
        self.engine._schedule_point(self)

    def block(self) -> None:
        """Suspend this rank until another rank calls :meth:`wake` on it."""
        self.engine._block(self)

    def wake(self, at_time: Optional[float] = None) -> None:
        """Make this (blocked) rank runnable again.

        ``at_time`` advances the woken rank's clock, modelling the time at
        which the unblocking event (message arrival, lock grant) occurs.
        Must be called by the currently running rank (or engine teardown).
        """
        if at_time is not None:
            self.advance_to(at_time)
        if self.state is ProcState.BLOCKED:
            self.state = ProcState.READY
        if self.state is ProcState.READY:
            self.engine._push_ready(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Proc rank={self.rank} t={self.clock:.6f} {self.state.value}>"


class Engine:
    """Owns the virtual processors and enforces deterministic scheduling."""

    def __init__(self, nprocs: int):
        if nprocs < 1:
            raise ValueError("nprocs must be >= 1")
        self.nprocs = nprocs
        self.procs: list[Proc] = [Proc(self, r) for r in range(nprocs)]
        self._mutex = threading.Lock()  # guards state transitions
        self._failure: Optional[RankFailedError] = None
        self._running = False
        self.context_switches = 0
        # Min-heap of (clock, rank) candidates for the next READY rank.
        # Entries are pushed on every transition to READY and invalidated
        # lazily: an entry is live only while its rank is still READY at
        # exactly that clock.  Stale entries (rank moved on, clock changed)
        # are pruned at peek time; value-equal duplicates are harmless.
        self._ready: list[tuple[float, int]] = []

    # -- public API --------------------------------------------------------

    def run(
        self,
        fn: Callable[..., Any],
        args: Sequence[Any] = (),
        kwargs: Optional[dict] = None,
    ) -> list[Any]:
        """Execute ``fn(proc, *args, **kwargs)`` on every rank.

        Returns the list of per-rank return values, indexed by rank.  If any
        rank raises, a :class:`RankFailedError` chaining the original
        exception is raised after all threads have been stopped.
        """
        if self._running:
            raise NotRunningError("engine is already running")
        kwargs = kwargs or {}
        self._running = True
        self._ready.clear()
        threads = []
        # At hundreds of ranks the default (often 8 MiB) thread stacks add
        # up; the simulation call depth is shallow, so a small stack keeps
        # P=1024 runs cheap.  Restored after thread creation.
        old_stack = None
        if self.nprocs >= 256:
            try:
                old_stack = threading.stack_size()
                threading.stack_size(512 * 1024)
            except (ValueError, RuntimeError):
                old_stack = None
        try:
            for proc in self.procs:
                proc.state = ProcState.READY
                self._push_ready(proc)
                t = threading.Thread(
                    target=self._thread_main,
                    args=(proc, fn, args, kwargs),
                    name=f"sim-rank-{proc.rank}",
                    daemon=True,
                )
                threads.append(t)
            # Start every thread; each immediately parks on its event,
            # except the one we hand the baton to.  The stack-size setting
            # is consumed at start() time, so it stays in force until here.
            for t in threads:
                t.start()
        finally:
            if old_stack is not None:
                threading.stack_size(old_stack)
        self.procs[0]._go.set()
        for t in threads:
            t.join()
        self._running = False
        if self._failure is not None:
            failure, self._failure = self._failure, None
            raise failure
        return [p.result for p in self.procs]

    @property
    def max_clock(self) -> float:
        """Largest virtual clock across ranks (the simulation makespan)."""
        return max(p.clock for p in self.procs)

    # -- thread body -------------------------------------------------------

    def _thread_main(self, proc: Proc, fn, args, kwargs) -> None:
        _tls.proc = proc
        proc._go.wait()  # wait for the baton
        proc._go.clear()
        if self._failure is not None:  # aborted before we ever ran
            return
        proc.state = ProcState.RUNNING
        try:
            proc.result = fn(proc, *args, **kwargs)
            proc.state = ProcState.DONE
        except _Abort:
            proc.state = ProcState.FAILED
            return
        except BaseException as exc:  # noqa: BLE001 - reported to caller
            proc.state = ProcState.FAILED
            proc.error = exc
            failure = RankFailedError(proc.rank)
            failure.__cause__ = exc
            with self._mutex:
                if self._failure is None:
                    self._failure = failure
            self._abort_others(proc)
            return
        self._hand_off(proc)

    # -- scheduler internals -------------------------------------------------

    def _push_ready(self, proc: Proc) -> None:
        """Record ``proc`` as a candidate at its current clock."""
        heapq.heappush(self._ready, (proc.clock, proc.rank))

    def _runnable(self, exclude: Proc) -> Optional[Proc]:
        """The READY rank with minimal ``(clock, rank)``, or ``None``.

        Pops stale heap entries (rank no longer READY, or READY at a
        different clock) until the head is live.  Every transition to
        READY pushes a fresh entry, so a READY rank always has at least
        one live entry; callers are never READY themselves, so
        ``exclude`` needs no special handling beyond the state check.
        """
        heap = self._ready
        procs = self.procs
        while heap:
            clock, rank = heap[0]
            p = procs[rank]
            if p.state is ProcState.READY and p.clock == clock and p is not exclude:
                return p
            heapq.heappop(heap)
        return None

    def _schedule_point(self, proc: Proc) -> None:
        while True:
            if self._failure is not None:
                raise _Abort()
            nxt = self._runnable(exclude=proc)
            if nxt is None or (proc.clock, proc.rank) <= (nxt.clock, nxt.rank):
                return
            self._switch(proc, nxt, new_state=ProcState.READY)

    def _block(self, proc: Proc) -> None:
        nxt = self._runnable(exclude=proc)
        if nxt is None:
            # Nobody can wake us: classic deadlock.
            dead = DeadlockError(
                f"rank {proc.rank} blocked at t={proc.clock:.6f} with no "
                f"runnable rank left"
            )
            failure = RankFailedError(proc.rank)
            failure.__cause__ = dead
            with self._mutex:
                if self._failure is None:
                    self._failure = failure
            proc.error = dead
            self._abort_others(proc)
            raise _Abort()
        self._switch(proc, nxt, new_state=ProcState.BLOCKED)
        if self._failure is not None:
            raise _Abort()

    def _switch(self, from_proc: Proc, to_proc: Proc, new_state: ProcState) -> None:
        """Transfer the execution baton from ``from_proc`` to ``to_proc``."""
        self.context_switches += 1
        from_proc.state = new_state
        if new_state is ProcState.READY:
            self._push_ready(from_proc)
        to_proc.state = ProcState.RUNNING
        to_proc._go.set()
        from_proc._go.wait()
        from_proc._go.clear()
        from_proc.state = ProcState.RUNNING

    def _hand_off(self, proc: Proc) -> None:
        """Called when ``proc`` finishes: pass the baton to the next rank."""
        nxt = self._runnable(exclude=proc)
        if nxt is not None:
            nxt.state = ProcState.RUNNING
            nxt._go.set()
        # If no READY rank remains, either all are DONE (normal termination)
        # or the remaining BLOCKED ranks are deadlocked.
        elif any(p.state is ProcState.BLOCKED for p in self.procs):
            victim = next(p for p in self.procs if p.state is ProcState.BLOCKED)
            dead = DeadlockError(
                f"ranks {[p.rank for p in self.procs if p.state is ProcState.BLOCKED]} "
                f"remain blocked after rank {proc.rank} finished"
            )
            failure = RankFailedError(victim.rank)
            failure.__cause__ = dead
            with self._mutex:
                if self._failure is None:
                    self._failure = failure
            self._abort_others(proc)

    def _abort_others(self, proc: Proc) -> None:
        """Release every parked thread so it can observe the failure and exit."""
        for p in self.procs:
            if p is not proc and p.state in (ProcState.READY, ProcState.BLOCKED):
                p._go.set()


class _Abort(BaseException):
    """Internal: unwinds a rank thread after another rank failed."""
