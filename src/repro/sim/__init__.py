"""Deterministic discrete-event engine for SPMD parallel-I/O simulation.

Public surface:

* :class:`Engine` -- runs an SPMD function on ``nprocs`` virtual ranks;
* :class:`Proc` -- the per-rank handle (virtual clock, scheduling);
* :class:`Timeline`, :class:`BandwidthLink`, :class:`ParallelServer` --
  FCFS device/link timing primitives;
* the exception hierarchy in :mod:`repro.sim.errors`.
"""

from .engine import Engine, Proc, ProcState, current_proc
from .errors import DeadlockError, NotRunningError, RankFailedError, SimError
from .resources import BandwidthLink, ParallelServer, Timeline

__all__ = [
    "Engine",
    "Proc",
    "ProcState",
    "current_proc",
    "Timeline",
    "BandwidthLink",
    "ParallelServer",
    "SimError",
    "DeadlockError",
    "RankFailedError",
    "NotRunningError",
]
