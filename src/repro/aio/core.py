"""The background-flush service: config, request objects, progress engine.

One :class:`ProgressEngine` per rank lives in the rank's ``Proc.ns``
scratch space (the same place the MPI mailboxes live), so every SPMD run
starts with a fresh, empty queue.  Its ``clock`` is the drain timeline: a
posted write is issued to the file system at
``max(rank clock, drain clock)`` -- the progress thread serialises its own
queue but runs concurrently with the rank -- and the request's completion
time advances only the drain timeline.  The rank's clock catches up to a
request's completion exactly when it *waits* (explicit ``wait()``, queue
backpressure, or a pre-read/pre-close drain), which is where overlap with
compute comes from.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

__all__ = [
    "AioConfig",
    "AioRequest",
    "ProgressEngine",
    "drain_all",
    "progress_engine",
]

_NS_KEY = "aio.progress"


@dataclass(frozen=True)
class AioConfig:
    """Sizing of the per-rank background flush service.

    ``queue_depth`` bounds outstanding requests (``None`` = unbounded,
    the VOL-async default: the queue is gated by memory, not count) and
    ``staging_bytes`` bounds staged data; posting past either limit
    retires the oldest requests first (backpressure), charging the
    waiting time to the posting rank like a full staging queue would.
    """

    queue_depth: int | None = None
    staging_bytes: int = 64 * 1024 * 1024

    def __post_init__(self):
        if self.queue_depth is not None and self.queue_depth < 1:
            raise ValueError("queue_depth must be >= 1")
        if self.staging_bytes < 1:
            raise ValueError("staging_bytes must be >= 1")


@dataclass
class AioRequest:
    """A posted nonblocking operation (``MPI_File_iwrite``-style).

    ``done_time`` is on the drain timeline; ``error`` holds a failure the
    background thread hit after exhausting its retries, raised when the
    request (or a younger one on the same queue) is waited on.
    """

    path: str
    nbytes: int
    done_time: float
    engine: "ProgressEngine | None" = None
    error: BaseException | None = None
    retired: bool = False

    def test(self, proc) -> bool:
        """Nonblocking completion check at the rank's current clock."""
        if self.retired or self.engine is None:
            return True
        return proc.clock >= self.done_time

    def wait(self, proc) -> None:
        """Block until complete; raises the deferred error, if any.

        Retires every older request on the same queue first (completions
        are in post order on the single progress thread), so errors
        surface oldest-first.
        """
        if self.engine is not None:
            self.engine.retire_through(self, proc)
        elif self.error is not None:
            raise self.error


class ProgressEngine:
    """One rank's simulated I/O-progress thread and staging queue."""

    def __init__(self, config: AioConfig):
        self.config = config
        self.clock = 0.0  # drain timeline (>= every retired done_time)
        self.pending: deque[AioRequest] = deque()
        self.staged_bytes = 0

    def post(self, req: AioRequest) -> AioRequest:
        """Enqueue a request whose issue the caller already timed."""
        req.engine = self
        self.clock = max(self.clock, req.done_time)
        self.pending.append(req)
        self.staged_bytes += req.nbytes
        return req

    def reserve(self, nbytes: int, proc) -> None:
        """Backpressure: retire oldest requests until ``nbytes`` fits."""
        cfg = self.config
        while self.pending and (
            (cfg.queue_depth is not None and len(self.pending) >= cfg.queue_depth)
            or self.staged_bytes + nbytes > cfg.staging_bytes
        ):
            self.retire_oldest(proc)

    def retire_oldest(self, proc) -> None:
        """Wait for the oldest request; raises its deferred error."""
        req = self.pending.popleft()
        self.staged_bytes -= req.nbytes
        req.retired = True
        proc.advance_to(req.done_time)
        if req.error is not None:
            raise req.error

    def retire_through(self, req: AioRequest, proc) -> None:
        while not req.retired and self.pending:
            self.retire_oldest(proc)

    def drain(self, proc) -> None:
        """Retire everything outstanding (the explicit flush barrier)."""
        while self.pending:
            self.retire_oldest(proc)


def progress_engine(proc, config: AioConfig) -> ProgressEngine:
    """Get or create the rank's progress engine (fresh per SPMD run)."""
    eng = proc.ns.get(_NS_KEY)
    if eng is None:
        eng = ProgressEngine(config)
        proc.ns[_NS_KEY] = eng
    return eng


def drain_all(comm) -> None:
    """Drain this rank's progress engine, if one exists (idempotent)."""
    eng = comm.proc.ns.get(_NS_KEY)
    if eng is not None:
        eng.drain(comm.proc)
