"""``repro.aio`` -- asynchronous I/O: nonblocking writes + background flush.

The paper's remedies all attack *synchronous* write cost; this package
models the orthogonal fix of hiding it.  Each rank owns a simulated
I/O-progress thread (:class:`ProgressEngine`) with its own timeline inside
the deterministic event engine: a write is *posted* -- the rank pays only
the staging memcpy into a bounded staging-buffer queue -- and the progress
timeline drains it in the background while the rank's own clock advances
through compute or further posts.  :class:`AioRequest` carries
``MPI_File_iwrite``-style ``test``/``wait`` semantics, surfacing deferred
I/O errors in retirement order so crash-consistency stays recover-or-fail
-loudly (the manifest commit waits on a full drain).

Data lands in the simulated file system *eagerly at post time* (only the
completion time is deferred to the progress timeline), so draining never
depends on buffers the application may have mutated since, and restart
bytes are identical to the synchronous path's.
"""

from .core import AioConfig, AioRequest, ProgressEngine, drain_all, progress_engine

__all__ = [
    "AioConfig",
    "AioRequest",
    "ProgressEngine",
    "drain_all",
    "progress_engine",
]
