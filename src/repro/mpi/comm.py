"""Communicators and point-to-point messaging.

The programming model mirrors mpi4py: an SPMD function receives a
:class:`Comm` whose ``rank``/``size`` identify it, and calls ``send`` /
``recv`` / the collectives in :mod:`repro.mpi.collectives`.  Under the hood
each rank is a :class:`repro.sim.Proc`; message timing comes from the
machine's interconnect model (NIC contention, latency) and message *data* is
physically copied, so communication bugs corrupt data and get caught by
tests rather than hiding behind a pure cost model.

Sends are eager: the sender charges a software overhead and its NIC egress
occupancy, then proceeds; the receiver blocks until the message's arrival
time.  This matches what ROMIO-era MPI implementations did for the message
sizes two-phase I/O produces, and it keeps the simulation deadlock-behaviour
simple (a recv with no matching send ever posted deadlocks, as in MPI).
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass, field
from typing import Any, Optional

import numpy as np

from ..sim.engine import Engine, Proc
from ..topology.machine import Machine

__all__ = ["Comm", "Message", "ANY_SOURCE", "ANY_TAG", "payload_nbytes", "MpiWorld"]

ANY_SOURCE = -1
ANY_TAG = -1

# Communicator-internal tags (collectives, MPI-IO) live above this base so
# they never collide with user tags.
_INTERNAL_TAG_BASE = 1 << 20


def payload_nbytes(obj: Any) -> int:
    """Wire size of a message payload.

    numpy arrays and byte strings travel at their buffer size; any other
    Python object is costed at its pickle size (as mpi4py does for
    lowercase-method communication).
    """
    if isinstance(obj, np.ndarray):
        return obj.nbytes
    if isinstance(obj, (bytes, bytearray, memoryview)):
        return len(obj)
    return len(pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL))


def _snapshot(obj: Any) -> Any:
    """Copy a payload so sender-side mutation cannot alias the message."""
    if isinstance(obj, np.ndarray):
        return obj.copy()
    if isinstance(obj, (bytearray, memoryview)):
        return bytes(obj)
    if isinstance(obj, (bytes, int, float, str, bool, type(None))):
        return obj
    return pickle.loads(pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL))


def _wire_copy(obj: Any) -> tuple[int, Any]:
    """``(payload_nbytes(obj), _snapshot(obj))`` in one serialization pass.

    The generic-object path used to pickle twice (once for the wire size,
    once for the snapshot); hot collective loops post thousands of small
    pickled payloads, so the single pass matters.  Values are identical to
    calling the two helpers separately.
    """
    if isinstance(obj, np.ndarray):
        return obj.nbytes, obj.copy()
    if isinstance(obj, (bytearray, memoryview)):
        return len(obj), bytes(obj)
    if isinstance(obj, bytes):
        return len(obj), obj
    blob = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
    if isinstance(obj, (int, float, str, bool, type(None))):
        return len(blob), obj
    return len(blob), pickle.loads(blob)


@dataclass
class Message:
    """An in-flight or queued message."""

    src: int
    tag: int
    payload: Any
    arrival: float
    seq: int


@dataclass
class MpiWorld:
    """Shared state for one MPI 'job': mailboxes and the machine binding."""

    engine: Engine
    machine: Machine
    mailboxes: list[list[Message]] = field(default_factory=list)
    _seq: int = 0
    #: When True, collectives use the batched rendezvous engine
    #: (:mod:`repro.mpi.batch`) instead of per-message algorithms.
    batch_collectives: bool = False
    #: Open rendezvous, keyed by (ctx, kind, call seq); see repro.mpi.batch.
    rendezvous: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.mailboxes:
            self.mailboxes = [[] for _ in range(self.engine.nprocs)]

    def next_seq(self) -> int:
        self._seq += 1
        return self._seq


class Comm:
    """An MPI communicator bound to one rank (mpi4py-style handle).

    Every rank holds its own ``Comm`` instance; instances of the same
    communicator share a :class:`MpiWorld` and a group of engine ranks.
    """

    def __init__(
        self,
        world: MpiWorld,
        proc: Proc,
        group: Optional[list[int]] = None,
        _ctx: int = 0,
    ):
        self.world = world
        self.proc = proc
        # group maps communicator rank -> engine (world) rank.
        self.group = group if group is not None else list(range(world.engine.nprocs))
        self._world_to_local = {w: l for l, w in enumerate(self.group)}
        if proc.rank not in self._world_to_local:
            raise ValueError(f"engine rank {proc.rank} is not in this communicator")
        # Context id separates traffic of different communicators.
        self._ctx = _ctx
        # Deterministic internal tag sequence; identical across ranks because
        # collectives must be called in the same order on every rank.
        self._coll_seq = 0

    # -- identity ----------------------------------------------------------

    @property
    def rank(self) -> int:
        """This process's rank within the communicator."""
        return self._world_to_local[self.proc.rank]

    @property
    def size(self) -> int:
        """Number of processes in the communicator."""
        return len(self.group)

    @property
    def machine(self) -> Machine:
        return self.world.machine

    @property
    def clock(self) -> float:
        """This rank's virtual clock (seconds)."""
        return self.proc.clock

    # -- timing helpers ------------------------------------------------------

    def compute(self, seconds: float) -> None:
        """Charge local compute time."""
        self.proc.advance(seconds)

    def _sw_overhead(self) -> float:
        # Software send/recv overhead, tied to the interconnect class.
        return self.world.machine.network.latency

    # -- point-to-point --------------------------------------------------------

    def send(self, obj: Any, dest: int, tag: int = 0) -> None:
        """Blocking (eager) send of ``obj`` to communicator rank ``dest``."""
        if not 0 <= dest < self.size:
            raise ValueError(f"dest {dest} out of range for size {self.size}")
        if tag < 0:
            raise ValueError("tag must be >= 0 on send")
        self._post(obj, dest, tag)

    def _post(self, obj: Any, dest: int, tag: int) -> None:
        proc = self.proc
        world = self.world
        dest_world = self.group[dest]
        nbytes, payload = _wire_copy(obj)
        proc.schedule_point()
        net = world.machine.network
        src_node = world.machine.node_of(proc.rank)
        dst_node = world.machine.node_of(dest_world)
        arrival = net.transfer(proc.clock, src_node, dst_node, nbytes)
        msg = Message(
            src=self.rank,
            tag=tag + self._ctx,
            payload=payload,
            arrival=arrival,
            seq=world.next_seq(),
        )
        world.mailboxes[dest_world].append(msg)
        proc.advance(self._sw_overhead())
        target = world.engine.procs[dest_world]
        target.wake()

    def recv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> Any:
        """Blocking receive; returns the payload."""
        obj, _status = self.recv_with_status(source, tag)
        return obj

    def recv_with_status(
        self, source: int = ANY_SOURCE, tag: int = ANY_TAG
    ) -> tuple[Any, tuple[int, int]]:
        """Receive and also return ``(source_rank, tag)`` of the message."""
        proc = self.proc
        box = self.world.mailboxes[proc.rank]
        while True:
            proc.schedule_point()
            match = self._match(box, source, tag)
            if match is not None:
                box.remove(match)
                proc.advance_to(match.arrival)
                proc.advance(self._sw_overhead())
                return match.payload, (match.src, match.tag - self._ctx)
            proc.block()

    def _match(
        self, box: list[Message], source: int, tag: int
    ) -> Optional[Message]:
        want_tag = None if tag == ANY_TAG else tag + self._ctx
        lo, hi = self._ctx, self._ctx + _INTERNAL_TAG_BASE
        best: Optional[Message] = None
        for m in box:
            if not (lo <= m.tag < hi):
                continue  # different communicator context
            if source != ANY_SOURCE and m.src != source:
                continue
            if want_tag is not None and m.tag != want_tag:
                continue
            if best is None or m.seq < best.seq:
                best = m
        return best

    def sendrecv(
        self,
        obj: Any,
        dest: int,
        sendtag: int = 0,
        source: int = ANY_SOURCE,
        recvtag: int = ANY_TAG,
    ) -> Any:
        """Combined send+receive (deadlock-free pairwise exchange)."""
        self._post(obj, dest, sendtag)
        return self.recv(source, recvtag)

    # -- communicator management -----------------------------------------------

    def split(self, color: int, key: int = 0) -> Optional["Comm"]:
        """Create sub-communicators by color, ordered by (key, rank).

        Collective over the parent communicator.  Ranks passing
        ``color=None`` get ``None`` back (like ``MPI_UNDEFINED``).
        """
        from .collectives import allgather

        entries = allgather(self, (color, key, self.rank))
        if color is None:
            return None
        members = sorted(
            (k, r) for (c, k, r) in entries if c == color
        )
        group = [self.group[r] for _, r in members]
        # Derive a fresh context deterministically from parent ctx and color.
        ctx = self._ctx + _INTERNAL_TAG_BASE * (2 + color)
        return Comm(self.world, self.proc, group=group, _ctx=ctx)

    def dup(self) -> "Comm":
        """Duplicate the communicator with a fresh context."""
        from .collectives import allgather

        allgather(self, 0)  # synchronising, like MPI_Comm_dup
        dup = Comm(self.world, self.proc, group=list(self.group), _ctx=self._ctx)
        dup._ctx = self._ctx + _INTERNAL_TAG_BASE
        return dup

    # -- internal tags for collectives / MPI-IO -----------------------------------

    def _next_internal_tag(self) -> int:
        """A tag all ranks agree on for the current collective call."""
        self._coll_seq += 1
        return _INTERNAL_TAG_BASE - 1 - (self._coll_seq % (1 << 16))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Comm rank={self.rank}/{self.size} t={self.clock:.6f}>"
