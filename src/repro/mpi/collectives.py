"""Collective operations over point-to-point messaging.

Algorithms follow the classic MPICH choices of the paper's era: binomial
trees for bcast/reduce/gather/scatter, a dissemination barrier, ring
allgather, and pairwise-exchange alltoall.  All of them are implemented on
``Comm.send``/``Comm.recv`` so their cost falls out of the interconnect
model rather than being asserted.

Every function is collective: all ranks of the communicator must call it in
the same order (this is also how the internal tag agreement works).
"""

from __future__ import annotations

from typing import Any, Callable, Optional, Sequence

import numpy as np

from . import batch as _batch
from .comm import Comm

__all__ = [
    "barrier",
    "bcast",
    "gather",
    "gatherv",
    "scatter",
    "scatterv",
    "allgather",
    "alltoall",
    "alltoallv",
    "reduce",
    "allreduce",
    "exscan",
    "SUM",
    "MAX",
    "MIN",
]


def SUM(a, b):
    """Elementwise / scalar sum reduction operator."""
    if isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
        return np.add(a, b)
    return a + b


def MAX(a, b):
    """Elementwise / scalar max reduction operator."""
    if isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
        return np.maximum(a, b)
    return max(a, b)


def MIN(a, b):
    """Elementwise / scalar min reduction operator."""
    if isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
        return np.minimum(a, b)
    return min(a, b)


def _vrank(rank: int, root: int, size: int) -> int:
    return (rank - root) % size


def _rrank(vrank: int, root: int, size: int) -> int:
    return (vrank + root) % size


def barrier(comm: Comm) -> None:
    """Dissemination barrier: ceil(log2 P) rounds of pairwise messages."""
    if _batch.batch_enabled(comm):
        return _batch.barrier(comm)
    tag = comm._next_internal_tag()
    size, rank = comm.size, comm.rank
    if size == 1:
        return
    step = 1
    while step < size:
        dest = (rank + step) % size
        src = (rank - step) % size
        comm._post(None, dest, tag)
        comm.recv(src, tag)
        step <<= 1


def bcast(comm: Comm, obj: Any, root: int = 0) -> Any:
    """Binomial-tree broadcast; returns the object on every rank."""
    if _batch.batch_enabled(comm):
        return _batch.bcast(comm, obj, root)
    tag = comm._next_internal_tag()
    size, rank = comm.size, comm.rank
    if size == 1:
        return obj
    v = _vrank(rank, root, size)
    # Phase 1: everyone but the root receives from the rank that differs in
    # v's lowest set bit.
    mask = 1
    while mask < size:
        if v & mask:
            obj = comm.recv(_rrank(v - mask, root, size), tag)
            break
        mask <<= 1
    # Phase 2: forward down the tree with decreasing mask.
    mask >>= 1
    while mask > 0:
        if v + mask < size:
            comm._post(obj, _rrank(v + mask, root, size), tag)
        mask >>= 1
    return obj


def gather(comm: Comm, obj: Any, root: int = 0) -> Optional[list]:
    """Binomial-tree gather; root returns the list indexed by rank."""
    if _batch.batch_enabled(comm):
        return _batch.gather(comm, obj, root)
    tag = comm._next_internal_tag()
    size, rank = comm.size, comm.rank
    v = _vrank(rank, root, size)
    # Accumulate (rank, obj) pairs up the tree.
    acc = [(rank, obj)]
    mask = 1
    while mask < size:
        if v & mask:
            comm._post(acc, _rrank(v & ~mask, root, size), tag)
            acc = None
            break
        src_v = v | mask
        if src_v < size:
            acc.extend(comm.recv(_rrank(src_v, root, size), tag))
        mask <<= 1
    if rank == root:
        out: list = [None] * size
        for r, o in acc:
            out[r] = o
        return out
    return None


def gatherv(comm: Comm, obj: Any, root: int = 0) -> Optional[list]:
    """Alias of :func:`gather` (payloads may differ in size)."""
    return gather(comm, obj, root)


def scatter(comm: Comm, objs: Optional[Sequence[Any]], root: int = 0) -> Any:
    """Binomial-tree scatter of ``objs`` (length ``size``, root only)."""
    if _batch.batch_enabled(comm):
        return _batch.scatter(comm, objs, root)
    tag = comm._next_internal_tag()
    size, rank = comm.size, comm.rank
    if rank == root:
        if objs is None or len(objs) != size:
            raise ValueError("root must supply one object per rank")
        bundle = {r: objs[r] for r in range(size)}
    else:
        bundle = None
    v = _vrank(rank, root, size)
    mask = 1
    while mask < size:
        if v & mask:
            bundle = comm.recv(_rrank(v - mask, root, size), tag)
            break
        mask <<= 1
    # Forward: child at v+mask owns virtual ranks [v+mask, v+2*mask).
    mask >>= 1
    while mask > 0:
        if v + mask < size:
            lo, hi = v + mask, min(v + (mask << 1), size)
            sub = {}
            for x in range(lo, hi):
                r = _rrank(x, root, size)
                if r in bundle:
                    sub[r] = bundle.pop(r)
            comm._post(sub, _rrank(lo, root, size), tag)
        mask >>= 1
    return bundle[rank]


def scatterv(comm: Comm, objs: Optional[Sequence[Any]], root: int = 0) -> Any:
    """Alias of :func:`scatter` (payloads may differ in size)."""
    return scatter(comm, objs, root)


def allgather(comm: Comm, obj: Any) -> list:
    """Ring allgather; every rank returns the list indexed by rank."""
    if _batch.batch_enabled(comm):
        return _batch.allgather(comm, obj)
    tag = comm._next_internal_tag()
    size, rank = comm.size, comm.rank
    out: list = [None] * size
    out[rank] = obj
    right = (rank + 1) % size
    left = (rank - 1) % size
    carry = (rank, obj)
    for _ in range(size - 1):
        comm._post(carry, right, tag)
        carry = comm.recv(left, tag)
        out[carry[0]] = carry[1]
    return out


def alltoall(comm: Comm, objs: Sequence[Any]) -> list:
    """Pairwise-exchange alltoall: ``objs[d]`` goes to rank ``d``."""
    if _batch.batch_enabled(comm):
        return _batch.alltoall(comm, objs)
    size, rank = comm.size, comm.rank
    if len(objs) != size:
        raise ValueError("alltoall needs one object per rank")
    tag = comm._next_internal_tag()
    out: list = [None] * size
    out[rank] = objs[rank]
    for step in range(1, size):
        dest = (rank + step) % size
        src = (rank - step) % size
        comm._post(objs[dest], dest, tag)
        out[src] = comm.recv(src, tag)
    return out


def alltoallv(comm: Comm, objs: Sequence[Any]) -> list:
    """Alias of :func:`alltoall` (payloads may differ in size)."""
    return alltoall(comm, objs)


def reduce(
    comm: Comm, obj: Any, op: Callable[[Any, Any], Any] = SUM, root: int = 0
) -> Any:
    """Binomial-tree reduction to ``root`` (returns None elsewhere)."""
    if _batch.batch_enabled(comm):
        return _batch.reduce(comm, obj, op, root)
    tag = comm._next_internal_tag()
    size, rank = comm.size, comm.rank
    v = _vrank(rank, root, size)
    acc = obj
    mask = 1
    while mask < size:
        if v & mask:
            comm._post(acc, _rrank(v & ~mask, root, size), tag)
            return None
        src_v = v | mask
        if src_v < size:
            acc = op(acc, comm.recv(_rrank(src_v, root, size), tag))
        mask <<= 1
    return acc


def allreduce(comm: Comm, obj: Any, op: Callable[[Any, Any], Any] = SUM) -> Any:
    """Reduce to rank 0, then broadcast the result."""
    return bcast(comm, reduce(comm, obj, op, root=0), root=0)


def exscan(comm: Comm, value, op: Callable = SUM):
    """Exclusive prefix scan.

    Rank ``r`` returns ``op(values[0], ..., values[r-1])``; rank 0 returns
    ``0`` for :func:`SUM` and ``None`` for other operators.  Implemented via
    allgather for clarity -- the payloads the I/O layers scan are scalars.
    """
    values = allgather(comm, value)
    if op is SUM:
        return sum(values[: comm.rank])
    acc = None
    for v in values[: comm.rank]:
        acc = v if acc is None else op(acc, v)
    return acc
