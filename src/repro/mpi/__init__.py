"""Message-passing library (MPI-like) over the simulation engine.

The API follows mpi4py's lowercase, pickle-friendly methods plus standalone
collective functions.  Use :func:`run_spmd` to execute an SPMD function::

    from repro.mpi import run_spmd, collectives as coll

    def program(comm):
        data = comm.rank * 10
        return coll.allreduce(comm, data)

    result = run_spmd(machine, program)
"""

from . import collectives, datatypes
from .collectives import (
    MAX,
    MIN,
    SUM,
    allgather,
    allreduce,
    alltoall,
    alltoallv,
    barrier,
    bcast,
    exscan,
    gather,
    gatherv,
    reduce,
    scatter,
    scatterv,
)
from .comm import ANY_SOURCE, ANY_TAG, Comm, Message, MpiWorld, payload_nbytes
from .datatypes import (
    BYTE,
    CHAR,
    FLOAT32,
    FLOAT64,
    INT32,
    INT64,
    Contiguous,
    Datatype,
    Indexed,
    Named,
    Subarray,
    Vector,
    from_numpy,
    merge_segments,
)
from .request import Request, irecv, isend, waitall
from .runner import SpmdResult, run_spmd

__all__ = [
    "Comm",
    "Message",
    "MpiWorld",
    "ANY_SOURCE",
    "ANY_TAG",
    "payload_nbytes",
    "run_spmd",
    "SpmdResult",
    "Request",
    "isend",
    "irecv",
    "waitall",
    "collectives",
    "datatypes",
    "barrier",
    "bcast",
    "gather",
    "gatherv",
    "scatter",
    "scatterv",
    "allgather",
    "alltoall",
    "alltoallv",
    "reduce",
    "allreduce",
    "exscan",
    "SUM",
    "MAX",
    "MIN",
    "Datatype",
    "Named",
    "Contiguous",
    "Vector",
    "Indexed",
    "Subarray",
    "from_numpy",
    "merge_segments",
    "BYTE",
    "CHAR",
    "INT32",
    "INT64",
    "FLOAT32",
    "FLOAT64",
]
