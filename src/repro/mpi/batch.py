"""Batched collectives: one rendezvous per collective, O(P) schedule crossings.

The per-message algorithms in :mod:`repro.mpi.collectives` are faithful to
the paper's era but cost O(P^2) simulated messages for alltoall/allgather --
at P=1024 a single alltoall is ~1M mailbox operations, which puts weak-scaling
sweeps out of reach no matter how fast each message is.  This module trades
per-message emulation for a *rendezvous*: every rank arrives once (one
schedule-point crossing), the last arriver computes all ranks' results and
completion times from closed-form models of the same algorithms (dissemination
barrier, binomial trees, ring allgather, pairwise alltoall), and wakes
everyone.  Context switches per collective drop from O(P log P .. P^2) to O(P).

Fidelity contract:

* **data** is byte-identical to the per-message path: payloads are
  snapshotted (no sender aliasing) and delivered to exactly the ranks the
  real algorithm would deliver them to;
* **timing** is modeled, not emulated: completion times use the same latency
  / software-overhead / bandwidth parameters and the same round structure,
  but do not book per-message NIC occupancy, so transient link contention
  between a collective and unrelated point-to-point traffic is not captured.
  Reductions fold in rank order (the tree folds in tree order), which can
  differ in the last float bit; the I/O stack only reduces ints and bools.
* every batched collective is synchronizing (all ranks leave at or after the
  last arrival), a slight strengthening of gather/scatter/bcast semantics.

The mode is **off by default** and never enabled on the pinned-digest
regression cells; ``repro scale`` turns it on for P >= its threshold.
"""

from __future__ import annotations

import pickle
from typing import Any, Callable, Sequence

import numpy as np

from .comm import Comm, payload_nbytes

__all__ = ["batch_enabled"]

#: Wire size of a pickled ``None`` (alltoall slots are mostly None).
_NONE_NBYTES = payload_nbytes(None)


def batch_enabled(comm: Comm) -> bool:
    """Whether this communicator's collectives run through the rendezvous."""
    return comm.world.batch_collectives


def _log2_rounds(size: int) -> int:
    """ceil(log2(size)): rounds of a dissemination barrier / binomial tree."""
    return (size - 1).bit_length()


def _immutable(x: Any) -> bool:
    if x is None or isinstance(x, (bool, int, float, str, bytes)):
        return True
    if isinstance(x, tuple):
        return all(_immutable(i) for i in x)
    return False


def _snapshot(obj: Any) -> Any:
    """One isolated copy (sender mutation must not alias the delivery)."""
    if _immutable(obj):
        return obj
    if isinstance(obj, np.ndarray):
        return obj.copy()
    if isinstance(obj, (bytearray, memoryview)):
        return bytes(obj)
    if isinstance(obj, list) and all(_immutable(x) for x in obj):
        return obj[:]
    return pickle.loads(pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL))


def _fanout(obj: Any, n: int) -> list:
    """``n`` mutation-isolated copies of ``obj`` (for bcast-like delivery)."""
    if _immutable(obj):
        return [obj] * n
    if isinstance(obj, np.ndarray):
        return [obj.copy() for _ in range(n)]
    if isinstance(obj, list) and all(_immutable(x) for x in obj):
        return [obj[:] for _ in range(n)]
    blob = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
    return [pickle.loads(blob) for _ in range(n)]


class _Rendezvous:
    """State of one in-flight batched collective."""

    __slots__ = ("contrib", "arrive", "results", "arrived", "taken")

    def __init__(self, size: int):
        self.contrib: list = [None] * size
        self.arrive: list = [0.0] * size
        self.results: list | None = None
        self.arrived = 0
        self.taken = 0


def _rendezvous(comm: Comm, kind: str, contribution: Any, combine) -> Any:
    """Arrive, contribute, and collect this rank's result.

    ``combine(comm, contribs, base) -> (results, done_times)`` runs exactly
    once, on the last-arriving rank, with ``base = max(arrival clocks)``;
    ``done_times[r] >= base`` is required (all collectives synchronize).
    The key includes the communicator context and the shared internal-tag
    sequence, so concurrent communicators and back-to-back collectives of
    the same kind never collide.
    """
    proc = comm.proc
    world = comm.world
    key = (comm._ctx, kind, comm._next_internal_tag(), comm._coll_seq)
    table = world.rendezvous
    rv = table.get(key)
    if rv is None:
        rv = table[key] = _Rendezvous(comm.size)
    rank = comm.rank
    proc.schedule_point()
    rv.contrib[rank] = contribution
    rv.arrive[rank] = proc.clock
    rv.arrived += 1
    if rv.arrived < comm.size:
        proc.block()  # the last arriver wakes us at our completion time
    else:
        base = max(rv.arrive)
        rv.results, done = combine(comm, rv.contrib, base)
        rv.contrib = [None] * comm.size  # release payload references
        engine_procs = world.engine.procs
        for r, world_rank in enumerate(comm.group):
            if r == rank:
                continue
            engine_procs[world_rank].wake(at_time=done[r])
        proc.advance_to(done[rank])
    result = rv.results[rank]
    rv.results[rank] = None
    rv.taken += 1
    if rv.taken == comm.size:
        del table[key]
    return result


def _params(comm: Comm) -> tuple[float, float, float]:
    """(per-message latency, per-side software overhead, bandwidth)."""
    net = comm.machine.network
    return net.latency, comm._sw_overhead(), net.bandwidth


# -- the collectives ---------------------------------------------------------


def barrier(comm: Comm) -> None:
    def combine(comm, contribs, base):
        lat, sw, bw = _params(comm)
        t = base + _log2_rounds(comm.size) * (2 * sw + lat + _NONE_NBYTES / bw)
        return [None] * comm.size, [t] * comm.size

    _rendezvous(comm, "barrier", None, combine)


def bcast(comm: Comm, obj: Any, root: int = 0) -> Any:
    def combine(comm, contribs, base):
        lat, sw, bw = _params(comm)
        obj = contribs[root]
        nbytes = payload_nbytes(obj)
        t = base + _log2_rounds(comm.size) * (2 * sw + lat + nbytes / bw)
        results = _fanout(obj, comm.size - 1)
        results.insert(root, obj)  # root keeps its own object
        return results, [t] * comm.size

    return _rendezvous(comm, "bcast", _snapshot(obj) if comm.rank == root else None, combine)


def gather(comm: Comm, obj: Any, root: int = 0):
    def combine(comm, contribs, base):
        lat, sw, bw = _params(comm)
        inbound = sum(payload_nbytes(o) for r, o in enumerate(contribs) if r != root)
        t = base + _log2_rounds(comm.size) * (2 * sw + lat) + inbound / bw
        results: list = [None] * comm.size
        results[root] = list(contribs)
        return results, [t] * comm.size

    return _rendezvous(comm, "gather", _snapshot(obj), combine)


def scatter(comm: Comm, objs, root: int = 0) -> Any:
    if comm.rank == root:
        if objs is None or len(objs) != comm.size:
            raise ValueError("root must supply one object per rank")
        contribution = [_snapshot(o) for o in objs]
    else:
        contribution = None

    def combine(comm, contribs, base):
        lat, sw, bw = _params(comm)
        objs = contribs[root]
        outbound = sum(payload_nbytes(o) for r, o in enumerate(objs) if r != root)
        t = base + _log2_rounds(comm.size) * (2 * sw + lat) + outbound / bw
        return list(objs), [t] * comm.size

    return _rendezvous(comm, "scatter", contribution, combine)


def allgather(comm: Comm, obj: Any) -> list:
    def combine(comm, contribs, base):
        lat, sw, bw = _params(comm)
        size = comm.size
        nbytes = [payload_nbytes(o) for o in contribs]
        total = sum(nbytes)
        rounds = (size - 1) * (2 * sw + lat)
        # Rank r receives everyone else's payload over the ring.
        done = [base + rounds + (total - nbytes[r]) / bw for r in range(size)]
        columns = [_fanout(o, size) for o in contribs]
        results = [list(row) for row in zip(*columns)]  # C-speed transpose
        return results, done

    return _rendezvous(comm, "allgather", _snapshot(obj), combine)


def alltoall(comm: Comm, objs: Sequence[Any]) -> list:
    if len(objs) != comm.size:
        raise ValueError("alltoall needs one object per rank")
    # Rows are mostly None at scale; skip the snapshot call for those.
    contribution = [None if o is None else _snapshot(o) for o in objs]

    def combine(comm, contribs, base):
        lat, sw, bw = _params(comm)
        size = comm.size
        send = [0] * size
        recv = [0] * size
        results = [list(row) for row in zip(*contribs)]  # C-speed transpose
        for s, row in enumerate(contribs):
            for d, cell in enumerate(row):
                if s != d:
                    n = _NONE_NBYTES if cell is None else payload_nbytes(cell)
                    send[s] += n
                    recv[d] += n
        rounds = (size - 1) * (2 * sw + lat)
        done = [base + rounds + max(send[r], recv[r]) / bw for r in range(size)]
        return results, done

    return _rendezvous(comm, "alltoall", contribution, combine)


_PSET_ENV_NBYTES: int | None = None


def _pset_env_nbytes() -> int:
    """Pickle envelope of an empty ParticleSet (the per-cell wire cost the
    per-message sample sort pays even for empty buckets)."""
    global _PSET_ENV_NBYTES
    if _PSET_ENV_NBYTES is None:
        from ..amr.particles import ParticleSet

        _PSET_ENV_NBYTES = payload_nbytes(ParticleSet())
    return _PSET_ENV_NBYTES


def particle_exchange(comm: Comm, local, splitters) -> Any:
    """The sample sort's alltoall of ParticleSets, as one rendezvous.

    The per-message path builds a P x P matrix of ParticleSet buckets --
    O(P^2) Python objects and pickles even when almost every bucket is
    empty, which is what makes P >= 512 sorts infeasible.  Here every rank
    contributes its locally sorted set once and the combine buckets the
    *concatenation* with numpy (stable sort by destination), so the work is
    O(total particles) + O(P).

    Returns this rank's bucket: byte-identical to
    ``ParticleSet.concat(alltoall(comm, outgoing))`` -- a stable sort by
    bucket over the (source rank, local order)-ordered concatenation is
    exactly the source-order concatenation of the per-source buckets.
    Timing mirrors :func:`alltoall`: pairwise rounds plus byte terms, with
    the empty-bucket pickle envelope charged per peer as the real exchange
    would.
    """
    contribution = (local, np.asarray(splitters))

    def combine(comm, contribs, base):
        from ..amr.particles import ParticleSet

        lat, sw, bw = _params(comm)
        size = comm.size
        splitters = contribs[0][1]
        sets = [c[0] for c in contribs]
        counts = np.array([len(s) for s in sets], dtype=np.int64)
        ids = np.concatenate([s.ids for s in sets])
        positions = np.concatenate([s.positions for s in sets])
        velocities = np.concatenate([s.velocities for s in sets])
        mass = np.concatenate([s.mass for s in sets])
        attributes = np.concatenate([s.attributes for s in sets])
        source = np.repeat(np.arange(size, dtype=np.int64), counts)
        bucket = np.searchsorted(splitters, ids, side="left")
        # Stable by destination: within a bucket the (source, local order)
        # concatenation order is preserved, matching per-message delivery.
        order = np.argsort(bucket, kind="stable")
        bounds = np.searchsorted(bucket[order], np.arange(size + 1))
        results = []
        for d in range(size):
            sel = order[bounds[d] : bounds[d + 1]]
            results.append(ParticleSet(
                ids[sel], positions[sel], velocities[sel],
                mass[sel], attributes[sel],
            ))
        per_particle = (
            ids.itemsize + positions.itemsize * 3 + velocities.itemsize * 3
            + mass.itemsize + attributes.itemsize * attributes.shape[1]
        )
        diag = np.bincount(source[source == bucket], minlength=size)
        send = (counts - diag) * per_particle
        recv = np.bincount(bucket, minlength=size) - diag
        recv = recv * per_particle
        env = (size - 1) * _pset_env_nbytes()
        rounds = (size - 1) * (2 * sw + lat)
        done = [
            base + rounds + (env + max(int(send[r]), int(recv[r]))) / bw
            for r in range(size)
        ]
        return results, done

    return _rendezvous(comm, "pexchange", contribution, combine)


def reduce(comm: Comm, obj: Any, op: Callable[[Any, Any], Any], root: int = 0):
    def combine(comm, contribs, base):
        lat, sw, bw = _params(comm)
        nmax = max(payload_nbytes(o) for o in contribs)
        t = base + _log2_rounds(comm.size) * (2 * sw + lat + nmax / bw)
        acc = contribs[0]
        for o in contribs[1:]:
            acc = op(acc, o)
        results: list = [None] * comm.size
        results[root] = acc
        return results, [t] * comm.size

    return _rendezvous(comm, "reduce", _snapshot(obj), combine)
