"""Nonblocking point-to-point operations (isend/irecv + requests).

The engine's eager-send model makes ``isend`` naturally cheap (the send is
posted immediately; the request completes at once).  ``irecv`` returns a
request that completes when a matching message has arrived; ``wait`` blocks
the caller until then, ``test`` polls.  ``waitall`` completes a batch --
enough to express the overlap patterns ROMIO-era codes used (post receives,
do work, wait).
"""

from __future__ import annotations

from typing import Any, Optional

from .comm import ANY_SOURCE, ANY_TAG, Comm

__all__ = ["Request", "isend", "irecv", "waitall"]


class Request:
    """Handle for an outstanding nonblocking operation."""

    def __init__(self, comm: Comm):
        self._comm = comm
        self._done = False
        self._value: Any = None

    # -- state ------------------------------------------------------------

    @property
    def completed(self) -> bool:
        return self._done

    def _complete(self, value: Any = None) -> None:
        self._done = True
        self._value = value

    # -- completion --------------------------------------------------------

    def wait(self) -> Any:
        """Block until the operation completes; returns its value."""
        while not self._done:
            self._try_progress(blocking=True)
        return self._value

    def test(self) -> tuple[bool, Any]:
        """Poll: ``(completed, value_or_None)`` without blocking."""
        if not self._done:
            self._try_progress(blocking=False)
        return self._done, self._value

    def _try_progress(self, *, blocking: bool) -> None:  # pragma: no cover
        raise NotImplementedError


class _SendRequest(Request):
    """Eager sends complete immediately at post time."""

    def __init__(self, comm: Comm):
        super().__init__(comm)
        self._complete(None)

    def _try_progress(self, *, blocking: bool) -> None:
        return None


class _RecvRequest(Request):
    def __init__(self, comm: Comm, source: int, tag: int):
        super().__init__(comm)
        self._source = source
        self._tag = tag

    def _try_progress(self, *, blocking: bool) -> None:
        comm = self._comm
        proc = comm.proc
        box = comm.world.mailboxes[proc.rank]
        proc.schedule_point()
        match = comm._match(box, self._source, self._tag)
        if match is not None:
            box.remove(match)
            proc.advance_to(match.arrival)
            proc.advance(comm._sw_overhead())
            self._complete(match.payload)
            return
        if blocking:
            proc.block()


def isend(comm: Comm, obj: Any, dest: int, tag: int = 0) -> Request:
    """Nonblocking (eager) send; the returned request is already complete."""
    comm.send(obj, dest, tag)
    return _SendRequest(comm)


def irecv(comm: Comm, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> Request:
    """Nonblocking receive; ``wait()``/``test()`` yield the payload."""
    req = _RecvRequest(comm, source, tag)
    req._try_progress(blocking=False)  # complete immediately if queued
    return req


def waitall(requests: list[Request]) -> list[Any]:
    """Complete every request; returns their values in order."""
    return [r.wait() for r in requests]
