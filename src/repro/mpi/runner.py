"""Entry point for running SPMD programs: machine + engine + communicator.

:func:`run_spmd` is the moral equivalent of ``mpiexec -n P python prog.py``:
it builds an engine with one virtual rank per processor of the machine,
hands each rank a :class:`~repro.mpi.comm.Comm`, runs the program, and
returns the per-rank results together with the simulated wall-clock time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Sequence

from ..sim.engine import Engine
from ..topology.machine import Machine
from .comm import Comm, MpiWorld

__all__ = ["run_spmd", "SpmdResult"]


@dataclass
class SpmdResult:
    """Outcome of one SPMD run."""

    results: list  # per-rank return values
    elapsed: float  # simulated makespan (max over rank clocks)
    rank_times: list  # per-rank final clocks
    engine: Engine

    def __iter__(self):  # allows: results, elapsed = run_spmd(...)
        yield self.results
        yield self.elapsed


def run_spmd(
    machine: Machine,
    fn: Callable[..., Any],
    *,
    nprocs: int | None = None,
    args: Sequence[Any] = (),
    kwargs: dict | None = None,
    batch_collectives: bool = False,
) -> SpmdResult:
    """Run ``fn(comm, *args, **kwargs)`` on ``nprocs`` ranks of ``machine``.

    ``nprocs`` defaults to the machine's processor count and may not exceed
    it.  ``batch_collectives=True`` routes collectives through the
    rendezvous engine in :mod:`repro.mpi.batch` (O(P) schedule crossings
    per collective, modeled timing) -- required for P >= several hundred,
    never enabled on the pinned-digest regression paths.  Returns an
    :class:`SpmdResult`.
    """
    nprocs = machine.nprocs if nprocs is None else nprocs
    if not 1 <= nprocs <= machine.nprocs:
        raise ValueError(
            f"nprocs={nprocs} outside [1, {machine.nprocs}] for {machine.name}"
        )
    engine = Engine(nprocs)
    world = MpiWorld(
        engine=engine, machine=machine, batch_collectives=batch_collectives
    )

    def main(proc, *a, **kw):
        comm = Comm(world, proc)
        return fn(comm, *a, **kw)

    results = engine.run(main, args=args, kwargs=kwargs or {})
    return SpmdResult(
        results=results,
        elapsed=engine.max_clock,
        rank_times=[p.clock for p in engine.procs],
        engine=engine,
    )
