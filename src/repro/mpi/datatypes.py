"""MPI derived datatypes.

A derived datatype describes a (possibly non-contiguous) layout of bytes
relative to a base address.  MPI-IO uses them twice over: as the *etype*
(elementary unit) and *filetype* (access template) of a file view, and as the
memory layout of user buffers.  The paper's collective-I/O optimisation hinges
on the ``subarray`` constructor: each processor describes its (Block, Block,
Block) piece of a 3-D baryon field as a subarray of the global array, and the
MPI-IO layer turns the union of those descriptions into large contiguous
accesses.

The key operation is :meth:`Datatype.segments`: flatten one instance of the
type into ``(displacement, length)`` byte runs, merged where adjacent.  All
higher layers (file views, two-phase I/O, data sieving) work on these flat
segment lists.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

__all__ = [
    "Datatype",
    "Named",
    "Contiguous",
    "Vector",
    "Indexed",
    "Subarray",
    "BYTE",
    "CHAR",
    "INT32",
    "INT64",
    "FLOAT32",
    "FLOAT64",
    "merge_segments",
    "from_numpy",
]


def merge_segments(segs: Iterable[tuple[int, int]]) -> list[tuple[int, int]]:
    """Merge adjacent/overlapping ``(disp, len)`` runs; keeps offset order.

    Input must already be sorted by displacement (every constructor here
    produces sorted runs).
    """
    out: list[tuple[int, int]] = []
    for disp, length in segs:
        if length == 0:
            continue
        if out and out[-1][0] + out[-1][1] >= disp:
            last_disp, last_len = out[-1]
            out[-1] = (last_disp, max(last_disp + last_len, disp + length) - last_disp)
        else:
            out.append((disp, length))
    return out


class Datatype:
    """Abstract datatype: a byte layout with a size and an extent.

    ``size``   -- number of *useful* bytes in one instance;
    ``extent`` -- the stride between consecutive instances (covers holes).
    """

    size: int
    extent: int

    def segments(self, base: int = 0) -> list[tuple[int, int]]:
        """Flattened ``(displacement + base, length)`` runs of one instance."""
        raise NotImplementedError

    # -- conveniences -----------------------------------------------------

    def contiguous(self, count: int) -> "Contiguous":
        """``count`` repetitions of this type, packed end to end."""
        return Contiguous(count, self)

    @property
    def is_contiguous(self) -> bool:
        """True when one instance is a single run starting at 0."""
        segs = self.segments()
        return len(segs) <= 1 and (not segs or segs[0][0] == 0)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} size={self.size} extent={self.extent}>"


@dataclass(frozen=True, repr=False)
class Named(Datatype):
    """A named elementary type, mirroring the MPI predefined types."""

    mpi_name: str
    np_dtype: np.dtype

    def __post_init__(self):
        object.__setattr__(self, "np_dtype", np.dtype(self.np_dtype))

    @property
    def size(self) -> int:  # type: ignore[override]
        return self.np_dtype.itemsize

    @property
    def extent(self) -> int:  # type: ignore[override]
        return self.np_dtype.itemsize

    def segments(self, base: int = 0) -> list[tuple[int, int]]:
        return [(base, self.size)]

    def __repr__(self) -> str:
        return f"MPI.{self.mpi_name}"


BYTE = Named("BYTE", np.dtype(np.uint8))
CHAR = Named("CHAR", np.dtype(np.uint8))
INT32 = Named("INT32", np.dtype(np.int32))
INT64 = Named("INT64", np.dtype(np.int64))
FLOAT32 = Named("FLOAT32", np.dtype(np.float32))
FLOAT64 = Named("FLOAT64", np.dtype(np.float64))

_BY_NP: dict[np.dtype, Named] = {
    t.np_dtype: t for t in (BYTE, INT32, INT64, FLOAT32, FLOAT64)
}


def from_numpy(dtype) -> Named:
    """The :class:`Named` type matching a numpy dtype."""
    dt = np.dtype(dtype)
    try:
        return _BY_NP[dt]
    except KeyError:
        raise TypeError(f"no MPI named type for numpy dtype {dt}") from None


class Contiguous(Datatype):
    """``count`` copies of ``base`` packed at its extent."""

    def __init__(self, count: int, base: Datatype):
        if count < 0:
            raise ValueError("count must be >= 0")
        self.count = count
        self.base = base
        self.size = count * base.size
        self.extent = count * base.extent

    def segments(self, base: int = 0) -> list[tuple[int, int]]:
        inner = self.base.segments(0)
        runs = (
            (base + i * self.base.extent + d, n)
            for i in range(self.count)
            for d, n in inner
        )
        return merge_segments(runs)


class Vector(Datatype):
    """``count`` blocks of ``blocklength`` base elements, ``stride`` apart.

    ``stride`` is in units of base-type extents (like ``MPI_Type_vector``).
    """

    def __init__(self, count: int, blocklength: int, stride: int, base: Datatype):
        if count < 0 or blocklength < 0:
            raise ValueError("count and blocklength must be >= 0")
        self.count = count
        self.blocklength = blocklength
        self.stride = stride
        self.base = base
        self.size = count * blocklength * base.size
        if count == 0:
            self.extent = 0
        else:
            self.extent = ((count - 1) * stride + blocklength) * base.extent

    def segments(self, base: int = 0) -> list[tuple[int, int]]:
        block = Contiguous(self.blocklength, self.base).segments(0)
        runs = (
            (base + i * self.stride * self.base.extent + d, n)
            for i in range(self.count)
            for d, n in block
        )
        return merge_segments(sorted(runs))


class Indexed(Datatype):
    """Blocks of varying lengths at varying displacements (``MPI_Type_indexed``).

    Displacements are in units of base-type extents.
    """

    def __init__(
        self,
        blocklengths: Sequence[int],
        displacements: Sequence[int],
        base: Datatype,
    ):
        if len(blocklengths) != len(displacements):
            raise ValueError("blocklengths and displacements differ in length")
        if any(b < 0 for b in blocklengths):
            raise ValueError("negative blocklength")
        self.blocklengths = list(blocklengths)
        self.displacements = list(displacements)
        self.base = base
        self.size = sum(blocklengths) * base.size
        if blocklengths:
            self.extent = max(
                (d + b) * base.extent
                for d, b in zip(displacements, blocklengths)
            )
        else:
            self.extent = 0

    def segments(self, base: int = 0) -> list[tuple[int, int]]:
        runs: list[tuple[int, int]] = []
        ext = self.base.extent
        for disp, blen in zip(self.displacements, self.blocklengths):
            runs.extend(
                (base + disp * ext + d, n)
                for d, n in Contiguous(blen, self.base).segments(0)
            )
        return merge_segments(sorted(runs))


class Subarray(Datatype):
    """An n-D subarray of an n-D global array (``MPI_Type_create_subarray``).

    This is the datatype behind the paper's (Block, Block, Block) file views:
    the global baryon field is ``shape``, this processor's piece is
    ``subsizes`` starting at ``starts``.  Storage order is C (row-major,
    the last dimension fastest) to match how the simulated files store
    arrays; the paper's x-fastest Fortran layout is the mirror image and is
    covered by tests constructing transposed views.
    """

    def __init__(
        self,
        shape: Sequence[int],
        subsizes: Sequence[int],
        starts: Sequence[int],
        base: Datatype,
    ):
        shape = tuple(int(s) for s in shape)
        subsizes = tuple(int(s) for s in subsizes)
        starts = tuple(int(s) for s in starts)
        if not (len(shape) == len(subsizes) == len(starts)):
            raise ValueError("shape, subsizes and starts must have equal rank")
        if not shape:
            raise ValueError("zero-rank subarray")
        for dim, (n, sub, st) in enumerate(zip(shape, subsizes, starts)):
            if n < 0 or sub < 0 or st < 0 or st + sub > n:
                raise ValueError(
                    f"dimension {dim}: subarray [{st}, {st + sub}) does not "
                    f"fit in [0, {n})"
                )
        self.shape = shape
        self.subsizes = subsizes
        self.starts = starts
        self.base = base
        self.size = int(np.prod(subsizes)) * base.size
        self.extent = int(np.prod(shape)) * base.extent

    def segments(self, base: int = 0) -> list[tuple[int, int]]:
        if self.size == 0:
            return []
        ext = self.base.extent
        # Rows along the last axis are contiguous runs of subsizes[-1] elems.
        run_len = self.subsizes[-1] * self.base.size
        # Strides (in elements) of each axis in the global array.
        strides = np.empty(len(self.shape), dtype=np.int64)
        strides[-1] = 1
        for i in range(len(self.shape) - 2, -1, -1):
            strides[i] = strides[i + 1] * self.shape[i + 1]
        outer = self.subsizes[:-1]
        first = sum(st * sk for st, sk in zip(self.starts, strides))
        if not outer or all(s == 1 for s in outer):
            starts_elems = [first]
        else:
            # Vectorised cartesian product of outer indices -> displacements.
            grids = np.meshgrid(
                *[np.arange(s, dtype=np.int64) for s in outer], indexing="ij"
            )
            disp = np.zeros(grids[0].shape, dtype=np.int64)
            for g, sk in zip(grids, strides[:-1]):
                disp += g * sk
            starts_elems = (disp.ravel() + first).tolist()
            starts_elems.sort()
        runs = ((base + e * ext, run_len) for e in starts_elems)
        return merge_segments(runs)

    def numpy_index(self) -> tuple[slice, ...]:
        """The numpy basic-slicing index selecting this subarray."""
        return tuple(
            slice(st, st + sub) for st, sub in zip(self.starts, self.subsizes)
        )
