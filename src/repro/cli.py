"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``table1``                     -- print the data-volume table;
* ``figure fig6|fig7|fig8|fig9|fig10`` -- run one figure's experiments and
  draw the paper-style chart;
* ``analyze``                    -- trace a checkpoint dump and print the
  Pablo-style I/O report plus the optimizer's plan;
* ``simulate``                   -- run the full ENZO flow with dumps and a
  verified restart.

Common options: ``--problem AMR16|AMR32|AMR64|AMR128`` and ``--procs N``.
"""

from __future__ import annotations

import argparse

from .bench import (
    build_initial_workload,
    build_workload,
    run_checkpoint_experiment,
)
from .bench.figures import render_figure
from .core import format_table
from .enzo import HDF4Strategy, HDF5Strategy, MPIIOStrategy, table1
from .topology import chiba_city, chiba_city_local, ibm_sp2, origin2000

__all__ = ["main"]

STRATEGIES = {
    "hdf4": HDF4Strategy,
    "mpi-io": MPIIOStrategy,
    "hdf5": HDF5Strategy,
}

FIGURES = {
    "fig6": {
        "title": "Figure 6: ENZO I/O on SGI Origin2000 / XFS",
        "machine": lambda n: origin2000(nprocs=n),
        "procs": [2, 4, 8, 16, 32],
        "strategies": ["hdf4", "mpi-io"],
        "metrics": ["write", "read"],
    },
    "fig7": {
        "title": "Figure 7: ENZO I/O on IBM SP / GPFS",
        "machine": lambda n: ibm_sp2(nprocs=n),
        "procs": [32, 64],
        "strategies": ["hdf4", "mpi-io"],
        "metrics": ["write", "read"],
    },
    "fig8": {
        "title": "Figure 8: ENZO I/O on Chiba City / PVFS (fast Ethernet)",
        "machine": lambda n: chiba_city(8),
        "procs": [8],
        "strategies": ["hdf4", "mpi-io"],
        "metrics": ["write", "read"],
    },
    "fig9": {
        "title": "Figure 9: ENZO I/O on Chiba City / node-local disks",
        "machine": lambda n: chiba_city_local(8),
        "procs": [2, 4, 8],
        "strategies": ["hdf4", "mpi-io"],
        "metrics": ["write", "read"],
    },
    "fig10": {
        "title": "Figure 10: HDF5 vs MPI-IO write on SGI Origin2000",
        "machine": lambda n: origin2000(nprocs=n),
        "procs": [4, 8, 16],
        "strategies": ["mpi-io", "hdf5"],
        "metrics": ["write"],
    },
}


def cmd_table1(args) -> int:
    rows = table1()
    print("Table 1: amount of data read/written by the ENZO application")
    print(
        format_table(
            ["problem", "read [MB]", "write [MB]"],
            [
                [r["problem"], f"{r['read_mb']:.1f}", f"{r['write_mb']:.1f}"]
                for r in rows
            ],
        )
    )
    return 0


def cmd_figure(args) -> int:
    spec = FIGURES[args.name]
    dump = build_workload(args.problem)
    init = build_initial_workload(args.problem)
    procs = [args.procs] if args.procs else spec["procs"]
    series_w: dict[str, dict] = {s: {} for s in spec["strategies"]}
    series_r: dict[str, dict] = {s: {} for s in spec["strategies"]}
    points = []
    for nprocs in procs:
        for name in spec["strategies"]:
            result = run_checkpoint_experiment(
                spec["machine"](nprocs),
                STRATEGIES[name](),
                dump,
                nprocs=nprocs,
                read_hierarchy=init,
                do_read="read" in spec["metrics"],
            )
            series_w[name][f"P={nprocs}"] = result.write_time
            if "read" in spec["metrics"]:
                series_r[name][f"P={nprocs}"] = result.read_time
            points.append(
                {
                    "figure": args.name,
                    "problem": args.problem,
                    "nprocs": nprocs,
                    "strategy": name,
                    "write_s": result.write_time,
                    "read_s": result.read_time,
                    "mb_written": result.bytes_written / 2**20,
                }
            )
    print(render_figure(f"{spec['title']} -- WRITE ({args.problem})", series_w))
    if "read" in spec["metrics"]:
        print()
        print(render_figure(f"{spec['title']} -- READ ({args.problem})", series_r))
    if args.json:
        import json

        with open(args.json, "w") as f:
            json.dump(points, f, indent=2)
        print(f"\nwrote {len(points)} data points to {args.json}")
    return 0


def cmd_analyze(args) -> int:
    from .core import format_trace_report, trace_filesystem
    from .enzo import RankState
    from .mpi import run_spmd

    machine = origin2000(nprocs=args.procs or 8)
    hierarchy = build_workload(args.problem)
    trace = trace_filesystem(machine.fs)
    strategy = STRATEGIES[args.strategy]()

    def program(comm):
        state = RankState.from_hierarchy(hierarchy, comm.rank, comm.size)
        strategy.write_checkpoint(comm, state, "dump")

    run_spmd(machine, program, nprocs=args.procs or 8)
    print(
        format_trace_report(
            trace, title=f"{strategy.name} dump of {args.problem}"
        )
    )
    return 0


def cmd_simulate(args) -> int:
    from .enzo import (
        EnzoConfig,
        EnzoSimulation,
        RankState,
        hierarchies_equivalent,
    )
    from .mpi import run_spmd

    config = EnzoConfig(problem=args.problem, ncycles=args.cycles)
    machine = origin2000(nprocs=args.procs or 8)
    sim = EnzoSimulation(
        config=config,
        strategy=STRATEGIES[args.strategy](),
        hierarchy=EnzoSimulation.build_initial_hierarchy(config),
    )
    results = run_spmd(machine, lambda c: sim.run(c, base="run"),
                       nprocs=args.procs or 8)
    summary = results.results[0]
    print(f"{summary['cycles']} cycles, {summary['grids']} grids, "
          f"dump time {summary['write_time']:.3f}s (rank 0, simulated)")
    last = summary["dumps"][-1]
    restart = run_spmd(machine, lambda c: sim.restart(c, last),
                       nprocs=args.procs or 8)
    ok = hierarchies_equivalent(RankState.collect(restart.results),
                                sim.hierarchy)
    print(f"restart of {last}: {'verified bit-exact' if ok else 'MISMATCH'}")
    return 0 if ok else 1


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce 'I/O Analysis and Optimization for an AMR "
        "Cosmology Application' (CLUSTER 2002)",
    )
    sub = p.add_subparsers(dest="command", required=True)

    sub.add_parser("table1", help="print Table 1 (data volumes)")

    f = sub.add_parser("figure", help="run one figure's experiments")
    f.add_argument("name", choices=sorted(FIGURES))
    f.add_argument("--problem", default="AMR32")
    f.add_argument("--procs", type=int, default=None,
                   help="single processor count (default: the figure's set)")
    f.add_argument("--json", default=None, metavar="PATH",
                   help="also export the series as JSON for plotting")

    a = sub.add_parser("analyze", help="trace a dump and print the report")
    a.add_argument("--problem", default="AMR32")
    a.add_argument("--procs", type=int, default=8)
    a.add_argument("--strategy", choices=sorted(STRATEGIES), default="mpi-io")

    s = sub.add_parser("simulate", help="run the full ENZO flow")
    s.add_argument("--problem", default="AMR32")
    s.add_argument("--procs", type=int, default=8)
    s.add_argument("--cycles", type=int, default=2)
    s.add_argument("--strategy", choices=sorted(STRATEGIES), default="mpi-io")

    return p


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    handler = {
        "table1": cmd_table1,
        "figure": cmd_figure,
        "analyze": cmd_analyze,
        "simulate": cmd_simulate,
    }[args.command]
    return handler(args)
