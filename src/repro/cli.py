"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``table1``                     -- print the data-volume table;
* ``figure fig6|fig7|fig8|fig9|fig10`` -- run one figure's experiments and
  draw the paper-style chart;
* ``analyze``                    -- trace a checkpoint dump (or load a saved
  trace) and print the Pablo-style I/O report plus the optimizer's plan;
* ``insights``                   -- run the Drishti-style detector rules
  over a saved trace and print the severity-ranked diagnosis;
* ``tune``                       -- closed-loop auto-tuning: diagnose,
  apply the recommended strategy/hints, re-run, report the delta;
* ``simulate``                   -- run the full ENZO flow with dumps and a
  verified restart;
* ``table``                      -- run the strategy-comparison experiment
  and print the results table (including recovery counts);
* ``regress``                    -- the paper-figure conformance &
  performance-regression gate: run the Figure 5-10 cell matrix, compare
  against the committed ``BENCH_figures.json`` baseline (golden trace
  digests, bandwidth bands, paper trend assertions); exit 0 = green,
  1 = regression, 2 = usage error;
* ``scale``                      -- the weak-scaling gate past the paper's
  processor counts: P in {16..1024} x strategy x machine, compared against
  ``BENCH_scale.json`` (exact counters, banded bandwidths, pinned scaling
  trends); same exit convention as ``regress``;
* ``bench timings``              -- print the per-cell executor telemetry
  (wall µs, cache hit/miss, worker id, queue wait) recorded in
  ``BENCH_timings.json``; ``bench insights`` runs the insights smoke
  matrix through the executor.

The matrix gates (``regress``/``scale``/``overlap``/``bench insights``)
share the executor options ``--jobs N`` (default
``min(os.cpu_count(), n_cells)``, overridable with ``REPRO_JOBS``;
``--jobs 1`` forces the legacy serial path; 0 or negative is a usage
error), ``--no-cache`` (skip the content-addressed result cache, also
``REPRO_CACHE=0``) and ``--timings PATH`` (telemetry artifact, default
``BENCH_timings.json``).

* ``scenarios``                  -- list the workload scenario registry
  (built-in ``AMR*`` sizes plus the parameter-file scenarios);
  ``--check`` lints every entry (parse, normalize, build).

Common options: ``--problem AMR16|AMR32|AMR64|AMR128`` and ``--procs N``;
``analyze``/``simulate``/``tune`` also take ``--scenario NAME`` or
``--param-file PATH`` (Enzo- or Nyx-dialect, auto-detected) with
``--downscale K`` to shrink production files to laptop scale.
"""

from __future__ import annotations

import argparse
import sys

from .bench import (
    build_initial_workload,
    build_workload,
    run_checkpoint_experiment,
)
from .bench.figures import render_figure
from .core import format_table
from .enzo import table1
from .iostack import registry
from .topology import PRESETS, chiba_city, chiba_city_local, ibm_sp2, origin2000

__all__ = ["main"]


def _make_strategy(name: str, retry=None):
    """Instantiate a registered strategy composition by name."""
    return registry.create(name, retry=retry)


def _add_scenario_args(parser) -> None:
    """The shared workload-selection options (``--problem`` & friends)."""
    group = parser.add_mutually_exclusive_group()
    group.add_argument("--scenario", default=None, metavar="NAME",
                       help="run a registered scenario instead of --problem "
                            "(see 'repro scenarios')")
    group.add_argument("--param-file", default=None, metavar="PATH",
                       help="load the workload from an Enzo- or Nyx-style "
                            "parameter file (dialect auto-detected)")
    parser.add_argument("--downscale", type=int, default=0, metavar="K",
                        help="run the scenario at 1/K linear resolution "
                             "(production parameter files in seconds)")


def _resolve_problem(args):
    """``--problem``/``--scenario``/``--param-file`` to a workload problem.

    Returns a scenario name (str) or a :class:`~repro.scenarios.Scenario`;
    raises :class:`~repro.scenarios.ScenarioError` for unknown names,
    unreadable/malformed parameter files, and bad downscale factors --
    callers print the message and exit 2 (usage error).
    """
    from .scenarios import load_param_file
    from .scenarios import registry as scenario_registry

    problem = args.problem
    if getattr(args, "scenario", None):
        problem = scenario_registry.get(args.scenario)
    if getattr(args, "param_file", None):
        problem = load_param_file(args.param_file)
    k = getattr(args, "downscale", 0) or 0
    if k > 1:
        if isinstance(problem, str):
            problem = scenario_registry.get(problem)
        problem = problem.downscaled(k)
    return problem


def _retry_policy(args):
    """A RetryPolicy from ``--retries N``, or None when N == 0."""
    n = getattr(args, "retries", 0)
    if not n:
        return None
    from .resilience import RetryPolicy

    return RetryPolicy(max_retries=n)


def _add_executor_args(parser) -> None:
    """The shared executor options of the matrix gates."""
    parser.add_argument("--jobs", type=int, default=None, metavar="N",
                        help="worker processes for the cell matrix (default: "
                             "min(cpu count, cells), or $REPRO_JOBS; "
                             "--jobs 1 forces the legacy serial path)")
    parser.add_argument("--no-cache", action="store_true",
                        help="skip the content-addressed result cache "
                             "(.repro-cache/; also REPRO_CACHE=0)")
    parser.add_argument("--timings", default="BENCH_timings.json",
                        metavar="PATH",
                        help="per-cell telemetry artifact to merge into "
                             "(default BENCH_timings.json; '' disables)")


def _executor_options(args, n_cells: int, family: str):
    """Resolve (jobs, cache, telemetry) from the shared executor flags.

    Raises :class:`ValueError` on a bad ``--jobs``/``REPRO_JOBS`` value --
    callers exit 2, it is a usage error.
    """
    from .bench.cellcache import CellCache
    from .bench.executor import resolve_jobs
    from .bench.timings import Telemetry

    jobs = resolve_jobs(args.jobs, n_cells)
    cache = CellCache.from_env(disabled=args.no_cache)
    return jobs, cache, Telemetry(family, jobs)


def _finish_telemetry(args, telemetry, cache, progress) -> None:
    """Merge the run's telemetry into the artifact and report cache use."""
    from .bench.timings import save_timings

    if args.timings:
        save_timings(telemetry, args.timings)
    if progress and cache is not None:
        print(f"  cache: {cache.hits} hit(s), {cache.misses} miss(es)"
              + (f", {cache.corrupt} corrupt entr(ies) dropped"
                 if cache.corrupt else ""))


def _arm_fault(fs, spec: str) -> bool:
    """Arm an injected fault from ``--inject OP[:MODE[:PATH[:AFTER]]]``.

    Examples: ``write:torn``, ``write:persistent:run``,
    ``write:oneshot:run:3``.  Prints a diagnostic and returns False on a
    malformed spec (callers exit 2 -- it is a usage error).
    """
    parts = spec.split(":")
    op = parts[0]
    mode = parts[1] if len(parts) > 1 and parts[1] else "oneshot"
    path = parts[2] if len(parts) > 2 else ""
    try:
        after = int(parts[3]) if len(parts) > 3 and parts[3] else 0
        fs.inject_fault(op, path, mode=mode, after=after)
    except ValueError as exc:
        print(f"error: bad --inject spec {spec!r}: {exc}", file=sys.stderr)
        return False
    return True


FIGURES = {
    "fig6": {
        "title": "Figure 6: ENZO I/O on SGI Origin2000 / XFS",
        "machine": lambda n: origin2000(nprocs=n),
        "procs": [2, 4, 8, 16, 32],
        "strategies": ["hdf4", "mpi-io"],
        "metrics": ["write", "read"],
    },
    "fig7": {
        "title": "Figure 7: ENZO I/O on IBM SP / GPFS",
        "machine": lambda n: ibm_sp2(nprocs=n),
        "procs": [32, 64],
        "strategies": ["hdf4", "mpi-io"],
        "metrics": ["write", "read"],
    },
    "fig8": {
        "title": "Figure 8: ENZO I/O on Chiba City / PVFS (fast Ethernet)",
        "machine": lambda n: chiba_city(8),
        "procs": [8],
        "strategies": ["hdf4", "mpi-io"],
        "metrics": ["write", "read"],
    },
    "fig9": {
        "title": "Figure 9: ENZO I/O on Chiba City / node-local disks",
        "machine": lambda n: chiba_city_local(8),
        "procs": [2, 4, 8],
        "strategies": ["hdf4", "mpi-io"],
        "metrics": ["write", "read"],
    },
    "fig10": {
        "title": "Figure 10: HDF5 vs MPI-IO write on SGI Origin2000",
        "machine": lambda n: origin2000(nprocs=n),
        "procs": [4, 8, 16],
        "strategies": ["mpi-io", "hdf5"],
        "metrics": ["write"],
    },
}


def cmd_table1(args) -> int:
    rows = table1()
    print("Table 1: amount of data read/written by the ENZO application")
    print(
        format_table(
            ["problem", "read [MB]", "write [MB]"],
            [
                [r["problem"], f"{r['read_mb']:.1f}", f"{r['write_mb']:.1f}"]
                for r in rows
            ],
        )
    )
    return 0


def cmd_figure(args) -> int:
    spec = FIGURES[args.name]
    dump = build_workload(args.problem)
    init = build_initial_workload(args.problem)
    procs = [args.procs] if args.procs else spec["procs"]
    series_w: dict[str, dict] = {s: {} for s in spec["strategies"]}
    series_r: dict[str, dict] = {s: {} for s in spec["strategies"]}
    points = []
    for nprocs in procs:
        for name in spec["strategies"]:
            result = run_checkpoint_experiment(
                spec["machine"](nprocs),
                _make_strategy(name),
                dump,
                nprocs=nprocs,
                read_hierarchy=init,
                do_read="read" in spec["metrics"],
            )
            series_w[name][f"P={nprocs}"] = result.write_time
            if "read" in spec["metrics"]:
                series_r[name][f"P={nprocs}"] = result.read_time
            points.append(
                {
                    "figure": args.name,
                    "problem": args.problem,
                    "nprocs": nprocs,
                    "strategy": name,
                    "write_s": result.write_time,
                    "read_s": result.read_time,
                    "mb_written": result.bytes_written / 2**20,
                }
            )
    print(render_figure(f"{spec['title']} -- WRITE ({args.problem})", series_w))
    if "read" in spec["metrics"]:
        print()
        print(render_figure(f"{spec['title']} -- READ ({args.problem})", series_r))
    if args.json:
        import json

        with open(args.json, "w") as f:
            json.dump(points, f, indent=2)
        print(f"\nwrote {len(points)} data points to {args.json}")
    return 0


def _load_trace(path: str):
    """Load a saved trace, or print a diagnostic and return None.

    Callers exit with status 2 (bad input) when this returns None -- a
    missing or corrupt trace file is a usage error, not a crash.
    """
    from .core import IOTrace

    try:
        return IOTrace.load(path)
    except FileNotFoundError:
        print(f"error: trace file not found: {path}", file=sys.stderr)
    except IsADirectoryError:
        print(f"error: {path} is a directory, not a trace file", file=sys.stderr)
    except (ValueError, TypeError, KeyError, OSError) as exc:
        # json decode errors are ValueError; unexpected event fields are
        # TypeError -- both mean "not a trace produced by IOTrace.save".
        print(f"error: cannot parse trace file {path}: {exc}", file=sys.stderr)
    return None


def cmd_analyze(args) -> int:
    from .core import format_trace_report, trace_filesystem
    from .enzo import RankState
    from .mpi import run_spmd
    from .scenarios import ScenarioError

    if args.trace:
        trace = _load_trace(args.trace)
        if trace is None:
            return 2
        print(format_trace_report(trace, title=f"saved trace {args.trace}"))
        return 0

    machine = origin2000(nprocs=args.procs or 8)
    try:
        problem = _resolve_problem(args)
        hierarchy = build_workload(problem)
    except ScenarioError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    trace = trace_filesystem(machine.fs, include_meta=True)
    strategy = _make_strategy(args.strategy, retry=_retry_policy(args))

    def program(comm):
        state = RankState.from_hierarchy(hierarchy, comm.rank, comm.size)
        strategy.write_checkpoint(comm, state, "dump")

    run_spmd(machine, program, nprocs=args.procs or 8)
    print(
        format_trace_report(
            trace, title=f"{strategy.name} dump of {problem}"
        )
    )
    if args.save_trace:
        trace.save(args.save_trace)
        print(f"\nwrote {len(trace)} events to {args.save_trace}")
    return 0


def cmd_insights(args) -> int:
    from .insights import Severity, diagnose, format_report, report_to_json

    trace = _load_trace(args.trace)
    if trace is None:
        return 2
    diagnosis = diagnose(
        trace,
        nprocs=args.procs or 0,
        stripe_size=args.stripe,
        strategy=args.strategy,
    )
    if args.json:
        print(report_to_json(diagnosis))
    else:
        print(
            format_report(
                diagnosis,
                title=f"repro.insights -- {args.trace}",
                color=None if args.color == "auto" else args.color == "always",
                show_ok=not args.issues,
            )
        )
    return 1 if args.check and diagnosis.count(Severity.HIGH) else 0


def cmd_tune(args) -> int:
    import json

    from .insights import AutoTuner
    from .scenarios import ScenarioError

    preset = PRESETS[args.machine]
    try:
        problem = _resolve_problem(args)
        registry.check_filesystem(args.strategy, preset(nprocs=args.procs).fs)
    except (ScenarioError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    tuner = AutoTuner(
        lambda n: preset(nprocs=n),
        problem=problem,
        nprocs=args.procs,
        strategy=args.strategy,
        max_rounds=args.rounds,
        retry=_retry_policy(args),
    )
    report = tuner.tune()
    print(report.explain())
    if args.out:
        with open(args.out, "w") as f:
            json.dump(report.to_dict(), f, indent=2)
        print(f"wrote tuning report to {args.out}")
    return 0 if report.bandwidth_delta >= 0 else 1


def cmd_simulate(args) -> int:
    from .enzo import (
        EnzoConfig,
        EnzoSimulation,
        RankState,
        hierarchies_equivalent,
    )
    from .mpi import run_spmd
    from .scenarios import Scenario, ScenarioError

    from .sim.errors import RankFailedError

    machine = origin2000(nprocs=args.procs or 8)
    try:
        problem = _resolve_problem(args)
        overrides = {} if args.cycles is None else {"ncycles": args.cycles}
        if isinstance(problem, Scenario):
            # Scenario-driven run: the parameter file's cadence (plot
            # stream, redshift dumps, checkpoint interval) applies.
            config = EnzoConfig.from_scenario(problem, **overrides)
        else:
            config = EnzoConfig(problem=problem,
                                ncycles=args.cycles if args.cycles else 2)
        hierarchy = EnzoSimulation.build_initial_hierarchy(config)
    except ScenarioError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.inject and not _arm_fault(machine.fs, args.inject):
        return 2
    sim = EnzoSimulation(
        config=config,
        strategy=_make_strategy(args.strategy, retry=_retry_policy(args)),
        hierarchy=hierarchy,
    )
    try:
        results = run_spmd(machine, lambda c: sim.run(c, base="run"),
                           nprocs=args.procs or 8)
    except RankFailedError as err:
        cause = err.__cause__ or err
        print(f"error: simulation failed: {cause}", file=sys.stderr)
        print("hint: transient faults can be absorbed with --retries N",
              file=sys.stderr)
        return 1
    summary = results.results[0]
    print(f"{summary['cycles']} cycles, {summary['grids']} grids, "
          f"dump time {summary['write_time']:.3f}s (rank 0, simulated)")
    if summary["plot_dumps"] or summary["redshift_dumps"]:
        print(f"{len(summary['plot_dumps'])} plot file(s) "
              f"({summary['plot_bytes'] / 2**20:.1f} MB), "
              f"{len(summary['redshift_dumps'])} redshift dump(s)")
    if not summary["dumps"]:
        # e.g. amr.checkpoint_files_output=0: nothing to restart from.
        print("no checkpoints written (checkpoint stream disabled); "
              "skipping restart verification")
        return 0
    last = summary["dumps"][-1]
    try:
        restart = run_spmd(machine, lambda c: sim.restart(c, last),
                           nprocs=args.procs or 8)
    except RankFailedError as err:
        cause = err.__cause__ or err
        print(f"error: restart of {last} failed: {cause}", file=sys.stderr)
        return 1
    ok = hierarchies_equivalent(RankState.collect(restart.results),
                                sim.hierarchy)
    print(f"restart of {last}: {'verified bit-exact' if ok else 'MISMATCH'}")
    return 0 if ok else 1


def cmd_table(args) -> int:
    """Run each strategy once on one machine and print the results table."""
    preset = PRESETS[args.machine]
    dump = build_workload(args.problem)
    init = build_initial_workload(args.problem)
    rows = []
    for name in registry.names():
        machine = preset(nprocs=args.procs)
        try:
            registry.check_filesystem(name, machine.fs)
        except ValueError as exc:
            print(f"  skipping {name}: {exc}", file=sys.stderr)
            continue
        if args.inject and not _arm_fault(machine.fs, args.inject):
            return 2
        result = run_checkpoint_experiment(
            machine,
            _make_strategy(name, retry=_retry_policy(args)),
            dump,
            nprocs=args.procs,
            read_hierarchy=init,
        )
        rows.append(result.row())
    from .bench import ExperimentResult

    print(f"strategy comparison -- {args.problem}, P={args.procs}")
    print(format_table(ExperimentResult.HEADERS, rows))
    return 0


def cmd_strategies(args) -> int:
    """List the registered strategy compositions (layered I/O stack)."""
    rows = []
    for comp in registry.compositions():
        rows.append([
            comp.name,
            comp.layout,
            comp.transport,
            comp.format,
            "yes" if comp.takes_hints else "no",
            comp.fs_constraint or "-",
            ", ".join(f"{k}={v}" for k, v in sorted(comp.options.items()))
            or "-",
        ])
    print("registered I/O strategy compositions (repro.iostack.registry)")
    print(format_table(
        ["name", "layout", "transport", "format", "hints", "requires",
         "options"], rows
    ))
    for comp in registry.compositions():
        if comp.description:
            print(f"  {comp.name}: {comp.description}")
    return 0


def cmd_scenarios(args) -> int:
    """List the scenario registry; ``--check`` lints every entry."""
    from .scenarios import ScenarioError
    from .scenarios import registry as scenario_registry

    rows = []
    for s in scenario_registry.scenarios():
        cadence = []
        if s.checkpoint_every:
            cadence.append(f"ckpt/{s.checkpoint_every}")
        if s.plot_every:
            cadence.append(f"plot/{s.plot_every}")
        if s.output_redshifts:
            cadence.append(f"z x{len(s.output_redshifts)}")
        rows.append([
            s.name,
            s.source_dialect,
            "x".join(str(d) for d in s.root_dims),
            str(s.max_level),
            str(len(s.nested_grids)) if s.nested_grids else "-",
            str(s.ncycles),
            " ".join(cadence) or "-",
        ])
    print("registered scenarios (repro.scenarios.registry)")
    print(format_table(
        ["name", "dialect", "root", "maxL", "nested", "cycles", "cadence"],
        rows,
    ))
    for s in scenario_registry.scenarios():
        if s.description:
            print(f"  {s.name}: {s.description}")
    if not args.check:
        return 0

    # Lint: every registered scenario must validate and build a hierarchy
    # (capped to laptop scale so the 256^3 entries stay fast).
    from .scenarios import build_hierarchy

    failures = 0
    for s in scenario_registry.scenarios():
        try:
            s.validate()
            h = build_hierarchy(s.capped(32), initial=True)
            print(f"  ok: {s.name} ({len(h)} grids, max level "
                  f"{h.max_level})")
        except (ScenarioError, ValueError) as exc:
            failures += 1
            print(f"  FAIL: {s.name}: {exc}", file=sys.stderr)
    if failures:
        print(f"scenario check: {failures} scenario(s) failed",
              file=sys.stderr)
        return 1
    print(f"scenario check: all {len(scenario_registry.names())} "
          "scenario(s) parse, normalize and build")
    return 0


def cmd_regress(args) -> int:
    import json

    from .bench import regression as reg
    from .bench.baselines import (
        BASELINE_PATH,
        load_baseline,
        save_baseline,
        select_cells,
    )

    try:
        cells = select_cells(args.cell)
        perturb = reg.parse_perturbations(args.perturb)
        jobs, cache, telemetry = _executor_options(args, len(cells), "regress")
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.list_cells:
        rows = [
            [c.id, c.machine, c.problem,
             "write+read" if c.do_read else "write"]
            for c in cells
        ]
        print(f"repro regress: {len(cells)} cell(s)")
        print(format_table(["cell", "machine", "problem", "ops"], rows))
        return 0
    progress = None if args.quiet else lambda msg: print(f"  {msg}")
    if progress:
        print(f"repro regress: {len(cells)} cell(s), jobs={jobs}")
    try:
        current = reg.run_matrix(cells, perturb=perturb, progress=progress,
                                 jobs=jobs, cache=cache, telemetry=telemetry)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    _finish_telemetry(args, telemetry, cache, progress)
    if args.out:
        with open(args.out, "w") as f:
            json.dump(current, f, indent=2, sort_keys=True)
            f.write("\n")
        if progress:
            print(f"wrote current results to {args.out}")

    if args.update_baseline:
        bad_trends = [t for t in current["trends"] if not t["ok"]]
        payload = current
        if args.cell:
            # Subset update: merge into the existing baseline if present.
            try:
                payload = load_baseline(args.baseline)
            except FileNotFoundError:
                payload = {"schema": current["schema"], "rtol": current["rtol"],
                           "cells": {}, "trends": []}
            except (ValueError, OSError) as exc:
                print(f"error: cannot merge into {args.baseline}: {exc}",
                      file=sys.stderr)
                return 2
            payload["cells"].update(current["cells"])
            kept = {t["id"]: t for t in payload.get("trends", [])}
            kept.update({t["id"]: t for t in current["trends"]})
            payload["trends"] = sorted(kept.values(), key=lambda t: t["id"])
        save_baseline(payload, args.baseline)
        print(f"baseline updated: {args.baseline} "
              f"({len(payload['cells'])} cells, {len(payload['trends'])} trends)")
        if bad_trends:
            for t in bad_trends:
                print(f"warning: paper trend VIOLATED in new baseline: "
                      f"{t['id']}: {t['description']}", file=sys.stderr)
            print("refusing a green exit: fix the model or the matrix before "
                  "committing this baseline", file=sys.stderr)
            return 1
        return 0

    try:
        baseline = load_baseline(args.baseline)
    except FileNotFoundError:
        print(f"error: no baseline at {args.baseline}; create one with "
              f"'repro regress --update-baseline'", file=sys.stderr)
        return 2
    except (ValueError, OSError) as exc:
        print(f"error: cannot load baseline {args.baseline}: {exc}",
              file=sys.stderr)
        return 2
    report = reg.compare(current, baseline, rtol=args.rtol)
    print(reg.format_report(
        report, title=f"repro regress vs {args.baseline or BASELINE_PATH}"
    ))
    return 0 if report.ok else 1


def cmd_scale(args) -> int:
    import json

    from .bench import scale as sc

    try:
        cells = sc.select_scale_cells(args.cell)
        jobs, cache, telemetry = _executor_options(args, len(cells), "scale")
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.list_cells:
        rows = [[c.id, c.machine, c.strategy, str(c.nprocs)] for c in cells]
        print(f"repro scale: {len(cells)} cell(s)")
        print(format_table(["cell", "machine", "strategy", "P"], rows))
        return 0
    progress = None if args.quiet else lambda msg: print(f"  {msg}")
    if progress:
        print(f"repro scale: {len(cells)} cell(s), jobs={jobs}")
    current = sc.run_scale_matrix(cells, progress=progress, jobs=jobs,
                                  cache=cache, telemetry=telemetry)
    _finish_telemetry(args, telemetry, cache, progress)
    if not args.quiet:
        print(sc.scale_chart(current["cells"]))
        print()
    if args.out:
        with open(args.out, "w") as f:
            json.dump(current, f, indent=2, sort_keys=True)
            f.write("\n")
        if progress:
            print(f"wrote current results to {args.out}")

    if args.update_baseline:
        bad_trends = [t for t in current["trends"] if not t["ok"]]
        payload = current
        if args.cell:
            # Subset update: merge into the existing baseline if present.
            try:
                payload = sc.load_scale_baseline(args.baseline)
            except FileNotFoundError:
                payload = {"schema": current["schema"],
                           "rtol": current["rtol"], "cells": {}, "trends": []}
            except (ValueError, OSError) as exc:
                print(f"error: cannot merge into {args.baseline}: {exc}",
                      file=sys.stderr)
                return 2
            payload["cells"].update(current["cells"])
            kept = {t["id"]: t for t in payload.get("trends", [])}
            kept.update({t["id"]: t for t in current["trends"]})
            payload["trends"] = sorted(kept.values(), key=lambda t: t["id"])
        sc.save_scale_baseline(payload, args.baseline)
        print(f"baseline updated: {args.baseline} "
              f"({len(payload['cells'])} cells, {len(payload['trends'])} trends)")
        if bad_trends:
            for t in bad_trends:
                print(f"warning: scaling trend VIOLATED in new baseline: "
                      f"{t['id']}: {t['description']}", file=sys.stderr)
            print("refusing a green exit: fix the model or the matrix before "
                  "committing this baseline", file=sys.stderr)
            return 1
        return 0

    try:
        baseline = sc.load_scale_baseline(args.baseline)
    except FileNotFoundError:
        print(f"error: no baseline at {args.baseline}; create one with "
              f"'repro scale --update-baseline'", file=sys.stderr)
        return 2
    except (ValueError, OSError) as exc:
        print(f"error: cannot load baseline {args.baseline}: {exc}",
              file=sys.stderr)
        return 2
    report = sc.compare_scale(current, baseline, rtol=args.rtol)
    print(sc.format_scale_report(
        report, title=f"repro scale vs {args.baseline}"
    ))
    return 0 if report.ok else 1


def cmd_overlap(args) -> int:
    """Sync vs write-behind on each machine; writes BENCH_overlap.json."""
    from .bench.overlap import (
        DEFAULT_PAIRS, check_trends, run_overlap_bench, save_overlap,
    )

    pairs = DEFAULT_PAIRS
    if args.machine:
        pairs = tuple(p for p in DEFAULT_PAIRS if p[0] in args.machine)
        missing = set(args.machine) - {p[0] for p in pairs}
        if missing:
            print(f"error: no overlap pair for machine(s) "
                  f"{', '.join(sorted(missing))} (have: "
                  f"{', '.join(p[0] for p in DEFAULT_PAIRS)})",
                  file=sys.stderr)
            return 2
    try:
        jobs, cache, telemetry = _executor_options(args, len(pairs), "overlap")
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    progress = None if args.quiet else lambda msg: print(f"  {msg}")
    if progress:
        print(f"repro overlap: {len(pairs)} machine(s), "
              f"P={args.procs}, {args.cycles} cycles, jobs={jobs}")
    comparisons = run_overlap_bench(
        pairs, nprocs=args.procs, ncycles=args.cycles, progress=progress,
        jobs=jobs, cache=cache, telemetry=telemetry,
    )
    _finish_telemetry(args, telemetry, cache, progress)
    rows = [
        [
            c["machine"],
            c["problem"],
            c["sync"]["strategy"],
            c["async"]["strategy"],
            f"{c['sync']['makespan_s']:.3f}",
            f"{c['async']['makespan_s']:.3f}",
            f"{c['speedup']:.2f}x",
            f"{c['bw_speedup']:.2f}x",
        ]
        for c in comparisons
    ]
    print(format_table(
        ["machine", "problem", "sync", "async", "sync [s]", "async [s]",
         "speedup", "eff-bw"],
        rows,
    ))
    if args.out:
        save_overlap(comparisons, args.out)
        print(f"wrote {args.out}")
    failed = False
    for c in comparisons:
        if c["speedup"] <= 1.0:
            print(f"overlap REGRESSION: {c['machine']}/{c['problem']} speedup "
                  f"{c['speedup']:.3f} <= 1.0", file=sys.stderr)
            failed = True
    for problem in check_trends(comparisons):
        print(f"overlap TREND VIOLATED: {problem}", file=sys.stderr)
        failed = True
    return 1 if failed else 0


def cmd_bench(args) -> int:
    """Executor utilities: telemetry table and the insights smoke matrix."""
    if args.bench_command == "timings":
        from .bench.timings import format_timings, load_timings

        try:
            payload = load_timings(args.timings)
        except FileNotFoundError:
            print(f"error: no timings artifact at {args.timings}; run a "
                  "matrix gate (repro regress/scale/overlap) first",
                  file=sys.stderr)
            return 2
        except (ValueError, OSError) as exc:
            print(f"error: cannot load timings {args.timings}: {exc}",
                  file=sys.stderr)
            return 2
        if args.top is not None and args.top < 1:
            print(f"error: --top must be a positive integer (got {args.top})",
                  file=sys.stderr)
            return 2
        print(format_timings(payload, top=args.top))
        return 0

    # bench insights: the smoke matrix through the executor.
    from .bench.insights_smoke import (
        INSIGHTS_MATRIX,
        check_smoke,
        run_insights_matrix,
    )

    try:
        jobs, cache, telemetry = _executor_options(
            args, len(INSIGHTS_MATRIX), "insights"
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    progress = None if args.quiet else lambda msg: print(f"  {msg}")
    if progress:
        print(f"repro bench insights: {len(INSIGHTS_MATRIX)} cell(s), "
              f"jobs={jobs}")
    records = run_insights_matrix(jobs=jobs, cache=cache,
                                  telemetry=telemetry, progress=progress)
    _finish_telemetry(args, telemetry, cache, progress)
    rows = [
        [
            r["strategy"],
            r["problem"],
            str(r["nprocs"]),
            str(r["high"]),
            str(r["warn"]),
            ", ".join(f["rule"] for f in r["findings"][:4])
            + (", ..." if len(r["findings"]) > 4 else ""),
        ]
        for r in records.values()
    ]
    print(format_table(
        ["strategy", "problem", "P", "high", "warn", "rules fired"], rows
    ))
    failed = check_smoke(records)
    for problem in failed:
        print(f"insights SMOKE FAILED: {problem}", file=sys.stderr)
    return 1 if failed else 0


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce 'I/O Analysis and Optimization for an AMR "
        "Cosmology Application' (CLUSTER 2002)",
    )
    sub = p.add_subparsers(dest="command", required=True)

    sub.add_parser("table1", help="print Table 1 (data volumes)")

    f = sub.add_parser("figure", help="run one figure's experiments")
    f.add_argument("name", choices=sorted(FIGURES))
    f.add_argument("--problem", default="AMR32")
    f.add_argument("--procs", type=int, default=None,
                   help="single processor count (default: the figure's set)")
    f.add_argument("--json", default=None, metavar="PATH",
                   help="also export the series as JSON for plotting")

    a = sub.add_parser("analyze", help="trace a dump and print the report")
    a.add_argument("--problem", default="AMR32")
    _add_scenario_args(a)
    a.add_argument("--procs", type=int, default=8)
    a.add_argument("--strategy", choices=sorted(registry.names()), default="mpi-io")
    a.add_argument("--trace", default=None, metavar="PATH",
                   help="analyze a saved trace instead of running a dump")
    a.add_argument("--save-trace", default=None, metavar="PATH",
                   help="also export the recorded trace as JSON")
    a.add_argument("--retries", type=int, default=0, metavar="N",
                   help="retry transient I/O faults up to N times")

    i = sub.add_parser(
        "insights", help="diagnose a saved trace (Drishti-style rules)"
    )
    i.add_argument("trace", metavar="TRACE.json",
                   help="trace file from 'repro analyze --save-trace'")
    i.add_argument("--procs", type=int, default=0,
                   help="processor count of the traced run (sharpens rules)")
    i.add_argument("--stripe", type=int, default=1 << 20,
                   help="file-system stripe size in bytes (default 1 MiB)")
    i.add_argument("--strategy", choices=sorted(registry.names()), default=None,
                   help="strategy that produced the trace, if known")
    i.add_argument("--json", action="store_true",
                   help="emit the diagnosis as JSON")
    i.add_argument("--issues", action="store_true",
                   help="hide OK findings, show only issues")
    i.add_argument("--color", choices=["auto", "always", "never"],
                   default="auto")
    i.add_argument("--check", action="store_true",
                   help="exit 1 if any HIGH finding is present")

    t = sub.add_parser(
        "tune", help="closed-loop auto-tune: diagnose, retune, re-run"
    )
    t.add_argument("--problem", default="AMR32")
    _add_scenario_args(t)
    t.add_argument("--procs", type=int, default=8)
    t.add_argument("--strategy", choices=sorted(registry.names()), default="hdf4",
                   help="baseline strategy to start from (default hdf4)")
    t.add_argument("--machine", choices=sorted(PRESETS), default="origin2000")
    t.add_argument("--rounds", type=int, default=3,
                   help="maximum retune rounds")
    t.add_argument("--out", default=None, metavar="PATH",
                   help="write the tuning report as JSON (BENCH artifact)")
    t.add_argument("--retries", type=int, default=0, metavar="N",
                   help="retry transient I/O faults up to N times")

    tb = sub.add_parser(
        "table", help="run each strategy once and print the results table"
    )
    tb.add_argument("--problem", default="AMR32")
    tb.add_argument("--procs", type=int, default=8)
    tb.add_argument("--machine", choices=sorted(PRESETS), default="origin2000")
    tb.add_argument("--retries", type=int, default=0, metavar="N",
                    help="retry transient I/O faults up to N times")
    tb.add_argument("--inject", default=None,
                    metavar="OP[:MODE[:PATH[:AFTER]]]",
                    help="arm one injected fault before each strategy's run "
                         "(recoveries show in the 'recov' column)")

    sub.add_parser(
        "strategies",
        help="list registered I/O strategy compositions",
    )

    sn = sub.add_parser(
        "scenarios",
        help="list registered workload scenarios (--check lints them)",
    )
    sn.add_argument("--check", action="store_true",
                    help="validate + build every registered scenario "
                         "(capped resolution); exit 1 on any failure")

    r = sub.add_parser(
        "regress",
        help="paper-figure conformance & perf-regression gate (exit 0/1/2)",
    )
    r.add_argument("--update-baseline", action="store_true",
                   help="rewrite the baseline from this run instead of "
                        "comparing (review the diff before committing)")
    r.add_argument("--cell", action="append", default=None,
                   metavar="FIG[:STRATEGY[:NPROCS]]",
                   help="restrict to matching cells (repeatable), e.g. "
                        "'fig6:mpi-io:8' or 'fig7'")
    r.add_argument("--baseline", default="BENCH_figures.json", metavar="PATH",
                   help="baseline artifact to compare against / update")
    r.add_argument("--rtol", type=float, default=None, metavar="FRAC",
                   help="relative bandwidth tolerance band (default: the "
                        "baseline's recorded rtol)")
    r.add_argument("--out", default=None, metavar="PATH",
                   help="also write this run's results as JSON (CI artifact)")
    r.add_argument("--perturb", action="append", default=None,
                   metavar="FIG:STRATEGY:NPROCS:KEY=VALUE",
                   help="override one MPI-IO hint for one cell (gate "
                        "self-test), e.g. 'fig6:mpi-io:8:cb_buffer_size=2097152'")
    r.add_argument("--quiet", action="store_true",
                   help="suppress per-cell progress lines")
    r.add_argument("--list-cells", action="store_true",
                   help="list the cells the --cell specs select (or the "
                        "whole matrix) without running anything")
    _add_executor_args(r)

    sc = sub.add_parser(
        "scale",
        help="weak-scaling sweep P=16..1024 vs BENCH_scale.json (exit 0/1/2)",
    )
    sc.add_argument("--update-baseline", action="store_true",
                    help="rewrite the baseline from this run instead of "
                         "comparing (review the diff before committing)")
    sc.add_argument("--cell", action="append", default=None,
                    metavar="MACHINE[:STRATEGY[:P]]",
                    help="restrict to matching cells (repeatable), e.g. "
                         "'origin2000:mpi-io:128' or 'chiba_city'")
    sc.add_argument("--baseline", default="BENCH_scale.json", metavar="PATH",
                    help="baseline artifact to compare against / update")
    sc.add_argument("--rtol", type=float, default=None, metavar="FRAC",
                    help="relative tolerance band for write_s/write_bw "
                         "(default: the baseline's recorded rtol)")
    sc.add_argument("--out", default=None, metavar="PATH",
                    help="also write this run's results as JSON (CI artifact)")
    sc.add_argument("--quiet", action="store_true",
                    help="suppress per-cell progress lines and the chart")
    sc.add_argument("--list-cells", action="store_true",
                    help="list the cells the --cell specs select (or the "
                         "whole matrix) without running anything")
    _add_executor_args(sc)

    o = sub.add_parser(
        "overlap",
        help="compute/checkpoint overlap bench: sync vs write-behind "
             "(writes BENCH_overlap.json, exit 1 if overlap stops winning)",
    )
    o.add_argument("--procs", type=int, default=8)
    o.add_argument("--cycles", type=int, default=3)
    o.add_argument("--machine", action="append", default=None,
                   choices=sorted(PRESETS),
                   help="restrict to these machine presets (repeatable)")
    o.add_argument("--out", default="BENCH_overlap.json", metavar="PATH",
                   help="bench artifact path (default BENCH_overlap.json)")
    o.add_argument("--quiet", action="store_true",
                   help="suppress per-machine progress lines")
    _add_executor_args(o)

    b = sub.add_parser(
        "bench",
        help="executor utilities: per-cell timings, insights smoke matrix",
    )
    bsub = b.add_subparsers(dest="bench_command", required=True)
    bt = bsub.add_parser(
        "timings",
        help="print the per-cell telemetry table from BENCH_timings.json",
    )
    bt.add_argument("--timings", default="BENCH_timings.json", metavar="PATH",
                    help="telemetry artifact to read "
                         "(default BENCH_timings.json)")
    bt.add_argument("--top", type=int, default=None, metavar="N",
                    help="show only the N slowest cells across all families")
    bi = bsub.add_parser(
        "insights",
        help="run the insights smoke matrix through the executor "
             "(exit 1 if a strategy stops firing its rules)",
    )
    bi.add_argument("--quiet", action="store_true",
                    help="suppress per-cell progress lines")
    _add_executor_args(bi)

    s = sub.add_parser("simulate", help="run the full ENZO flow")
    s.add_argument("--problem", default="AMR32")
    _add_scenario_args(s)
    s.add_argument("--procs", type=int, default=8)
    s.add_argument("--cycles", type=int, default=None,
                   help="evolution cycles (default: the scenario's own "
                        "cycle count, or 2 for plain --problem runs)")
    s.add_argument("--strategy", choices=sorted(registry.names()), default="mpi-io")
    s.add_argument("--retries", type=int, default=0, metavar="N",
                   help="retry transient I/O faults up to N times")
    s.add_argument("--inject", default=None,
                   metavar="OP[:MODE[:PATH[:AFTER]]]",
                   help="arm one injected fault before the run, e.g. "
                        "'write:torn' or 'write:oneshot:run:3'")

    return p


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    handler = {
        "table1": cmd_table1,
        "figure": cmd_figure,
        "analyze": cmd_analyze,
        "insights": cmd_insights,
        "tune": cmd_tune,
        "simulate": cmd_simulate,
        "table": cmd_table,
        "strategies": cmd_strategies,
        "scenarios": cmd_scenarios,
        "regress": cmd_regress,
        "scale": cmd_scale,
        "overlap": cmd_overlap,
        "bench": cmd_bench,
    }[args.command]
    try:
        return handler(args)
    except BrokenPipeError:
        # the consumer (e.g. `| head`) closed the pipe: stop quietly with
        # the conventional 128+SIGPIPE status instead of a traceback
        import os

        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 141
