"""Layout planners: where each grid's arrays land on storage.

The paper's bottom layer is the *access pattern / data placement* level:
regular blocked 3-D baryon fields versus irregular 1-D particle arrays
(Section 2.1), and whether the checkpoint is one shared file with derived
offsets (Section 3.2.2) or one file per grid (the original HDF4 dump).

A planner owns exactly that decision.  ``plan(meta)`` returns the layout
object the transport and format layers address through:

* :class:`SharedFileLayoutPlanner` -- every array gets a byte extent in a
  single shared file, computed by every rank from the replicated hierarchy
  metadata (:class:`repro.enzo.layout.CheckpointLayout`);
* :class:`FilePerGridLayoutPlanner` -- each grid gets its own file, named by
  :func:`top_grid_path` / :func:`subgrid_path`; offsets within a file are
  the format library's business.

Particle placement within an extent is the sample-sort block placement both
shared-file strategies use: rank *r* owns the contiguous ID-sorted slice
:func:`particle_block_range` gives.

This module deliberately imports nothing from :mod:`repro.enzo` at module
level so the enzo strategy modules can import the path helpers from here
without creating a cycle.
"""

from __future__ import annotations

__all__ = [
    "FilePerGridLayoutPlanner",
    "SharedFileLayoutPlanner",
    "particle_block_range",
    "subgrid_path",
    "top_grid_path",
]


def top_grid_path(base: str) -> str:
    """The top-grid file of a file-per-grid checkpoint."""
    return f"{base}.grid0000"


def subgrid_path(base: str, gid: int) -> str:
    """The per-subgrid file of a file-per-grid checkpoint."""
    return f"{base}.grid{gid:04d}"


def particle_block_range(n_total: int, rank: int, nprocs: int) -> tuple[int, int]:
    """The contiguous ``[lo, hi)`` element slice rank ``rank`` owns of an
    ID-sorted particle array of ``n_total`` elements split over ``nprocs``."""
    lo = (n_total * rank) // nprocs
    hi = (n_total * (rank + 1)) // nprocs
    return lo, hi


class SharedFileLayoutPlanner:
    """One shared checkpoint file; extents derived from replicated metadata."""

    kind = "shared-file"

    def plan(self, meta):
        """Byte extents for every array: a ``CheckpointLayout``."""
        # Imported lazily: enzo.layout is an enzo submodule, and this module
        # must stay importable while the enzo package is mid-import.
        from ..enzo.layout import CheckpointLayout

        # The layout is a pure function of the metadata, and building it is
        # O(grids x arrays) -- memoize on the meta object so the weak-scaling
        # runner (which shares one replicated meta across all ranks) plans
        # once instead of P times.  Per-rank metas still plan independently.
        cached = getattr(meta, "_shared_layout_cache", None)
        if cached is None:
            cached = CheckpointLayout(meta)
            try:
                meta._shared_layout_cache = cached
            except (AttributeError, TypeError):  # frozen/slotted meta
                pass
        return cached


class FilePerGridLayoutPlanner:
    """One file per grid (the original ENZO dump); the plan is path naming."""

    kind = "file-per-grid"

    def plan(self, meta):
        return self

    def top_grid_path(self, base: str) -> str:
        return top_grid_path(base)

    def subgrid_path(self, base: str, gid: int) -> str:
        return subgrid_path(base, gid)
