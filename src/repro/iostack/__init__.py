"""The layered I/O stack: layout planners, transports, formats, registry.

The paper analyses ENZO's I/O as three independent levels -- data
placement, data movement, and data format -- and attributes HDF5's
slowdown to bad interactions *between* levels rather than to any single
one.  This package makes the levels explicit:

* :mod:`~repro.iostack.layouts` -- where arrays land (shared file with
  derived extents vs. file per grid; blocked fields vs. sorted particles);
* :mod:`~repro.iostack.transports` -- which ranks move which bytes
  (rank-0 funnel, collective two-phase, independent block-wise);
* :mod:`~repro.iostack.formats` -- how arrays become bytes (HDF4 SD, raw
  shared file, HDF5 datasets/hyperslabs);
* :mod:`~repro.iostack.registry` -- named declarative compositions of the
  above, resolved by the CLI, regression matrix and AutoTuner.

Cross-cutting orchestration (hierarchy sidecar, CRC32 manifest commit,
retry/degradation, phase timing, trace events) lives in the stack executor
in :mod:`repro.enzo.io_base`, shared by every composition.
"""

# Import order matters: layouts has no enzo dependencies and must land in
# sys.modules before formats/transports pull in enzo submodules, so the
# enzo strategy modules can import path helpers from iostack.layouts while
# either package initialises first.
from . import layouts, formats, transports, registry
from .formats import FieldWriteOp, HDF4SDFormat, HDF5Format, RawSharedFormat
from .layouts import FilePerGridLayoutPlanner, SharedFileLayoutPlanner
from .registry import StrategyComposition
from .transports import CollectiveTransport, FunnelTransport, IndependentTransport

__all__ = [
    "CollectiveTransport",
    "FieldWriteOp",
    "FilePerGridLayoutPlanner",
    "FunnelTransport",
    "HDF4SDFormat",
    "HDF5Format",
    "IndependentTransport",
    "RawSharedFormat",
    "SharedFileLayoutPlanner",
    "StrategyComposition",
    "formats",
    "layouts",
    "registry",
    "transports",
]
