"""Strategy registry: declarative (layout x transport x format) compositions.

A checkpoint strategy is no longer a monolithic class but a named triple
of layer choices plus options, registered here.  The three strategies the
paper measures are built-in registrations; new hybrids -- like the paper's
Section 5 "how to fix HDF5" composition shipped as ``hdf5-aligned`` -- are
one :func:`register` call:

    from repro.iostack import registry
    registry.register(registry.StrategyComposition(
        name="hdf5-aligned",
        layout="shared-file", transport="collective", format="hdf5",
        options={"meta_aggregation": True, "alignment": 1 << 20},
        variant_of="hdf5",
    ))

The CLI, the regression matrix, and the AutoTuner all resolve strategy
names through this module, so a registration is immediately usable by
``repro simulate --strategy``, ``repro regress --cell`` and ``repro tune``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Optional

from .formats import HDF4SDFormat, HDF5Format, RawSharedFormat
from .layouts import FilePerGridLayoutPlanner, SharedFileLayoutPlanner
from .scda import ScdaFormat
from .transports import CollectiveTransport, FunnelTransport, IndependentTransport

__all__ = [
    "FORMATS",
    "LAYOUTS",
    "TRANSPORTS",
    "StrategyComposition",
    "check_filesystem",
    "compositions",
    "create",
    "get",
    "names",
    "register",
    "unregister",
    "upgrade_chain",
    "upgrades",
]

#: layer name -> implementation class
LAYOUTS = {
    "shared-file": SharedFileLayoutPlanner,
    "file-per-grid": FilePerGridLayoutPlanner,
}
TRANSPORTS = {
    "funnel": FunnelTransport,
    "collective": CollectiveTransport,
    "independent": IndependentTransport,
}
FORMATS = {
    "hdf4-sd": HDF4SDFormat,
    "raw": RawSharedFormat,
    "hdf5": HDF5Format,
    "scda": ScdaFormat,
}


@dataclass(frozen=True)
class StrategyComposition:
    """A named, declarative composition of the three layers.

    ``options`` parameterise the layers (``read_mode`` for the funnel
    transport; ``meta_aggregation`` and ``alignment`` for the HDF5 format).
    ``upgrades_to`` feeds the AutoTuner's strategy-upgrade recommendation;
    ``variant_of`` marks this composition as a tuning variant of another
    strategy so the tuner explores it after trying the original.
    """

    name: str
    layout: str
    transport: str
    format: str
    description: str = ""
    options: Mapping = field(default_factory=dict)
    upgrades_to: Optional[str] = None
    variant_of: Optional[str] = None
    #: named file-system requirement, or None when any layout works.
    #: ``"coherent-shared-file"``: every rank's writes must land in one
    #: coherent file image (scda's serial-equivalence promise), which
    #: scatter-mode node-local file systems cannot provide.
    fs_constraint: Optional[str] = None

    @property
    def takes_hints(self) -> bool:
        """Whether the composed strategy accepts MPI-IO hints."""
        return FORMATS[self.format].takes_hints


_REGISTRY: dict[str, StrategyComposition] = {}


def register(comp: StrategyComposition) -> StrategyComposition:
    """Add a composition; raises on duplicate names or incompatible layers."""
    if comp.name in _REGISTRY:
        raise ValueError(f"strategy {comp.name!r} is already registered")
    try:
        layout_cls = LAYOUTS[comp.layout]
        transport_cls = TRANSPORTS[comp.transport]
        format_cls = FORMATS[comp.format]
    except KeyError as err:
        raise ValueError(
            f"strategy {comp.name!r} references unknown layer {err.args[0]!r}"
        ) from None
    if transport_cls.requires != layout_cls.kind:
        raise ValueError(
            f"strategy {comp.name!r}: transport {comp.transport!r} requires a "
            f"{transport_cls.requires!r} layout, got {layout_cls.kind!r}"
        )
    if format_cls.session_kind != layout_cls.kind:
        raise ValueError(
            f"strategy {comp.name!r}: format {comp.format!r} addresses a "
            f"{format_cls.session_kind!r} layout, got {layout_cls.kind!r}"
        )
    _REGISTRY[comp.name] = comp
    return comp


def unregister(name: str) -> None:
    """Remove a composition (plugin teardown / tests)."""
    _REGISTRY.pop(name, None)


def names() -> tuple[str, ...]:
    """All registered strategy names, sorted."""
    return tuple(sorted(_REGISTRY))


def get(name: str) -> StrategyComposition:
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown strategy {name!r} (available: {', '.join(names())})"
        ) from None


def compositions() -> tuple[StrategyComposition, ...]:
    return tuple(_REGISTRY[n] for n in sorted(_REGISTRY))


def upgrades() -> dict[str, str]:
    """strategy name -> the registered strategy it upgrades to."""
    return {c.name: c.upgrades_to for c in compositions() if c.upgrades_to}


def upgrade_chain(name: str) -> tuple[str, ...]:
    """The transitive ``upgrades_to`` chain from ``name``, in order.

    ``upgrade_chain("hdf4")`` is ``("mpi-io", "mpi-io-async")``.  Unknown
    names yield an empty chain (callers often hold a free-form strategy
    string); cycles are cut rather than looped.
    """
    chain: list[str] = []
    seen = {name}
    comp = _REGISTRY.get(name)
    while comp is not None and comp.upgrades_to and comp.upgrades_to not in seen:
        chain.append(comp.upgrades_to)
        seen.add(comp.upgrades_to)
        comp = _REGISTRY.get(comp.upgrades_to)
    return tuple(chain)


def check_filesystem(name: str, fs) -> None:
    """Raise ``ValueError`` when ``fs`` cannot honour the strategy's
    :attr:`~StrategyComposition.fs_constraint` (a named reason, so the CLI
    can fail with exit 2 instead of silently producing a broken file)."""
    comp = get(name)
    if comp.fs_constraint is None or fs is None:
        return
    if comp.fs_constraint == "coherent-shared-file":
        if getattr(fs, "scatter_mode", False):
            raise ValueError(
                f"strategy {name!r} requires a coherent shared file "
                f"(constraint: coherent-shared-file), but file system "
                f"{fs.name!r} scatters each rank's writes to its node-local "
                f"disk; the committed pieces would never form one "
                f"serial-equivalent file"
            )
        return
    raise ValueError(
        f"strategy {name!r} declares unknown fs constraint "
        f"{comp.fs_constraint!r}"
    )


def create(name: str, *, hints=None, retry=None, read_mode: str | None = None):
    """Instantiate a registered composition as a runnable strategy.

    ``hints`` apply when the format takes MPI-IO hints (they are ignored
    by ``hdf4``, matching the original driver's signature); a composition
    whose options carry a ``"hints"`` mapping (e.g. the stripe-tuned
    ``mpi-io-lustre``) overlays those pinned knobs on top; ``read_mode``
    overrides the funnel transport's restart-read path.
    """
    from ..aio.core import AioConfig
    from ..enzo.io_base import ComposedStrategy
    from ..hdf5.file import H5Costs
    from ..mpiio.hints import Hints

    comp = get(name)
    opts = comp.options
    aio = AioConfig() if opts.get("async") else None
    hint_overrides = opts.get("hints")
    if hint_overrides and comp.takes_hints:
        hints = (hints or Hints()).replace(**hint_overrides)
    layout = LAYOUTS[comp.layout]()
    if comp.transport == "funnel":
        transport = FunnelTransport(
            read_mode=read_mode or opts.get("read_mode", "master")
        )
    else:
        transport = TRANSPORTS[comp.transport]()
    if comp.format == "hdf4-sd":
        fmt = HDF4SDFormat()
    elif comp.format == "raw":
        fmt = RawSharedFormat(hints or Hints())
    elif comp.format == "scda":
        fmt = ScdaFormat(
            hints or Hints(), block_size=int(opts.get("block_size", 4096))
        )
    else:
        alignment = int(opts.get("alignment", 0))
        fmt = HDF5Format(
            hints or Hints(),
            costs=H5Costs(
                alignment=alignment,
                # H5Pset_alignment semantics: only objects at least one
                # boundary in size are moved to a boundary.
                alignment_threshold=int(
                    opts.get("alignment_threshold", alignment)
                ),
            ),
            meta_aggregation=bool(opts.get("meta_aggregation", False)),
        )
    return ComposedStrategy(
        comp.name, layout, transport, fmt, retry=retry, aio=aio
    )


# -- built-in compositions (the paper's three strategies + the Section 5 fix)

register(StrategyComposition(
    name="hdf4",
    layout="file-per-grid", transport="funnel", format="hdf4-sd",
    description="original ENZO: sequential HDF4 through rank 0, file per grid",
    upgrades_to="mpi-io",
))
register(StrategyComposition(
    name="mpi-io",
    layout="shared-file", transport="collective", format="raw",
    description="paper's optimisation: collective two-phase MPI-IO, one shared file",
    upgrades_to="mpi-io-async",
))
register(StrategyComposition(
    name="hdf5",
    layout="shared-file", transport="collective", format="hdf5",
    description="parallel HDF5 (mpio driver) with 2002-era per-dataset overheads",
    upgrades_to="mpi-io",
))
register(StrategyComposition(
    name="hdf5-aligned",
    layout="shared-file", transport="collective", format="hdf5",
    description="HDF5 with metadata aggregation + aligned data (paper Section 5 remedy)",
    options={"meta_aggregation": True, "alignment": 1 << 20},
    variant_of="hdf5",
))

# -- asynchronous variants (repro.aio): nonblocking writes drained by a
# per-rank background flush service, manifest commit behind a flush barrier

register(StrategyComposition(
    name="mpi-io-async",
    layout="shared-file", transport="collective", format="raw",
    description="collective MPI-IO with nonblocking writes and background flush",
    options={"async": True},
    variant_of="mpi-io",
))
register(StrategyComposition(
    name="hdf5-async",
    layout="shared-file", transport="collective", format="hdf5",
    description="parallel HDF5 over nonblocking writes (VOL-async style)",
    options={"async": True},
    upgrades_to="mpi-io-async",
    variant_of="hdf5",
))
register(StrategyComposition(
    name="hdf5-aligned-async",
    layout="shared-file", transport="collective", format="hdf5",
    description="Section 5 remedies plus background flush (aligned + async)",
    options={"meta_aggregation": True, "alignment": 1 << 20, "async": True},
    variant_of="hdf5-aligned",
))

# -- scda serial-equivalent format + the Lustre stripe-tuned variant

register(StrategyComposition(
    name="mpi-io-scda",
    layout="shared-file", transport="collective", format="scda",
    description="scda serial-equivalent shared file: byte-identical for every P",
    options={"block_size": 4096},
    upgrades_to="mpi-io-scda-async",
    variant_of="mpi-io",
    fs_constraint="coherent-shared-file",
))
register(StrategyComposition(
    name="mpi-io-scda-async",
    layout="shared-file", transport="collective", format="scda",
    description="scda over nonblocking writes, drained before manifest commit",
    options={"block_size": 4096, "async": True},
    variant_of="mpi-io-scda",
    fs_constraint="coherent-shared-file",
))
register(StrategyComposition(
    name="mpi-io-lustre",
    layout="shared-file", transport="collective", format="raw",
    description="collective MPI-IO with Lustre stripe hints pinned (lfs setstripe)",
    options={"hints": {
        "striping_unit": 1 << 20, "striping_factor": 16, "cb_align": 1 << 20,
    }},
    variant_of="mpi-io",
))
