"""Transports: which ranks move which bytes, and how they coordinate.

The paper's middle layer.  Three movement disciplines:

* :class:`FunnelTransport` -- the original ENZO path: everything funnels
  through processor 0 for the top grid (gather + combine on write, read +
  scatter on restart); subgrid files go to their owners (Section 2.2);
* :class:`CollectiveTransport` -- the optimised path: collective two-phase
  access for the regular baryon fields, parallel sample sort + independent
  block-wise access for the irregular particle arrays, owner-writes for
  subgrids (Sections 3.2/3.3);
* :class:`IndependentTransport` -- the collective plan issued through
  independent requests only (the paper's Figure 5 comparison point).

A transport drives a format *session* (see :mod:`repro.iostack.formats`)
and never touches the file directly; ``requires`` names the layout kind it
can address.  Phase timings land in the executor's
:class:`~repro.enzo.io_base.IOStats` through ``ctx.timed`` with the same
phase names the monolithic strategies reported.
"""

from __future__ import annotations

import numpy as np

from ..amr.grid import Grid
from ..amr.particles import PARTICLE_ARRAYS, ParticleSet
from ..amr.partition import BlockPartition
from ..mpi import collectives as coll
from ..resilience.manifest import entry_for_segments
from .layouts import particle_block_range

__all__ = [
    "CollectiveTransport",
    "FunnelTransport",
    "IndependentTransport",
    "field_names",
    "make_piece_shell",
    "make_top_piece_shell",
    "redistribute_grid_particles",
    "redistribute_particles",
]


# -- shared shell / redistribution helpers -----------------------------------


def field_names():
    """Canonical baryon field order (every strategy writes these)."""
    from ..amr.fields import BARYON_FIELDS

    return BARYON_FIELDS


def make_top_piece_shell(meta, partition: BlockPartition, rank: int) -> Grid:
    """An empty top-grid piece with rank ``rank``'s block geometry."""
    from ..enzo.io_base import IOStrategy

    root = IOStrategy.make_root_shell(meta)
    _starts, sizes = partition.block_of(rank)
    left, right = partition.edges_of(rank, root)
    return Grid(
        id=root.id, level=0, dims=sizes, left_edge=left, right_edge=right
    )


def redistribute_particles(
    comm, block: ParticleSet, meta, partition: BlockPartition
) -> ParticleSet:
    """Send each particle to the rank whose sub-domain contains it."""
    from ..enzo.io_base import IOStrategy

    root = IOStrategy.make_root_shell(meta)
    if len(block):
        cells = root.cell_of(block.positions)
        owners = partition.owner_of_cells(cells)
    else:
        owners = np.empty(0, dtype=np.int64)
    outgoing = [block.select(owners == r) for r in range(comm.size)]
    incoming = coll.alltoall(comm, outgoing)
    return ParticleSet.concat(incoming).sort_by_id()


def make_piece_shell(meta, gid, part: BlockPartition, rank: int) -> Grid:
    """An empty piece of grid ``gid`` with rank ``rank``'s block geometry."""
    g = meta[gid]
    shell = Grid(
        id=g.id, level=g.level, dims=g.dims,
        left_edge=np.array(g.left_edge),
        right_edge=np.array(g.right_edge),
        parent_id=g.parent_id,
    )
    _starts, sizes = part.block_of(rank)
    left, right = part.edges_of(rank, shell)
    return Grid(
        id=g.id, level=g.level, dims=sizes,
        left_edge=left, right_edge=right, parent_id=g.parent_id,
    )


def redistribute_grid_particles(
    comm, block: ParticleSet, meta, gid, part: BlockPartition
) -> ParticleSet:
    """Route particles to the rank whose sub-block of grid ``gid``
    contains them."""
    g = meta[gid]
    shell = Grid(
        id=g.id, level=g.level, dims=g.dims,
        left_edge=np.array(g.left_edge),
        right_edge=np.array(g.right_edge),
        parent_id=g.parent_id,
    )
    if len(block):
        cells = shell.cell_of(block.positions)
        owners = part.owner_of_cells(cells)
    else:
        owners = np.empty(0, dtype=np.int64)
    outgoing = [
        block.select(owners == r) if r < part.nprocs else None
        for r in range(comm.size)
    ]
    incoming = coll.alltoall(comm, outgoing)
    return ParticleSet.concat(
        [p for p in incoming if p is not None]
    ).sort_by_id()


# -- rank-0 funnel (the original sequential path) ----------------------------


class FunnelTransport:
    """Everything through processor 0; per-grid files to their owners.

    ``read_mode`` selects the original code's two restart-read paths:
    ``"master"`` (P0 reads every subgrid and sends it to its owner) or
    ``"round_robin"`` (every processor reads its own files).
    """

    name = "funnel"
    requires = "file-per-grid"

    def __init__(self, read_mode: str = "master"):
        if read_mode not in ("master", "round_robin"):
            raise ValueError(f"unknown read_mode {read_mode!r}")
        self.read_mode = read_mode

    def write(self, ctx, session, layout, state) -> None:
        from ..enzo.io_base import IOStrategy

        comm = ctx.comm
        # Phase 1: gather the top-grid pieces to processor 0 and combine.
        with ctx.timed("top_gather"):
            pieces = coll.gather(comm, state.top_piece, root=0)
            if comm.rank == 0:
                template = IOStrategy.make_root_shell(state.meta)
                combined = state.partition.reassemble(template, pieces)
                comm.compute(comm.machine.memcpy_time(combined.data_nbytes))

        # Phase 2: processor 0 writes the combined top grid, sequentially.
        with ctx.timed("top_write"):
            if comm.rank == 0:
                ctx.stats.bytes_moved += session.write_grid(
                    layout.top_grid_path(ctx.base), combined
                )

        # Phase 3: subgrids -- each owner writes its own per-grid files.
        with ctx.timed("subgrids"):
            for gid in sorted(state.subgrids):
                ctx.stats.bytes_moved += session.write_grid(
                    layout.subgrid_path(ctx.base, gid), state.subgrids[gid]
                )
            coll.barrier(comm)

    def read(self, ctx, session, layout, meta):
        from ..enzo.io_base import IOStrategy
        from ..enzo.state import RankState, make_owner_map

        comm = ctx.comm
        partition = BlockPartition(meta.root.dims, comm.size)

        # Phase 1+2: processor 0 reads the whole top grid, partitions it
        # and scatters the pieces.
        with ctx.timed("top_read_scatter"):
            if comm.rank == 0:
                shell = IOStrategy.make_root_shell(meta)
                session.read_grid(layout.top_grid_path(ctx.base), shell)
                ctx.stats.bytes_moved += shell.data_nbytes
                pieces = [partition.extract(shell, r) for r in range(comm.size)]
                comm.compute(comm.machine.memcpy_time(shell.data_nbytes))
            else:
                pieces = None
            top_piece = coll.scatter(comm, pieces, root=0)

        # Phase 3: subgrids.
        with ctx.timed("subgrids"):
            owner = make_owner_map(meta, comm.size, policy="round_robin")
            subgrids: dict[int, Grid] = {}
            if self.read_mode == "master":
                # New-simulation path: P0 reads every subgrid file
                # sequentially and sends each to its assigned processor.
                for gid in meta.subgrid_ids():
                    shell = None
                    if comm.rank == 0:
                        shell = IOStrategy.make_subgrid_shell(meta, gid)
                        session.read_grid(
                            layout.subgrid_path(ctx.base, gid), shell
                        )
                        ctx.stats.bytes_moved += shell.data_nbytes
                    dest = owner[gid]
                    if dest == 0:
                        if comm.rank == 0:
                            subgrids[gid] = shell
                    elif comm.rank == 0:
                        comm.send(shell, dest, tag=17)
                    elif comm.rank == dest:
                        subgrids[gid] = comm.recv(0, tag=17)
                coll.barrier(comm)
            else:
                # Restart path: every processor reads its files round-robin.
                for gid in meta.subgrid_ids():
                    if owner[gid] != comm.rank:
                        continue
                    shell = IOStrategy.make_subgrid_shell(meta, gid)
                    session.read_grid(layout.subgrid_path(ctx.base, gid), shell)
                    ctx.stats.bytes_moved += shell.data_nbytes
                    subgrids[gid] = shell
                coll.barrier(comm)

        return RankState(
            rank=comm.rank,
            nprocs=comm.size,
            meta=meta,
            partition=partition,
            top_piece=top_piece,
            subgrids=subgrids,
            owner=owner,
        )

    def read_initial(self, ctx, session, layout, meta):
        """Original new-simulation read: P0 reads every grid sequentially,
        partitions it (Block, Block, Block) and distributes the pieces."""
        from ..enzo.io_base import IOStrategy
        from ..enzo.state import PartitionedState

        comm = ctx.comm
        state = PartitionedState(rank=comm.rank, nprocs=comm.size, meta=meta)
        for g in meta.grids():
            gid = g.id
            part = BlockPartition.for_grid(g.dims, comm.size)
            state.partitions[gid] = part
            pieces = None
            if comm.rank == 0:
                if gid == meta.root_id:
                    shell = IOStrategy.make_root_shell(meta)
                    path = layout.top_grid_path(ctx.base)
                else:
                    shell = IOStrategy.make_subgrid_shell(meta, gid)
                    path = layout.subgrid_path(ctx.base, gid)
                session.read_grid(path, shell)
                ctx.stats.bytes_moved += shell.data_nbytes
                comm.compute(comm.machine.memcpy_time(shell.data_nbytes))
                pieces = [part.extract(shell, r) for r in range(part.nprocs)]
                pieces += [None] * (comm.size - part.nprocs)
            state.pieces[gid] = coll.scatter(comm, pieces, root=0)
        return state


# -- collective two-phase / independent block-wise ---------------------------


class CollectiveTransport:
    """The paper's optimised movement plan over one shared file."""

    name = "collective"
    requires = "shared-file"
    #: issue top-grid field writes collectively (two-phase); the
    #: :class:`IndependentTransport` subclass turns this off.
    collective_fields = True

    def write(self, ctx, session, layout, state) -> None:
        from ..enzo.sort import parallel_sort_by_id

        comm = ctx.comm
        # Phase 1: top-grid baryon fields through subarray/hyperslab views.
        with ctx.timed("top_fields"):
            starts, sizes = state.partition.block_of(comm.rank)
            root_dims = state.meta.root.dims
            for name, arr in state.top_piece.fields.items():
                op = session.begin_top_field(name, arr, starts, sizes, root_dims)
                if self.collective_fields:
                    ctx.strategy._collective_or_degraded(
                        comm, ctx.base, op.collective, op.independent,
                        nbytes=arr.nbytes,
                    )
                else:
                    op.independent()
                # Formats that own the manifest (scda) merge per-rank
                # pieces at close instead of recording per-rank entries.
                if not getattr(session, "owns_manifest", False):
                    ctx.entries.append(entry_for_segments(
                        f"top/field/{name}/r{comm.rank:04d}", ctx.base,
                        op.segments(), arr,
                    ))
                op.finish()
                ctx.stats.bytes_moved += arr.nbytes

        # Phase 2: top-grid particles -- parallel sort + block-wise writes.
        with ctx.timed("top_particles"):
            session.reset_view()
            sorted_parts, elem_offset, _counts = parallel_sort_by_id(
                comm, state.top_piece.particles
            )
            n_total = state.meta.root.nparticles
            for name in PARTICLE_ARRAYS:
                ctx.stats.bytes_moved += session.write_top_particle(
                    name, sorted_parts, elem_offset, n_total
                )

        # Phase 3: subgrids.  When the format's per-array metadata is
        # collective (HDF5 dataset creates), every rank walks every grid;
        # otherwise each owner writes its grids independently.
        with ctx.timed("subgrids"):
            if session.collective_metadata:
                meta = state.meta
                names = list(state.top_piece.fields.names)
                for gid in meta.subgrid_ids():
                    g = meta[gid]
                    mine = state.subgrids.get(gid)
                    for name in names:
                        arr = mine.fields[name] if mine is not None else None
                        ctx.stats.bytes_moved += session.write_grid_field(
                            gid, g, name, arr
                        )
                    gparts = (
                        mine.particles.sort_by_id() if mine is not None else None
                    )
                    for name in PARTICLE_ARRAYS:
                        ctx.stats.bytes_moved += session.write_grid_particle(
                            gid, g, name, gparts
                        )
            else:
                for gid in sorted(state.subgrids):
                    grid = state.subgrids[gid]
                    g = state.meta[gid]
                    for name, arr in grid.fields.items():
                        ctx.stats.bytes_moved += session.write_grid_field(
                            gid, g, name, arr
                        )
                    gparts = grid.particles.sort_by_id()
                    for name in PARTICLE_ARRAYS:
                        ctx.stats.bytes_moved += session.write_grid_particle(
                            gid, g, name, gparts
                        )

    def read(self, ctx, session, layout, meta):
        from ..enzo.io_base import IOStrategy
        from ..enzo.state import RankState, make_owner_map

        comm = ctx.comm
        partition = BlockPartition(meta.root.dims, comm.size)

        # Phase 1: top-grid fields, collective subarray/hyperslab reads.
        with ctx.timed("top_fields"):
            starts, sizes = partition.block_of(comm.rank)
            top_piece = make_top_piece_shell(meta, partition, comm.rank)
            for name in top_piece.fields:
                got = session.read_top_field(name, starts, sizes, meta.root.dims)
                top_piece.fields[name] = got
                ctx.stats.bytes_moved += got.nbytes

        # Phase 2: particles -- block-wise contiguous reads, then
        # redistribution by position against the grid edges.
        with ctx.timed("top_particles"):
            session.reset_view()
            n_total = meta.root.nparticles
            lo, hi = particle_block_range(n_total, comm.rank, comm.size)
            arrays = {}
            for name in PARTICLE_ARRAYS:
                got = session.read_top_particle(name, lo, hi, n_total)
                arrays[name] = got
                ctx.stats.bytes_moved += got.nbytes
            block = ParticleSet.from_arrays(arrays)
            top_piece.particles = redistribute_particles(
                comm, block, meta, partition
            )

        # Phase 3: subgrids, round-robin owners read whole arrays.
        with ctx.timed("subgrids"):
            owner = make_owner_map(meta, comm.size, policy="round_robin")
            subgrids: dict[int, Grid] = {}
            if session.collective_metadata:
                names = list(top_piece.fields.names)
                for gid in meta.subgrid_ids():
                    g = meta[gid]
                    mine = owner[gid] == comm.rank
                    shell = (
                        IOStrategy.make_subgrid_shell(meta, gid) if mine else None
                    )
                    for name in names:
                        got = session.read_grid_field(gid, g, name, mine)
                        if mine:
                            shell.fields[name] = got
                            ctx.stats.bytes_moved += got.nbytes
                    parrays = {}
                    for name in PARTICLE_ARRAYS:
                        got = session.read_grid_particle(gid, g, name, mine)
                        if mine:
                            parrays[name] = got
                            ctx.stats.bytes_moved += got.nbytes
                    if mine:
                        shell.particles = ParticleSet.from_arrays(parrays)
                        subgrids[gid] = shell
            else:
                for gid in meta.subgrid_ids():
                    if owner[gid] != comm.rank:
                        continue
                    g = meta[gid]
                    grid = IOStrategy.make_subgrid_shell(meta, gid)
                    for name in grid.fields:
                        got = session.read_grid_field(gid, g, name, True)
                        grid.fields[name] = got
                        ctx.stats.bytes_moved += got.nbytes
                    parrays = {}
                    for name in PARTICLE_ARRAYS:
                        got = session.read_grid_particle(gid, g, name, True)
                        parrays[name] = got
                        ctx.stats.bytes_moved += got.nbytes
                    grid.particles = ParticleSet.from_arrays(parrays)
                    subgrids[gid] = grid

        return RankState(
            rank=comm.rank,
            nprocs=comm.size,
            meta=meta,
            partition=partition,
            top_piece=top_piece,
            subgrids=subgrids,
            owner=owner,
        )

    def read_initial(self, ctx, session, layout, meta):
        """Parallel new-simulation read: every grid read collectively."""
        from ..enzo.layout import TOP
        from ..enzo.state import PartitionedState

        comm = ctx.comm
        state = PartitionedState(rank=comm.rank, nprocs=comm.size, meta=meta)
        names = list(field_names())
        for g in meta.grids():
            gid = g.id
            key = TOP if gid == meta.root_id else gid
            part = BlockPartition.for_grid(g.dims, comm.size)
            state.partitions[gid] = part
            active = comm.rank < part.nprocs
            piece = make_piece_shell(meta, gid, part, comm.rank) if active else None
            # Baryon fields: collective reads (all ranks call).
            for name in names:
                got = session.read_initial_field(key, g, name, part, active, comm.rank)
                if active:
                    piece.fields[name] = got
                    ctx.stats.bytes_moved += got.nbytes
            session.reset_view()
            # Particle arrays: block-wise reads + redistribution by position.
            n_total = g.nparticles
            if comm.rank < part.nprocs:
                lo, hi = particle_block_range(n_total, comm.rank, part.nprocs)
            else:
                lo = hi = 0
            arrays = {}
            for name in PARTICLE_ARRAYS:
                got = session.read_initial_particle(key, g, name, lo, hi)
                arrays[name] = got
                ctx.stats.bytes_moved += got.nbytes
            block = ParticleSet.from_arrays(arrays)
            mine = redistribute_grid_particles(comm, block, meta, gid, part)
            if piece is not None:
                piece.particles = mine
                state.pieces[gid] = piece
            else:
                state.pieces[gid] = None
        return state


class IndependentTransport(CollectiveTransport):
    """The collective plan issued as independent requests (Figure 5)."""

    name = "independent"
    collective_fields = False
