"""Format backends: how arrays become bytes in a file.

The paper's top layer is the *format* level -- the self-describing object
model the bytes go through: HDF4's SD interface (one sequential library
call per array), a raw shared file (offsets derived externally, nothing in
the file but data), or HDF5 datasets written through hyperslab selections
over the mpio driver.

A format object is a stateless factory; ``open_write``/``open_read``
return a *session* bound to one checkpoint file (or, for file-per-grid
formats, one checkpoint's family of files).  Sessions expose the primitive
operations transports compose -- each primitive reproduces its original
driver's exact sequence of simulated operations (library CPU costs,
barriers, file-system requests), which is what keeps the composed
strategies digest-identical to the monolithic ones they replaced.

``session_kind`` must match the layout planner's ``kind``;
``collective_metadata`` tells the transport whether per-array metadata
operations (HDF5 dataset create/open/close) synchronise all ranks, in
which case every rank must walk every grid's arrays even when it owns no
data -- the paper's overhead #1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from ..amr.particles import PARTICLE_ARRAYS, ParticleSet
from ..hdf4.sd import SDFile
from ..hdf5.dataspace import Hyperslab
from ..hdf5.file import H5Costs, H5File
from ..mpi.datatypes import FLOAT64, Subarray
from ..mpiio.file import File
from ..mpiio.hints import Hints
from ..resilience.manifest import entry_for_bytes, entry_for_segments

__all__ = [
    "FieldWriteOp",
    "HDF4SDFormat",
    "HDF5Format",
    "RawSharedFormat",
    "dset_name",
]


@dataclass
class FieldWriteOp:
    """A prepared top-grid field write the transport decides how to issue.

    ``collective``/``independent`` are the two issue paths (the transport
    picks, possibly degrading via the resilience layer); ``segments``
    yields the (offset, nbytes) byte runs for the manifest entry;
    ``finish`` runs the format's post-write epilogue (attribute + close
    for HDF5, nothing for raw).
    """

    collective: Callable[[], None]
    independent: Callable[[], None]
    segments: Callable[[], list]
    finish: Callable[[], None] = lambda: None


def dset_name(grid_key, kind: str, array_name: str) -> str:
    """HDF5 dataset path; ``kind`` disambiguates field vs particle arrays."""
    return f"{grid_key}/{kind}/{array_name}"


# -- HDF4 SD (file per grid) -------------------------------------------------


def write_grid_sd(sd: SDFile, grid, entries: list | None = None) -> int:
    """Write one grid's arrays (canonical order) into an open SD file.

    Appends a manifest entry per array to ``entries`` when given.
    """
    path = sd._adio.path
    nbytes = 0

    def _put(name: str, arr) -> None:
        nonlocal nbytes
        sds = sd.create(name, arr.dtype, arr.shape)
        sds.write(arr)
        if entries is not None:
            entries.append(entry_for_bytes(
                f"{path}:{name}", path, sds.entry.data_offset, arr
            ))
        nbytes += arr.nbytes

    for name, arr in grid.fields.items():
        _put(name, arr)
    parts = grid.particles
    # "particle/" prefix keeps particle velocity_* distinct from the baryon
    # velocity fields (real ENZO names these particle_velocity_x etc.).
    for name in PARTICLE_ARRAYS:
        _put(f"particle/{name}", np.ascontiguousarray(parts.array(name)))
    return nbytes


def write_grid_sd_batched(sd: SDFile, grid, entries: list | None = None) -> int:
    """:func:`write_grid_sd` with all data writes posted as ONE batch.

    Same bytes at the same offsets and the same per-call library overheads,
    but the grid file's array writes go through a single
    :meth:`~repro.mpiio.adio.ADIOFile.write_vector` call -- one
    schedule-point crossing per grid instead of one per array.  Used only
    by scale-mode strategies (``batch_requests``); the pinned-digest path
    keeps per-array scheduling.
    """
    path = sd._adio.path
    ops: list[tuple[int, np.ndarray]] = []
    nbytes = 0

    def _put(name: str, arr) -> None:
        nonlocal nbytes
        arr = np.ascontiguousarray(arr)
        sds = sd.create(name, arr.dtype, arr.shape)
        sd._overhead()  # the SDwritedata library call still costs CPU
        ops.append((sds.entry.data_offset, arr))
        if entries is not None:
            entries.append(entry_for_bytes(
                f"{path}:{name}", path, sds.entry.data_offset, arr
            ))
        nbytes += arr.nbytes

    for name, arr in grid.fields.items():
        _put(name, arr)
    parts = grid.particles
    for name in PARTICLE_ARRAYS:
        _put(f"particle/{name}", np.ascontiguousarray(parts.array(name)))
    sd._adio.write_vector(ops)
    return nbytes


def read_grid_sd(sd: SDFile, shell) -> None:
    """Fill a grid shell from an open SD file (canonical order)."""
    for name in shell.fields:
        shell.fields[name] = sd.select(name).read()
    arrays = {
        name: sd.select(f"particle/{name}").read() for name in PARTICLE_ARRAYS
    }
    shell.particles = ParticleSet.from_arrays(arrays)


class HDF4SDFormat:
    """The sequential HDF4 SD object model, one file per grid."""

    name = "hdf4-sd"
    session_kind = "file-per-grid"
    takes_hints = False

    def open_write(self, ctx, meta, layout):
        return _SDSession(ctx)

    def open_read(self, ctx, meta, layout):
        return _SDSession(ctx)


class _SDSession:
    collective_metadata = False

    def __init__(self, ctx):
        self.ctx = ctx

    def close(self) -> None:
        pass  # each grid's file was opened and closed inline

    def write_grid(self, path: str, grid) -> int:
        sd = SDFile.start(self.ctx.comm, path, "w", retry=self.ctx.strategy.retry)
        if getattr(self.ctx.strategy, "batch_requests", False):
            nbytes = write_grid_sd_batched(sd, grid, self.ctx.entries)
        else:
            nbytes = write_grid_sd(sd, grid, self.ctx.entries)
        sd.end()
        return nbytes

    def read_grid(self, path: str, shell) -> None:
        sd = SDFile.start(self.ctx.comm, path, "r", retry=self.ctx.strategy.retry)
        read_grid_sd(sd, shell)
        sd.end()


# -- raw shared file over MPI-IO ---------------------------------------------


class RawSharedFormat:
    """Nothing in the file but data; every offset comes from the layout."""

    name = "raw"
    session_kind = "shared-file"
    takes_hints = True

    def __init__(self, hints: Hints | None = None):
        self.hints = hints or Hints()

    def open_write(self, ctx, meta, layout):
        return _RawSession(self, ctx, layout, "w")

    def open_read(self, ctx, meta, layout):
        return _RawSession(self, ctx, layout, "r")


class _RawSession:
    collective_metadata = False

    def __init__(self, fmt: RawSharedFormat, ctx, layout, mode: str):
        self.ctx = ctx
        self.layout = layout
        self.fh = File.open(
            ctx.comm, ctx.base, mode, hints=fmt.hints, retry=ctx.strategy.retry,
            aio=getattr(ctx.strategy, "aio", None) if mode == "w" else None,
        )

    def close(self) -> None:
        self.fh.close()

    def reset_view(self) -> None:
        self.fh.set_view(0)  # back to the plain byte view

    # -- write primitives --------------------------------------------------

    def begin_top_field(self, name, arr, starts, sizes, root_dims) -> FieldWriteOp:
        from ..enzo.layout import TOP

        ext = self.layout.extent(TOP, name)
        ftype = Subarray(root_dims, sizes, starts, FLOAT64)
        fh = self.fh
        fh.set_view(ext.offset, FLOAT64, ftype)
        return FieldWriteOp(
            collective=lambda: fh.write_at_all(0, arr),
            independent=lambda: fh.write_at(0, arr),
            segments=lambda: fh.view_segments(0, arr.nbytes),
        )

    def write_top_particle(self, name, parts, elem_offset, n_total) -> int:
        from ..enzo.layout import TOP

        ext = self.layout.extent(TOP, name, "particle")
        arr = np.ascontiguousarray(parts.array(name))
        offset = ext.offset + elem_offset * ext.dtype.itemsize
        self.fh.write_at(offset, arr)
        self.ctx.entries.append(entry_for_bytes(
            f"top/particle/{name}/r{self.ctx.comm.rank:04d}",
            self.ctx.base, offset, arr,
        ))
        return arr.nbytes

    def write_grid_field(self, gid, g, name, arr) -> int:
        ext = self.layout.extent(gid, name)
        self.fh.write_at(ext.offset, arr)
        self.ctx.entries.append(entry_for_bytes(
            f"grid{gid}/field/{name}", self.ctx.base, ext.offset, arr
        ))
        return arr.nbytes

    def write_grid_particle(self, gid, g, name, gparts) -> int:
        ext = self.layout.extent(gid, name, "particle")
        arr = np.ascontiguousarray(gparts.array(name))
        self.fh.write_at(ext.offset, arr)
        self.ctx.entries.append(entry_for_bytes(
            f"grid{gid}/particle/{name}", self.ctx.base, ext.offset, arr
        ))
        return arr.nbytes

    # -- read primitives ---------------------------------------------------

    def read_top_field(self, name, starts, sizes, root_dims):
        from ..enzo.layout import TOP

        ext = self.layout.extent(TOP, name)
        ftype = Subarray(root_dims, sizes, starts, FLOAT64)
        self.fh.set_view(ext.offset, FLOAT64, ftype)
        return self.fh.read_at_all(0, np.empty(sizes, dtype=np.float64))

    def read_top_particle(self, name, lo, hi, n_total):
        from ..enzo.layout import TOP
        from ..enzo.meta import array_dtype

        ext = self.layout.extent(TOP, name, "particle")
        dt = array_dtype(name)
        raw = self.fh.read_at(
            ext.offset + lo * dt.itemsize, int((hi - lo) * dt.itemsize)
        )
        return np.frombuffer(raw, dtype=dt).copy()

    def read_grid_field(self, gid, g, name, want: bool):
        ext = self.layout.extent(gid, name)
        return self.fh.read_at(ext.offset, np.empty(ext.shape, dtype=ext.dtype))

    def read_grid_particle(self, gid, g, name, want: bool):
        ext = self.layout.extent(gid, name, "particle")
        raw = self.fh.read_at(ext.offset, ext.nbytes)
        return np.frombuffer(raw, dtype=ext.dtype).copy()

    def read_initial_field(self, key, g, name, part, active: bool, rank: int):
        ext = self.layout.extent(key, name)
        if active:
            starts, sizes = part.block_of(rank)
            ftype = Subarray(g.dims, sizes, starts, FLOAT64)
            self.fh.set_view(ext.offset, FLOAT64, ftype)
            return self.fh.read_at_all(0, np.empty(sizes, dtype=np.float64))
        # Inactive ranks still participate in the collective call.
        self.fh.set_view(ext.offset)
        self.fh.read_at_all(0, 0)
        return None

    def read_initial_particle(self, key, g, name, lo, hi):
        from ..enzo.meta import array_dtype

        ext = self.layout.extent(key, name, "particle")
        dt = array_dtype(name)
        raw = self.fh.read_at(
            ext.offset + lo * dt.itemsize, int((hi - lo) * dt.itemsize)
        )
        return np.frombuffer(raw, dtype=dt).copy()


# -- HDF5 over the mpio driver -----------------------------------------------


class HDF5Format:
    """HDF5 datasets and hyperslabs, with the 2002 overheads built in.

    ``meta_aggregation`` and a non-zero ``costs.alignment`` are the paper's
    Section 5 remedies: batch the per-dataset object-header writes into one
    list-I/O flush at file close, and pad data regions to a file-system
    friendly boundary.
    """

    name = "hdf5"
    session_kind = "shared-file"
    takes_hints = True

    def __init__(
        self,
        hints: Hints | None = None,
        costs: H5Costs | None = None,
        meta_aggregation: bool = False,
    ):
        self.hints = hints or Hints()
        self.costs = costs or H5Costs()
        self.meta_aggregation = meta_aggregation

    def open_write(self, ctx, meta, layout):
        f = H5File.create(
            ctx.comm, ctx.base, driver="mpio", hints=self.hints,
            costs=self.costs, retry=ctx.strategy.retry,
            aio=getattr(ctx.strategy, "aio", None),
            meta_aggregation=self.meta_aggregation,
        )
        return _H5Session(ctx, f)

    def open_read(self, ctx, meta, layout):
        f = H5File.open(
            ctx.comm, ctx.base, driver="mpio", hints=self.hints,
            costs=self.costs, retry=ctx.strategy.retry,
        )
        return _H5Session(ctx, f)


class _H5Session:
    collective_metadata = True

    def __init__(self, ctx, f: H5File):
        self.ctx = ctx
        self.f = f

    def close(self) -> None:
        self.f.close()

    def reset_view(self) -> None:
        pass  # HDF5 addresses through selections, not file views

    # -- write primitives --------------------------------------------------

    def begin_top_field(self, name, arr, starts, sizes, root_dims) -> FieldWriteOp:
        d = self.f.create_dataset(
            dset_name("top", "field", name), root_dims, np.float64
        )
        sel = Hyperslab(start=starts, count=sizes)

        def finish():
            d.write_attr("level", 0)
            d.close()

        return FieldWriteOp(
            collective=lambda: d.write(arr, sel, collective=True),
            independent=lambda: d.write(arr, sel, collective=False),
            segments=lambda: d.file_segments(sel),
            finish=finish,
        )

    def write_top_particle(self, name, parts, elem_offset, n_total) -> int:
        from ..enzo.meta import array_dtype

        d = self.f.create_dataset(
            dset_name("top", "particle", name), (max(n_total, 1),),
            array_dtype(name),
        )
        moved = 0
        if len(parts):
            arr = np.ascontiguousarray(parts.array(name))
            sel = Hyperslab(start=(elem_offset,), count=(len(arr),))
            d.write(arr, sel, collective=False)
            self.ctx.entries.append(entry_for_segments(
                f"top/particle/{name}/r{self.ctx.comm.rank:04d}",
                self.ctx.base, d.file_segments(sel), arr,
            ))
            moved = arr.nbytes
        d.close()
        return moved

    def write_grid_field(self, gid, g, name, arr) -> int:
        d = self.f.create_dataset(dset_name(gid, "field", name), g.dims, np.float64)
        moved = 0
        if arr is not None:
            d.write(arr, collective=False)
            self.ctx.entries.append(entry_for_segments(
                f"grid{gid}/field/{name}", self.ctx.base, d.file_segments(), arr
            ))
            moved = arr.nbytes
        d.close()
        return moved

    def write_grid_particle(self, gid, g, name, gparts) -> int:
        from ..enzo.meta import array_dtype

        d = self.f.create_dataset(
            dset_name(gid, "particle", name), (max(g.nparticles, 1),),
            array_dtype(name),
        )
        moved = 0
        if gparts is not None and g.nparticles:
            arr = np.ascontiguousarray(gparts.array(name))
            sel = Hyperslab(start=(0,), count=(len(arr),))
            d.write(arr, sel, collective=False)
            self.ctx.entries.append(entry_for_segments(
                f"grid{gid}/particle/{name}", self.ctx.base,
                d.file_segments(sel), arr,
            ))
            moved = arr.nbytes
        d.close()
        return moved

    # -- read primitives ---------------------------------------------------

    def read_top_field(self, name, starts, sizes, root_dims):
        d = self.f.open_dataset(dset_name("top", "field", name))
        got = d.read(Hyperslab(start=starts, count=sizes), collective=True)
        d.close()
        return got

    def read_top_particle(self, name, lo, hi, n_total):
        from ..enzo.meta import array_dtype

        d = self.f.open_dataset(dset_name("top", "particle", name))
        if hi > lo:
            got = d.read(
                Hyperslab(start=(lo,), count=(hi - lo,)), collective=False
            )
        else:
            got = np.empty(0, dtype=array_dtype(name))
        d.close()
        return got

    def read_grid_field(self, gid, g, name, want: bool):
        # Dataset open/close are collective in parallel HDF5, so every rank
        # walks every dataset even when only the owner reads data.
        d = self.f.open_dataset(dset_name(gid, "field", name))
        got = d.read(collective=False) if want else None
        d.close()
        return got

    def read_grid_particle(self, gid, g, name, want: bool):
        from ..enzo.meta import array_dtype

        d = self.f.open_dataset(dset_name(gid, "particle", name))
        got = None
        if want:
            if g.nparticles:
                got = d.read(
                    Hyperslab(start=(0,), count=(g.nparticles,)),
                    collective=False,
                )
            else:
                got = np.empty(0, dtype=array_dtype(name))
        d.close()
        return got

    def read_initial_field(self, key, g, name, part, active: bool, rank: int):
        d = self.f.open_dataset(dset_name(key, "field", name))
        if active:
            starts, sizes = part.block_of(rank)
            got = d.read(Hyperslab(start=starts, count=sizes), collective=True)
        else:
            # Collective read with an empty selection.
            d.read(
                Hyperslab(start=(0,) * len(g.dims), count=(0,) * len(g.dims)),
                collective=True,
            )
            got = None
        d.close()
        return got

    def read_initial_particle(self, key, g, name, lo, hi):
        from ..enzo.meta import array_dtype

        d = self.f.open_dataset(dset_name(key, "particle", name))
        if hi > lo:
            got = d.read(
                Hyperslab(start=(lo,), count=(hi - lo,)), collective=False
            )
        else:
            got = np.empty(0, dtype=array_dtype(name))
        d.close()
        return got
