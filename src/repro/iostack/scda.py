"""scda: a minimal serial-equivalent checkpoint format.

Following Griesbach & Burstedde's scda design, the file a parallel run
commits is **byte-identical for every processor count**: fixed-width
human-readable headers written by rank 0, array sections at offsets
derived from the replicated hierarchy metadata, and zero padding aligning
every section to a declared block size.  Nothing in the file depends on
which rank wrote which piece, so the golden digest of an scda checkpoint
is a partition-invariant -- the property the regress gate pins.

Layout (byte offsets ascending, ``B`` = ``block_size``)::

    [  0 .. 128)            file header   "scda-file version=1 ..."
    [align_up(128, B) .. )  section 0:    96-byte section header, then data
    ... zero padding to the next multiple of B ...
    [next aligned .. )      section 1:    header, data
    ...

Sections follow the canonical :class:`~repro.enzo.layout.CheckpointLayout`
order (top-grid fields, top-grid particles, then per-subgrid arrays).

Manifest entries are also serial-equivalent: instead of the per-rank
entries the raw format records, the scda session gathers each rank's
``(offset, nbytes, crc32)`` write pieces at close and rank 0 merges them
into ONE entry per section, combining the piece CRCs arithmetically
(:func:`crc32_combine`) -- so the manifest bytes, like the file bytes,
are identical for every P.
"""

from __future__ import annotations

import zlib

import numpy as np

from ..mpi import collectives as coll
from ..mpiio.hints import Hints
from ..resilience.manifest import ManifestEntry, entry_for_segments
from .formats import FieldWriteOp, _RawSession

__all__ = [
    "FILE_HEADER_NBYTES",
    "SECTION_HEADER_NBYTES",
    "ScdaFormat",
    "ScdaHeaderError",
    "ScdaLayout",
    "crc32_combine",
]

FILE_HEADER_NBYTES = 128
SECTION_HEADER_NBYTES = 96


class ScdaHeaderError(ValueError):
    """A scda header is malformed or disagrees with the derived layout."""


# -- CRC32 combination --------------------------------------------------------


def _gf2_matrix_times(mat: list[int], vec: int) -> int:
    total = 0
    i = 0
    while vec:
        if vec & 1:
            total ^= mat[i]
        vec >>= 1
        i += 1
    return total


def _gf2_matrix_square(square: list[int], mat: list[int]) -> None:
    for i in range(32):
        square[i] = _gf2_matrix_times(mat, mat[i])


def crc32_combine(crc1: int, crc2: int, len2: int) -> int:
    """``crc32(A+B)`` from ``crc32(A)``, ``crc32(B)`` and ``len(B)``.

    The standard zlib algorithm: advance ``crc1`` through ``len2`` zero
    bytes by repeated GF(2) matrix squaring of the CRC shift operator,
    then xor with ``crc2``.  Lets rank 0 checksum a section nobody holds
    in one piece without re-reading a single byte.
    """
    if len2 <= 0:
        return crc1
    even = [0] * 32
    odd = [0] * 32
    # The CRC-32 polynomial (reflected), then powers of two.
    odd[0] = 0xEDB88320
    row = 1
    for i in range(1, 32):
        odd[i] = row
        row <<= 1
    # odd = shift-by-one operator; even = shift-by-two; then square up.
    _gf2_matrix_square(even, odd)
    _gf2_matrix_square(odd, even)
    while True:
        _gf2_matrix_square(even, odd)
        if len2 & 1:
            crc1 = _gf2_matrix_times(even, crc1)
        len2 >>= 1
        if len2 == 0:
            break
        _gf2_matrix_square(odd, even)
        if len2 & 1:
            crc1 = _gf2_matrix_times(odd, crc1)
        len2 >>= 1
        if len2 == 0:
            break
    return crc1 ^ crc2


# -- layout -------------------------------------------------------------------


def _align_up(value: int, align: int) -> int:
    return -(-value // align) * align


def _section_name(key: tuple) -> str:
    grid_key, kind, name = key
    prefix = grid_key if grid_key == "top" else f"grid{grid_key}"
    return f"{prefix}/{kind}/{name}"


class ScdaLayout:
    """A :class:`CheckpointLayout` re-addressed with headers and padding.

    Wraps the dense shared-file layout: every array keeps its canonical
    order but moves to ``align_up(cursor, block_size)`` with a 96-byte
    section header in front of the data.  A pure function of the inner
    layout and ``block_size`` -- every rank derives identical offsets.
    """

    def __init__(self, inner, block_size: int):
        if block_size < FILE_HEADER_NBYTES:
            raise ValueError("block_size must be >= the 128-byte file header")
        from ..enzo.layout import ArrayExtent

        self.inner = inner
        self.block_size = block_size
        self._extents: dict[tuple, ArrayExtent] = {}
        #: canonical (section name, header offset, data extent) triples.
        self.sections: list[tuple[str, int, ArrayExtent]] = []
        cursor = _align_up(FILE_HEADER_NBYTES, block_size)
        for key in inner.keys():
            src = inner._extents[key]
            header_offset = cursor
            ext = ArrayExtent(cursor + SECTION_HEADER_NBYTES, src.dtype, src.shape)
            self._extents[key] = ext
            self.sections.append((_section_name(key), header_offset, ext))
            cursor = _align_up(ext.end, block_size)
        self.total_nbytes = cursor

    def extent(self, grid_key, array_name: str, kind: str = "field"):
        return self._extents[(grid_key, kind, array_name)]

    def keys(self):
        return self._extents.keys()

    def __len__(self) -> int:
        return len(self._extents)

    # -- header/padding geometry ------------------------------------------

    def header_segments(self) -> list[tuple[int, int]]:
        """(offset, nbytes) of the file header and every section header."""
        segs = [(0, FILE_HEADER_NBYTES)]
        segs.extend((h, SECTION_HEADER_NBYTES) for _, h, _ in self.sections)
        return segs

    def padding_segments(self) -> list[tuple[int, int]]:
        """The alignment gaps that must hold zeros."""
        gaps: list[tuple[int, int]] = []
        pos = FILE_HEADER_NBYTES
        for _, header_offset, ext in self.sections:
            if header_offset > pos:
                gaps.append((pos, header_offset - pos))
            pos = ext.end
        return gaps

    # -- header bytes ------------------------------------------------------

    @staticmethod
    def _pad(line: str, width: int) -> bytes:
        raw = line.encode("ascii")
        if len(raw) >= width:
            raise ScdaHeaderError(
                f"scda header line overflows its fixed width ({len(raw)} >= {width}):"
                f" {line!r}"
            )
        return raw + b" " * (width - len(raw) - 1) + b"\n"

    def file_header(self) -> bytes:
        return self._pad(
            f"scda-file version=1 block={self.block_size} "
            f"nsections={len(self.sections)} nbytes={self.total_nbytes}",
            FILE_HEADER_NBYTES,
        )

    def section_header(self, name: str, ext) -> bytes:
        shape = "x".join(str(s) for s in ext.shape)
        return self._pad(
            f"scda-section {name} dtype={ext.dtype.str} shape={shape} "
            f"nbytes={ext.nbytes}",
            SECTION_HEADER_NBYTES,
        )

    def header_blob(self) -> bytes:
        parts = [self.file_header()]
        parts.extend(self.section_header(name, ext) for name, _, ext in self.sections)
        return b"".join(parts)

    def validate_headers(self, blob: bytes) -> None:
        """Raise :class:`ScdaHeaderError` unless ``blob`` matches exactly.

        A torn header write or padding corruption must be *detected*,
        never silently parsed: the expected header bytes are a pure
        function of the replicated metadata, so anything else is damage.
        """
        expect = self.header_blob()
        if blob == expect:
            return
        # Name the first divergent header for the error message.
        labels = ["file header"] + [f"section {name!r}" for name, _, _ in self.sections]
        pos = 0
        for i, width in enumerate(
            [FILE_HEADER_NBYTES] + [SECTION_HEADER_NBYTES] * len(self.sections)
        ):
            if blob[pos:pos + width] != expect[pos:pos + width]:
                raise ScdaHeaderError(
                    f"scda {labels[i]} is torn or does not match the derived "
                    f"layout: {bytes(blob[pos:pos + width])[:40]!r}..."
                )
            pos += width
        raise ScdaHeaderError("scda headers have trailing divergence")


# -- format + session ---------------------------------------------------------


class ScdaFormat:
    """Serial-equivalent shared file: headers + aligned zero-padded sections."""

    name = "scda"
    session_kind = "shared-file"
    takes_hints = True

    def __init__(self, hints: Hints | None = None, block_size: int = 4096):
        self.hints = hints or Hints()
        self.block_size = block_size

    def _wrap(self, layout) -> ScdaLayout:
        cached = getattr(layout, "_scda_cache", None)
        if cached is None or cached.block_size != self.block_size:
            cached = ScdaLayout(layout, self.block_size)
            try:
                layout._scda_cache = cached
            except (AttributeError, TypeError):
                pass
        return cached

    def open_write(self, ctx, meta, layout):
        return _ScdaSession(self, ctx, self._wrap(layout), "w")

    def open_read(self, ctx, meta, layout):
        return _ScdaSession(self, ctx, self._wrap(layout), "r")


class _ScdaSession(_RawSession):
    """The raw session's exact I/O flow, plus headers and merged manifest.

    ``owns_manifest`` tells the transport not to append its per-rank
    manifest entries: this session gathers per-rank write pieces at close
    and emits one serial-equivalent entry per section instead.
    """

    owns_manifest = True

    def __init__(self, fmt: ScdaFormat, ctx, layout: ScdaLayout, mode: str):
        super().__init__(fmt, ctx, layout, mode)
        self._mode = mode
        #: section name -> [(file offset, nbytes, crc32 of the piece)].
        self._pieces: dict[str, list[tuple[int, int, int]]] = {}
        if ctx.comm.rank == 0:
            if mode == "w":
                self._write_headers()
            else:
                self._validate_headers()

    # -- headers -----------------------------------------------------------

    def _write_headers(self) -> None:
        lay = self.layout
        self.fh.adio.write_list(lay.header_segments(), lay.header_blob())

    def _validate_headers(self) -> None:
        lay = self.layout
        blob = self.fh.adio.read_list(lay.header_segments())
        lay.validate_headers(blob)

    # -- piece recording ---------------------------------------------------

    def _record(self, section: str, segments, arr) -> None:
        buf = memoryview(np.ascontiguousarray(arr)).cast("B")
        pieces = self._pieces.setdefault(section, [])
        pos = 0
        for offset, nbytes in segments:
            if nbytes > 0:
                crc = zlib.crc32(buf[pos:pos + nbytes])
                pieces.append((int(offset), int(nbytes), crc))
            pos += nbytes

    # -- write primitives (raw flow, entries replaced by pieces) -----------

    def begin_top_field(self, name, arr, starts, sizes, root_dims) -> FieldWriteOp:
        op = super().begin_top_field(name, arr, starts, sizes, root_dims)
        # The view was just set, so the segment list is already valid.
        self._record(f"top/field/{name}", op.segments(), arr)
        return op

    def write_top_particle(self, name, parts, elem_offset, n_total) -> int:
        from ..enzo.layout import TOP

        ext = self.layout.extent(TOP, name, "particle")
        arr = np.ascontiguousarray(parts.array(name))
        offset = ext.offset + elem_offset * ext.dtype.itemsize
        self.fh.write_at(offset, arr)
        self._record(f"top/particle/{name}", [(offset, arr.nbytes)], arr)
        return arr.nbytes

    def write_grid_field(self, gid, g, name, arr) -> int:
        ext = self.layout.extent(gid, name)
        self.fh.write_at(ext.offset, arr)
        self._record(f"grid{gid}/field/{name}", [(ext.offset, arr.nbytes)], arr)
        return arr.nbytes

    def write_grid_particle(self, gid, g, name, gparts) -> int:
        ext = self.layout.extent(gid, name, "particle")
        arr = np.ascontiguousarray(gparts.array(name))
        self.fh.write_at(ext.offset, arr)
        self._record(f"grid{gid}/particle/{name}", [(ext.offset, arr.nbytes)], arr)
        return arr.nbytes

    # -- close: gather pieces, emit serial-equivalent entries --------------

    def close(self) -> None:
        super().close()
        if self._mode != "w":
            return
        comm = self.ctx.comm
        gathered = coll.gather(comm, self._pieces, root=0)
        if comm.rank != 0:
            return
        merged: dict[str, list[tuple[int, int, int]]] = {}
        for per_rank in gathered:
            for section, pieces in per_rank.items():
                merged.setdefault(section, []).extend(pieces)
        lay = self.layout
        entries = self.ctx.entries
        entries.append(entry_for_segments(
            "scda/headers", self.ctx.base, lay.header_segments(), lay.header_blob()
        ))
        gaps = lay.padding_segments()
        if gaps:
            entries.append(entry_for_segments(
                "scda/padding", self.ctx.base, gaps,
                bytes(sum(n for _, n in gaps)),
            ))
        for name, _, ext in lay.sections:
            pieces = sorted(merged.get(name, ()))
            if ext.nbytes == 0 and not pieces:
                continue
            crc = 0
            pos = ext.offset
            for offset, nbytes, piece_crc in pieces:
                if offset != pos:
                    raise ScdaHeaderError(
                        f"scda section {name!r} has a coverage gap at {pos}"
                    )
                crc = crc32_combine(crc, piece_crc, nbytes)
                pos += nbytes
            if pos != ext.end:
                raise ScdaHeaderError(
                    f"scda section {name!r} covered to {pos}, expected {ext.end}"
                )
            entries.append(ManifestEntry(
                name=name, path=self.ctx.base,
                segments=((ext.offset, ext.nbytes),), checksum=crc,
            ))
