"""The canonical :class:`Scenario` model every workload dialect normalizes to.

A scenario is the *shape* of one AMR cosmology workload: root-grid
dimensionality, nested initial grids, must-refine particle regions,
refinement constraints (``max_level``, ``max_grid_size``), and the output
cadence split into its two streams -- periodic checkpoints (restartable,
full state) and periodic plot files (lightweight, a field subset, no
particles) -- plus redshift-triggered dumps.

Scenarios are frozen and fully hashable (every collection field is a
tuple), so they can key the ``lru_cache``'d workload builders and travel
anywhere a ``problem: str`` used to go.  Validation failures raise
:class:`ScenarioError` (a :class:`ValueError`), which the CLI maps to
exit 2 -- malformed parameter files are usage errors, never crashes.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..amr.fields import BARYON_FIELDS

__all__ = [
    "MIN_GRID_SIZE",
    "MustRefineRegion",
    "NestedGridSpec",
    "Scenario",
    "ScenarioError",
]

#: Smallest sensible ``max_grid_size``: a grid edge below this produces
#: sub-stripe write requests on every file system the repo models (the
#: narrowest stripe-ish unit is the 4 KiB scda block = 8^3 cells of one
#: field), so parsers must reject it loudly instead of building a workload
#: whose I/O the model cannot say anything meaningful about.
MIN_GRID_SIZE = 8


class ScenarioError(ValueError):
    """A parameter file or scenario definition that cannot be normalized."""


@dataclass(frozen=True)
class NestedGridSpec:
    """One static nested initial grid (Enzo ``CosmologySimulationGrid*``)."""

    level: int
    dims: tuple[int, int, int]
    left_edge: tuple[float, float, float]
    right_edge: tuple[float, float, float]


@dataclass(frozen=True)
class MustRefineRegion:
    """A region forced to refine to ``level`` (must-refine particles)."""

    level: int
    left_edge: tuple[float, float, float]
    right_edge: tuple[float, float, float]


@dataclass(frozen=True)
class Scenario:
    """One canonical workload description (any dialect normalizes to this).

    The defaults reproduce the hard-coded ``AMR*`` problem sizes exactly:
    a built-in ``Scenario(name="AMR32", root_dims=(32, 32, 32))`` builds
    byte-identical hierarchies to the pre-scenario workload builders,
    which is what keeps every pinned regression digest stable.
    """

    name: str
    root_dims: tuple[int, int, int]
    description: str = ""
    #: which parser produced this ("enzo", "nyx", or "builtin").
    source_dialect: str = "builtin"

    # -- hierarchy shape ---------------------------------------------------
    max_level: int = 4
    #: largest subgrid edge the refiner may create (0 = model default).
    max_grid_size: int = 0
    particles_per_cell: float = 0.25
    seed: int = 0
    pre_refine: int = 1
    refine_threshold: float = 2.2
    init_refine_threshold: float = 2.6
    nested_grids: tuple[NestedGridSpec, ...] = ()
    must_refine: tuple[MustRefineRegion, ...] = ()
    #: deep-hierarchy mode: chain this many extra levels of small nested
    #: grids onto the densest spot (FOGGIE-style zoom hierarchies).
    deep_levels: int = 0

    # -- output cadence ----------------------------------------------------
    ncycles: int = 3
    #: checkpoint stream: dump the full restartable state every N cycles
    #: (0 disables the stream).
    checkpoint_every: int = 1
    #: plot-file stream: lightweight field-subset dump every N cycles
    #: (0 disables the stream).
    plot_every: int = 0
    plot_fields: tuple[str, ...] = ("density",)
    #: redshift-triggered full dumps (Enzo ``CosmologyOutputRedshift[n]``,
    #: Nyx ``analysis_z_values``); requires a redshift range below.
    output_redshifts: tuple[float, ...] = ()
    initial_redshift: float = 0.0
    final_redshift: float = 0.0

    def __str__(self) -> str:
        return self.name

    # -- validation --------------------------------------------------------

    def validate(self) -> "Scenario":
        """Check internal consistency; raises :class:`ScenarioError`."""
        if not self.name:
            raise ScenarioError("scenario needs a name")
        if len(self.root_dims) != 3 or any(
            not isinstance(d, int) or d < MIN_GRID_SIZE for d in self.root_dims
        ):
            raise ScenarioError(
                f"{self.name}: root dims must be three integers >= "
                f"{MIN_GRID_SIZE}, got {self.root_dims!r}"
            )
        if self.max_grid_size and self.max_grid_size < MIN_GRID_SIZE:
            raise ScenarioError(
                f"{self.name}: max_grid_size {self.max_grid_size} is below "
                f"the stripe-ish minimum {MIN_GRID_SIZE} (sub-stripe grids "
                "make every write request degenerate)"
            )
        if self.max_level < 0 or self.pre_refine < 0 or self.deep_levels < 0:
            raise ScenarioError(
                f"{self.name}: max_level/pre_refine/deep_levels must be >= 0"
            )
        if self.particles_per_cell < 0:
            raise ScenarioError(
                f"{self.name}: particles_per_cell must be >= 0"
            )
        if self.ncycles < 1:
            raise ScenarioError(f"{self.name}: ncycles must be >= 1")
        if self.checkpoint_every < 0 or self.plot_every < 0:
            raise ScenarioError(
                f"{self.name}: dump cadences must be >= 0 (0 = stream off)"
            )
        unknown = [f for f in self.plot_fields if f not in BARYON_FIELDS]
        if unknown:
            raise ScenarioError(
                f"{self.name}: unknown plot field(s) {', '.join(unknown)} "
                f"(choose from {', '.join(BARYON_FIELDS)})"
            )
        if self.output_redshifts and not (
            self.initial_redshift > self.final_redshift
        ):
            raise ScenarioError(
                f"{self.name}: redshift-triggered dumps need "
                "initial_redshift > final_redshift"
            )
        for spec in self.nested_grids:
            self._validate_nested(spec)
        for region in self.must_refine:
            if region.level < 1:
                raise ScenarioError(
                    f"{self.name}: must-refine level must be >= 1"
                )
            self._validate_box(region.left_edge, region.right_edge,
                               "must-refine region")
        return self

    def _validate_box(self, left, right, what: str) -> None:
        if len(left) != 3 or len(right) != 3:
            raise ScenarioError(f"{self.name}: {what} edges must be 3-vectors")
        for lo, hi in zip(left, right):
            if not (0.0 <= lo < hi <= 1.0):
                raise ScenarioError(
                    f"{self.name}: {what} [{left}..{right}] must lie inside "
                    "the unit cube with left < right"
                )

    def _validate_nested(self, spec: NestedGridSpec) -> None:
        if spec.level < 1:
            raise ScenarioError(
                f"{self.name}: nested grid levels start at 1 (the root is 0)"
            )
        self._validate_box(spec.left_edge, spec.right_edge, "nested grid")
        if len(spec.dims) != 3 or any(
            not isinstance(d, int) or d < 1 for d in spec.dims
        ):
            raise ScenarioError(
                f"{self.name}: nested grid dims must be three positive "
                f"integers, got {spec.dims!r}"
            )
        # dims must be consistent with the declared extent: a level-L grid
        # has cell width root_width / 2^L, so extent * root_dim * 2^L must
        # equal dims (within float tolerance of the edge coordinates).
        for axis in range(3):
            span = spec.right_edge[axis] - spec.left_edge[axis]
            expect = span * self.root_dims[axis] * (2 ** spec.level)
            if abs(expect - spec.dims[axis]) > 0.5:
                raise ScenarioError(
                    f"{self.name}: nested grid dims {spec.dims} disagree "
                    f"with its edges (axis {axis}: extent {span:g} at level "
                    f"{spec.level} implies {expect:g} cells)"
                )

    # -- derived scenarios -------------------------------------------------

    def downscaled(self, factor: int) -> "Scenario":
        """The same scenario at ``1/factor`` linear resolution.

        Geometry (nested grids, must-refine regions) is preserved in domain
        units; only cell counts shrink.  Root axes never drop below
        :data:`MIN_GRID_SIZE`.  This is how the verbatim 256^3 example
        parameter files run end-to-end in seconds instead of hours.
        """
        if factor <= 1:
            return self
        dims = tuple(
            max(MIN_GRID_SIZE, d // factor) for d in self.root_dims
        )
        scale = dims[0] / self.root_dims[0]
        nested = tuple(
            replace(
                s,
                dims=tuple(max(2, round(d * scale)) for d in s.dims),
            )
            for s in self.nested_grids
        )
        mgs = self.max_grid_size
        if mgs:
            mgs = max(MIN_GRID_SIZE, mgs // factor)
        return replace(
            self,
            name=f"{self.name}/{factor}",
            root_dims=dims,
            nested_grids=nested,
            max_grid_size=mgs,
        ).validate()

    def capped(self, max_axis: int = 32) -> "Scenario":
        """Downscale until no root axis exceeds ``max_axis`` (lint builds)."""
        factor = 1
        while max(self.root_dims) // factor > max_axis:
            factor *= 2
        return self.downscaled(factor)
