"""Enzo-style ``key = value`` parameter-file dialect.

The grammar follows real Enzo cosmology parameter files (see the FOGGIE
example under ``examples/scenarios/``): full-line ``#`` comments, trailing
``//`` comments after the value, arbitrary whitespace (including tabs)
around ``=``, indexed array keys like ``CosmologyOutputRedshift[0]``, and
``key=value`` with no spaces at all.  Unknown keys are tolerated -- real
files carry dozens of physics parameters the I/O model has no use for --
but a line with several tokens and no ``=`` is a syntax error, not noise.

``parse_enzo`` produces the raw key map, ``normalize_enzo`` turns it into a
canonical :class:`~repro.scenarios.model.Scenario`, and ``emit_enzo``
writes a scenario back out in this dialect (which is what the round-trip
property tests exercise: emit -> parse -> normalize must be idempotent).
"""

from __future__ import annotations

import re

from .model import MustRefineRegion, NestedGridSpec, Scenario, ScenarioError

__all__ = ["parse_enzo", "normalize_enzo", "emit_enzo"]

_KEY_RE = re.compile(r"^[A-Za-z][A-Za-z0-9_]*(\[\d+\])?$")


def parse_enzo(text: str) -> dict[str, str]:
    """Parse Enzo dialect text into a raw ``{key: value}`` map.

    Values are kept as unsplit strings ("256 256 256"); indexed keys keep
    their bracket suffix ("CosmologySimulationGridLevel[1]").  Later
    assignments to the same key win, matching Enzo's own reader.
    """
    raw: dict[str, str] = {}
    for lineno, line in enumerate(text.splitlines(), 1):
        stripped = line.strip()
        if not stripped or stripped.startswith("#"):
            continue
        # Trailing // comment (Enzo idiom: "ProblemType = 30 // cosmology").
        stripped = stripped.split("//", 1)[0].strip()
        if not stripped:
            continue
        if "=" in stripped:
            key, value = stripped.split("=", 1)
            key, value = key.strip(), value.strip()
        else:
            parts = stripped.split()
            if len(parts) > 1:
                raise ScenarioError(
                    f"line {lineno}: {stripped!r} has several tokens but "
                    "no '=' (not a key = value assignment)"
                )
            key, value = parts[0], ""
        if not _KEY_RE.match(key):
            raise ScenarioError(f"line {lineno}: bad parameter key {key!r}")
        raw[key] = value
    return raw


def _ints(raw: dict[str, str], key: str, n: int | None = None) -> tuple[int, ...]:
    try:
        vals = tuple(int(tok) for tok in raw[key].split())
    except ValueError:
        raise ScenarioError(
            f"{key} = {raw[key]!r}: expected integers"
        ) from None
    if n is not None and len(vals) != n:
        raise ScenarioError(f"{key} = {raw[key]!r}: expected {n} values")
    return vals


def _floats(raw: dict[str, str], key: str, n: int | None = None) -> tuple[float, ...]:
    try:
        vals = tuple(float(tok) for tok in raw[key].split())
    except ValueError:
        raise ScenarioError(
            f"{key} = {raw[key]!r}: expected numbers"
        ) from None
    if n is not None and len(vals) != n:
        raise ScenarioError(f"{key} = {raw[key]!r}: expected {n} values")
    return vals


def _indexed(raw: dict[str, str], stem: str) -> dict[int, str]:
    """All ``stem[n]`` entries as ``{n: value}``."""
    out: dict[int, str] = {}
    prefix = stem + "["
    for key, value in raw.items():
        if key.startswith(prefix) and key.endswith("]"):
            out[int(key[len(prefix):-1])] = value
    return out


#: How many simulated cycles a scenario run is clamped to.  Real parameter
#: files say StopCycle = 100000; the I/O model only needs enough cycles to
#: exercise every dump stream at least once.
MAX_CYCLES = 4


def normalize_enzo(raw: dict[str, str], *, name: str,
                   description: str = "") -> Scenario:
    """Normalize a raw Enzo key map into a canonical :class:`Scenario`.

    Normalization rules (documented in docs/architecture.md section 15):

    * ``TopGridDimensions`` -> ``root_dims`` (``TopGridRank`` must be 3
      when present).
    * ``CosmologySimulationGrid{Dimension,LeftEdge,RightEdge,Level}[n]``
      quadruples -> :class:`NestedGridSpec` entries; a grid with any of
      the four keys missing is an error.
    * ``MustRefineParticlesCreateParticles > 0`` -> one central half-box
      must-refine region at ``MustRefineParticlesRefineToLevel`` (real
      runs read the region from a particle mask file; the model uses the
      canonical zoom-in geometry).
    * ``MaximumRefinementLevel`` -> ``max_level``.
    * ``dtDataDump > 0`` -> ``checkpoint_every = 1`` (the model runs
      fixed-size steps, so any positive time cadence means "every step").
    * ``StopCycle`` -> ``ncycles``, clamped to :data:`MAX_CYCLES`.
    * ``CosmologyOutputRedshift[n]`` -> ``output_redshifts`` (sorted
      descending -- redshift decreases through a run), with
      ``CosmologyInitial/FinalRedshift`` as the range.
    """
    if "TopGridDimensions" not in raw:
        raise ScenarioError(f"{name}: missing TopGridDimensions")
    if "TopGridRank" in raw and _ints(raw, "TopGridRank", 1)[0] != 3:
        raise ScenarioError(f"{name}: only TopGridRank = 3 is supported")
    root_dims = _ints(raw, "TopGridDimensions", 3)

    nested = []
    dims_by_n = _indexed(raw, "CosmologySimulationGridDimension")
    for n in sorted(dims_by_n):
        quad = {}
        for part in ("Dimension", "LeftEdge", "RightEdge", "Level"):
            key = f"CosmologySimulationGrid{part}[{n}]"
            if key not in raw:
                raise ScenarioError(
                    f"{name}: nested grid {n} is missing {key}"
                )
            quad[part] = key
        nested.append(NestedGridSpec(
            level=_ints(raw, quad["Level"], 1)[0],
            dims=_ints(raw, quad["Dimension"], 3),
            left_edge=_floats(raw, quad["LeftEdge"], 3),
            right_edge=_floats(raw, quad["RightEdge"], 3),
        ))

    must_refine: tuple[MustRefineRegion, ...] = ()
    if int(float(raw.get("MustRefineParticlesCreateParticles", "0") or 0)):
        level = 1
        if "MustRefineParticlesRefineToLevel" in raw:
            level = _ints(raw, "MustRefineParticlesRefineToLevel", 1)[0]
        must_refine = (MustRefineRegion(
            level=level,
            left_edge=(0.25, 0.25, 0.25),
            right_edge=(0.75, 0.75, 0.75),
        ),)

    kwargs: dict = {}
    if "MaximumRefinementLevel" in raw:
        kwargs["max_level"] = _ints(raw, "MaximumRefinementLevel", 1)[0]

    checkpoint_every = 0
    if float(raw.get("dtDataDump", "0") or 0) > 0:
        checkpoint_every = 1
    ncycles = 3
    if "StopCycle" in raw:
        ncycles = max(1, min(MAX_CYCLES, _ints(raw, "StopCycle", 1)[0]))

    redshifts = tuple(
        float(v) for _, v in sorted(_indexed(
            raw, "CosmologyOutputRedshift").items())
    )
    initial_z = float(raw.get("CosmologyInitialRedshift", "0") or 0)
    final_z = float(raw.get("CosmologyFinalRedshift", "0") or 0)
    if redshifts:
        redshifts = tuple(sorted(redshifts, reverse=True))

    return Scenario(
        name=name,
        description=description,
        source_dialect="enzo",
        root_dims=root_dims,
        nested_grids=tuple(nested),
        must_refine=must_refine,
        ncycles=ncycles,
        checkpoint_every=checkpoint_every,
        output_redshifts=redshifts,
        initial_redshift=initial_z,
        final_redshift=final_z,
        **kwargs,
    ).validate()


def emit_enzo(scenario: Scenario) -> str:
    """Write a scenario back out in the Enzo dialect (round-trip tests)."""
    lines = [
        f"# {scenario.name}: {scenario.description or 'scenario'}",
        "ProblemType                = 30      // cosmology simulation",
        "TopGridRank                = 3",
        "TopGridDimensions          = {} {} {}".format(*scenario.root_dims),
        f"MaximumRefinementLevel     = {scenario.max_level}",
    ]
    for i, spec in enumerate(scenario.nested_grids, 1):
        lines += [
            "CosmologySimulationGridDimension[{}] = {} {} {}".format(
                i, *spec.dims),
            "CosmologySimulationGridLeftEdge[{}]  = {} {} {}".format(
                i, *spec.left_edge),
            "CosmologySimulationGridRightEdge[{}] = {} {} {}".format(
                i, *spec.right_edge),
            f"CosmologySimulationGridLevel[{i}]      = {spec.level}",
        ]
    if scenario.must_refine:
        lines += [
            "MustRefineParticlesCreateParticles = 3",
            "MustRefineParticlesRefineToLevel   = "
            f"{scenario.must_refine[0].level}",
        ]
    lines += [
        f"dtDataDump 	 = {10 if scenario.checkpoint_every else 0}",
        f"StopCycle        = {scenario.ncycles}",
    ]
    if scenario.initial_redshift or scenario.final_redshift:
        lines += [
            f"CosmologyInitialRedshift   = {scenario.initial_redshift}",
            f"CosmologyFinalRedshift 	   = {scenario.final_redshift}",
        ]
    for i, z in enumerate(scenario.output_redshifts):
        lines.append(f"CosmologyOutputRedshift[{i}]               = {z}")
    return "\n".join(lines) + "\n"
