"""Build a :class:`GridHierarchy` from a :class:`Scenario`.

This is the one funnel between the scenario layer and the AMR layer: the
workload builders, the Enzo driver, and the ``scenarios --check`` lint
all construct hierarchies through :func:`build_hierarchy`.

For the built-in ``AMR*`` scenarios the calls below reduce exactly to the
historical ``make_initial_conditions`` invocations (same thresholds, same
refinement kwargs, same RNG consumption order), which is what keeps the
pre-scenario regression digests byte-identical.
"""

from __future__ import annotations

from ..amr.hierarchy import GridHierarchy
from ..amr.initial_conditions import make_initial_conditions
from .model import Scenario

__all__ = ["build_hierarchy"]

#: Historical refinement kwargs of the two build flavors.
_INITIAL_KWARGS = {"min_efficiency": 0.05, "max_box_cells": 32768}
_DUMP_MAX_BOX_CELLS = 16384  # refine_grid's own default


def build_hierarchy(scenario: Scenario, *, initial: bool = False) -> GridHierarchy:
    """Construct the hierarchy a scenario describes.

    ``initial=False`` builds the evolved "dump" hierarchy every checkpoint
    experiment writes; ``initial=True`` builds the flatter initial-read
    hierarchy (more aggressive clustering, higher threshold) that models
    the cold start the paper's read phase measures.
    """
    scenario.validate()
    if initial:
        threshold = scenario.init_refine_threshold
        refine_kwargs = dict(_INITIAL_KWARGS)
    else:
        threshold = scenario.refine_threshold
        refine_kwargs = {}
    # max_level default (4) matches refine_hierarchy's own default, so
    # passing it unconditionally is behavior-neutral for the AMR* sizes.
    refine_kwargs["max_level"] = scenario.max_level
    if scenario.max_grid_size:
        # A child grid of a clustered box has edge 2*box_edge, so an edge
        # cap of max_grid_size bounds the box volume at (mgs/2)^3 cells.
        cap = max(1, scenario.max_grid_size // 2) ** 3
        refine_kwargs["max_box_cells"] = min(
            refine_kwargs.get("max_box_cells", _DUMP_MAX_BOX_CELLS), cap)
    return make_initial_conditions(
        scenario.root_dims,
        particles_per_cell=scenario.particles_per_cell,
        seed=scenario.seed,
        pre_refine=scenario.pre_refine,
        refine_threshold=threshold,
        refine_kwargs=refine_kwargs,
        nested_grids=scenario.nested_grids,
        must_refine=scenario.must_refine,
        deep_levels=scenario.deep_levels,
    )
