"""Scenario ingestion: parameter-file-driven workload descriptions.

The paper's experiments all exercise one hard-coded checkpoint/restart
workload shape.  This package turns workload shape into data: Enzo-style
and Nyx-style parameter files normalize into one canonical
:class:`Scenario`, a declarative registry names every built-in workload
(the five ``AMR*`` paper sizes plus the gated ``foggie-nested`` /
``nyx-plotfile`` / ``flashx-particles`` scenarios), and
:func:`build_hierarchy` is the single funnel from scenario to AMR
hierarchy.
"""

from . import registry
from .build import build_hierarchy
from .enzo_dialect import emit_enzo, normalize_enzo, parse_enzo
from .ingest import load_param_file, parse_param_text, sniff_dialect
from .model import (
    MIN_GRID_SIZE,
    MustRefineRegion,
    NestedGridSpec,
    Scenario,
    ScenarioError,
)
from .nyx_dialect import emit_nyx, normalize_nyx, parse_nyx

__all__ = [
    "MIN_GRID_SIZE",
    "MustRefineRegion",
    "NestedGridSpec",
    "Scenario",
    "ScenarioError",
    "build_hierarchy",
    "emit_enzo",
    "emit_nyx",
    "load_param_file",
    "normalize_enzo",
    "normalize_nyx",
    "parse_enzo",
    "parse_nyx",
    "parse_param_text",
    "registry",
    "sniff_dialect",
]
